# Empty compiler generated dependencies file for online_stream.
# This may be replaced when dependencies are built.
