file(REMOVE_RECURSE
  "CMakeFiles/online_stream.dir/online_stream.cpp.o"
  "CMakeFiles/online_stream.dir/online_stream.cpp.o.d"
  "online_stream"
  "online_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
