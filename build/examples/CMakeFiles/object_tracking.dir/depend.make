# Empty dependencies file for object_tracking.
# This may be replaced when dependencies are built.
