file(REMOVE_RECURSE
  "CMakeFiles/object_tracking.dir/object_tracking.cpp.o"
  "CMakeFiles/object_tracking.dir/object_tracking.cpp.o.d"
  "object_tracking"
  "object_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
