file(REMOVE_RECURSE
  "CMakeFiles/mecsched_metrics.dir/series.cpp.o"
  "CMakeFiles/mecsched_metrics.dir/series.cpp.o.d"
  "libmecsched_metrics.a"
  "libmecsched_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsched_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
