file(REMOVE_RECURSE
  "libmecsched_metrics.a"
)
