# Empty dependencies file for mecsched_metrics.
# This may be replaced when dependencies are built.
