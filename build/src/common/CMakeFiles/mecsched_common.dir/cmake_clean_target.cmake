file(REMOVE_RECURSE
  "libmecsched_common.a"
)
