file(REMOVE_RECURSE
  "CMakeFiles/mecsched_common.dir/csv.cpp.o"
  "CMakeFiles/mecsched_common.dir/csv.cpp.o.d"
  "CMakeFiles/mecsched_common.dir/rng.cpp.o"
  "CMakeFiles/mecsched_common.dir/rng.cpp.o.d"
  "CMakeFiles/mecsched_common.dir/stats.cpp.o"
  "CMakeFiles/mecsched_common.dir/stats.cpp.o.d"
  "CMakeFiles/mecsched_common.dir/table.cpp.o"
  "CMakeFiles/mecsched_common.dir/table.cpp.o.d"
  "libmecsched_common.a"
  "libmecsched_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsched_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
