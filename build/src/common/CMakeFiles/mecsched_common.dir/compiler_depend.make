# Empty compiler generated dependencies file for mecsched_common.
# This may be replaced when dependencies are built.
