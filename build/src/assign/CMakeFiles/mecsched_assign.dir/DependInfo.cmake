
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assign/assignment.cpp" "src/assign/CMakeFiles/mecsched_assign.dir/assignment.cpp.o" "gcc" "src/assign/CMakeFiles/mecsched_assign.dir/assignment.cpp.o.d"
  "/root/repo/src/assign/baselines.cpp" "src/assign/CMakeFiles/mecsched_assign.dir/baselines.cpp.o" "gcc" "src/assign/CMakeFiles/mecsched_assign.dir/baselines.cpp.o.d"
  "/root/repo/src/assign/best_response.cpp" "src/assign/CMakeFiles/mecsched_assign.dir/best_response.cpp.o" "gcc" "src/assign/CMakeFiles/mecsched_assign.dir/best_response.cpp.o.d"
  "/root/repo/src/assign/cluster_lp.cpp" "src/assign/CMakeFiles/mecsched_assign.dir/cluster_lp.cpp.o" "gcc" "src/assign/CMakeFiles/mecsched_assign.dir/cluster_lp.cpp.o.d"
  "/root/repo/src/assign/evaluator.cpp" "src/assign/CMakeFiles/mecsched_assign.dir/evaluator.cpp.o" "gcc" "src/assign/CMakeFiles/mecsched_assign.dir/evaluator.cpp.o.d"
  "/root/repo/src/assign/exact.cpp" "src/assign/CMakeFiles/mecsched_assign.dir/exact.cpp.o" "gcc" "src/assign/CMakeFiles/mecsched_assign.dir/exact.cpp.o.d"
  "/root/repo/src/assign/hgos.cpp" "src/assign/CMakeFiles/mecsched_assign.dir/hgos.cpp.o" "gcc" "src/assign/CMakeFiles/mecsched_assign.dir/hgos.cpp.o.d"
  "/root/repo/src/assign/hta_instance.cpp" "src/assign/CMakeFiles/mecsched_assign.dir/hta_instance.cpp.o" "gcc" "src/assign/CMakeFiles/mecsched_assign.dir/hta_instance.cpp.o.d"
  "/root/repo/src/assign/lp_hta.cpp" "src/assign/CMakeFiles/mecsched_assign.dir/lp_hta.cpp.o" "gcc" "src/assign/CMakeFiles/mecsched_assign.dir/lp_hta.cpp.o.d"
  "/root/repo/src/assign/online.cpp" "src/assign/CMakeFiles/mecsched_assign.dir/online.cpp.o" "gcc" "src/assign/CMakeFiles/mecsched_assign.dir/online.cpp.o.d"
  "/root/repo/src/assign/partial.cpp" "src/assign/CMakeFiles/mecsched_assign.dir/partial.cpp.o" "gcc" "src/assign/CMakeFiles/mecsched_assign.dir/partial.cpp.o.d"
  "/root/repo/src/assign/portfolio.cpp" "src/assign/CMakeFiles/mecsched_assign.dir/portfolio.cpp.o" "gcc" "src/assign/CMakeFiles/mecsched_assign.dir/portfolio.cpp.o.d"
  "/root/repo/src/assign/recovery.cpp" "src/assign/CMakeFiles/mecsched_assign.dir/recovery.cpp.o" "gcc" "src/assign/CMakeFiles/mecsched_assign.dir/recovery.cpp.o.d"
  "/root/repo/src/assign/sensitivity.cpp" "src/assign/CMakeFiles/mecsched_assign.dir/sensitivity.cpp.o" "gcc" "src/assign/CMakeFiles/mecsched_assign.dir/sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mec/CMakeFiles/mecsched_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mecsched_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/mecsched_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mecsched_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
