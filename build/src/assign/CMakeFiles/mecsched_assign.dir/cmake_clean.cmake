file(REMOVE_RECURSE
  "CMakeFiles/mecsched_assign.dir/assignment.cpp.o"
  "CMakeFiles/mecsched_assign.dir/assignment.cpp.o.d"
  "CMakeFiles/mecsched_assign.dir/baselines.cpp.o"
  "CMakeFiles/mecsched_assign.dir/baselines.cpp.o.d"
  "CMakeFiles/mecsched_assign.dir/best_response.cpp.o"
  "CMakeFiles/mecsched_assign.dir/best_response.cpp.o.d"
  "CMakeFiles/mecsched_assign.dir/cluster_lp.cpp.o"
  "CMakeFiles/mecsched_assign.dir/cluster_lp.cpp.o.d"
  "CMakeFiles/mecsched_assign.dir/evaluator.cpp.o"
  "CMakeFiles/mecsched_assign.dir/evaluator.cpp.o.d"
  "CMakeFiles/mecsched_assign.dir/exact.cpp.o"
  "CMakeFiles/mecsched_assign.dir/exact.cpp.o.d"
  "CMakeFiles/mecsched_assign.dir/hgos.cpp.o"
  "CMakeFiles/mecsched_assign.dir/hgos.cpp.o.d"
  "CMakeFiles/mecsched_assign.dir/hta_instance.cpp.o"
  "CMakeFiles/mecsched_assign.dir/hta_instance.cpp.o.d"
  "CMakeFiles/mecsched_assign.dir/lp_hta.cpp.o"
  "CMakeFiles/mecsched_assign.dir/lp_hta.cpp.o.d"
  "CMakeFiles/mecsched_assign.dir/online.cpp.o"
  "CMakeFiles/mecsched_assign.dir/online.cpp.o.d"
  "CMakeFiles/mecsched_assign.dir/partial.cpp.o"
  "CMakeFiles/mecsched_assign.dir/partial.cpp.o.d"
  "CMakeFiles/mecsched_assign.dir/portfolio.cpp.o"
  "CMakeFiles/mecsched_assign.dir/portfolio.cpp.o.d"
  "CMakeFiles/mecsched_assign.dir/recovery.cpp.o"
  "CMakeFiles/mecsched_assign.dir/recovery.cpp.o.d"
  "CMakeFiles/mecsched_assign.dir/sensitivity.cpp.o"
  "CMakeFiles/mecsched_assign.dir/sensitivity.cpp.o.d"
  "libmecsched_assign.a"
  "libmecsched_assign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsched_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
