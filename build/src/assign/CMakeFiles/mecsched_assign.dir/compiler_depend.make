# Empty compiler generated dependencies file for mecsched_assign.
# This may be replaced when dependencies are built.
