file(REMOVE_RECURSE
  "libmecsched_assign.a"
)
