file(REMOVE_RECURSE
  "CMakeFiles/mecsched_workload.dir/arrivals.cpp.o"
  "CMakeFiles/mecsched_workload.dir/arrivals.cpp.o.d"
  "CMakeFiles/mecsched_workload.dir/scenario.cpp.o"
  "CMakeFiles/mecsched_workload.dir/scenario.cpp.o.d"
  "CMakeFiles/mecsched_workload.dir/shared_data.cpp.o"
  "CMakeFiles/mecsched_workload.dir/shared_data.cpp.o.d"
  "CMakeFiles/mecsched_workload.dir/stress.cpp.o"
  "CMakeFiles/mecsched_workload.dir/stress.cpp.o.d"
  "libmecsched_workload.a"
  "libmecsched_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsched_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
