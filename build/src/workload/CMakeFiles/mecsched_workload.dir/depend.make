# Empty dependencies file for mecsched_workload.
# This may be replaced when dependencies are built.
