file(REMOVE_RECURSE
  "libmecsched_workload.a"
)
