file(REMOVE_RECURSE
  "CMakeFiles/mecsched_ilp.dir/branch_bound.cpp.o"
  "CMakeFiles/mecsched_ilp.dir/branch_bound.cpp.o.d"
  "CMakeFiles/mecsched_ilp.dir/knapsack.cpp.o"
  "CMakeFiles/mecsched_ilp.dir/knapsack.cpp.o.d"
  "libmecsched_ilp.a"
  "libmecsched_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsched_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
