file(REMOVE_RECURSE
  "libmecsched_ilp.a"
)
