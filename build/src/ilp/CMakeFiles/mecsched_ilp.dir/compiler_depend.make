# Empty compiler generated dependencies file for mecsched_ilp.
# This may be replaced when dependencies are built.
