file(REMOVE_RECURSE
  "libmecsched_sim.a"
)
