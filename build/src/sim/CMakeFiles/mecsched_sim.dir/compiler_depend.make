# Empty compiler generated dependencies file for mecsched_sim.
# This may be replaced when dependencies are built.
