file(REMOVE_RECURSE
  "CMakeFiles/mecsched_sim.dir/event_queue.cpp.o"
  "CMakeFiles/mecsched_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/mecsched_sim.dir/simulator.cpp.o"
  "CMakeFiles/mecsched_sim.dir/simulator.cpp.o.d"
  "libmecsched_sim.a"
  "libmecsched_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsched_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
