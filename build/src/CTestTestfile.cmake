# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("lp")
subdirs("ilp")
subdirs("mec")
subdirs("workload")
subdirs("assign")
subdirs("dta")
subdirs("sim")
subdirs("metrics")
subdirs("io")
subdirs("cli")
