
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mec/cost_breakdown.cpp" "src/mec/CMakeFiles/mecsched_mec.dir/cost_breakdown.cpp.o" "gcc" "src/mec/CMakeFiles/mecsched_mec.dir/cost_breakdown.cpp.o.d"
  "/root/repo/src/mec/cost_model.cpp" "src/mec/CMakeFiles/mecsched_mec.dir/cost_model.cpp.o" "gcc" "src/mec/CMakeFiles/mecsched_mec.dir/cost_model.cpp.o.d"
  "/root/repo/src/mec/radio.cpp" "src/mec/CMakeFiles/mecsched_mec.dir/radio.cpp.o" "gcc" "src/mec/CMakeFiles/mecsched_mec.dir/radio.cpp.o.d"
  "/root/repo/src/mec/task.cpp" "src/mec/CMakeFiles/mecsched_mec.dir/task.cpp.o" "gcc" "src/mec/CMakeFiles/mecsched_mec.dir/task.cpp.o.d"
  "/root/repo/src/mec/topology.cpp" "src/mec/CMakeFiles/mecsched_mec.dir/topology.cpp.o" "gcc" "src/mec/CMakeFiles/mecsched_mec.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecsched_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
