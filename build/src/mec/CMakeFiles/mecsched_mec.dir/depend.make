# Empty dependencies file for mecsched_mec.
# This may be replaced when dependencies are built.
