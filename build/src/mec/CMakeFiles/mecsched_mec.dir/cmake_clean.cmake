file(REMOVE_RECURSE
  "CMakeFiles/mecsched_mec.dir/cost_breakdown.cpp.o"
  "CMakeFiles/mecsched_mec.dir/cost_breakdown.cpp.o.d"
  "CMakeFiles/mecsched_mec.dir/cost_model.cpp.o"
  "CMakeFiles/mecsched_mec.dir/cost_model.cpp.o.d"
  "CMakeFiles/mecsched_mec.dir/radio.cpp.o"
  "CMakeFiles/mecsched_mec.dir/radio.cpp.o.d"
  "CMakeFiles/mecsched_mec.dir/task.cpp.o"
  "CMakeFiles/mecsched_mec.dir/task.cpp.o.d"
  "CMakeFiles/mecsched_mec.dir/topology.cpp.o"
  "CMakeFiles/mecsched_mec.dir/topology.cpp.o.d"
  "libmecsched_mec.a"
  "libmecsched_mec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsched_mec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
