file(REMOVE_RECURSE
  "libmecsched_mec.a"
)
