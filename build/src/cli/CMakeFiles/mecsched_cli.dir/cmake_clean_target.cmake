file(REMOVE_RECURSE
  "libmecsched_cli.a"
)
