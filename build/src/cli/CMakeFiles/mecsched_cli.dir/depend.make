# Empty dependencies file for mecsched_cli.
# This may be replaced when dependencies are built.
