file(REMOVE_RECURSE
  "CMakeFiles/mecsched_cli.dir/args.cpp.o"
  "CMakeFiles/mecsched_cli.dir/args.cpp.o.d"
  "CMakeFiles/mecsched_cli.dir/commands.cpp.o"
  "CMakeFiles/mecsched_cli.dir/commands.cpp.o.d"
  "libmecsched_cli.a"
  "libmecsched_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsched_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
