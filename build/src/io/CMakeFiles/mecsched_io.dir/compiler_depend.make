# Empty compiler generated dependencies file for mecsched_io.
# This may be replaced when dependencies are built.
