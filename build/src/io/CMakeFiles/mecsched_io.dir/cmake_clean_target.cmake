file(REMOVE_RECURSE
  "libmecsched_io.a"
)
