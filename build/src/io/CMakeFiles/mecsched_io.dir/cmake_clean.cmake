file(REMOVE_RECURSE
  "CMakeFiles/mecsched_io.dir/codec.cpp.o"
  "CMakeFiles/mecsched_io.dir/codec.cpp.o.d"
  "CMakeFiles/mecsched_io.dir/json.cpp.o"
  "CMakeFiles/mecsched_io.dir/json.cpp.o.d"
  "CMakeFiles/mecsched_io.dir/shared_codec.cpp.o"
  "CMakeFiles/mecsched_io.dir/shared_codec.cpp.o.d"
  "CMakeFiles/mecsched_io.dir/trace_codec.cpp.o"
  "CMakeFiles/mecsched_io.dir/trace_codec.cpp.o.d"
  "libmecsched_io.a"
  "libmecsched_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsched_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
