file(REMOVE_RECURSE
  "libmecsched_dta.a"
)
