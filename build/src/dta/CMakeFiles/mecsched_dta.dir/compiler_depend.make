# Empty compiler generated dependencies file for mecsched_dta.
# This may be replaced when dependencies are built.
