
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dta/coverage.cpp" "src/dta/CMakeFiles/mecsched_dta.dir/coverage.cpp.o" "gcc" "src/dta/CMakeFiles/mecsched_dta.dir/coverage.cpp.o.d"
  "/root/repo/src/dta/data_model.cpp" "src/dta/CMakeFiles/mecsched_dta.dir/data_model.cpp.o" "gcc" "src/dta/CMakeFiles/mecsched_dta.dir/data_model.cpp.o.d"
  "/root/repo/src/dta/pipeline.cpp" "src/dta/CMakeFiles/mecsched_dta.dir/pipeline.cpp.o" "gcc" "src/dta/CMakeFiles/mecsched_dta.dir/pipeline.cpp.o.d"
  "/root/repo/src/dta/set_cover.cpp" "src/dta/CMakeFiles/mecsched_dta.dir/set_cover.cpp.o" "gcc" "src/dta/CMakeFiles/mecsched_dta.dir/set_cover.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/assign/CMakeFiles/mecsched_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/mec/CMakeFiles/mecsched_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/mecsched_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mecsched_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mecsched_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
