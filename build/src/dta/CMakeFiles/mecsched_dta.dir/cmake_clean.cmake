file(REMOVE_RECURSE
  "CMakeFiles/mecsched_dta.dir/coverage.cpp.o"
  "CMakeFiles/mecsched_dta.dir/coverage.cpp.o.d"
  "CMakeFiles/mecsched_dta.dir/data_model.cpp.o"
  "CMakeFiles/mecsched_dta.dir/data_model.cpp.o.d"
  "CMakeFiles/mecsched_dta.dir/pipeline.cpp.o"
  "CMakeFiles/mecsched_dta.dir/pipeline.cpp.o.d"
  "CMakeFiles/mecsched_dta.dir/set_cover.cpp.o"
  "CMakeFiles/mecsched_dta.dir/set_cover.cpp.o.d"
  "libmecsched_dta.a"
  "libmecsched_dta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsched_dta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
