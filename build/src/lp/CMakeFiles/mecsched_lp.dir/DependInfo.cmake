
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lp/cholesky.cpp" "src/lp/CMakeFiles/mecsched_lp.dir/cholesky.cpp.o" "gcc" "src/lp/CMakeFiles/mecsched_lp.dir/cholesky.cpp.o.d"
  "/root/repo/src/lp/interior_point.cpp" "src/lp/CMakeFiles/mecsched_lp.dir/interior_point.cpp.o" "gcc" "src/lp/CMakeFiles/mecsched_lp.dir/interior_point.cpp.o.d"
  "/root/repo/src/lp/matrix.cpp" "src/lp/CMakeFiles/mecsched_lp.dir/matrix.cpp.o" "gcc" "src/lp/CMakeFiles/mecsched_lp.dir/matrix.cpp.o.d"
  "/root/repo/src/lp/presolve.cpp" "src/lp/CMakeFiles/mecsched_lp.dir/presolve.cpp.o" "gcc" "src/lp/CMakeFiles/mecsched_lp.dir/presolve.cpp.o.d"
  "/root/repo/src/lp/problem.cpp" "src/lp/CMakeFiles/mecsched_lp.dir/problem.cpp.o" "gcc" "src/lp/CMakeFiles/mecsched_lp.dir/problem.cpp.o.d"
  "/root/repo/src/lp/scaling.cpp" "src/lp/CMakeFiles/mecsched_lp.dir/scaling.cpp.o" "gcc" "src/lp/CMakeFiles/mecsched_lp.dir/scaling.cpp.o.d"
  "/root/repo/src/lp/simplex.cpp" "src/lp/CMakeFiles/mecsched_lp.dir/simplex.cpp.o" "gcc" "src/lp/CMakeFiles/mecsched_lp.dir/simplex.cpp.o.d"
  "/root/repo/src/lp/solution.cpp" "src/lp/CMakeFiles/mecsched_lp.dir/solution.cpp.o" "gcc" "src/lp/CMakeFiles/mecsched_lp.dir/solution.cpp.o.d"
  "/root/repo/src/lp/standard_form.cpp" "src/lp/CMakeFiles/mecsched_lp.dir/standard_form.cpp.o" "gcc" "src/lp/CMakeFiles/mecsched_lp.dir/standard_form.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecsched_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
