file(REMOVE_RECURSE
  "libmecsched_lp.a"
)
