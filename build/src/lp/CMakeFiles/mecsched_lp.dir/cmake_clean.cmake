file(REMOVE_RECURSE
  "CMakeFiles/mecsched_lp.dir/cholesky.cpp.o"
  "CMakeFiles/mecsched_lp.dir/cholesky.cpp.o.d"
  "CMakeFiles/mecsched_lp.dir/interior_point.cpp.o"
  "CMakeFiles/mecsched_lp.dir/interior_point.cpp.o.d"
  "CMakeFiles/mecsched_lp.dir/matrix.cpp.o"
  "CMakeFiles/mecsched_lp.dir/matrix.cpp.o.d"
  "CMakeFiles/mecsched_lp.dir/presolve.cpp.o"
  "CMakeFiles/mecsched_lp.dir/presolve.cpp.o.d"
  "CMakeFiles/mecsched_lp.dir/problem.cpp.o"
  "CMakeFiles/mecsched_lp.dir/problem.cpp.o.d"
  "CMakeFiles/mecsched_lp.dir/scaling.cpp.o"
  "CMakeFiles/mecsched_lp.dir/scaling.cpp.o.d"
  "CMakeFiles/mecsched_lp.dir/simplex.cpp.o"
  "CMakeFiles/mecsched_lp.dir/simplex.cpp.o.d"
  "CMakeFiles/mecsched_lp.dir/solution.cpp.o"
  "CMakeFiles/mecsched_lp.dir/solution.cpp.o.d"
  "CMakeFiles/mecsched_lp.dir/standard_form.cpp.o"
  "CMakeFiles/mecsched_lp.dir/standard_form.cpp.o.d"
  "libmecsched_lp.a"
  "libmecsched_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsched_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
