# Empty dependencies file for mecsched_lp.
# This may be replaced when dependencies are built.
