# Empty compiler generated dependencies file for fig2a_energy_vs_tasks.
# This may be replaced when dependencies are built.
