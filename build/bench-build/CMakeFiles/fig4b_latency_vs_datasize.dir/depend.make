# Empty dependencies file for fig4b_latency_vs_datasize.
# This may be replaced when dependencies are built.
