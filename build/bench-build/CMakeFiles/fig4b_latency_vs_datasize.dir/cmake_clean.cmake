file(REMOVE_RECURSE
  "../bench/fig4b_latency_vs_datasize"
  "../bench/fig4b_latency_vs_datasize.pdb"
  "CMakeFiles/fig4b_latency_vs_datasize.dir/fig4b_latency_vs_datasize.cpp.o"
  "CMakeFiles/fig4b_latency_vs_datasize.dir/fig4b_latency_vs_datasize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_latency_vs_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
