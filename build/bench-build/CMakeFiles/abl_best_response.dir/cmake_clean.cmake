file(REMOVE_RECURSE
  "../bench/abl_best_response"
  "../bench/abl_best_response.pdb"
  "CMakeFiles/abl_best_response.dir/abl_best_response.cpp.o"
  "CMakeFiles/abl_best_response.dir/abl_best_response.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_best_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
