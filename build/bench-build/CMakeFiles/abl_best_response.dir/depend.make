# Empty dependencies file for abl_best_response.
# This may be replaced when dependencies are built.
