file(REMOVE_RECURSE
  "../bench/fig4a_latency_vs_tasks"
  "../bench/fig4a_latency_vs_tasks.pdb"
  "CMakeFiles/fig4a_latency_vs_tasks.dir/fig4a_latency_vs_tasks.cpp.o"
  "CMakeFiles/fig4a_latency_vs_tasks.dir/fig4a_latency_vs_tasks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_latency_vs_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
