# Empty compiler generated dependencies file for fig5b_dta_energy_vs_result_size.
# This may be replaced when dependencies are built.
