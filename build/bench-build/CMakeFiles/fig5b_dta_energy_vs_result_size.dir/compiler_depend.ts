# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig5b_dta_energy_vs_result_size.
