file(REMOVE_RECURSE
  "../bench/fig5b_dta_energy_vs_result_size"
  "../bench/fig5b_dta_energy_vs_result_size.pdb"
  "CMakeFiles/fig5b_dta_energy_vs_result_size.dir/fig5b_dta_energy_vs_result_size.cpp.o"
  "CMakeFiles/fig5b_dta_energy_vs_result_size.dir/fig5b_dta_energy_vs_result_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_dta_energy_vs_result_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
