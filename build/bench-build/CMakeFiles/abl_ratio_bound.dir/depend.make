# Empty dependencies file for abl_ratio_bound.
# This may be replaced when dependencies are built.
