file(REMOVE_RECURSE
  "../bench/abl_ratio_bound"
  "../bench/abl_ratio_bound.pdb"
  "CMakeFiles/abl_ratio_bound.dir/abl_ratio_bound.cpp.o"
  "CMakeFiles/abl_ratio_bound.dir/abl_ratio_bound.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ratio_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
