# Empty dependencies file for abl_partial_offloading.
# This may be replaced when dependencies are built.
