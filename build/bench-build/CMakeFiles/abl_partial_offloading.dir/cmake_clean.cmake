file(REMOVE_RECURSE
  "../bench/abl_partial_offloading"
  "../bench/abl_partial_offloading.pdb"
  "CMakeFiles/abl_partial_offloading.dir/abl_partial_offloading.cpp.o"
  "CMakeFiles/abl_partial_offloading.dir/abl_partial_offloading.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_partial_offloading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
