# Empty compiler generated dependencies file for fig2b_energy_vs_datasize.
# This may be replaced when dependencies are built.
