file(REMOVE_RECURSE
  "../bench/fig2b_energy_vs_datasize"
  "../bench/fig2b_energy_vs_datasize.pdb"
  "CMakeFiles/fig2b_energy_vs_datasize.dir/fig2b_energy_vs_datasize.cpp.o"
  "CMakeFiles/fig2b_energy_vs_datasize.dir/fig2b_energy_vs_datasize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_energy_vs_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
