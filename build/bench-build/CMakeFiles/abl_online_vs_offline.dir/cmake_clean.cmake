file(REMOVE_RECURSE
  "../bench/abl_online_vs_offline"
  "../bench/abl_online_vs_offline.pdb"
  "CMakeFiles/abl_online_vs_offline.dir/abl_online_vs_offline.cpp.o"
  "CMakeFiles/abl_online_vs_offline.dir/abl_online_vs_offline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_online_vs_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
