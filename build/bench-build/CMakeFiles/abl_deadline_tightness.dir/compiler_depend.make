# Empty compiler generated dependencies file for abl_deadline_tightness.
# This may be replaced when dependencies are built.
