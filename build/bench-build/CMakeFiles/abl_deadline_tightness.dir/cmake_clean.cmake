file(REMOVE_RECURSE
  "../bench/abl_deadline_tightness"
  "../bench/abl_deadline_tightness.pdb"
  "CMakeFiles/abl_deadline_tightness.dir/abl_deadline_tightness.cpp.o"
  "CMakeFiles/abl_deadline_tightness.dir/abl_deadline_tightness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_deadline_tightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
