# Empty compiler generated dependencies file for abl_failure_recovery.
# This may be replaced when dependencies are built.
