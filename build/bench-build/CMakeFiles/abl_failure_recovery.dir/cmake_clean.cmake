file(REMOVE_RECURSE
  "../bench/abl_failure_recovery"
  "../bench/abl_failure_recovery.pdb"
  "CMakeFiles/abl_failure_recovery.dir/abl_failure_recovery.cpp.o"
  "CMakeFiles/abl_failure_recovery.dir/abl_failure_recovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_failure_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
