file(REMOVE_RECURSE
  "../bench/fig5a_dta_energy_vs_tasks"
  "../bench/fig5a_dta_energy_vs_tasks.pdb"
  "CMakeFiles/fig5a_dta_energy_vs_tasks.dir/fig5a_dta_energy_vs_tasks.cpp.o"
  "CMakeFiles/fig5a_dta_energy_vs_tasks.dir/fig5a_dta_energy_vs_tasks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_dta_energy_vs_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
