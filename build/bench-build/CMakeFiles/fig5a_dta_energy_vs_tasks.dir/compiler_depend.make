# Empty compiler generated dependencies file for fig5a_dta_energy_vs_tasks.
# This may be replaced when dependencies are built.
