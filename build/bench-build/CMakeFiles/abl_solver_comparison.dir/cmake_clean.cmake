file(REMOVE_RECURSE
  "../bench/abl_solver_comparison"
  "../bench/abl_solver_comparison.pdb"
  "CMakeFiles/abl_solver_comparison.dir/abl_solver_comparison.cpp.o"
  "CMakeFiles/abl_solver_comparison.dir/abl_solver_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_solver_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
