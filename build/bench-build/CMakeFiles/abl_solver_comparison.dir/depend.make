# Empty dependencies file for abl_solver_comparison.
# This may be replaced when dependencies are built.
