file(REMOVE_RECURSE
  "../bench/fig6b_dta_involved_devices"
  "../bench/fig6b_dta_involved_devices.pdb"
  "CMakeFiles/fig6b_dta_involved_devices.dir/fig6b_dta_involved_devices.cpp.o"
  "CMakeFiles/fig6b_dta_involved_devices.dir/fig6b_dta_involved_devices.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_dta_involved_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
