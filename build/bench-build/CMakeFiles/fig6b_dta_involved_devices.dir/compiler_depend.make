# Empty compiler generated dependencies file for fig6b_dta_involved_devices.
# This may be replaced when dependencies are built.
