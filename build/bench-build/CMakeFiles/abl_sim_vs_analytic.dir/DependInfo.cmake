
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_sim_vs_analytic.cpp" "bench-build/CMakeFiles/abl_sim_vs_analytic.dir/abl_sim_vs_analytic.cpp.o" "gcc" "bench-build/CMakeFiles/abl_sim_vs_analytic.dir/abl_sim_vs_analytic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/assign/CMakeFiles/mecsched_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/dta/CMakeFiles/mecsched_dta.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mecsched_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mecsched_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mecsched_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/mecsched_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mecsched_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/mec/CMakeFiles/mecsched_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mecsched_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
