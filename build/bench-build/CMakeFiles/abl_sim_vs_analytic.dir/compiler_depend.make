# Empty compiler generated dependencies file for abl_sim_vs_analytic.
# This may be replaced when dependencies are built.
