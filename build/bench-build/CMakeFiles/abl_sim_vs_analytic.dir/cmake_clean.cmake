file(REMOVE_RECURSE
  "../bench/abl_sim_vs_analytic"
  "../bench/abl_sim_vs_analytic.pdb"
  "CMakeFiles/abl_sim_vs_analytic.dir/abl_sim_vs_analytic.cpp.o"
  "CMakeFiles/abl_sim_vs_analytic.dir/abl_sim_vs_analytic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sim_vs_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
