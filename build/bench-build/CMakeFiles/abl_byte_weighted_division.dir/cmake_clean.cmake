file(REMOVE_RECURSE
  "../bench/abl_byte_weighted_division"
  "../bench/abl_byte_weighted_division.pdb"
  "CMakeFiles/abl_byte_weighted_division.dir/abl_byte_weighted_division.cpp.o"
  "CMakeFiles/abl_byte_weighted_division.dir/abl_byte_weighted_division.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_byte_weighted_division.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
