# Empty dependencies file for abl_byte_weighted_division.
# This may be replaced when dependencies are built.
