file(REMOVE_RECURSE
  "../bench/fig3_unsatisfied_rate"
  "../bench/fig3_unsatisfied_rate.pdb"
  "CMakeFiles/fig3_unsatisfied_rate.dir/fig3_unsatisfied_rate.cpp.o"
  "CMakeFiles/fig3_unsatisfied_rate.dir/fig3_unsatisfied_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_unsatisfied_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
