# Empty dependencies file for fig3_unsatisfied_rate.
# This may be replaced when dependencies are built.
