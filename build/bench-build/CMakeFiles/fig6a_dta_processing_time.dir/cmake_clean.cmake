file(REMOVE_RECURSE
  "../bench/fig6a_dta_processing_time"
  "../bench/fig6a_dta_processing_time.pdb"
  "CMakeFiles/fig6a_dta_processing_time.dir/fig6a_dta_processing_time.cpp.o"
  "CMakeFiles/fig6a_dta_processing_time.dir/fig6a_dta_processing_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_dta_processing_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
