# Empty dependencies file for fig6a_dta_processing_time.
# This may be replaced when dependencies are built.
