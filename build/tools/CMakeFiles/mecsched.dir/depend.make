# Empty dependencies file for mecsched.
# This may be replaced when dependencies are built.
