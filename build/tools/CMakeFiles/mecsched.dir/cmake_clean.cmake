file(REMOVE_RECURSE
  "CMakeFiles/mecsched.dir/mecsched.cpp.o"
  "CMakeFiles/mecsched.dir/mecsched.cpp.o.d"
  "mecsched"
  "mecsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
