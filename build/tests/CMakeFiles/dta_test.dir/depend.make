# Empty dependencies file for dta_test.
# This may be replaced when dependencies are built.
