file(REMOVE_RECURSE
  "CMakeFiles/mec_test.dir/mec/cost_breakdown_test.cpp.o"
  "CMakeFiles/mec_test.dir/mec/cost_breakdown_test.cpp.o.d"
  "CMakeFiles/mec_test.dir/mec/cost_model_test.cpp.o"
  "CMakeFiles/mec_test.dir/mec/cost_model_test.cpp.o.d"
  "CMakeFiles/mec_test.dir/mec/cost_properties_test.cpp.o"
  "CMakeFiles/mec_test.dir/mec/cost_properties_test.cpp.o.d"
  "CMakeFiles/mec_test.dir/mec/radio_test.cpp.o"
  "CMakeFiles/mec_test.dir/mec/radio_test.cpp.o.d"
  "CMakeFiles/mec_test.dir/mec/task_test.cpp.o"
  "CMakeFiles/mec_test.dir/mec/task_test.cpp.o.d"
  "CMakeFiles/mec_test.dir/mec/topology_test.cpp.o"
  "CMakeFiles/mec_test.dir/mec/topology_test.cpp.o.d"
  "mec_test"
  "mec_test.pdb"
  "mec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
