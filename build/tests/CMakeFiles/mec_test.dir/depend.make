# Empty dependencies file for mec_test.
# This may be replaced when dependencies are built.
