
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mec/cost_breakdown_test.cpp" "tests/CMakeFiles/mec_test.dir/mec/cost_breakdown_test.cpp.o" "gcc" "tests/CMakeFiles/mec_test.dir/mec/cost_breakdown_test.cpp.o.d"
  "/root/repo/tests/mec/cost_model_test.cpp" "tests/CMakeFiles/mec_test.dir/mec/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/mec_test.dir/mec/cost_model_test.cpp.o.d"
  "/root/repo/tests/mec/cost_properties_test.cpp" "tests/CMakeFiles/mec_test.dir/mec/cost_properties_test.cpp.o" "gcc" "tests/CMakeFiles/mec_test.dir/mec/cost_properties_test.cpp.o.d"
  "/root/repo/tests/mec/radio_test.cpp" "tests/CMakeFiles/mec_test.dir/mec/radio_test.cpp.o" "gcc" "tests/CMakeFiles/mec_test.dir/mec/radio_test.cpp.o.d"
  "/root/repo/tests/mec/task_test.cpp" "tests/CMakeFiles/mec_test.dir/mec/task_test.cpp.o" "gcc" "tests/CMakeFiles/mec_test.dir/mec/task_test.cpp.o.d"
  "/root/repo/tests/mec/topology_test.cpp" "tests/CMakeFiles/mec_test.dir/mec/topology_test.cpp.o" "gcc" "tests/CMakeFiles/mec_test.dir/mec/topology_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mec/CMakeFiles/mecsched_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mecsched_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
