file(REMOVE_RECURSE
  "CMakeFiles/assign_test.dir/assign/baselines_test.cpp.o"
  "CMakeFiles/assign_test.dir/assign/baselines_test.cpp.o.d"
  "CMakeFiles/assign_test.dir/assign/best_response_test.cpp.o"
  "CMakeFiles/assign_test.dir/assign/best_response_test.cpp.o.d"
  "CMakeFiles/assign_test.dir/assign/evaluator_test.cpp.o"
  "CMakeFiles/assign_test.dir/assign/evaluator_test.cpp.o.d"
  "CMakeFiles/assign_test.dir/assign/exact_test.cpp.o"
  "CMakeFiles/assign_test.dir/assign/exact_test.cpp.o.d"
  "CMakeFiles/assign_test.dir/assign/hgos_test.cpp.o"
  "CMakeFiles/assign_test.dir/assign/hgos_test.cpp.o.d"
  "CMakeFiles/assign_test.dir/assign/lp_hta_hygiene_test.cpp.o"
  "CMakeFiles/assign_test.dir/assign/lp_hta_hygiene_test.cpp.o.d"
  "CMakeFiles/assign_test.dir/assign/lp_hta_test.cpp.o"
  "CMakeFiles/assign_test.dir/assign/lp_hta_test.cpp.o.d"
  "CMakeFiles/assign_test.dir/assign/online_test.cpp.o"
  "CMakeFiles/assign_test.dir/assign/online_test.cpp.o.d"
  "CMakeFiles/assign_test.dir/assign/parallel_test.cpp.o"
  "CMakeFiles/assign_test.dir/assign/parallel_test.cpp.o.d"
  "CMakeFiles/assign_test.dir/assign/partial_test.cpp.o"
  "CMakeFiles/assign_test.dir/assign/partial_test.cpp.o.d"
  "CMakeFiles/assign_test.dir/assign/portfolio_test.cpp.o"
  "CMakeFiles/assign_test.dir/assign/portfolio_test.cpp.o.d"
  "CMakeFiles/assign_test.dir/assign/sensitivity_test.cpp.o"
  "CMakeFiles/assign_test.dir/assign/sensitivity_test.cpp.o.d"
  "assign_test"
  "assign_test.pdb"
  "assign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
