
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/assign/baselines_test.cpp" "tests/CMakeFiles/assign_test.dir/assign/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/assign_test.dir/assign/baselines_test.cpp.o.d"
  "/root/repo/tests/assign/best_response_test.cpp" "tests/CMakeFiles/assign_test.dir/assign/best_response_test.cpp.o" "gcc" "tests/CMakeFiles/assign_test.dir/assign/best_response_test.cpp.o.d"
  "/root/repo/tests/assign/evaluator_test.cpp" "tests/CMakeFiles/assign_test.dir/assign/evaluator_test.cpp.o" "gcc" "tests/CMakeFiles/assign_test.dir/assign/evaluator_test.cpp.o.d"
  "/root/repo/tests/assign/exact_test.cpp" "tests/CMakeFiles/assign_test.dir/assign/exact_test.cpp.o" "gcc" "tests/CMakeFiles/assign_test.dir/assign/exact_test.cpp.o.d"
  "/root/repo/tests/assign/hgos_test.cpp" "tests/CMakeFiles/assign_test.dir/assign/hgos_test.cpp.o" "gcc" "tests/CMakeFiles/assign_test.dir/assign/hgos_test.cpp.o.d"
  "/root/repo/tests/assign/lp_hta_hygiene_test.cpp" "tests/CMakeFiles/assign_test.dir/assign/lp_hta_hygiene_test.cpp.o" "gcc" "tests/CMakeFiles/assign_test.dir/assign/lp_hta_hygiene_test.cpp.o.d"
  "/root/repo/tests/assign/lp_hta_test.cpp" "tests/CMakeFiles/assign_test.dir/assign/lp_hta_test.cpp.o" "gcc" "tests/CMakeFiles/assign_test.dir/assign/lp_hta_test.cpp.o.d"
  "/root/repo/tests/assign/online_test.cpp" "tests/CMakeFiles/assign_test.dir/assign/online_test.cpp.o" "gcc" "tests/CMakeFiles/assign_test.dir/assign/online_test.cpp.o.d"
  "/root/repo/tests/assign/parallel_test.cpp" "tests/CMakeFiles/assign_test.dir/assign/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/assign_test.dir/assign/parallel_test.cpp.o.d"
  "/root/repo/tests/assign/partial_test.cpp" "tests/CMakeFiles/assign_test.dir/assign/partial_test.cpp.o" "gcc" "tests/CMakeFiles/assign_test.dir/assign/partial_test.cpp.o.d"
  "/root/repo/tests/assign/portfolio_test.cpp" "tests/CMakeFiles/assign_test.dir/assign/portfolio_test.cpp.o" "gcc" "tests/CMakeFiles/assign_test.dir/assign/portfolio_test.cpp.o.d"
  "/root/repo/tests/assign/sensitivity_test.cpp" "tests/CMakeFiles/assign_test.dir/assign/sensitivity_test.cpp.o" "gcc" "tests/CMakeFiles/assign_test.dir/assign/sensitivity_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/assign/CMakeFiles/mecsched_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mecsched_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mecsched_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dta/CMakeFiles/mecsched_dta.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/mecsched_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mecsched_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/mec/CMakeFiles/mecsched_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mecsched_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
