file(REMOVE_RECURSE
  "CMakeFiles/lp_test.dir/lp/cholesky_test.cpp.o"
  "CMakeFiles/lp_test.dir/lp/cholesky_test.cpp.o.d"
  "CMakeFiles/lp_test.dir/lp/cross_check_test.cpp.o"
  "CMakeFiles/lp_test.dir/lp/cross_check_test.cpp.o.d"
  "CMakeFiles/lp_test.dir/lp/devex_test.cpp.o"
  "CMakeFiles/lp_test.dir/lp/devex_test.cpp.o.d"
  "CMakeFiles/lp_test.dir/lp/duality_test.cpp.o"
  "CMakeFiles/lp_test.dir/lp/duality_test.cpp.o.d"
  "CMakeFiles/lp_test.dir/lp/interior_point_test.cpp.o"
  "CMakeFiles/lp_test.dir/lp/interior_point_test.cpp.o.d"
  "CMakeFiles/lp_test.dir/lp/matrix_test.cpp.o"
  "CMakeFiles/lp_test.dir/lp/matrix_test.cpp.o.d"
  "CMakeFiles/lp_test.dir/lp/presolve_test.cpp.o"
  "CMakeFiles/lp_test.dir/lp/presolve_test.cpp.o.d"
  "CMakeFiles/lp_test.dir/lp/problem_test.cpp.o"
  "CMakeFiles/lp_test.dir/lp/problem_test.cpp.o.d"
  "CMakeFiles/lp_test.dir/lp/scaling_test.cpp.o"
  "CMakeFiles/lp_test.dir/lp/scaling_test.cpp.o.d"
  "CMakeFiles/lp_test.dir/lp/simplex_options_test.cpp.o"
  "CMakeFiles/lp_test.dir/lp/simplex_options_test.cpp.o.d"
  "CMakeFiles/lp_test.dir/lp/simplex_test.cpp.o"
  "CMakeFiles/lp_test.dir/lp/simplex_test.cpp.o.d"
  "lp_test"
  "lp_test.pdb"
  "lp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
