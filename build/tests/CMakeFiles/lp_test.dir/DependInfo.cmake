
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lp/cholesky_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/cholesky_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/cholesky_test.cpp.o.d"
  "/root/repo/tests/lp/cross_check_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/cross_check_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/cross_check_test.cpp.o.d"
  "/root/repo/tests/lp/devex_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/devex_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/devex_test.cpp.o.d"
  "/root/repo/tests/lp/duality_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/duality_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/duality_test.cpp.o.d"
  "/root/repo/tests/lp/interior_point_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/interior_point_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/interior_point_test.cpp.o.d"
  "/root/repo/tests/lp/matrix_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/matrix_test.cpp.o.d"
  "/root/repo/tests/lp/presolve_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/presolve_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/presolve_test.cpp.o.d"
  "/root/repo/tests/lp/problem_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/problem_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/problem_test.cpp.o.d"
  "/root/repo/tests/lp/scaling_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/scaling_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/scaling_test.cpp.o.d"
  "/root/repo/tests/lp/simplex_options_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/simplex_options_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/simplex_options_test.cpp.o.d"
  "/root/repo/tests/lp/simplex_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/simplex_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/simplex_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lp/CMakeFiles/mecsched_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mecsched_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
