// Optimality certificate for LP solutions (audit/audit.h for the level
// machinery; compiled into mecsched_lp so both solvers can self-check).
//
// Every kOptimal Solution claims a primal-dual pair. Checking the claim
// needs no solver internals — only the Problem and the reported (x, y):
//
//   cheap  primal feasibility   max constraint/bound violation ~ 0
//          objective integrity  solution.objective == c'x
//   full   dual sign feasibility  y <= 0 on "<=" rows, y >= 0 on ">=" rows
//          weak-duality gap       dual objective b'y + Σ_j z_j·bound_j
//                                 (z_j = c_j - y'a_j priced at the bound
//                                 its sign selects) matches the primal
//                                 objective — this aggregates complementary
//                                 slackness, so a stale basis, a wrong dual
//                                 or an early exit all surface as a gap
//          vertex cardinality     simplex (cold or warm-started) returns a
//                                 basic solution: at most m variables sit
//                                 strictly between their bounds. A corrupt
//                                 warm-start basis that "solved" without
//                                 reaching a vertex fails here.
//
// Tolerances are relative to the magnitudes involved (rhs scale for
// feasibility, objective scale for the gap); defaults comfortably above
// the solvers' termination tolerances (1e-9 simplex, 1e-8 IPM) so a
// healthy solve never trips while a genuinely wrong answer does.
#pragma once

#include <string_view>

#include "lp/problem.h"
#include "lp/solution.h"

namespace mecsched::audit {

struct LpCertificateOptions {
  double feasibility_tolerance = 1e-6;  // × (1 + max |rhs|, bound scale)
  double gap_tolerance = 1e-6;          // × (1 + |primal| + |dual|)
  // Whether the engine promises a vertex (basic) solution.
  bool vertex_expected = false;
};

// Audits `solution` against `problem` at the current audit level; no-op
// unless the solution status is kOptimal. `engine` tags error messages and
// counters ("simplex", "ipm"). Throws AuditError on a failed certificate.
void check_lp(const lp::Problem& problem, const lp::Solution& solution,
              std::string_view engine, LpCertificateOptions options = {});

}  // namespace mecsched::audit
