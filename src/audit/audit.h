// Runtime solver-certificate auditing (docs/static-analysis.md).
//
// Every solver layer re-checks its own answers against the model it claims
// to have optimized: LP solutions against primal/dual feasibility and the
// duality gap (audit/lp_certificate.h), task assignments against the
// Sec. II deadline/capacity constraints (audit/assignment_audit.h), and
// DTA divisions against the exactly-once coverage contract
// (audit/division_audit.h). A failed check throws AuditError — a
// std::logic_error, deliberately *not* a SolverError, so the fallback and
// portfolio paths that retry solver failures never swallow a certificate
// violation.
//
// The checks are always compiled; the *level* decides what runs:
//   kOff   — every hook reduces to one relaxed atomic load,
//   kCheap — O(model) re-derivations: primal feasibility and objective
//            consistency of LP solutions, deadline/capacity constraints of
//            assignments, exactly-once coverage of DTA divisions,
//   kFull  — adds the dual certificate (sign feasibility + weak-duality
//            gap + vertex cardinality for simplex solutions) and
//            re-derivation of cached per-task costs from the mec model.
//
// The default level is baked in by the MECSCHED_AUDIT build knob
// (MECSCHED_AUDIT_DEFAULT, cheap in Debug builds, off otherwise) and can
// be overridden at runtime by the MECSCHED_AUDIT environment variable or
// the CLI's global --audit flag. Audit activity lands in the obs registry
// as audit.<component>.checks / audit.<component>.violations.
//
// This header is dependency-light (common + obs only): the per-layer
// checkers declared in the sibling headers compile into their subject
// libraries (lp, assign, dta) so the solvers can call them without a
// dependency cycle.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace mecsched::audit {

enum class Level : int { kOff = 0, kCheap = 1, kFull = 2 };

std::string to_string(Level level);

// Parses "off" | "cheap" | "full" (throws ModelError otherwise).
Level parse_level(const std::string& text);

// The build default (MECSCHED_AUDIT_DEFAULT) possibly overridden by the
// MECSCHED_AUDIT environment variable, read once at first use.
Level default_level();

// Current process-wide level. Starts at default_level().
Level level();
void set_level(Level l);

// True when checks of severity `need` should run now.
inline bool enabled(Level need) {
  return static_cast<int>(level()) >= static_cast<int>(need);
}

// RAII level override for tests and scoped deep checks.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level l) : previous_(level()) { set_level(l); }
  ~ScopedLevel() { set_level(previous_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  Level previous_;
};

// A violated certificate. `component` names the auditor ("lp", "assign",
// "dta"), `constraint` the specific violated rule in a stable
// machine-greppable form (e.g. "primal:row=3", "C1:deadline:task=7",
// "coverage:duplicate:item=2"), and `violation` the slack by which the
// constraint was missed (0 when not meaningful).
class AuditError : public std::logic_error {
 public:
  AuditError(std::string component, std::string constraint, double violation,
             const std::string& what);

  const std::string& component() const { return component_; }
  const std::string& constraint() const { return constraint_; }
  double violation() const { return violation_; }

 private:
  std::string component_;
  std::string constraint_;
  double violation_;
};

// Bumps audit.<component>.checks — call once per audited artifact.
void count_check(std::string_view component);

// Bumps audit.<component>.violations and throws AuditError.
[[noreturn]] void fail(std::string_view component, std::string constraint,
                       double violation, const std::string& message);

}  // namespace mecsched::audit
