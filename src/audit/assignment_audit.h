// Assignment auditor (audit/audit.h for the level machinery; compiled
// into mecsched_assign so every assigner can self-check its output).
//
// Each algorithm declares what its output *promises* via an
// AssignmentContract, and check_assignment re-derives the promise from the
// model instead of trusting the algorithm's own bookkeeping:
//
//   cheap  shape           one decision per instance task, valid enum
//          (C1) deadlines  every placed task meets t_ijl <= T_ij — only
//                          for algorithms that promise it (LP-HTA repairs
//                          or cancels; HGOS by design does not consult
//                          deadlines, so its contract waives C1)
//          (C2/C3) capacity Σ resource per device / station within caps
//   full   cost integrity  the instance's cached TaskCosts are re-derived
//                          from mec::CostModel and must match bit-for-bit
//                          (catches stale or corrupted cost caches)
//
// Contracts per algorithm (the hooks in assign/*.cpp):
//   LP-HTA, LocalFirst, Exact  deadlines + capacity
//   HGOS, AllOffload, Random   capacity only (deadline misses are the
//                              measured "unsatisfied rate", not a bug)
//   AllToCloud                 capacity only (vacuously — cloud unbounded)
//   Portfolio                  shape only: the winner was already audited
//                              by the candidate that produced it, and a
//                              portfolio may legitimately return the least
//                              bad of several infeasible plans
//   recovery                   capacity + no surviving reference to the
//                              failed device (checked in recovery.cpp)
#pragma once

#include <string_view>

#include "assign/assignment.h"
#include "assign/hta_instance.h"

namespace mecsched::audit {

struct AssignmentContract {
  bool deadlines = false;  // (C1) every placed task meets its deadline
  bool capacity = true;    // (C2)/(C3) device & station caps respected
};

// Audits `assignment` against `instance` at the current audit level.
// `algorithm` tags error messages. Throws AuditError on violation.
void check_assignment(const assign::HtaInstance& instance,
                      const assign::Assignment& assignment,
                      const AssignmentContract& contract,
                      std::string_view algorithm);

}  // namespace mecsched::audit
