#include "audit/division_audit.h"

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "audit/audit.h"

namespace mecsched::audit {

namespace {

constexpr std::string_view kComponent = "dta";

}  // namespace

void check_division(const dta::SharedDataScenario& scenario,
                    const dta::Coverage& coverage,
                    const std::vector<mec::Task>& rearranged,
                    std::string_view strategy) {
  if (!enabled(Level::kCheap)) return;
  count_check(kComponent);
  const std::string tag = " [" + std::string(strategy) + "]";

  const std::size_t devices = scenario.topology.num_devices();
  if (coverage.assigned.size() != devices) {
    fail(kComponent, "shape:devices",
         static_cast<double>(coverage.assigned.size()),
         "coverage has " + std::to_string(coverage.assigned.size()) +
             " shares for " + std::to_string(devices) + " devices" + tag);
  }

  // Count how often each universe item is covered; the needed set must be
  // covered exactly once and nothing else covered at all.
  std::vector<std::size_t> covered(scenario.universe.num_items(), 0);
  for (std::size_t dev = 0; dev < devices; ++dev) {
    const dta::ItemSet& share = coverage.assigned[dev];
    if (!dta::is_sorted_unique(share)) {
      fail(kComponent, "shape:share:device=" + std::to_string(dev), 0.0,
           "share of device " + std::to_string(dev) +
               " is not sorted unique" + tag);
    }
    const dta::ItemSet leaked = dta::set_minus(share, scenario.ownership[dev]);
    if (!leaked.empty()) {
      fail(kComponent, "ownership:device=" + std::to_string(dev),
           static_cast<double>(leaked.size()),
           "device " + std::to_string(dev) + " was assigned item " +
               std::to_string(leaked.front()) + " it does not own" + tag);
    }
    for (const std::size_t item : share) {
      if (item >= covered.size()) {
        fail(kComponent, "shape:item:device=" + std::to_string(dev),
             static_cast<double>(item),
             "share of device " + std::to_string(dev) +
                 " references unknown item " + std::to_string(item) + tag);
      }
      ++covered[item];
    }
  }

  const dta::ItemSet needed = scenario.required_items();
  for (const std::size_t item : needed) {
    if (covered[item] == 0) {
      fail(kComponent, "coverage:uncovered:item=" + std::to_string(item), 1.0,
           "needed item " + std::to_string(item) +
               " is covered by no device — its data would be lost" + tag);
    }
    if (covered[item] > 1) {
      fail(kComponent, "coverage:duplicate:item=" + std::to_string(item),
           static_cast<double>(covered[item] - 1),
           "item " + std::to_string(item) + " is covered " +
               std::to_string(covered[item]) +
               " times — partial results would double-count it" + tag);
    }
  }
  std::size_t needed_at = 0;
  for (std::size_t item = 0; item < covered.size(); ++item) {
    const bool is_needed =
        needed_at < needed.size() && needed[needed_at] == item;
    if (is_needed) ++needed_at;
    if (!is_needed && covered[item] > 0) {
      fail(kComponent, "coverage:extra:item=" + std::to_string(item),
           static_cast<double>(covered[item]),
           "item " + std::to_string(item) +
               " is covered but no task needs it" + tag);
    }
  }

  if (!enabled(Level::kFull)) return;

  // Aggregation integrity: re-derive the rearranged tasks from the
  // coverage (same traversal as dta/pipeline.cpp, device-major) and demand
  // the pipeline's output match; per source task the partials' bytes must
  // sum back to the task's full input.
  std::vector<double> per_source_bytes(scenario.tasks.size(), 0.0);
  std::size_t idx = 0;
  for (std::size_t dev = 0; dev < devices; ++dev) {
    const dta::ItemSet& share = coverage.assigned[dev];
    if (share.empty()) continue;
    for (std::size_t s = 0; s < scenario.tasks.size(); ++s) {
      const dta::DivisibleTask& src = scenario.tasks[s];
      const dta::ItemSet portion = dta::set_intersect(share, src.items);
      if (portion.empty()) continue;
      const double bytes = scenario.universe.total_bytes(portion);
      per_source_bytes[s] += bytes;
      if (idx >= rearranged.size()) {
        fail(kComponent, "rearrange:missing", static_cast<double>(idx),
             "coverage implies more partial tasks than were rearranged (" +
                 std::to_string(rearranged.size()) + ")" + tag);
      }
      const mec::Task& t = rearranged[idx];
      const double total = scenario.universe.total_bytes(src.items);
      const double want_resource =
          total > 0.0 ? src.resource * bytes / total : src.resource;
      if (t.local_bytes != bytes || t.external_bytes != 0.0 ||
          t.deadline_s != src.deadline_s || t.resource != want_resource) {
        fail(kComponent,
             "rearrange:partial:device=" + std::to_string(dev) +
                 ":source=" + std::to_string(s),
             std::fabs(t.local_bytes - bytes),
             "rearranged task " + std::to_string(idx) +
                 " does not re-derive from the coverage (bytes " +
                 std::to_string(t.local_bytes) + " vs " +
                 std::to_string(bytes) + ")" + tag);
      }
      ++idx;
    }
  }
  if (idx != rearranged.size()) {
    fail(kComponent, "rearrange:extra",
         static_cast<double>(rearranged.size() - idx),
         "pipeline produced " + std::to_string(rearranged.size()) +
             " partial tasks but the coverage implies " + std::to_string(idx) +
             tag);
  }
  for (std::size_t s = 0; s < scenario.tasks.size(); ++s) {
    const double total =
        scenario.universe.total_bytes(scenario.tasks[s].items);
    const double gap = std::fabs(per_source_bytes[s] - total);
    if (gap > 1e-9 * (1.0 + total)) {
      fail(kComponent, "aggregate:source=" + std::to_string(s), gap,
           "partials of task " + std::to_string(s) + " sum to " +
               std::to_string(per_source_bytes[s]) + " B of " +
               std::to_string(total) + " B input" + tag);
    }
  }
}

}  // namespace mecsched::audit
