#include "audit/audit.h"

#include <atomic>
#include <cstdlib>
#include <sstream>

#include "common/error.h"
#include "obs/registry.h"

// Build-selected default (0 = off, 1 = cheap, 2 = full); the CMake
// MECSCHED_AUDIT knob defines it per build type.
#ifndef MECSCHED_AUDIT_DEFAULT
#define MECSCHED_AUDIT_DEFAULT 1
#endif

namespace mecsched::audit {

namespace {

std::atomic<int>& level_storage() {
  static std::atomic<int> storage{static_cast<int>(default_level())};
  return storage;
}

}  // namespace

std::string to_string(Level level) {
  switch (level) {
    case Level::kOff:
      return "off";
    case Level::kCheap:
      return "cheap";
    case Level::kFull:
      return "full";
  }
  return "off";
}

Level parse_level(const std::string& text) {
  if (text == "off" || text == "0") return Level::kOff;
  if (text == "cheap" || text == "1") return Level::kCheap;
  if (text == "full" || text == "2") return Level::kFull;
  throw ModelError("unknown audit level '" + text +
                   "' (expected off, cheap or full)");
}

Level default_level() {
  static const Level resolved = [] {
    if (const char* env = std::getenv("MECSCHED_AUDIT")) {
      return parse_level(env);
    }
    return static_cast<Level>(MECSCHED_AUDIT_DEFAULT);
  }();
  return resolved;
}

Level level() {
  return static_cast<Level>(
      level_storage().load(std::memory_order_relaxed));
}

void set_level(Level l) {
  level_storage().store(static_cast<int>(l), std::memory_order_relaxed);
}

AuditError::AuditError(std::string component, std::string constraint,
                       double violation, const std::string& what)
    : std::logic_error(what),
      component_(std::move(component)),
      constraint_(std::move(constraint)),
      violation_(violation) {}

void count_check(std::string_view component) {
  obs::Registry::global()
      .counter("audit." + std::string(component) + ".checks")
      .add();
}

void fail(std::string_view component, std::string constraint,
          double violation, const std::string& message) {
  obs::Registry::global()
      .counter("audit." + std::string(component) + ".violations")
      .add();
  std::ostringstream os;
  os << "audit failed [" << component << " " << constraint
     << "]: " << message;
  throw AuditError(std::string(component), std::move(constraint), violation,
                   os.str());
}

}  // namespace mecsched::audit
