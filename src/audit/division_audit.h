// DTA division auditor (audit/audit.h for the level machinery; compiled
// into mecsched_dta so the pipeline can self-check its divisions).
//
// The Sec. IV contract a division must honor:
//
//   cheap  shape        one share per device, each sorted unique
//          ownership    C_i ⊆ D_i — no raw data ever moves
//          exactly-once every needed item appears in exactly one share
//                       (an uncovered item loses data, a doubly covered
//                       item double-counts its partial result)
//   full   aggregation  the rearranged tasks are re-derived from the
//                       coverage: per source task the partials' bytes sum
//                       back to the task's total input, and each partial's
//                       scaled resource demand and inherited deadline
//                       match the re-derivation
#pragma once

#include <string_view>
#include <vector>

#include "dta/coverage.h"
#include "dta/data_model.h"
#include "mec/task.h"

namespace mecsched::audit {

// Audits `coverage` (and, at kFull, the `rearranged` tasks built from it)
// against the scenario at the current audit level. `strategy` tags error
// messages ("dta-workload", "dta-number", ...). Throws AuditError.
void check_division(const dta::SharedDataScenario& scenario,
                    const dta::Coverage& coverage,
                    const std::vector<mec::Task>& rearranged,
                    std::string_view strategy);

}  // namespace mecsched::audit
