#include "audit/lp_certificate.h"

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "audit/audit.h"

namespace mecsched::audit {

namespace {

constexpr std::string_view kComponent = "lp";

std::string row_label(const lp::Problem& problem, std::size_t r) {
  const std::string& name = problem.constraint(r).name;
  std::ostringstream os;
  os << "row " << r;
  if (!name.empty()) os << " (" << name << ")";
  return os.str();
}

}  // namespace

void check_lp(const lp::Problem& problem, const lp::Solution& solution,
              std::string_view engine, LpCertificateOptions options) {
  if (!enabled(Level::kCheap)) return;
  if (!solution.optimal()) return;  // non-optimal statuses carry no claim
  if (problem.num_variables() == 0) return;
  count_check(kComponent);

  const std::string tag = " [" + std::string(engine) + "]";
  if (solution.x.size() != problem.num_variables()) {
    fail(kComponent, "shape:x", 0.0,
         "solution has " + std::to_string(solution.x.size()) +
             " primal values for " + std::to_string(problem.num_variables()) +
             " variables" + tag);
  }

  double rhs_scale = 1.0;
  for (std::size_t r = 0; r < problem.num_constraints(); ++r) {
    rhs_scale = std::max(rhs_scale, std::fabs(problem.constraint(r).rhs));
  }
  const double feas_tol = options.feasibility_tolerance * rhs_scale;

  // --- primal feasibility -------------------------------------------------
  const double violation = problem.max_violation(solution.x);
  if (violation > feas_tol) {
    fail(kComponent, "primal:feasibility", violation,
         "claimed-optimal point violates a constraint/bound by " +
             std::to_string(violation) + " (tolerance " +
             std::to_string(feas_tol) + ")" + tag);
  }

  // --- objective integrity ------------------------------------------------
  const double cx = problem.objective_value(solution.x);
  const double obj_scale = 1.0 + std::fabs(cx);
  if (std::fabs(solution.objective - cx) > options.gap_tolerance * obj_scale) {
    fail(kComponent, "primal:objective", solution.objective - cx,
         "reported objective " + std::to_string(solution.objective) +
             " != c'x = " + std::to_string(cx) + tag);
  }

  if (!enabled(Level::kFull)) return;

  // --- dual certificate ---------------------------------------------------
  if (solution.duals.size() != problem.num_constraints()) {
    fail(kComponent, "shape:duals", 0.0,
         "solution has " + std::to_string(solution.duals.size()) +
             " duals for " + std::to_string(problem.num_constraints()) +
             " rows" + tag);
  }

  double dual_scale = 1.0;
  for (const double y : solution.duals) {
    dual_scale = std::max(dual_scale, std::fabs(y));
  }
  const double sign_tol = options.gap_tolerance * dual_scale;

  // Sign feasibility (minimization convention, see lp/solution.h).
  double dual_obj = 0.0;
  for (std::size_t r = 0; r < problem.num_constraints(); ++r) {
    const lp::Constraint& c = problem.constraint(r);
    const double y = solution.duals[r];
    if (c.relation == lp::Relation::kLessEqual && y > sign_tol) {
      fail(kComponent, "dual:sign:row=" + std::to_string(r), y,
           "dual of \"<=\" " + row_label(problem, r) + " is " +
               std::to_string(y) + " > 0" + tag);
    }
    if (c.relation == lp::Relation::kGreaterEqual && y < -sign_tol) {
      fail(kComponent, "dual:sign:row=" + std::to_string(r), y,
           "dual of \">=\" " + row_label(problem, r) + " is " +
               std::to_string(y) + " < 0" + tag);
    }
    dual_obj += c.rhs * y;
  }

  // Reduced costs z = c - A'y, priced at the bound each sign selects. An
  // in-tolerance-zero z contributes nothing; a decisively signed z whose
  // selected bound is infinite certifies dual infeasibility.
  std::vector<double> z(problem.costs());
  for (std::size_t r = 0; r < problem.num_constraints(); ++r) {
    const double y = solution.duals[r];
    if (y == 0.0) continue;
    for (const lp::Term& t : problem.constraint(r).terms) {
      z[t.var] -= y * t.coeff;
    }
  }
  double cost_scale = 1.0;
  for (const double c : problem.costs()) {
    cost_scale = std::max(cost_scale, std::fabs(c));
  }
  const double z_tol = options.gap_tolerance * std::max(cost_scale, dual_scale);
  for (std::size_t v = 0; v < problem.num_variables(); ++v) {
    if (z[v] > z_tol) {
      const double lo = problem.lower(v);
      if (!std::isfinite(lo)) {
        fail(kComponent, "dual:unbounded:var=" + std::to_string(v), z[v],
             "positive reduced cost on a variable with no lower bound" + tag);
      }
      dual_obj += z[v] * lo;
    } else if (z[v] < -z_tol) {
      const double hi = problem.upper(v);
      if (!std::isfinite(hi)) {
        fail(kComponent, "dual:unbounded:var=" + std::to_string(v), z[v],
             "negative reduced cost on a variable with no upper bound" + tag);
      }
      dual_obj += z[v] * hi;
    }
  }

  // Weak-duality gap. For a primal-feasible x and sign-feasible y the gap
  // aggregates every complementary-slackness residual, so it is the single
  // number that certifies optimality.
  const double gap = std::fabs(cx - dual_obj);
  const double gap_scale = 1.0 + std::fabs(cx) + std::fabs(dual_obj);
  if (gap > options.gap_tolerance * gap_scale) {
    fail(kComponent, "dual:gap", gap,
         "duality gap " + std::to_string(gap) + " between primal " +
             std::to_string(cx) + " and dual " + std::to_string(dual_obj) +
             tag);
  }

  // --- vertex cardinality (simplex only) ----------------------------------
  if (options.vertex_expected) {
    std::size_t interior = 0;
    for (std::size_t v = 0; v < problem.num_variables(); ++v) {
      const double x = solution.x[v];
      const double vtol =
          options.feasibility_tolerance * (1.0 + std::fabs(x));
      const bool above_lo =
          !std::isfinite(problem.lower(v)) || x - problem.lower(v) > vtol;
      const bool below_hi =
          !std::isfinite(problem.upper(v)) || problem.upper(v) - x > vtol;
      if (above_lo && below_hi) ++interior;
    }
    if (interior > problem.num_constraints()) {
      fail(kComponent, "basis:vertex",
           static_cast<double>(interior - problem.num_constraints()),
           std::to_string(interior) +
               " variables strictly between bounds exceeds the basis size " +
               std::to_string(problem.num_constraints()) + tag);
    }
  }
}

}  // namespace mecsched::audit
