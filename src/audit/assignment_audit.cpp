#include "audit/assignment_audit.h"

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "mec/cost_model.h"

namespace mecsched::audit {

namespace {

constexpr std::string_view kComponent = "assign";

// Matches the slack assign/evaluator.cpp grants (C2)/(C3): the audit must
// not be stricter than the predicate the algorithms optimized against.
// Deadlines reuse HtaInstance::meets_deadline, which carries its own slack.
constexpr double kCapacitySlack = 1e-9;

std::string task_label(const assign::HtaInstance& instance, std::size_t t) {
  std::ostringstream os;
  os << "task " << t << " (" << mec::to_string(instance.task(t).id) << ")";
  return os.str();
}

}  // namespace

void check_assignment(const assign::HtaInstance& instance,
                      const assign::Assignment& assignment,
                      const AssignmentContract& contract,
                      std::string_view algorithm) {
  if (!enabled(Level::kCheap)) return;
  count_check(kComponent);
  const std::string tag = " [" + std::string(algorithm) + "]";

  if (assignment.size() != instance.num_tasks()) {
    fail(kComponent, "shape:size",
         static_cast<double>(assignment.size()),
         "plan has " + std::to_string(assignment.size()) +
             " decisions for " + std::to_string(instance.num_tasks()) +
             " tasks" + tag);
  }

  const mec::Topology& topo = instance.topology();
  std::vector<double> device_load(topo.num_devices(), 0.0);
  std::vector<double> station_load(topo.num_base_stations(), 0.0);

  for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
    const assign::Decision d = assignment.decisions[t];
    const int raw = static_cast<int>(d);
    if (raw < 0 || raw > static_cast<int>(assign::Decision::kCancelled)) {
      fail(kComponent, "shape:decision:task=" + std::to_string(t),
           static_cast<double>(raw),
           task_label(instance, t) + " carries out-of-range decision " +
               std::to_string(raw) + tag);
    }
    if (d == assign::Decision::kCancelled) continue;
    const mec::Placement p = assign::to_placement(d);

    if (contract.deadlines && !instance.meets_deadline(t, p)) {
      const double overshoot =
          instance.latency(t, p) - instance.task(t).deadline_s;
      fail(kComponent, "C1:deadline:task=" + std::to_string(t), overshoot,
           task_label(instance, t) + " on " + mec::to_string(p) +
               " misses its deadline by " + std::to_string(overshoot) + "s" +
               tag);
    }
    const mec::Task& task = instance.task(t);
    if (d == assign::Decision::kLocal) {
      device_load[task.id.user] += task.resource;
    } else if (d == assign::Decision::kEdge) {
      station_load[topo.device(task.id.user).base_station] += task.resource;
    }
  }

  if (contract.capacity) {
    for (std::size_t i = 0; i < topo.num_devices(); ++i) {
      const double over = device_load[i] - topo.device(i).max_resource;
      if (over > kCapacitySlack) {
        fail(kComponent, "C2:device=" + std::to_string(i), over,
             "device " + std::to_string(i) + " over capacity by " +
                 std::to_string(over) + tag);
      }
    }
    for (std::size_t b = 0; b < topo.num_base_stations(); ++b) {
      const double over = station_load[b] - topo.base_station(b).max_resource;
      if (over > kCapacitySlack) {
        fail(kComponent, "C3:station=" + std::to_string(b), over,
             "station " + std::to_string(b) + " over capacity by " +
                 std::to_string(over) + tag);
      }
    }
  }

  if (!enabled(Level::kFull)) return;

  // Cost integrity: the instance's cached TaskCosts were produced by
  // mec::CostModel at construction; re-deriving them must reproduce the
  // exact same doubles (same pure function, same inputs). A mismatch means
  // the cache was corrupted after construction.
  const mec::CostModel model(topo);
  for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
    if (assignment.decisions[t] == assign::Decision::kCancelled) continue;
    const mec::TaskCosts fresh = model.evaluate(instance.task(t));
    for (const mec::Placement p : mec::kAllPlacements) {
      const double dl = fresh.latency(p) - instance.latency(t, p);
      const double de = fresh.energy(p) - instance.energy(t, p);
      if (dl != 0.0 || de != 0.0) {
        fail(kComponent, "cost:task=" + std::to_string(t),
             std::fabs(dl) + std::fabs(de),
             task_label(instance, t) + " cached costs for " +
                 mec::to_string(p) +
                 " diverge from the model (Δlatency=" + std::to_string(dl) +
                 "s, Δenergy=" + std::to_string(de) + "J)" + tag);
      }
    }
  }
}

}  // namespace mecsched::audit
