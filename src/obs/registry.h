// Process-wide metric registry: counters, gauges and histograms.
//
// The registry is the measurement substrate every layer reports into —
// solver iteration counts, repair moves, controller epoch tallies, span
// durations. Design goals, in order:
//
//   * writes are cheap enough for per-solve / per-epoch granularity
//     (counters and gauges are single relaxed atomics; histograms take one
//     uncontended mutex),
//   * references returned by counter()/gauge()/histogram() stay valid for
//     the life of the process — reset() zeroes values but never removes
//     entries, so call sites may cache `static Counter& c = ...`,
//   * everything is thread-safe: the LP-HTA cluster workers and any future
//     sharded controller write concurrently.
//
// Exporters (Prometheus text, summary table) live in obs/export.h; the
// structured event tracer lives in obs/tracer.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"

namespace mecsched::obs {

// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-written value (residuals, gaps, sizes).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Distribution of observed values: a streaming Summary (count/mean/var/
// min/max) plus fixed log10 buckets spanning 1e-9 .. 1e9. The bucket grid
// is deliberately static — durations in seconds, iteration counts and
// energy all land inside it, and a fixed grid keeps merge and Prometheus
// export trivial.
class Histogram {
 public:
  // Upper bounds of the finite buckets; an implicit +Inf bucket follows.
  static const std::vector<double>& bucket_bounds();

  void observe(double v);

  Summary summary() const;
  // Cumulative counts per finite bucket (Prometheus `le` semantics);
  // summary().count() is the +Inf entry.
  std::vector<std::uint64_t> cumulative_buckets() const;
  // Folds another histogram's samples in: summaries merge via
  // Summary::merge, buckets add element-wise (the shared static grid makes
  // this exact). Safe against concurrent observers of either side.
  void merge_from(const Histogram& other);
  void reset();

 private:
  mutable std::mutex mu_;
  Summary summary_;
  std::vector<std::uint64_t> buckets_;  // sized lazily on first observe
};

class Registry {
 public:
  // The process-wide instance all instrumentation reports into.
  static Registry& global();

  // Finds or creates the named metric. Names are dot-separated lower-case
  // paths ("lp.simplex.pivots"); exporters sanitize them per format. A
  // name registers as exactly one kind — reusing it as another kind
  // throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Zeroes every metric in place. Entries (and references to them) remain
  // valid — callers caching references across reset() keep working.
  void reset();

  // Folds another registry's values into this one: counters add,
  // histograms merge sample-exactly, gauges take the other's value (last
  // merge wins — merge shards in a deterministic order when gauge values
  // matter). This is how the sweep runner reduces per-cell metric shards
  // into the global registry after a parallel join.
  void merge_from(const Registry& other);

  // Stable-ordered snapshots for the exporters.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mecsched::obs
