// Process-wide metric registry: counters, gauges and histograms.
//
// The registry is the measurement substrate every layer reports into —
// solver iteration counts, repair moves, controller epoch tallies, span
// durations. Design goals, in order:
//
//   * writes are cheap enough for per-solve / per-epoch granularity
//     (counters and gauges are single relaxed atomics; histograms take one
//     uncontended mutex),
//   * references returned by counter()/gauge()/histogram() stay valid for
//     the life of the process — reset() zeroes values but never removes
//     entries, so call sites may cache `static Counter& c = ...`,
//   * everything is thread-safe: the LP-HTA cluster workers and any future
//     sharded controller write concurrently.
//
// Exporters (Prometheus text, summary table) live in obs/export.h; the
// structured event tracer lives in obs/tracer.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/thread_annotations.h"

namespace mecsched::obs {

// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-written value (residuals, gaps, sizes).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Distribution of observed values: a streaming Summary (count/mean/var/
// min/max) plus fixed log10 buckets spanning 1e-9 .. 1e9. The bucket grid
// is deliberately static — durations in seconds, iteration counts and
// energy all land inside it, and a fixed grid keeps merge and Prometheus
// export trivial.
class Histogram {
 public:
  // Upper bounds of the finite buckets; an implicit +Inf bucket follows.
  static const std::vector<double>& bucket_bounds();

  void observe(double v);

  Summary summary() const;
  // Cumulative counts per finite bucket (Prometheus `le` semantics);
  // summary().count() is the +Inf entry.
  std::vector<std::uint64_t> cumulative_buckets() const;
  // Approximate quantile (q in [0,1]) from the bucket counts: linear
  // interpolation inside the selected bucket, clamped to the observed
  // min/max. NaN when empty. The log10 grid makes this a ~10% estimate —
  // good enough for p50/p90/p99 summary columns, not for assertions on
  // exact values.
  double approx_percentile(double q) const;
  // Folds another histogram's samples in: summaries merge via
  // Summary::merge, buckets add element-wise (the shared static grid makes
  // this exact). Safe against concurrent observers of either side.
  void merge_from(const Histogram& other);
  void reset();

 private:
  mutable Mutex mu_;
  Summary summary_ MECSCHED_GUARDED_BY(mu_);
  // sized lazily on first observe
  std::vector<std::uint64_t> buckets_ MECSCHED_GUARDED_BY(mu_);
};

// Shared quantile kernel for Histogram::approx_percentile and the
// windowed primitives (obs/window.h): given cumulative per-finite-bucket
// counts over Histogram::bucket_bounds() and the total observation count
// (the +Inf entry), estimates the q-quantile by linear interpolation
// inside the target bucket. The result is clamped to [min_clamp,
// max_clamp] when those are non-NaN (pass the streaming min/max — it
// tightens the log10 grid's coarse bucket edges to observed reality).
// NaN when total_count is zero.
double percentile_from_buckets(const std::vector<std::uint64_t>& cumulative,
                               std::uint64_t total_count, double q,
                               double min_clamp, double max_clamp);

class WindowedHistogram;
class RateWindow;

class Registry {
 public:
  // The process-wide instance all instrumentation reports into.
  static Registry& global();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Finds or creates the named metric. Names are dot-separated lower-case
  // paths ("lp.simplex.pivots"); exporters sanitize them per format. A
  // name registers as exactly one kind — reusing it as another kind
  // throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Rolling-window companions (obs/window.h), registered in their own
  // namespace: a window deliberately MAY share its base name with a
  // counter/gauge/histogram — `exec.sweep.cell_seconds` keeps both the
  // process-lifetime histogram and the rolling view, and exporters render
  // the window as the `<name>.window.*` family. A name still registers as
  // exactly one of window/rate. Defaults: 60 one-second epochs; pass
  // epoch_seconds == 0 on first use for a manual-advance window.
  WindowedHistogram& window(const std::string& name,
                            double epoch_seconds = 1.0,
                            std::size_t num_epochs = 60);
  RateWindow& rate(const std::string& name, double epoch_seconds = 1.0,
                   std::size_t num_epochs = 60);

  // Zeroes every metric in place. Entries (and references to them) remain
  // valid — callers caching references across reset() keep working.
  void reset();

  // Folds another registry's values into this one: counters add,
  // histograms merge sample-exactly, gauges take the other's value (last
  // merge wins — merge shards in a deterministic order when gauge values
  // matter), windows/rates collapse the other side's live samples into
  // the receiver's current epoch (commutative, so grid-order shard merges
  // stay schedule-independent). This is how the sweep runner reduces
  // per-cell metric shards into the global registry after a parallel
  // join.
  void merge_from(const Registry& other);

  // Stable-ordered snapshots for the exporters.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;
  std::vector<std::pair<std::string, const WindowedHistogram*>> windows()
      const;
  std::vector<std::pair<std::string, const RateWindow*>> rates() const;

 private:
  // mu_ guards the name→entry maps only; the metric objects themselves
  // are thread-safe and are handed out as long-lived references.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      MECSCHED_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      MECSCHED_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      MECSCHED_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<WindowedHistogram>> windows_
      MECSCHED_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<RateWindow>> rates_
      MECSCHED_GUARDED_BY(mu_);
};

}  // namespace mecsched::obs
