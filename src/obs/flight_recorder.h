// Per-solve flight recorder: a sharded ring of structured SolveRecords.
//
// Aggregate metrics answer "how many solves missed their deadline"; the
// flight recorder answers "which solve, in which layer, with how much
// budget left, warm-started or not, with which faults injected" — the
// record you autopsy after a SolverError, an AuditError or a deadline
// expiry. Every instrumented layer (lp/, assign/, control/, exec/)
// appends one record per solve/decision/cell; the CLI's --flight-out flag
// (and MECSCHED_FLIGHT_OUT for the bench binaries) dumps the ring as
// JSONL on exit — even when the command failed, because the trace of the
// failing run is precisely the artifact worth keeping.
//
// Cost contract: disabled (the default), record() is never reached —
// call sites gate on enabled(), a single relaxed atomic load, before
// building the record. Enabled, records hash onto kShards independent
// rings by thread id, so parallel cluster solves don't serialize on one
// mutex; a global relaxed seq counter preserves a total order for
// snapshot() and the JSONL dump.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/thread_annotations.h"

namespace mecsched::obs {

// One solve/decision/cell, as the flight recorder saw it end.
struct SolveRecord {
  std::uint64_t seq = 0;  // assigned by record(); global order
  // Which subsystem reported: "lp", "assign", "control", "exec".
  std::string layer;
  // The engine/rung inside the layer: "simplex", "ipm", "lp_hta",
  // "LP-HTA"/"HGOS"/"LocalFirst" (fallback rungs), "decision",
  // "sweep_cell".
  std::string engine;
  // Terminal state: an lp::to_string(SolveStatus) value ("optimal",
  // "deadline", ...), or "served"/"failed"/"skipped" (fallback rungs),
  // "ok"/"error"/"audit-error" (assign/exec layers).
  std::string status;
  // Free-form context: error message, cell index, station id. May be "".
  std::string detail;
  double seconds = 0.0;
  std::uint64_t iterations = 0;  // pivots / IPM iterations / LP totals
  // Budget left when the record was cut, in milliseconds; negative when
  // past the deadline, NaN when the solve ran unlimited.
  double deadline_residual_ms = std::numeric_limits<double>::quiet_NaN();
  bool deadline_hit = false;  // ended via the kDeadline anytime path
  bool warm_start = false;
  bool cache_hit = false;
  std::uint64_t chaos_hits = 0;  // chaos::local_injections() delta
  // Audit verdict: "" (not audited at this site), "ok", or the
  // AuditError message.
  std::string audit;
};

class FlightRecorder {
 public:
  // The process-wide instance; disabled until enable() is called.
  static FlightRecorder& global();

  // Starts (or restarts) recording, clearing previous records.
  // `capacity_per_shard` bounds each of the kShards rings; the newest
  // records win when a ring wraps (dropped() counts the overwritten).
  void enable(std::size_t capacity_per_shard = 1 << 12);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Appends a record (stamping its seq). No-op while disabled, but call
  // sites should gate on enabled() and skip building the record at all.
  void record(SolveRecord r);

  // Seq-ordered copy of every buffered record.
  std::vector<SolveRecord> snapshot() const;
  std::uint64_t recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void clear();

  // Convenience for call sites stamping deadline fields: remaining budget
  // in ms, NaN for an unlimited deadline.
  static double residual_ms(const Deadline& d) {
    return d.is_unlimited() ? std::numeric_limits<double>::quiet_NaN()
                            : d.remaining_ms();
  }

  static constexpr std::size_t kShards = 8;

 private:
  struct Shard {
    mutable Mutex mu;
    std::vector<SolveRecord> ring MECSCHED_GUARDED_BY(mu);
    std::size_t head MECSCHED_GUARDED_BY(mu) = 0;
    bool wrapped MECSCHED_GUARDED_BY(mu) = false;
  };

  Shard& shard_for_this_thread();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> dropped_{0};
  // Written by enable() while record() reads it under a *shard* lock, not
  // a common one — atomic, like enabled_, rather than guarded.
  std::atomic<std::size_t> capacity_per_shard_{1 << 12};
  Shard shards_[kShards];
};

}  // namespace mecsched::obs
