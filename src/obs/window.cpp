#include "obs/window.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mecsched::obs {
namespace {

double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

WindowedHistogram::WindowedHistogram(double epoch_seconds,
                                     std::size_t num_epochs)
    // ring_ is sized in the init list: guarded members are initialized
    // before the object can be shared, keeping the constructor body free
    // of guarded accesses.
    : epoch_seconds_(epoch_seconds), num_epochs_(num_epochs),
      ring_(num_epochs) {
  MECSCHED_REQUIRE(std::isfinite(epoch_seconds) && epoch_seconds >= 0.0,
                   "window epoch_seconds must be finite and >= 0");
  MECSCHED_REQUIRE(num_epochs > 0, "window needs at least one epoch");
}

std::uint64_t WindowedHistogram::current_index_locked() const {
  std::uint64_t timed = 0;
  if (epoch_seconds_ > 0.0) {
    timed = static_cast<std::uint64_t>(elapsed_seconds(start_) /
                                       epoch_seconds_);
  }
  return timed + manual_offset_;
}

WindowedHistogram::Epoch& WindowedHistogram::epoch_for_write_locked(
    std::uint64_t index) {
  Epoch& e = ring_[static_cast<std::size_t>(index % num_epochs_)];
  if (!e.live || e.index != index) {
    e.live = true;
    e.index = index;
    e.count = 0;
    e.sum = 0.0;
    e.min = std::numeric_limits<double>::infinity();
    e.max = -std::numeric_limits<double>::infinity();
    e.buckets.assign(Histogram::bucket_bounds().size(), 0);
  }
  return e;
}

void WindowedHistogram::observe(double v) {
  const MutexLock lock(mu_);
  Epoch& e = epoch_for_write_locked(current_index_locked());
  ++e.count;
  e.sum += v;
  e.min = std::min(e.min, v);
  e.max = std::max(e.max, v);
  // Mirror Histogram::observe: NaN (and anything above the last finite
  // bound) lands only in the implicit +Inf bucket, i.e. in the count.
  if (std::isnan(v)) return;
  const std::vector<double>& bounds = Histogram::bucket_bounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  if (it != bounds.end()) {
    ++e.buckets[static_cast<std::size_t>(it - bounds.begin())];
  }
}

void WindowedHistogram::advance(std::size_t epochs) {
  const MutexLock lock(mu_);
  manual_offset_ += epochs;
}

WindowedHistogram::Aggregate WindowedHistogram::aggregate_locked(
    std::uint64_t now_index) const {
  Aggregate agg;
  agg.buckets.assign(Histogram::bucket_bounds().size(), 0);
  // Live = within the last num_epochs_ epochs ending at now_index.
  const std::uint64_t oldest =
      now_index >= num_epochs_ - 1 ? now_index - (num_epochs_ - 1) : 0;
  for (const Epoch& e : ring_) {
    if (!e.live || e.index < oldest || e.index > now_index) continue;
    agg.count += e.count;
    agg.sum += e.sum;
    agg.min = std::min(agg.min, e.min);
    agg.max = std::max(agg.max, e.max);
    for (std::size_t i = 0; i < agg.buckets.size(); ++i) {
      agg.buckets[i] += e.buckets[i];
    }
  }
  return agg;
}

WindowedHistogram::Aggregate WindowedHistogram::aggregate() const {
  const MutexLock lock(mu_);
  return aggregate_locked(current_index_locked());
}

WindowedHistogram::Snapshot WindowedHistogram::snapshot() const {
  Aggregate agg;
  double span = 0.0;
  {
    const MutexLock lock(mu_);
    agg = aggregate_locked(current_index_locked());
    if (epoch_seconds_ > 0.0) {
      // Covered span: what the window has actually seen — the full ring
      // once warmed up, the elapsed time (floored at one epoch) before.
      span = std::clamp(elapsed_seconds(start_), epoch_seconds_,
                        epoch_seconds_ * static_cast<double>(num_epochs_));
    }
  }
  Snapshot s;
  s.count = agg.count;
  s.sum = agg.sum;
  s.span_seconds = span;
  if (agg.count > 0) {
    s.min = agg.min;
    s.max = agg.max;
    std::vector<std::uint64_t> cumulative(agg.buckets.size(), 0);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < agg.buckets.size(); ++i) {
      acc += agg.buckets[i];
      cumulative[i] = acc;
    }
    s.p50 = percentile_from_buckets(cumulative, agg.count, 0.50, agg.min,
                                    agg.max);
    s.p90 = percentile_from_buckets(cumulative, agg.count, 0.90, agg.min,
                                    agg.max);
    s.p95 = percentile_from_buckets(cumulative, agg.count, 0.95, agg.min,
                                    agg.max);
    s.p99 = percentile_from_buckets(cumulative, agg.count, 0.99, agg.min,
                                    agg.max);
  }
  if (span > 0.0) s.rate_hz = static_cast<double>(agg.count) / span;
  return s;
}

void WindowedHistogram::fold_locked(const Aggregate& agg) {
  if (agg.count == 0) return;
  Epoch& e = epoch_for_write_locked(current_index_locked());
  e.count += agg.count;
  e.sum += agg.sum;
  e.min = std::min(e.min, agg.min);
  e.max = std::max(e.max, agg.max);
  for (std::size_t i = 0; i < e.buckets.size() && i < agg.buckets.size();
       ++i) {
    e.buckets[i] += agg.buckets[i];
  }
}

void WindowedHistogram::merge_from(const WindowedHistogram& other) {
  // Snapshot `other` under its own lock before taking ours — same
  // self-merge / concurrent-writer discipline as Histogram::merge_from.
  const Aggregate agg = other.aggregate();
  const MutexLock lock(mu_);
  fold_locked(agg);
}

void WindowedHistogram::reset() {
  const MutexLock lock(mu_);
  for (Epoch& e : ring_) e = Epoch{};
  manual_offset_ = 0;
  start_ = std::chrono::steady_clock::now();
}

RateWindow::RateWindow(double epoch_seconds, std::size_t num_epochs)
    : epoch_seconds_(epoch_seconds), num_epochs_(num_epochs),
      ring_(num_epochs) {
  MECSCHED_REQUIRE(std::isfinite(epoch_seconds) && epoch_seconds >= 0.0,
                   "window epoch_seconds must be finite and >= 0");
  MECSCHED_REQUIRE(num_epochs > 0, "window needs at least one epoch");
}

std::uint64_t RateWindow::current_index_locked() const {
  std::uint64_t timed = 0;
  if (epoch_seconds_ > 0.0) {
    timed = static_cast<std::uint64_t>(elapsed_seconds(start_) /
                                       epoch_seconds_);
  }
  return timed + manual_offset_;
}

void RateWindow::record(std::uint64_t n) {
  const MutexLock lock(mu_);
  const std::uint64_t index = current_index_locked();
  Epoch& e = ring_[static_cast<std::size_t>(index % num_epochs_)];
  if (!e.live || e.index != index) {
    e.live = true;
    e.index = index;
    e.count = 0;
  }
  e.count += n;
}

void RateWindow::advance(std::size_t epochs) {
  const MutexLock lock(mu_);
  manual_offset_ += epochs;
}

std::uint64_t RateWindow::live_count_locked(std::uint64_t now_index) const {
  const std::uint64_t oldest =
      now_index >= num_epochs_ - 1 ? now_index - (num_epochs_ - 1) : 0;
  std::uint64_t count = 0;
  for (const Epoch& e : ring_) {
    if (e.live && e.index >= oldest && e.index <= now_index) count += e.count;
  }
  return count;
}

RateWindow::Snapshot RateWindow::snapshot() const {
  const MutexLock lock(mu_);
  Snapshot s;
  s.count = live_count_locked(current_index_locked());
  if (epoch_seconds_ > 0.0) {
    s.span_seconds =
        std::clamp(elapsed_seconds(start_), epoch_seconds_,
                   epoch_seconds_ * static_cast<double>(num_epochs_));
    s.rate_hz = static_cast<double>(s.count) / s.span_seconds;
  }
  return s;
}

void RateWindow::merge_from(const RateWindow& other) {
  std::uint64_t live = 0;
  {
    const MutexLock lock(other.mu_);
    live = other.live_count_locked(other.current_index_locked());
  }
  if (live == 0) return;
  record(live);
}

void RateWindow::reset() {
  const MutexLock lock(mu_);
  for (Epoch& e : ring_) e = Epoch{};
  manual_offset_ = 0;
  start_ = std::chrono::steady_clock::now();
}

}  // namespace mecsched::obs
