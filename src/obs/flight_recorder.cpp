#include "obs/flight_recorder.h"

#include <algorithm>
#include <functional>
#include <thread>

namespace mecsched::obs {

FlightRecorder& FlightRecorder::global() {
  // lint:allow-naked-new -- intentionally leaked singleton, like Registry.
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

void FlightRecorder::enable(std::size_t capacity_per_shard) {
  capacity_per_shard_.store(capacity_per_shard == 0 ? 1 : capacity_per_shard,
                            std::memory_order_relaxed);
  clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void FlightRecorder::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

FlightRecorder::Shard& FlightRecorder::shard_for_this_thread() {
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[h % kShards];
}

void FlightRecorder::record(SolveRecord r) {
  if (!enabled()) return;
  r.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t capacity =
      capacity_per_shard_.load(std::memory_order_relaxed);
  Shard& s = shard_for_this_thread();
  const MutexLock lock(s.mu);
  if (s.ring.size() < capacity) {
    s.ring.push_back(std::move(r));
    s.head = s.ring.size() % capacity;
    return;
  }
  s.ring[s.head] = std::move(r);
  s.head = (s.head + 1) % capacity;
  s.wrapped = true;
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SolveRecord> FlightRecorder::snapshot() const {
  std::vector<SolveRecord> out;
  for (const Shard& s : shards_) {
    const MutexLock lock(s.mu);
    out.insert(out.end(), s.ring.begin(), s.ring.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SolveRecord& a, const SolveRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

void FlightRecorder::clear() {
  for (Shard& s : shards_) {
    const MutexLock lock(s.mu);
    s.ring.clear();
    s.head = 0;
    s.wrapped = false;
  }
  seq_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace mecsched::obs
