// Exporters for the observability layer.
//
//   * Chrome trace_event JSON — load the file in chrome://tracing or
//     https://ui.perfetto.dev to see the span timeline per thread.
//   * Prometheus text exposition — counters get a `_total` suffix,
//     histograms expand to `_bucket{le=...}` / `_sum` / `_count`, names
//     are prefixed `mecsched_` and sanitized to the Prometheus charset.
//   * A fixed-width console summary table (common/table) for --obs-summary
//     and the bench harness.
#pragma once

#include <string>

#include "common/table.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "obs/window.h"

namespace mecsched::obs {

// Renders the tracer's buffered events as a Chrome trace JSON document
// ({"traceEvents":[...], ...}).
std::string to_chrome_json(const Tracer& tracer);
void write_chrome_trace(const Tracer& tracer, const std::string& path);

// Renders the registry in the Prometheus text exposition format.
// Windowed families export as gauges under `<name>.window.*`
// (mecsched_<name>_window_p50/p90/p95/p99/count/rate_hz) — rolling
// values, re-sampled at scrape time, are gauges by Prometheus convention.
std::string to_prometheus(const Registry& registry);
void write_prometheus(const Registry& registry, const std::string& path);

// One row per metric: kind, count, total, mean, min, max, p50, p90, p99.
// Histogram percentiles come from Histogram::approx_percentile; windowed
// families append their own `<name>.window` rows.
Table summary_table(const Registry& registry);

// Renders the flight recorder's buffered SolveRecords as JSON Lines (one
// record object per line, seq-ordered) — the post-mortem artifact behind
// the CLI's --flight-out flag and `mecsched report`.
std::string to_flight_jsonl(const FlightRecorder& recorder);
void write_flight_jsonl(const FlightRecorder& recorder,
                        const std::string& path);

}  // namespace mecsched::obs
