// Windowed (rolling) metric primitives: WindowedHistogram and RateWindow.
//
// A process-lifetime Histogram answers "what happened since start"; the
// serve north-star needs "what is happening *now*" — rolling p50/p95/p99
// decision latency and event rates over the last N seconds. Both
// primitives here keep a ring of fixed-duration epochs; an observation
// lands in the current epoch, and a snapshot aggregates only the epochs
// still inside the window, so old load silently ages out.
//
// WindowedHistogram reuses Histogram's static log10 bucket grid, which
// makes epoch aggregation and cross-shard merging exact bucket adds and
// lets percentile_from_buckets() serve both the windowed and the
// process-lifetime views.
//
// Epoch advancement has two modes:
//   * timed (epoch_seconds > 0): the current epoch is derived from a
//     steady clock, so a long-running daemon rolls automatically;
//   * manual (epoch_seconds == 0): epochs advance only via advance() —
//     deterministic by construction, which is what the sweep-shard
//     determinism tests and epoch-driven callers (controller loops) use.
// advance() works in both modes (it shifts the epoch index on top of the
// clock), so a test can force expiry without sleeping.
//
// Thread-safety matches Histogram: one uncontended mutex per instance.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/registry.h"

namespace mecsched::obs {

// Rolling distribution over the last `num_epochs * epoch_seconds` seconds.
class WindowedHistogram {
 public:
  // epoch_seconds == 0 selects manual mode (advance() only).
  explicit WindowedHistogram(double epoch_seconds = 1.0,
                             std::size_t num_epochs = 60);

  void observe(double v);
  // Rotates the window forward by `epochs` epochs (manual mode's only
  // clock; also usable in timed mode to force expiry).
  void advance(std::size_t epochs = 1);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::quiet_NaN();
    double max = std::numeric_limits<double>::quiet_NaN();
    double p50 = std::numeric_limits<double>::quiet_NaN();
    double p90 = std::numeric_limits<double>::quiet_NaN();
    double p95 = std::numeric_limits<double>::quiet_NaN();
    double p99 = std::numeric_limits<double>::quiet_NaN();
    // Events per second over the covered span; NaN in manual mode (no
    // wall-clock to divide by).
    double rate_hz = std::numeric_limits<double>::quiet_NaN();
    double span_seconds = 0.0;
  };
  Snapshot snapshot() const;

  // Folds the other window's live samples into *this*'s current epoch.
  // Collapsing (rather than aligning epochs) keeps the merge commutative
  // and exact on counts/sums/buckets, so merging sweep shards in grid
  // order yields a schedule-independent result. Safe against concurrent
  // observers of either side; self-merge is a no-op-safe double count
  // like Histogram's.
  void merge_from(const WindowedHistogram& other);
  void reset();

  double epoch_seconds() const { return epoch_seconds_; }
  std::size_t num_epochs() const { return num_epochs_; }

 private:
  struct Epoch {
    bool live = false;
    std::uint64_t index = 0;  // absolute epoch number
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::vector<std::uint64_t> buckets;  // per-bucket (not cumulative)
  };
  // Aggregate of the live epochs — the lock-free half of merge_from.
  struct Aggregate {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::vector<std::uint64_t> buckets;
  };

  std::uint64_t current_index_locked() const MECSCHED_REQUIRES(mu_);
  Epoch& epoch_for_write_locked(std::uint64_t index) MECSCHED_REQUIRES(mu_);
  Aggregate aggregate_locked(std::uint64_t now_index) const
      MECSCHED_REQUIRES(mu_);
  Aggregate aggregate() const MECSCHED_EXCLUDES(mu_);
  void fold_locked(const Aggregate& agg) MECSCHED_REQUIRES(mu_);

  mutable Mutex mu_;
  double epoch_seconds_;   // immutable after construction
  std::size_t num_epochs_;  // immutable after construction
  std::uint64_t manual_offset_ MECSCHED_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point start_ MECSCHED_GUARDED_BY(mu_) =
      std::chrono::steady_clock::now();
  std::vector<Epoch> ring_ MECSCHED_GUARDED_BY(mu_);
};

// Rolling event rate over the last `num_epochs * epoch_seconds` seconds —
// a WindowedHistogram stripped to counts, for "decisions per second"
// style families where the value distribution is irrelevant.
class RateWindow {
 public:
  explicit RateWindow(double epoch_seconds = 1.0, std::size_t num_epochs = 60);

  void record(std::uint64_t n = 1);
  void advance(std::size_t epochs = 1);

  struct Snapshot {
    std::uint64_t count = 0;
    double rate_hz = std::numeric_limits<double>::quiet_NaN();
    double span_seconds = 0.0;
  };
  Snapshot snapshot() const;

  // Adds the other window's live count into *this*'s current epoch (same
  // collapse semantics as WindowedHistogram::merge_from).
  void merge_from(const RateWindow& other);
  void reset();

  double epoch_seconds() const { return epoch_seconds_; }
  std::size_t num_epochs() const { return num_epochs_; }

 private:
  struct Epoch {
    bool live = false;
    std::uint64_t index = 0;
    std::uint64_t count = 0;
  };

  std::uint64_t current_index_locked() const MECSCHED_REQUIRES(mu_);
  std::uint64_t live_count_locked(std::uint64_t now_index) const
      MECSCHED_REQUIRES(mu_);

  mutable Mutex mu_;
  double epoch_seconds_;   // immutable after construction
  std::size_t num_epochs_;  // immutable after construction
  std::uint64_t manual_offset_ MECSCHED_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point start_ MECSCHED_GUARDED_BY(mu_) =
      std::chrono::steady_clock::now();
  std::vector<Epoch> ring_ MECSCHED_GUARDED_BY(mu_);
};

}  // namespace mecsched::obs
