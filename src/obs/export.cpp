#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace mecsched::obs {
namespace {

// Minimal JSON string escaping (the trace writer cannot depend on io/,
// which sits above obs in the layer order).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*, conventionally
// namespaced. Dots and dashes become underscores.
std::string prom_name(const std::string& name) {
  std::string out = "mecsched_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_num(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os << v;
  return os.str();
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary);
  MECSCHED_REQUIRE(f.good(), "cannot open for writing: " + path);
  f << content;
  MECSCHED_REQUIRE(f.good(), "write failed: " + path);
}

}  // namespace

std::string to_chrome_json(const Tracer& tracer) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : tracer.snapshot()) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
       << json_escape(ev.category) << "\",\"ph\":\""
       << static_cast<char>(ev.phase) << "\",\"ts\":" << ev.ts_us
       << ",\"pid\":1,\"tid\":" << (ev.tid % 1000000);
    if (ev.phase == Phase::kComplete) os << ",\"dur\":" << ev.dur_us;
    if (ev.phase == Phase::kInstant) os << ",\"s\":\"t\"";
    if (!ev.args_json.empty()) os << ",\"args\":{" << ev.args_json << "}";
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
     << tracer.dropped() << "}}\n";
  return os.str();
}

void write_chrome_trace(const Tracer& tracer, const std::string& path) {
  write_text_file(path, to_chrome_json(tracer));
}

namespace {

// Gauge-family line pair for the windowed exports.
void prom_window_gauge(std::ostringstream& os, const std::string& base,
                       const char* field, double value) {
  const std::string p = prom_name(base + ".window." + field);
  os << "# TYPE " << p << " gauge\n" << p << " " << prom_num(value) << "\n";
}

}  // namespace

std::string to_prometheus(const Registry& registry) {
  std::ostringstream os;
  for (const auto& [name, value] : registry.counters()) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << "_total counter\n"
       << p << "_total " << value << "\n";
  }
  for (const auto& [name, value] : registry.gauges()) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << " gauge\n" << p << " " << prom_num(value) << "\n";
  }
  for (const auto& [name, hist] : registry.histograms()) {
    const std::string p = prom_name(name);
    const Summary s = hist->summary();
    os << "# TYPE " << p << " histogram\n";
    const std::vector<double>& bounds = Histogram::bucket_bounds();
    const std::vector<std::uint64_t> cumulative = hist->cumulative_buckets();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      os << p << "_bucket{le=\"" << prom_num(bounds[i]) << "\"} "
         << cumulative[i] << "\n";
    }
    os << p << "_bucket{le=\"+Inf\"} " << s.count() << "\n"
       << p << "_sum " << prom_num(s.sum()) << "\n"
       << p << "_count " << s.count() << "\n";
  }
  for (const auto& [name, w] : registry.windows()) {
    const WindowedHistogram::Snapshot s = w->snapshot();
    prom_window_gauge(os, name, "count", static_cast<double>(s.count));
    prom_window_gauge(os, name, "p50", s.p50);
    prom_window_gauge(os, name, "p90", s.p90);
    prom_window_gauge(os, name, "p95", s.p95);
    prom_window_gauge(os, name, "p99", s.p99);
    prom_window_gauge(os, name, "rate_hz", s.rate_hz);
  }
  for (const auto& [name, r] : registry.rates()) {
    const RateWindow::Snapshot s = r->snapshot();
    prom_window_gauge(os, name, "count", static_cast<double>(s.count));
    prom_window_gauge(os, name, "rate_hz", s.rate_hz);
  }
  return os.str();
}

void write_prometheus(const Registry& registry, const std::string& path) {
  write_text_file(path, to_prometheus(registry));
}

Table summary_table(const Registry& registry) {
  Table t({"metric", "kind", "count", "total", "mean", "min", "max", "p50",
           "p90", "p99"});
  for (const auto& [name, value] : registry.counters()) {
    t.add_row({name, "counter", std::to_string(value), "-", "-", "-", "-",
               "-", "-", "-"});
  }
  for (const auto& [name, value] : registry.gauges()) {
    t.add_row({name, "gauge", "-", Table::num(value, 4), "-", "-", "-", "-",
               "-", "-"});
  }
  for (const auto& [name, hist] : registry.histograms()) {
    const Summary s = hist->summary();
    if (s.count() == 0) {
      t.add_row({name, "histogram", "0", "-", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    t.add_row({name, "histogram", std::to_string(s.count()),
               Table::num(s.sum(), 4), Table::num(s.mean(), 6),
               Table::num(s.min(), 6), Table::num(s.max(), 6),
               Table::num(hist->approx_percentile(0.50), 6),
               Table::num(hist->approx_percentile(0.90), 6),
               Table::num(hist->approx_percentile(0.99), 6)});
  }
  for (const auto& [name, w] : registry.windows()) {
    const WindowedHistogram::Snapshot s = w->snapshot();
    if (s.count == 0) {
      t.add_row({name + ".window", "window", "0", "-", "-", "-", "-", "-",
                 "-", "-"});
      continue;
    }
    t.add_row({name + ".window", "window", std::to_string(s.count),
               Table::num(s.sum, 4),
               Table::num(s.sum / static_cast<double>(s.count), 6),
               Table::num(s.min, 6), Table::num(s.max, 6),
               Table::num(s.p50, 6), Table::num(s.p90, 6),
               Table::num(s.p99, 6)});
  }
  for (const auto& [name, r] : registry.rates()) {
    const RateWindow::Snapshot s = r->snapshot();
    // The mean column carries the rolling events/second (a mean rate).
    t.add_row({name + ".window", "rate", std::to_string(s.count), "-",
               std::isnan(s.rate_hz) ? "-" : Table::num(s.rate_hz, 4), "-",
               "-", "-", "-", "-"});
  }
  return t;
}

namespace {

std::string json_num_or_null(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string to_flight_jsonl(const FlightRecorder& recorder) {
  std::ostringstream os;
  for (const SolveRecord& r : recorder.snapshot()) {
    os << "{\"seq\":" << r.seq << ",\"layer\":\"" << json_escape(r.layer)
       << "\",\"engine\":\"" << json_escape(r.engine) << "\",\"status\":\""
       << json_escape(r.status) << "\",\"detail\":\"" << json_escape(r.detail)
       << "\",\"seconds\":" << json_num_or_null(r.seconds)
       << ",\"iterations\":" << r.iterations << ",\"deadline_residual_ms\":"
       << json_num_or_null(r.deadline_residual_ms) << ",\"deadline_hit\":"
       << (r.deadline_hit ? "true" : "false") << ",\"warm_start\":"
       << (r.warm_start ? "true" : "false") << ",\"cache_hit\":"
       << (r.cache_hit ? "true" : "false") << ",\"chaos_hits\":"
       << r.chaos_hits << ",\"audit\":\"" << json_escape(r.audit) << "\"}\n";
  }
  return os.str();
}

void write_flight_jsonl(const FlightRecorder& recorder,
                        const std::string& path) {
  write_text_file(path, to_flight_jsonl(recorder));
}

}  // namespace mecsched::obs
