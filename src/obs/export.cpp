#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace mecsched::obs {
namespace {

// Minimal JSON string escaping (the trace writer cannot depend on io/,
// which sits above obs in the layer order).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*, conventionally
// namespaced. Dots and dashes become underscores.
std::string prom_name(const std::string& name) {
  std::string out = "mecsched_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_num(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os << v;
  return os.str();
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary);
  MECSCHED_REQUIRE(f.good(), "cannot open for writing: " + path);
  f << content;
  MECSCHED_REQUIRE(f.good(), "write failed: " + path);
}

}  // namespace

std::string to_chrome_json(const Tracer& tracer) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : tracer.snapshot()) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
       << json_escape(ev.category) << "\",\"ph\":\""
       << static_cast<char>(ev.phase) << "\",\"ts\":" << ev.ts_us
       << ",\"pid\":1,\"tid\":" << (ev.tid % 1000000);
    if (ev.phase == Phase::kComplete) os << ",\"dur\":" << ev.dur_us;
    if (ev.phase == Phase::kInstant) os << ",\"s\":\"t\"";
    if (!ev.args_json.empty()) os << ",\"args\":{" << ev.args_json << "}";
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
     << tracer.dropped() << "}}\n";
  return os.str();
}

void write_chrome_trace(const Tracer& tracer, const std::string& path) {
  write_text_file(path, to_chrome_json(tracer));
}

std::string to_prometheus(const Registry& registry) {
  std::ostringstream os;
  for (const auto& [name, value] : registry.counters()) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << "_total counter\n"
       << p << "_total " << value << "\n";
  }
  for (const auto& [name, value] : registry.gauges()) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << " gauge\n" << p << " " << prom_num(value) << "\n";
  }
  for (const auto& [name, hist] : registry.histograms()) {
    const std::string p = prom_name(name);
    const Summary s = hist->summary();
    os << "# TYPE " << p << " histogram\n";
    const std::vector<double>& bounds = Histogram::bucket_bounds();
    const std::vector<std::uint64_t> cumulative = hist->cumulative_buckets();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      os << p << "_bucket{le=\"" << prom_num(bounds[i]) << "\"} "
         << cumulative[i] << "\n";
    }
    os << p << "_bucket{le=\"+Inf\"} " << s.count() << "\n"
       << p << "_sum " << prom_num(s.sum()) << "\n"
       << p << "_count " << s.count() << "\n";
  }
  return os.str();
}

void write_prometheus(const Registry& registry, const std::string& path) {
  write_text_file(path, to_prometheus(registry));
}

Table summary_table(const Registry& registry) {
  Table t({"metric", "kind", "count", "total", "mean", "min", "max"});
  for (const auto& [name, value] : registry.counters()) {
    t.add_row({name, "counter", std::to_string(value), "-", "-", "-", "-"});
  }
  for (const auto& [name, value] : registry.gauges()) {
    t.add_row({name, "gauge", "-", Table::num(value, 4), "-", "-", "-"});
  }
  for (const auto& [name, hist] : registry.histograms()) {
    const Summary s = hist->summary();
    if (s.count() == 0) {
      t.add_row({name, "histogram", "0", "-", "-", "-", "-"});
      continue;
    }
    t.add_row({name, "histogram", std::to_string(s.count()),
               Table::num(s.sum(), 4), Table::num(s.mean(), 6),
               Table::num(s.min(), 6), Table::num(s.max(), 6)});
  }
  return t;
}

}  // namespace mecsched::obs
