#include "obs/registry.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mecsched::obs {

const std::vector<double>& Histogram::bucket_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (int e = -9; e <= 9; ++e) b.push_back(std::pow(10.0, e));
    return b;
  }();
  return bounds;
}

void Histogram::observe(double v) {
  const std::lock_guard<std::mutex> lock(mu_);
  summary_.add(v);
  if (buckets_.empty()) buckets_.assign(bucket_bounds().size(), 0);
  // NaN is kept out of the ordered bucket search; it lands only in the
  // implicit +Inf bucket (= summary count), as does any v above the last
  // finite bound.
  if (std::isnan(v)) return;
  const auto& bounds = bucket_bounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  if (it != bounds.end()) {
    ++buckets_[static_cast<std::size_t>(it - bounds.begin())];
  }
}

Summary Histogram::summary() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return summary_;
}

std::vector<std::uint64_t> Histogram::cumulative_buckets() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> out(bucket_bounds().size(), 0);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i < buckets_.size()) acc += buckets_[i];
    out[i] = acc;
  }
  return out;
}

void Histogram::merge_from(const Histogram& other) {
  // Snapshot `other` under its own lock (via the accessors) before taking
  // ours, so self-merge and concurrent writers stay safe.
  const Summary s = other.summary();
  const std::vector<std::uint64_t> cumulative = other.cumulative_buckets();
  const std::lock_guard<std::mutex> lock(mu_);
  if (s.count() == 0) return;
  summary_.merge(s);
  if (buckets_.empty()) buckets_.assign(bucket_bounds().size(), 0);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    buckets_[i] += cumulative[i] - prev;
    prev = cumulative[i];
  }
}

void Histogram::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  summary_ = Summary{};
  buckets_.clear();
}

Registry& Registry::global() {
  // Metric references must outlive static-destruction order.
  // lint:allow-naked-new -- intentionally leaked singleton.
  static Registry* instance = new Registry();
  return *instance;
}

namespace {

// One name maps to one metric kind; a kind collision is a programming
// error worth failing loudly on.
template <typename Map>
void require_unregistered(const Map& m, const std::string& name,
                          const char* other_kind) {
  MECSCHED_REQUIRE(m.find(name) == m.end(),
                   "obs metric '" + name + "' already registered as a " +
                       other_kind);
}

}  // namespace

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    require_unregistered(gauges_, name, "gauge");
    require_unregistered(histograms_, name, "histogram");
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    require_unregistered(counters_, name, "counter");
    require_unregistered(histograms_, name, "histogram");
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    require_unregistered(counters_, name, "counter");
    require_unregistered(gauges_, name, "gauge");
    it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void Registry::merge_from(const Registry& other) {
  // The snapshot accessors lock `other`; counter()/gauge()/histogram()
  // lock us while resolving the entry, then write through the returned
  // reference. No lock is ever held across both registries.
  for (const auto& [name, value] : other.counters()) counter(name).add(value);
  for (const auto& [name, value] : other.gauges()) gauge(name).set(value);
  for (const auto& [name, h] : other.histograms()) {
    histogram(name).merge_from(*h);
  }
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> Registry::histograms()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

}  // namespace mecsched::obs
