#include "obs/registry.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "obs/window.h"

namespace mecsched::obs {

const std::vector<double>& Histogram::bucket_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (int e = -9; e <= 9; ++e) b.push_back(std::pow(10.0, e));
    return b;
  }();
  return bounds;
}

void Histogram::observe(double v) {
  const MutexLock lock(mu_);
  summary_.add(v);
  if (buckets_.empty()) buckets_.assign(bucket_bounds().size(), 0);
  // NaN is kept out of the ordered bucket search; it lands only in the
  // implicit +Inf bucket (= summary count), as does any v above the last
  // finite bound.
  if (std::isnan(v)) return;
  const auto& bounds = bucket_bounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  if (it != bounds.end()) {
    ++buckets_[static_cast<std::size_t>(it - bounds.begin())];
  }
}

Summary Histogram::summary() const {
  const MutexLock lock(mu_);
  return summary_;
}

std::vector<std::uint64_t> Histogram::cumulative_buckets() const {
  const MutexLock lock(mu_);
  std::vector<std::uint64_t> out(bucket_bounds().size(), 0);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i < buckets_.size()) acc += buckets_[i];
    out[i] = acc;
  }
  return out;
}

void Histogram::merge_from(const Histogram& other) {
  // Snapshot `other` under its own lock (via the accessors) before taking
  // ours, so self-merge and concurrent writers stay safe.
  const Summary s = other.summary();
  const std::vector<std::uint64_t> cumulative = other.cumulative_buckets();
  const MutexLock lock(mu_);
  if (s.count() == 0) return;
  summary_.merge(s);
  if (buckets_.empty()) buckets_.assign(bucket_bounds().size(), 0);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    buckets_[i] += cumulative[i] - prev;
    prev = cumulative[i];
  }
}

void Histogram::reset() {
  const MutexLock lock(mu_);
  summary_ = Summary{};
  buckets_.clear();
}

double Histogram::approx_percentile(double q) const {
  // One lock for a consistent (buckets, summary) pair; the accessors each
  // lock on their own and std::mutex is not recursive.
  const MutexLock lock(mu_);
  std::vector<std::uint64_t> cumulative(bucket_bounds().size(), 0);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    if (i < buckets_.size()) acc += buckets_[i];
    cumulative[i] = acc;
  }
  return percentile_from_buckets(cumulative, summary_.count(), q,
                                 summary_.min(), summary_.max());
}

double percentile_from_buckets(const std::vector<std::uint64_t>& cumulative,
                               std::uint64_t total_count, double q,
                               double min_clamp, double max_clamp) {
  if (total_count == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const std::vector<double>& bounds = Histogram::bucket_bounds();
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total_count))));
  std::size_t i = 0;
  while (i < cumulative.size() && cumulative[i] < target) ++i;
  double value;
  if (i == cumulative.size()) {
    // Target rank sits in the implicit +Inf bucket (NaNs / huge values);
    // the observed max is the only estimate left, the last finite bound
    // the fallback.
    value = std::isnan(max_clamp) ? bounds.back() : max_clamp;
  } else {
    const double upper = bounds[i];
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const std::uint64_t prev = i == 0 ? 0 : cumulative[i - 1];
    const std::uint64_t in_bucket = cumulative[i] - prev;
    const double frac =
        in_bucket == 0 ? 1.0
                       : static_cast<double>(target - prev) /
                             static_cast<double>(in_bucket);
    value = lower + frac * (upper - lower);
  }
  if (!std::isnan(min_clamp)) value = std::max(value, min_clamp);
  if (!std::isnan(max_clamp)) value = std::min(value, max_clamp);
  return value;
}

Registry& Registry::global() {
  // Metric references must outlive static-destruction order.
  // lint:allow-naked-new -- intentionally leaked singleton.
  static Registry* instance = new Registry();
  return *instance;
}

// Out of line so the unique_ptr<WindowedHistogram/RateWindow> maps see the
// complete types (registry.h only forward-declares them).
Registry::Registry() = default;
Registry::~Registry() = default;

namespace {

// One name maps to one metric kind; a kind collision is a programming
// error worth failing loudly on.
template <typename Map>
void require_unregistered(const Map& m, const std::string& name,
                          const char* other_kind) {
  MECSCHED_REQUIRE(m.find(name) == m.end(),
                   "obs metric '" + name + "' already registered as a " +
                       other_kind);
}

}  // namespace

Counter& Registry::counter(const std::string& name) {
  const MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    require_unregistered(gauges_, name, "gauge");
    require_unregistered(histograms_, name, "histogram");
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  const MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    require_unregistered(counters_, name, "counter");
    require_unregistered(histograms_, name, "histogram");
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name) {
  const MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    require_unregistered(counters_, name, "counter");
    require_unregistered(gauges_, name, "gauge");
    it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

WindowedHistogram& Registry::window(const std::string& name,
                                    double epoch_seconds,
                                    std::size_t num_epochs) {
  const MutexLock lock(mu_);
  auto it = windows_.find(name);
  if (it == windows_.end()) {
    require_unregistered(rates_, name, "rate window");
    it = windows_
             .emplace(name, std::make_unique<WindowedHistogram>(epoch_seconds,
                                                                num_epochs))
             .first;
  }
  return *it->second;
}

RateWindow& Registry::rate(const std::string& name, double epoch_seconds,
                           std::size_t num_epochs) {
  const MutexLock lock(mu_);
  auto it = rates_.find(name);
  if (it == rates_.end()) {
    require_unregistered(windows_, name, "window");
    it = rates_
             .emplace(name,
                      std::make_unique<RateWindow>(epoch_seconds, num_epochs))
             .first;
  }
  return *it->second;
}

void Registry::reset() {
  const MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, w] : windows_) w->reset();
  for (auto& [name, r] : rates_) r->reset();
}

void Registry::merge_from(const Registry& other) {
  // The snapshot accessors lock `other`; counter()/gauge()/histogram()
  // lock us while resolving the entry, then write through the returned
  // reference. No lock is ever held across both registries.
  for (const auto& [name, value] : other.counters()) counter(name).add(value);
  for (const auto& [name, value] : other.gauges()) gauge(name).set(value);
  for (const auto& [name, h] : other.histograms()) {
    histogram(name).merge_from(*h);
  }
  for (const auto& [name, w] : other.windows()) {
    window(name, w->epoch_seconds(), w->num_epochs()).merge_from(*w);
  }
  for (const auto& [name, r] : other.rates()) {
    rate(name, r->epoch_seconds(), r->num_epochs()).merge_from(*r);
  }
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  const MutexLock lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  const MutexLock lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> Registry::histograms()
    const {
  const MutexLock lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

std::vector<std::pair<std::string, const WindowedHistogram*>>
Registry::windows() const {
  const MutexLock lock(mu_);
  std::vector<std::pair<std::string, const WindowedHistogram*>> out;
  out.reserve(windows_.size());
  for (const auto& [name, w] : windows_) out.emplace_back(name, w.get());
  return out;
}

std::vector<std::pair<std::string, const RateWindow*>> Registry::rates()
    const {
  const MutexLock lock(mu_);
  std::vector<std::pair<std::string, const RateWindow*>> out;
  out.reserve(rates_.size());
  for (const auto& [name, r] : rates_) out.emplace_back(name, r.get());
  return out;
}

}  // namespace mecsched::obs
