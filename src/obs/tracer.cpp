#include "obs/tracer.h"

#include <functional>
#include <thread>

#include "obs/registry.h"

namespace mecsched::obs {
namespace {

std::uint64_t this_thread_id() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace

Tracer& Tracer::global() {
  // lint:allow-naked-new -- intentionally leaked singleton, like Registry.
  static Tracer* instance = new Tracer();
  return *instance;
}

std::int64_t Tracer::steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Tracer::enable(std::size_t capacity) {
  const MutexLock lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  head_ = 0;
  wrapped_ = false;
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

std::int64_t Tracer::now_us() const {
  // Same truncation as the previous duration_cast-to-microseconds of a
  // time_point difference: integer nanoseconds divided toward zero.
  return (steady_now_ns() - epoch_ns_.load(std::memory_order_relaxed)) /
         1000;
}

void Tracer::push(TraceEvent ev) {
  const MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
    head_ = ring_.size() % capacity_;
    return;
  }
  ring_[head_] = std::move(ev);
  head_ = (head_ + 1) % capacity_;
  wrapped_ = true;
  dropped_.fetch_add(1, std::memory_order_relaxed);
  // Surface the overflow outside the trace file too: the CLI and bench
  // harness warn on exit when this counter moved (the trace JSON alone
  // buries the loss in otherData). The reference is stable across
  // Registry::reset(), so resolving it once is safe.
  static Counter& dropped_events =
      Registry::global().counter("obs.tracer.dropped_events");
  dropped_events.add();
}

void Tracer::begin(const std::string& name, const std::string& category) {
  if (!enabled()) return;
  push({name, category, Phase::kBegin, now_us(), 0, this_thread_id(), ""});
}

void Tracer::end(const std::string& name, const std::string& category) {
  if (!enabled()) return;
  push({name, category, Phase::kEnd, now_us(), 0, this_thread_id(), ""});
}

void Tracer::complete(const std::string& name, const std::string& category,
                      std::int64_t ts_us, std::int64_t dur_us,
                      const std::string& args_json) {
  if (!enabled()) return;
  push({name, category, Phase::kComplete, ts_us, dur_us, this_thread_id(),
        args_json});
}

void Tracer::instant(const std::string& name, const std::string& category,
                     const std::string& args_json) {
  if (!enabled()) return;
  push({name, category, Phase::kInstant, now_us(), 0, this_thread_id(),
        args_json});
}

std::vector<TraceEvent> Tracer::snapshot() const {
  const MutexLock lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    out.insert(out.end(), ring_.begin() + static_cast<long>(head_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<long>(head_));
  } else {
    out = ring_;
  }
  return out;
}

void Tracer::clear() {
  const MutexLock lock(mu_);
  ring_.clear();
  head_ = 0;
  wrapped_ = false;
  dropped_.store(0, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(std::string name, std::string category,
                         std::string args_json)
    : name_(std::move(name)),
      category_(std::move(category)),
      args_json_(std::move(args_json)),
      start_(std::chrono::steady_clock::now()) {
  histogram_ = &Registry::global().histogram(name_ + ".seconds");
  Tracer& t = Tracer::global();
  traced_ = t.enabled();
  if (traced_) start_us_ = t.now_us();
}

ScopedTimer::~ScopedTimer() {
  const double seconds = elapsed_s();
  histogram_->observe(seconds);
  if (traced_) {
    Tracer& t = Tracer::global();
    // Re-check: the tracer may have been disabled mid-span (complete() is
    // a no-op then, which is fine — the metrics side already recorded).
    t.complete(name_, category_, start_us_,
               static_cast<std::int64_t>(seconds * 1e6), args_json_);
  }
}

double ScopedTimer::elapsed_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace mecsched::obs
