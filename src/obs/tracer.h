// Ring-buffered structured event tracer + the ScopedTimer RAII span.
//
// The tracer records begin/end/complete spans and instant events into a
// fixed-capacity ring buffer (oldest events are overwritten, a drop count
// is kept) and exports them as Chrome `trace_event` JSON — loadable in
// chrome://tracing and Perfetto (obs/export.h). It is:
//
//   * disabled by default and near-zero cost while disabled: every record
//     call first checks one relaxed atomic and returns before touching the
//     clock, the lock or any allocation;
//   * thread-safe: events carry the recording thread's id so parallel
//     LP-HTA cluster solves render as separate tracks.
//
// ScopedTimer is the one instrumentation primitive call sites use: it
// always feeds its duration into the registry histogram `<name>.seconds`
// (so metrics exist even with tracing off — bench wall-clock lines and
// traces agree by construction), and additionally emits a Complete ('X')
// trace event when the tracer is enabled.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace mecsched::obs {

class Histogram;

// Chrome trace_event phases we emit.
enum class Phase : char {
  kBegin = 'B',
  kEnd = 'E',
  kComplete = 'X',  // begin + duration in one event
  kInstant = 'i',
};

struct TraceEvent {
  std::string name;
  std::string category;
  Phase phase = Phase::kInstant;
  std::int64_t ts_us = 0;   // microseconds since the tracer epoch
  std::int64_t dur_us = 0;  // kComplete only
  std::uint64_t tid = 0;    // hashed std::thread::id
  std::string args_json;    // pre-rendered JSON object body, may be empty
};

class Tracer {
 public:
  // The process-wide instance; disabled until enable() is called.
  static Tracer& global();

  // Starts (or restarts) capture with the given ring capacity. Clears any
  // previously captured events and resets the timestamp epoch.
  void enable(std::size_t capacity = 1 << 16);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Record calls are no-ops while disabled.
  void begin(const std::string& name, const std::string& category);
  void end(const std::string& name, const std::string& category);
  void complete(const std::string& name, const std::string& category,
                std::int64_t ts_us, std::int64_t dur_us,
                const std::string& args_json = "");
  void instant(const std::string& name, const std::string& category,
               const std::string& args_json = "");

  // Microseconds since the tracer epoch (enable() time). Valid to call
  // while disabled (epoch then defaults to construction time).
  std::int64_t now_us() const;

  // Oldest-first copy of the buffered events.
  std::vector<TraceEvent> snapshot() const;
  // Events overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  void clear();

 private:
  void push(TraceEvent ev);
  static std::int64_t steady_now_ns();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  // The epoch is read lock-free by now_us() on every record path while
  // enable() rewrites it, so it lives in an atomic (nanoseconds on the
  // steady clock) rather than under mu_ — the compile-time analysis
  // rejects the previous unguarded time_point.
  std::atomic<std::int64_t> epoch_ns_{steady_now_ns()};
  mutable Mutex mu_;
  std::vector<TraceEvent> ring_ MECSCHED_GUARDED_BY(mu_);
  std::size_t capacity_ MECSCHED_GUARDED_BY(mu_) = 1 << 16;
  std::size_t head_ MECSCHED_GUARDED_BY(mu_) = 0;  // next slot to write
  bool wrapped_ MECSCHED_GUARDED_BY(mu_) = false;
};

// RAII span: times the enclosed scope. Duration always lands in the
// registry histogram `<name>.seconds`; a Complete trace event is emitted
// iff the tracer was enabled when the timer was constructed. `args_json`
// (a rendered JSON object body like "\"station\":3") is only worth
// building when tracer().enabled() — guard at the call site.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name, std::string category = "mecsched",
                       std::string args_json = "");
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Seconds elapsed so far; usable before destruction (bench prints it).
  double elapsed_s() const;

 private:
  std::string name_;
  std::string category_;
  std::string args_json_;
  std::chrono::steady_clock::time_point start_;
  std::int64_t start_us_ = 0;
  Histogram* histogram_ = nullptr;
  bool traced_ = false;
};

}  // namespace mecsched::obs
