// The data-shared model of Sec. IV.
//
// D = {d_1, ..., d_M} is a universe of data items (blocks, after [19]);
// every mobile device i owns a subset D_i (monitoring regions overlap, so
// the D_i are not disjoint); a *divisible* task needs some subset of D and
// can be computed as an aggregation of partial results over any disjoint
// division of its data.
//
// Item sets are sorted unique vectors of item ids; the helpers below are
// the set algebra the coverage algorithms use.
#pragma once

#include <cstddef>
#include <vector>

#include "mec/task.h"
#include "mec/topology.h"

namespace mecsched::dta {

using ItemSet = std::vector<std::size_t>;  // sorted, unique ids

// Sorted-set algebra (inputs must be sorted unique; outputs are too).
ItemSet set_intersect(const ItemSet& a, const ItemSet& b);
ItemSet set_union(const ItemSet& a, const ItemSet& b);
ItemSet set_minus(const ItemSet& a, const ItemSet& b);
bool set_contains(const ItemSet& a, std::size_t item);
bool is_sorted_unique(const ItemSet& a);

// The universe D with per-item sizes.
class DataUniverse {
 public:
  explicit DataUniverse(std::vector<double> item_bytes);

  std::size_t num_items() const { return item_bytes_.size(); }
  double item_size(std::size_t r) const;
  double total_bytes(const ItemSet& items) const;

 private:
  std::vector<double> item_bytes_;
};

// A divisible task: the final result is an aggregation of partial results
// over any disjoint cover of `items` (e.g. Sum/Count in the paper).
struct DivisibleTask {
  mec::TaskId id;          // issuer (user) + index
  ItemSet items;           // LD ∪ ED: all data the task must consume
  double op_bytes = 1e3;   // size of the operation descriptor op_ij
  double cycles_per_byte = 330.0;
  mec::ResultSizeKind result_kind = mec::ResultSizeKind::kProportional;
  double result_ratio = 0.2;
  double result_const_bytes = 0.0;
  double resource = 1.0;   // C_ij
  double deadline_s = 0.0; // T_ij

  double result_bytes(double input_bytes) const {
    return result_kind == mec::ResultSizeKind::kProportional
               ? result_ratio * input_bytes
               : result_const_bytes;
  }
};

// A full data-shared problem instance.
struct SharedDataScenario {
  mec::Topology topology;
  DataUniverse universe;
  std::vector<ItemSet> ownership;  // D_i per device, sorted unique
  std::vector<DivisibleTask> tasks;

  // Validates sizes/ids; throws ModelError on inconsistency.
  void validate() const;

  // Union of all task item sets: the D that actually needs processing.
  ItemSet required_items() const;
};

}  // namespace mecsched::dta
