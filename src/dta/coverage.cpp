#include "dta/coverage.h"

#include <algorithm>

#include "common/error.h"
#include "dta/set_cover.h"

namespace mecsched::dta {

std::size_t Coverage::involved_devices() const {
  std::size_t n = 0;
  for (const ItemSet& s : assigned) n += s.empty() ? 0 : 1;
  return n;
}

std::size_t Coverage::max_share() const {
  std::size_t mx = 0;
  for (const ItemSet& s : assigned) mx = std::max(mx, s.size());
  return mx;
}

std::size_t Coverage::total_items() const {
  std::size_t n = 0;
  for (const ItemSet& s : assigned) n += s.size();
  return n;
}

double Coverage::max_share_bytes(const DataUniverse& universe) const {
  double mx = 0.0;
  for (const ItemSet& s : assigned) {
    mx = std::max(mx, universe.total_bytes(s));
  }
  return mx;
}

Coverage divide_balanced(const ItemSet& needed,
                         const std::vector<ItemSet>& ownership) {
  const std::size_t n = ownership.size();
  Coverage cover;
  cover.assigned.assign(n, {});
  ItemSet remaining = needed;
  std::vector<bool> used(n, false);

  // Paper Sec. IV.A, Steps 1-3: repeatedly pick the device with the
  // *smallest non-empty* intersection with the remaining data, hand it that
  // whole intersection, and shrink D. Devices whose data is scarce are
  // served first, so no single remaining owner is forced into a huge share.
  while (!remaining.empty()) {
    std::size_t best = n;
    std::size_t best_size = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const std::size_t size = set_intersect(ownership[i], remaining).size();
      if (size == 0) continue;
      if (best == n || size < best_size) {
        best = i;
        best_size = size;
      }
    }
    if (best == n) {
      throw ModelError("DTA-Workload: data item owned by no device");
    }
    cover.assigned[best] = set_intersect(ownership[best], remaining);
    remaining = set_minus(remaining, cover.assigned[best]);
    used[best] = true;
  }
  return cover;
}

Coverage divide_balanced_bytes(const ItemSet& needed,
                               const std::vector<ItemSet>& ownership,
                               const DataUniverse& universe) {
  const std::size_t n = ownership.size();
  Coverage cover;
  cover.assigned.assign(n, {});
  ItemSet remaining = needed;
  std::vector<bool> used(n, false);

  while (!remaining.empty()) {
    std::size_t best = n;
    double best_bytes = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const ItemSet inter = set_intersect(ownership[i], remaining);
      if (inter.empty()) continue;
      const double bytes = universe.total_bytes(inter);
      if (best == n || bytes < best_bytes) {
        best = i;
        best_bytes = bytes;
      }
    }
    if (best == n) {
      throw ModelError("DTA-Workload(bytes): data item owned by no device");
    }
    cover.assigned[best] = set_intersect(ownership[best], remaining);
    remaining = set_minus(remaining, cover.assigned[best]);
    used[best] = true;
  }
  return cover;
}

Coverage divide_min_devices(const ItemSet& needed,
                            const std::vector<ItemSet>& ownership) {
  Coverage cover;
  cover.assigned.assign(ownership.size(), {});
  // Greedy set cover picks the devices; each picked device takes every
  // still-unassigned item it owns (Sec. IV.B, Steps 1-3).
  ItemSet remaining = needed;
  for (std::size_t i : greedy_set_cover(needed, ownership)) {
    cover.assigned[i] = set_intersect(ownership[i], remaining);
    remaining = set_minus(remaining, cover.assigned[i]);
  }
  return cover;
}

bool is_valid_coverage(const Coverage& c, const ItemSet& needed,
                       const std::vector<ItemSet>& ownership) {
  if (c.assigned.size() != ownership.size()) return false;
  ItemSet all;
  std::size_t total = 0;
  for (std::size_t i = 0; i < c.assigned.size(); ++i) {
    if (!is_sorted_unique(c.assigned[i])) return false;
    // C_i ⊆ D_i (no raw-data movement)
    if (!set_minus(c.assigned[i], ownership[i]).empty()) return false;
    all = set_union(all, c.assigned[i]);
    total += c.assigned[i].size();
  }
  // disjoint (sizes add up) and complete (union == needed)
  return total == all.size() && all == needed;
}

}  // namespace mecsched::dta
