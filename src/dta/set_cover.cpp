#include "dta/set_cover.h"

#include <cstdint>

#include "common/error.h"

namespace mecsched::dta {

std::vector<std::size_t> greedy_set_cover(const ItemSet& universe,
                                          const std::vector<ItemSet>& sets) {
  std::vector<std::size_t> chosen;
  ItemSet remaining = universe;
  while (!remaining.empty()) {
    std::size_t best = sets.size();
    std::size_t best_gain = 0;
    for (std::size_t i = 0; i < sets.size(); ++i) {
      const std::size_t gain = set_intersect(sets[i], remaining).size();
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == sets.size()) {
      throw ModelError("set cover: universe not coverable by the family");
    }
    chosen.push_back(best);
    remaining = set_minus(remaining, sets[best]);
  }
  return chosen;
}

std::vector<std::size_t> exact_set_cover(const ItemSet& universe,
                                         const std::vector<ItemSet>& sets) {
  MECSCHED_REQUIRE(sets.size() <= 20, "exact set cover limited to 20 sets");
  const std::size_t n = sets.size();
  std::vector<std::size_t> best;
  bool found = false;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (found && static_cast<std::size_t>(__builtin_popcount(mask)) >=
                     best.size()) {
      continue;
    }
    ItemSet covered;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) covered = set_union(covered, sets[i]);
    }
    if (set_minus(universe, covered).empty()) {
      best.clear();
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) best.push_back(i);
      }
      found = true;
    }
  }
  if (!found) {
    throw ModelError("set cover: universe not coverable by the family");
  }
  return best;
}

}  // namespace mecsched::dta
