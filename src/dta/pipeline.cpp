#include "dta/pipeline.h"

#include <algorithm>
#include <map>
#include <set>

#include "assign/baselines.h"
#include "assign/evaluator.h"
#include "assign/hta_instance.h"
#include "audit/division_audit.h"
#include "common/error.h"
#include "mec/cost_model.h"

namespace mecsched::dta {

std::string to_string(DtaStrategy s) {
  switch (s) {
    case DtaStrategy::kWorkload:
      return "DTA-Workload";
    case DtaStrategy::kWorkloadBytes:
      return "DTA-Workload(bytes)";
    case DtaStrategy::kNumber:
      return "DTA-Number";
  }
  return "unknown";
}

namespace {

// A rearranged task: device `executor` processes `portion` of original
// task `source`.
struct PartialTask {
  std::size_t source = 0;    // index into scenario.tasks
  std::size_t executor = 0;  // device id
  double bytes = 0.0;        // |C_executor ∩ items(source)| in bytes
};

}  // namespace

DtaResult run_dta(const SharedDataScenario& scenario, DtaOptions options) {
  scenario.validate();
  DtaResult result;

  const ItemSet needed = scenario.required_items();
  switch (options.strategy) {
    case DtaStrategy::kWorkload:
      result.coverage = divide_balanced(needed, scenario.ownership);
      break;
    case DtaStrategy::kWorkloadBytes:
      result.coverage = divide_balanced_bytes(needed, scenario.ownership,
                                              scenario.universe);
      break;
    case DtaStrategy::kNumber:
      result.coverage = divide_min_devices(needed, scenario.ownership);
      break;
  }
  result.involved_devices = result.coverage.involved_devices();

  const mec::Topology& topo = scenario.topology;
  const mec::CostModel cost(topo);

  // ---- Step 2: rearrangement. One new local-only task per (device with a
  // share, original task touching that share).
  std::vector<PartialTask> partials;
  std::vector<std::size_t> per_device_index(topo.num_devices(), 0);
  for (std::size_t dev = 0; dev < topo.num_devices(); ++dev) {
    const ItemSet& share = result.coverage.assigned[dev];
    if (share.empty()) continue;
    for (std::size_t s = 0; s < scenario.tasks.size(); ++s) {
      const DivisibleTask& src = scenario.tasks[s];
      const ItemSet portion = set_intersect(share, src.items);
      if (portion.empty()) continue;
      PartialTask pt;
      pt.source = s;
      pt.executor = dev;
      pt.bytes = scenario.universe.total_bytes(portion);
      partials.push_back(pt);
    }
  }

  result.rearranged.reserve(partials.size());
  for (const PartialTask& pt : partials) {
    const DivisibleTask& src = scenario.tasks[pt.source];
    const double total_bytes = scenario.universe.total_bytes(src.items);
    mec::Task t;
    t.id = {pt.executor, per_device_index[pt.executor]++};
    t.local_bytes = pt.bytes;  // by construction the executor owns it all
    t.external_bytes = 0.0;
    t.external_owner = pt.executor;
    t.cycles_per_byte = src.cycles_per_byte;
    t.result_kind = src.result_kind;
    t.result_ratio = src.result_ratio;
    t.result_const_bytes = src.result_const_bytes;
    // Resource demand scales with the data fraction actually processed.
    t.resource = total_bytes > 0.0
                     ? src.resource * pt.bytes / total_bytes
                     : src.resource;
    t.deadline_s = src.deadline_s;
    result.rearranged.push_back(t);
  }

  // Division certificate (no-op at audit level off): the coverage must be
  // an ownership-respecting exact partition of the needed data, and the
  // rearranged tasks must re-derive from it.
  audit::check_division(scenario, result.coverage, result.rearranged,
                        to_string(options.strategy));

  // ---- Step 3: schedule the rearranged tasks.
  const assign::HtaInstance instance(topo, result.rearranged);
  if (options.scheduler == PartialScheduler::kLpHta) {
    result.assignment = assign::LpHta(options.lp).assign(instance);
  } else {
    result.assignment = assign::LocalFirst().assign(instance);
  }
  const assign::Metrics metrics = assign::evaluate(instance, result.assignment);
  result.compute_energy_j = metrics.total_energy_j;
  result.partials_cancelled = metrics.cancelled;
  result.partials_deadline_violations = metrics.deadline_violations;

  // ---- Step 4: coordination — descriptor distribution, partial-result
  // uploads, and the final aggregated download per original task.
  double coordination = 0.0;

  // Descriptors: issuer uploads op once; each (other) involved executor
  // downloads it; one backhaul hop per remote cluster involved.
  for (std::size_t s = 0; s < scenario.tasks.size(); ++s) {
    const DivisibleTask& src = scenario.tasks[s];
    std::set<std::size_t> executors;
    std::set<std::size_t> clusters;
    for (const PartialTask& pt : partials) {
      if (pt.source != s) continue;
      executors.insert(pt.executor);
      clusters.insert(topo.device(pt.executor).base_station);
    }
    if (executors.empty()) continue;
    const bool only_self =
        executors.size() == 1 && *executors.begin() == src.id.user;
    if (!only_self) {
      coordination += cost.upload_energy(src.id.user, src.op_bytes);
      for (std::size_t dev : executors) {
        if (dev == src.id.user) continue;
        coordination += cost.download_energy(dev, src.op_bytes);
      }
      const std::size_t home = topo.device(src.id.user).base_station;
      for (std::size_t c : clusters) {
        if (c != home) coordination += cost.bs_to_bs_energy(src.op_bytes);
      }
    }
  }

  // Partial results and aggregation legs.
  std::vector<double> partial_upload_s;  // for the makespan tail
  for (std::size_t i = 0; i < partials.size(); ++i) {
    const PartialTask& pt = partials[i];
    const DivisibleTask& src = scenario.tasks[pt.source];
    if (result.assignment.decisions[i] != assign::Decision::kLocal) {
      // Edge/cloud placements already include the result's return leg in
      // their Sec. II cost; nothing extra to add here.
      continue;
    }
    const double partial_result = src.result_bytes(pt.bytes);
    if (pt.executor == src.id.user && partials.size() == 1) continue;
    coordination += cost.upload_energy(pt.executor, partial_result);
    partial_upload_s.push_back(cost.upload_seconds(pt.executor, partial_result));
    if (!topo.same_cluster(pt.executor, src.id.user)) {
      coordination += cost.bs_to_bs_energy(partial_result);
    }
  }
  // Final result download by each issuer.
  double final_download_s = 0.0;
  for (const DivisibleTask& src : scenario.tasks) {
    const double final_bytes =
        src.result_bytes(scenario.universe.total_bytes(src.items));
    coordination += cost.download_energy(src.id.user, final_bytes);
    final_download_s =
        std::max(final_download_s, cost.download_seconds(src.id.user, final_bytes));
  }

  result.coordination_energy_j = coordination;
  result.total_energy_j = result.compute_energy_j + coordination;

  // ---- Makespan: executors run their queues sequentially (devices and
  // stations); the cloud is width-unbounded.
  std::vector<double> device_busy(topo.num_devices(), 0.0);
  std::vector<double> station_busy(topo.num_base_stations(), 0.0);
  double cloud_max = 0.0;
  for (std::size_t i = 0; i < partials.size(); ++i) {
    const assign::Decision d = result.assignment.decisions[i];
    if (d == assign::Decision::kCancelled) continue;
    const double latency = instance.latency(i, assign::to_placement(d));
    const mec::Task& t = result.rearranged[i];
    switch (d) {
      case assign::Decision::kLocal:
        device_busy[t.id.user] += latency;
        break;
      case assign::Decision::kEdge:
        station_busy[topo.device(t.id.user).base_station] += latency;
        break;
      case assign::Decision::kCloud:
        cloud_max = std::max(cloud_max, latency);
        break;
      case assign::Decision::kCancelled:
        break;
    }
  }
  double busy_max = cloud_max;
  for (double b : device_busy) busy_max = std::max(busy_max, b);
  for (double b : station_busy) busy_max = std::max(busy_max, b);
  double upload_tail = 0.0;
  for (double s : partial_upload_s) upload_tail = std::max(upload_tail, s);
  result.processing_time_s = busy_max + upload_tail + final_download_s;

  return result;
}

std::vector<mec::Task> to_holistic_tasks(const SharedDataScenario& scenario) {
  scenario.validate();
  std::vector<mec::Task> out;
  out.reserve(scenario.tasks.size());
  std::vector<std::size_t> per_user(scenario.topology.num_devices(), 0);

  for (const DivisibleTask& src : scenario.tasks) {
    const ItemSet local =
        set_intersect(src.items, scenario.ownership[src.id.user]);
    const ItemSet external = set_minus(src.items, local);

    mec::Task t;
    t.id = {src.id.user, per_user[src.id.user]++};
    t.local_bytes = scenario.universe.total_bytes(local);
    t.external_bytes = scenario.universe.total_bytes(external);
    // L_ij: the single device holding the most of the external data (the
    // holistic model has one owner; ties break to the lowest id).
    t.external_owner = src.id.user;
    if (!external.empty()) {
      double best_bytes = -1.0;
      for (std::size_t dev = 0; dev < scenario.topology.num_devices(); ++dev) {
        if (dev == src.id.user) continue;
        const double owned = scenario.universe.total_bytes(
            set_intersect(external, scenario.ownership[dev]));
        if (owned > best_bytes) {
          best_bytes = owned;
          t.external_owner = dev;
        }
      }
    }
    t.cycles_per_byte = src.cycles_per_byte;
    t.result_kind = src.result_kind;
    t.result_ratio = src.result_ratio;
    t.result_const_bytes = src.result_const_bytes;
    t.resource = src.resource;
    t.deadline_s = src.deadline_s;
    out.push_back(t);
  }
  return out;
}

}  // namespace mecsched::dta
