#include "dta/data_model.h"

#include <algorithm>

#include "common/error.h"

namespace mecsched::dta {

ItemSet set_intersect(const ItemSet& a, const ItemSet& b) {
  ItemSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

ItemSet set_union(const ItemSet& a, const ItemSet& b) {
  ItemSet out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

ItemSet set_minus(const ItemSet& a, const ItemSet& b) {
  ItemSet out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

bool set_contains(const ItemSet& a, std::size_t item) {
  return std::binary_search(a.begin(), a.end(), item);
}

bool is_sorted_unique(const ItemSet& a) {
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (a[i - 1] >= a[i]) return false;
  }
  return true;
}

DataUniverse::DataUniverse(std::vector<double> item_bytes)
    : item_bytes_(std::move(item_bytes)) {
  for (double b : item_bytes_) {
    MECSCHED_REQUIRE(b >= 0.0, "item size must be non-negative");
  }
}

double DataUniverse::item_size(std::size_t r) const {
  MECSCHED_REQUIRE(r < item_bytes_.size(), "item id out of range");
  return item_bytes_[r];
}

double DataUniverse::total_bytes(const ItemSet& items) const {
  double total = 0.0;
  for (std::size_t r : items) total += item_size(r);
  return total;
}

void SharedDataScenario::validate() const {
  MECSCHED_REQUIRE(ownership.size() == topology.num_devices(),
                   "ownership must list every device");
  for (const ItemSet& d : ownership) {
    MECSCHED_REQUIRE(is_sorted_unique(d), "ownership sets must be sorted");
    for (std::size_t r : d) {
      MECSCHED_REQUIRE(r < universe.num_items(), "owned item out of range");
    }
  }
  for (const DivisibleTask& t : tasks) {
    MECSCHED_REQUIRE(t.id.user < topology.num_devices(),
                     "task issued by unknown device");
    MECSCHED_REQUIRE(is_sorted_unique(t.items), "task items must be sorted");
    for (std::size_t r : t.items) {
      MECSCHED_REQUIRE(r < universe.num_items(), "task item out of range");
    }
  }
}

ItemSet SharedDataScenario::required_items() const {
  ItemSet d;
  for (const DivisibleTask& t : tasks) d = set_union(d, t.items);
  return d;
}

}  // namespace mecsched::dta
