// Data-division algorithms of Sec. IV.A / IV.B.
//
// Both produce a Coverage: per-device disjoint item sets whose union is the
// required data D, with C_i ⊆ D ∩ D_i so that no raw data ever moves.
//
//   divide_balanced    — DTA-Workload (Def. 1): greedy assignment that
//                        processes devices in increasing |UD_i ∩ D| order,
//                        keeping max_i |C_i| small (submodular analysis,
//                        ratio 1/(1-e^-1), Thm. 3 / Cor. 2).
//   divide_min_devices — DTA-Number (Def. 2): greedy Set Cover on
//                        {UD_1..UD_n}, ratio O(ln n).
#pragma once

#include <vector>

#include "dta/data_model.h"

namespace mecsched::dta {

struct Coverage {
  std::vector<ItemSet> assigned;  // C_i per device

  std::size_t involved_devices() const;
  // max_i |C_i| — the quantity DTA-Workload minimizes.
  std::size_t max_share() const;
  std::size_t total_items() const;
  // max_i Σ_{r ∈ C_i} size(r) — the byte-weighted analogue.
  double max_share_bytes(const DataUniverse& universe) const;
};

// Throws ModelError if some item of `needed` is owned by no device.
Coverage divide_balanced(const ItemSet& needed,
                         const std::vector<ItemSet>& ownership);

Coverage divide_min_devices(const ItemSet& needed,
                            const std::vector<ItemSet>& ownership);

// Byte-weighted DTA-Workload: the paper's Def. 1 counts items, which is
// the right load proxy only for equal-size blocks. With heterogeneous
// block sizes this variant greedily serves the device whose available data
// *volume* is smallest, balancing bytes instead of cardinalities.
Coverage divide_balanced_bytes(const ItemSet& needed,
                               const std::vector<ItemSet>& ownership,
                               const DataUniverse& universe);

// Audit helper for tests: disjoint, complete (covers `needed` exactly) and
// ownership-respecting.
bool is_valid_coverage(const Coverage& c, const ItemSet& needed,
                       const std::vector<ItemSet>& ownership);

}  // namespace mecsched::dta
