// Generic greedy Set Cover.
//
// Sec. IV.B reduces "Optimal Coverage of D with Smallest Set Number" to Set
// Cover over the family {UD_1, ..., UD_n}; the classical greedy algorithm
// achieves the H_n <= ln(n)+1 ratio, the best possible unless P=NP [21].
// Exposed as a standalone utility so the ratio property can be tested
// against a brute-force oracle independent of the MEC context.
#pragma once

#include <vector>

#include "dta/data_model.h"

namespace mecsched::dta {

// Returns the indices of the chosen sets, in pick order. Throws ModelError
// if the universe is not covered by the union of `sets`.
std::vector<std::size_t> greedy_set_cover(const ItemSet& universe,
                                          const std::vector<ItemSet>& sets);

// Exact minimum cover by exhaustive search (sets.size() <= 20); test oracle.
std::vector<std::size_t> exact_set_cover(const ItemSet& universe,
                                         const std::vector<ItemSet>& sets);

}  // namespace mecsched::dta
