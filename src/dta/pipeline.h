// The divisible-task pipeline of Sec. IV.C.
//
//   1. divide the required data D with DTA-Workload or DTA-Number,
//   2. rearrange: each device with a share C_i gets one new (local-only)
//      task per original task whose data intersects C_i — only the task
//      descriptor op_ij travels,
//   3. schedule the rearranged tasks with LP-HTA (Sec. III),
//   4. aggregate: partial results flow back through the base stations and
//      the final result reaches the issuing user.
//
// Because only descriptors and (small) partial results move — never raw
// data — the pipeline's energy is far below holistic scheduling whenever
// η(y) << y, which is exactly Fig. 5's finding.
//
// Modelling notes (the paper leaves coordination costs implicit):
//   * descriptor distribution: the issuer uploads op_ij once; every other
//     involved device downloads it; a cross-cluster hop adds e_BB once per
//     remote cluster.
//   * partial results: devices that computed locally upload η(portion);
//     results produced at an edge/cloud placement already sit in the
//     backbone (their return leg is in the Sec. II cost of that placement).
//   * the issuer downloads the final aggregated result η(total input).
//   * a rearranged task keeps its deadline and carries the original
//     resource demand scaled by its data fraction.
//   * processing time: devices and stations execute their queues
//     sequentially; the cloud is width-unbounded. Makespan =
//     max over executors (busy time) + slowest partial-result upload +
//     final download.
#pragma once

#include <vector>

#include "assign/assignment.h"
#include "assign/lp_hta.h"
#include "dta/coverage.h"
#include "dta/data_model.h"

namespace mecsched::dta {

enum class DtaStrategy {
  kWorkload,       // Sec. IV.A: balance item counts
  kWorkloadBytes,  // extension: balance data volume (heterogeneous blocks)
  kNumber,         // Sec. IV.B: minimize involved devices (set cover)
};

std::string to_string(DtaStrategy s);

// Scheduler for the rearranged tasks (step 3).
//   kLpHta       — the paper's choice (Sec. IV.C applies LP-HTA).
//   kLocalGreedy — local > edge > cloud greedy, O(n). Rearranged tasks are
//     local-data-only, so the LP relaxation is integral whenever capacity
//     is slack and the greedy coincides with LP-HTA; the big Fig. 5/6
//     sweeps (tens of thousands of partial tasks) use it to keep the dense
//     LP out of the hot path.
enum class PartialScheduler { kLpHta, kLocalGreedy };

struct DtaOptions {
  DtaStrategy strategy = DtaStrategy::kWorkload;
  PartialScheduler scheduler = PartialScheduler::kLpHta;
  assign::LpHtaOptions lp{};
};

struct DtaResult {
  Coverage coverage;
  std::vector<mec::Task> rearranged;   // the new tasks handed to LP-HTA
  assign::Assignment assignment;       // LP-HTA's schedule of them

  double compute_energy_j = 0.0;       // Sec. II energy of the schedule
  double coordination_energy_j = 0.0;  // descriptors + partial results
  double total_energy_j = 0.0;
  double processing_time_s = 0.0;      // makespan incl. aggregation
  std::size_t involved_devices = 0;

  // Deadline accounting over the rearranged tasks (each inherits its
  // source task's deadline).
  std::size_t partials_cancelled = 0;
  std::size_t partials_deadline_violations = 0;
  double partial_unsatisfied_rate() const {
    return rearranged.empty()
               ? 0.0
               : static_cast<double>(partials_cancelled +
                                     partials_deadline_violations) /
                     static_cast<double>(rearranged.size());
  }
};

DtaResult run_dta(const SharedDataScenario& scenario, DtaOptions options = {});

// Views the divisible tasks as holistic ones (α = issuer-owned bytes,
// β = the rest, L = the device owning most of the remainder) so LP-HTA can
// be benchmarked on the same workload (Fig. 5's third series).
std::vector<mec::Task> to_holistic_tasks(const SharedDataScenario& scenario);

}  // namespace mecsched::dta
