// System-wide constants of the simulated MEC system.
//
// Defaults reproduce the paper's experiment settings (Sec. V.A):
//   κ = 1e-27 J per cycle per Hz², λ = 330 cycles/byte, η = 0.2,
//   device CPUs 1–2 GHz, base station 4 GHz, cloud (Amazon T2.nano-like)
//   2.4 GHz, 15 ms between base stations, 250 ms base station → cloud,
//   and the Table I radio profiles (4G and Wi-Fi).
//
// Backhaul/WAN energy is not quantified in the paper; we model both links
// as power × transfer-time over a fixed-rate pipe (see DESIGN.md,
// "Substitutions") with constants that preserve E_ij1 < E_ij2 < E_ij3.
#pragma once

#include "common/units.h"

namespace mecsched::mec {

// One row of Table I: measured rates and radio powers for a network type.
struct RadioProfile {
  double download_bps;  // r^(D)
  double upload_bps;    // r^(U)
  double tx_power_w;    // P^(T), spent while uploading
  double rx_power_w;    // P^(R), spent while downloading
};

inline constexpr RadioProfile k4G{
    units::mbps(13.76), units::mbps(5.85), 7.32, 1.6};
inline constexpr RadioProfile kWiFi{
    units::mbps(54.97), units::mbps(12.88), 15.7, 2.7};

struct SystemParameters {
  // Computation model (Sec. V.A, after [22]).
  double kappa = 1e-27;             // energy coefficient κ (J·s²/cycle³)
  double cycles_per_byte = 330.0;   // λ
  double result_ratio = 0.2;        // η: result bytes per input byte

  // CPU frequencies.
  double device_min_hz = units::gigahertz(1.0);
  double device_max_hz = units::gigahertz(2.0);
  double base_station_hz = units::gigahertz(4.0);
  double cloud_hz = units::gigahertz(2.4);

  // Inter-base-station backhaul: 15 ms latency [15]; the rate/power pair is
  // our substitution for the unquantified e_BB(X).
  double bs_to_bs_latency_s = units::milliseconds(15.0);
  double bs_to_bs_rate_bps = units::gbps(1.0);
  double bs_to_bs_power_w = 5.0;

  // Base station → cloud WAN: 250 ms latency [16]; rate/power pair is our
  // substitution for e_BC(X).
  double bs_to_cloud_latency_s = units::milliseconds(250.0);
  double bs_to_cloud_rate_bps = units::mbps(100.0);
  double bs_to_cloud_power_w = 20.0;
};

}  // namespace mecsched::mec
