#include "mec/task.h"

#include <sstream>

namespace mecsched::mec {

std::string to_string(const TaskId& id) {
  std::ostringstream os;
  os << "T(" << id.user << ',' << id.index << ')';
  return os.str();
}

}  // namespace mecsched::mec
