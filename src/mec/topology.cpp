#include "mec/topology.h"

#include "common/error.h"

namespace mecsched::mec {

Topology::Topology(std::vector<Device> devices,
                   std::vector<BaseStation> stations, SystemParameters params)
    : devices_(std::move(devices)),
      stations_(std::move(stations)),
      params_(params) {
  MECSCHED_REQUIRE(!stations_.empty(), "topology needs >= 1 base station");
  clusters_.resize(stations_.size());
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    Device& d = devices_[i];
    MECSCHED_REQUIRE(d.id == i, "device ids must be dense 0..n-1 (slot " +
                                    std::to_string(i) + " holds id " +
                                    std::to_string(d.id) + ")");
    MECSCHED_REQUIRE(d.base_station < stations_.size(),
                     "device " + std::to_string(i) +
                         " references unknown base station " +
                         std::to_string(d.base_station) + " (topology has " +
                         std::to_string(stations_.size()) + " stations)");
    MECSCHED_REQUIRE(d.cpu_hz > 0.0,
                     "device " + std::to_string(i) +
                         ": CPU frequency must be positive, got " +
                         std::to_string(d.cpu_hz));
    MECSCHED_REQUIRE(d.radio.upload_bps > 0.0 && d.radio.download_bps > 0.0,
                     "device " + std::to_string(i) +
                         ": radio rates must be positive (up " +
                         std::to_string(d.radio.upload_bps) + " bps, down " +
                         std::to_string(d.radio.download_bps) + " bps)");
    clusters_[d.base_station].push_back(i);
  }
  for (std::size_t b = 0; b < stations_.size(); ++b) {
    MECSCHED_REQUIRE(stations_[b].id == b,
                     "station ids must be dense 0..k-1 (slot " +
                         std::to_string(b) + " holds id " +
                         std::to_string(stations_[b].id) + ")");
    MECSCHED_REQUIRE(stations_[b].cpu_hz > 0.0,
                     "station " + std::to_string(b) +
                         ": CPU frequency must be positive, got " +
                         std::to_string(stations_[b].cpu_hz));
  }
}

const Device& Topology::device(std::size_t i) const {
  MECSCHED_REQUIRE(i < devices_.size(),
                   "device index " + std::to_string(i) + " out of range (" +
                       std::to_string(devices_.size()) + " devices)");
  return devices_[i];
}

const BaseStation& Topology::base_station(std::size_t b) const {
  MECSCHED_REQUIRE(b < stations_.size(),
                   "base station index " + std::to_string(b) +
                       " out of range (" + std::to_string(stations_.size()) +
                       " stations)");
  return stations_[b];
}

const std::vector<std::size_t>& Topology::cluster(std::size_t b) const {
  MECSCHED_REQUIRE(b < clusters_.size(),
                   "base station index " + std::to_string(b) +
                       " out of range (" + std::to_string(clusters_.size()) +
                       " stations)");
  return clusters_[b];
}

bool Topology::same_cluster(std::size_t dev_a, std::size_t dev_b) const {
  return device(dev_a).base_station == device(dev_b).base_station;
}

}  // namespace mecsched::mec
