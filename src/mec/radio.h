// Radio-layer helpers.
//
// The paper derives device rates from the Shannon capacity
//   r = W log2(1 + g P / ϖ0)
// but its experiments use the measured Table I rates. We do both: the
// Table I profiles (parameters.h) drive every experiment, and
// `shannon_rate` is provided (and tested) for users who want channel-model
// driven rates instead.
#pragma once

namespace mecsched::mec {

// Shannon capacity in bits/second.
//   bandwidth_hz  W   — allocated channel bandwidth
//   channel_gain  g   — linear power gain (not dB)
//   tx_power_w    P   — transmit power
//   noise_w       ϖ0  — white-noise power
double shannon_rate(double bandwidth_hz, double channel_gain, double tx_power_w,
                    double noise_w);

}  // namespace mecsched::mec
