// The three-level MEC system (Fig. 1): n mobile devices partitioned into
// k clusters, one base station per cluster, and one remote cloud.
//
// The topology is immutable once built; the builder validates that every
// device belongs to exactly one cluster. Device ids are dense 0..n-1 and
// base-station ids 0..k-1, so lookups are O(1) vectors throughout.
#pragma once

#include <cstddef>
#include <vector>

#include "mec/parameters.h"

namespace mecsched::mec {

struct Device {
  std::size_t id = 0;
  std::size_t base_station = 0;  // cluster membership
  double cpu_hz = 0.0;           // f_i
  RadioProfile radio{};          // Table I row (4G or Wi-Fi)
  double max_resource = 0.0;     // max_i
};

struct BaseStation {
  std::size_t id = 0;
  double cpu_hz = 0.0;        // f_s
  double max_resource = 0.0;  // max_S
};

class Topology {
 public:
  Topology(std::vector<Device> devices, std::vector<BaseStation> stations,
           SystemParameters params);

  std::size_t num_devices() const { return devices_.size(); }
  std::size_t num_base_stations() const { return stations_.size(); }

  const Device& device(std::size_t i) const;
  const BaseStation& base_station(std::size_t b) const;
  const SystemParameters& params() const { return params_; }

  // Devices attached to base station `b` (the cluster), sorted by id.
  const std::vector<std::size_t>& cluster(std::size_t b) const;

  bool same_cluster(std::size_t dev_a, std::size_t dev_b) const;

 private:
  std::vector<Device> devices_;
  std::vector<BaseStation> stations_;
  std::vector<std::vector<std::size_t>> clusters_;
  SystemParameters params_;
};

}  // namespace mecsched::mec
