// Analytic latency/energy model (Sec. II.A–II.C).
//
// For a task T_ij and each of the three candidate subsystems
//   l = 1 (the issuing mobile device), l = 2 (its base station),
//   l = 3 (the remote cloud)
// this computes t_ijl = t^(C) + t^(R) and E_ijl per the paper's formulas.
// Every energy/latency figure in the repository flows through this class:
// the assignment algorithms consume its output and never re-derive costs,
// so the model is unit-testable in isolation and the discrete-event
// simulator can validate it independently.
#pragma once

#include <array>
#include <string>

#include "mec/task.h"
#include "mec/topology.h"

namespace mecsched::mec {

// The subsystem executing a task; values match the paper's l ∈ {1,2,3}.
enum class Placement : int { kLocal = 0, kEdge = 1, kCloud = 2 };

inline constexpr std::array<Placement, 3> kAllPlacements = {
    Placement::kLocal, Placement::kEdge, Placement::kCloud};

std::string to_string(Placement p);

struct CostEntry {
  double compute_s = 0.0;   // t^(C)
  double transfer_s = 0.0;  // t^(R)
  double energy_j = 0.0;    // E_ijl (total, Eq. 5)

  double latency_s() const { return compute_s + transfer_s; }
};

// Costs for all three placements of one task.
struct TaskCosts {
  std::array<CostEntry, 3> by_placement;

  const CostEntry& at(Placement p) const {
    return by_placement[static_cast<std::size_t>(p)];
  }
  double latency(Placement p) const { return at(p).latency_s(); }
  double energy(Placement p) const { return at(p).energy_j; }
};

class CostModel {
 public:
  explicit CostModel(const Topology& topology) : topo_(&topology) {}

  // All three placements at once (the common case in the LP builder).
  TaskCosts evaluate(const Task& task) const;

  CostEntry evaluate(const Task& task, Placement p) const;

  // --- primitive transfer costs (exposed for the simulator and tests) ---

  // Device -> base station upload: time and radio energy e_i^(T)(X).
  double upload_seconds(std::size_t device, double bytes) const;
  double upload_energy(std::size_t device, double bytes) const;
  // Base station -> device download: time and radio energy e_i^(R)(X).
  double download_seconds(std::size_t device, double bytes) const;
  double download_energy(std::size_t device, double bytes) const;
  // Inter-base-station backhaul: t_{B,B}(X) and e_{B,B}(X).
  double bs_to_bs_seconds(double bytes) const;
  double bs_to_bs_energy(double bytes) const;
  // Base station <-> cloud WAN: t_{B,C}(X) and e_{B,C}(X).
  double bs_to_cloud_seconds(double bytes) const;
  double bs_to_cloud_energy(double bytes) const;

 private:
  CostEntry local_cost(const Task& task) const;
  CostEntry edge_cost(const Task& task) const;
  CostEntry cloud_cost(const Task& task) const;

  // Time/energy for fetching the external data β from its owner up to the
  // owner's base station (the shared prefix of all three placements).
  struct ExternalFetch {
    double upload_s = 0.0;       // owner's uplink time
    double owner_energy = 0.0;   // e_L^(T)(β)
  };
  ExternalFetch external_fetch(const Task& task) const;

  const Topology* topo_;
};

}  // namespace mecsched::mec
