#include "mec/cost_breakdown.h"

#include <algorithm>

#include "common/units.h"

namespace mecsched::mec {

using units::transfer_seconds;

double CostBreakdown::total_energy() const {
  double total = 0.0;
  for (const CostLeg& leg : legs) total += leg.energy_j;
  return total;
}

double CostBreakdown::total_time() const {
  double serial = 0.0;
  double par = 0.0;
  for (const CostLeg& leg : legs) {
    if (leg.parallel) {
      par = std::max(par, leg.time_s);
    } else {
      serial += leg.time_s;
    }
  }
  return serial + par;
}

CostBreakdown explain(const Topology& topology, const Task& task,
                      Placement p) {
  const CostModel cost(topology);
  const SystemParameters& params = topology.params();
  const Device& dev = topology.device(task.id.user);

  CostBreakdown out;
  out.placement = p;
  const double alpha = task.local_bytes;
  const double beta = task.external_bytes;
  const double result = task.result_bytes();
  const bool fetch = beta > 0.0 && task.external_owner != task.id.user;
  const bool cross =
      fetch && !topology.same_cluster(task.external_owner, task.id.user);

  auto add = [&out](std::string label, double time_s, double energy_j,
                    bool parallel = false) {
    out.legs.push_back({std::move(label), time_s, energy_j, parallel});
  };

  switch (p) {
    case Placement::kLocal: {
      if (fetch) {
        add("owner uplink (beta)",
            cost.upload_seconds(task.external_owner, beta),
            cost.upload_energy(task.external_owner, beta));
        if (cross) {
          add("inter-BS backhaul (beta)", cost.bs_to_bs_seconds(beta),
              cost.bs_to_bs_energy(beta));
        }
        add("issuer downlink (beta)",
            cost.download_seconds(task.id.user, beta),
            cost.download_energy(task.id.user, beta));
      }
      add("device compute", task.cycles() / dev.cpu_hz,
          params.kappa * task.cycles() * dev.cpu_hz * dev.cpu_hz);
      break;
    }
    case Placement::kEdge: {
      if (fetch) {
        double t = cost.upload_seconds(task.external_owner, beta);
        double e = cost.upload_energy(task.external_owner, beta);
        if (cross) {
          t += cost.bs_to_bs_seconds(beta);
          e += cost.bs_to_bs_energy(beta);
        }
        add("external path (beta)", t, e, /*parallel=*/true);
      }
      if (alpha > 0.0) {
        add("issuer uplink (alpha)", cost.upload_seconds(task.id.user, alpha),
            cost.upload_energy(task.id.user, alpha), /*parallel=*/true);
      }
      add("station compute",
          task.cycles() /
              topology.base_station(dev.base_station).cpu_hz,
          0.0);
      add("issuer downlink (result)",
          cost.download_seconds(task.id.user, result),
          cost.download_energy(task.id.user, result));
      break;
    }
    case Placement::kCloud: {
      if (fetch) {
        add("owner uplink (beta)",
            cost.upload_seconds(task.external_owner, beta),
            cost.upload_energy(task.external_owner, beta), /*parallel=*/true);
      }
      if (alpha > 0.0) {
        add("issuer uplink (alpha)", cost.upload_seconds(task.id.user, alpha),
            cost.upload_energy(task.id.user, alpha), /*parallel=*/true);
      }
      const double wan_bytes = alpha + beta + result;
      add("WAN transfer (alpha+beta+result)",
          cost.bs_to_cloud_seconds(wan_bytes),
          cost.bs_to_cloud_energy(wan_bytes));
      add("cloud compute", task.cycles() / params.cloud_hz, 0.0);
      add("issuer downlink (result)",
          cost.download_seconds(task.id.user, result),
          cost.download_energy(task.id.user, result));
      break;
    }
  }
  return out;
}

}  // namespace mecsched::mec
