// Computation tasks (Sec. II).
//
// A holistic task T_ij = (op, LD, ED, L, C, T) is summarized here by the
// quantities the cost and assignment layers need: the data *sizes*
// α = |LD| and β = |ED|, the owner L of the external data, the resource
// occupation C and the deadline T. Divisible tasks additionally carry the
// identities of their data items; those live in the dta module
// (dta/data_model.h) which reuses this struct for the rearranged
// (local-only) tasks it hands back to LP-HTA.
#pragma once

#include <cstddef>
#include <string>

namespace mecsched::mec {

// How a task's result size relates to its input size (η in the paper).
enum class ResultSizeKind {
  kProportional,  // η(y) = ratio * y   (paper default, ratio = 0.2)
  kConstant,      // η(y) = constant    (Fig. 5(b) "constant" series)
};

struct TaskId {
  std::size_t user = 0;   // i — also the id of the user's mobile device
  std::size_t index = 0;  // j — per-user task index

  friend bool operator==(const TaskId&, const TaskId&) = default;
};

struct Task {
  TaskId id;

  double local_bytes = 0.0;     // α_ij = |LD_ij|
  double external_bytes = 0.0;  // β_ij = |ED_ij|
  std::size_t external_owner = 0;  // L_ij: device that owns ED_ij

  double cycles_per_byte = 330.0;  // λ_ij (linear CPU-cycle model)

  ResultSizeKind result_kind = ResultSizeKind::kProportional;
  double result_ratio = 0.2;       // η when proportional
  double result_const_bytes = 0.0; // η(y) when constant

  double resource = 1.0;   // C_ij: resource units occupied while running
  double deadline_s = 0.0; // T_ij

  double input_bytes() const { return local_bytes + external_bytes; }

  // η(y) for this task's input.
  double result_bytes() const {
    return result_kind == ResultSizeKind::kProportional
               ? result_ratio * input_bytes()
               : result_const_bytes;
  }

  // CPU cycles to process the full input: λ_ij(α+β).
  double cycles() const { return cycles_per_byte * input_bytes(); }
};

std::string to_string(const TaskId& id);

}  // namespace mecsched::mec
