// Itemized cost breakdown — the Sec. II totals split into their physical
// legs, for debugging, documentation and the quickstart-style tooling.
// The invariant (tested): the legs sum exactly to CostModel's totals.
#pragma once

#include <string>
#include <vector>

#include "mec/cost_model.h"

namespace mecsched::mec {

struct CostLeg {
  std::string label;      // e.g. "owner uplink (beta)", "device compute"
  double time_s = 0.0;    // contribution to t^(C)+t^(R); parallel legs
                          // carry their own duration, `parallel` marks them
  double energy_j = 0.0;
  bool parallel = false;  // true for the max{...} legs of Eq. t^(R)_ij2/3
};

struct CostBreakdown {
  Placement placement = Placement::kLocal;
  std::vector<CostLeg> legs;

  // Sums matching CostModel::evaluate(task, placement).
  double total_energy() const;
  // Serial time + max over the parallel group (the Sec. II max term).
  double total_time() const;
};

// Explains one placement of one task.
CostBreakdown explain(const Topology& topology, const Task& task, Placement p);

}  // namespace mecsched::mec
