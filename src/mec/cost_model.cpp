#include "mec/cost_model.h"

#include <algorithm>

#include "common/error.h"
#include "common/units.h"

namespace mecsched::mec {

using units::transfer_seconds;

std::string to_string(Placement p) {
  switch (p) {
    case Placement::kLocal:
      return "local";
    case Placement::kEdge:
      return "edge";
    case Placement::kCloud:
      return "cloud";
  }
  return "unknown";
}

TaskCosts CostModel::evaluate(const Task& task) const {
  TaskCosts out;
  out.by_placement[0] = local_cost(task);
  out.by_placement[1] = edge_cost(task);
  out.by_placement[2] = cloud_cost(task);
  return out;
}

CostEntry CostModel::evaluate(const Task& task, Placement p) const {
  switch (p) {
    case Placement::kLocal:
      return local_cost(task);
    case Placement::kEdge:
      return edge_cost(task);
    case Placement::kCloud:
      return cloud_cost(task);
  }
  throw ModelError("unknown placement");
}

double CostModel::upload_seconds(std::size_t device, double bytes) const {
  return transfer_seconds(bytes, topo_->device(device).radio.upload_bps);
}

double CostModel::upload_energy(std::size_t device, double bytes) const {
  return topo_->device(device).radio.tx_power_w * upload_seconds(device, bytes);
}

double CostModel::download_seconds(std::size_t device, double bytes) const {
  return transfer_seconds(bytes, topo_->device(device).radio.download_bps);
}

double CostModel::download_energy(std::size_t device, double bytes) const {
  return topo_->device(device).radio.rx_power_w *
         download_seconds(device, bytes);
}

double CostModel::bs_to_bs_seconds(double bytes) const {
  if (bytes <= 0.0) return 0.0;
  const SystemParameters& p = topo_->params();
  return p.bs_to_bs_latency_s + transfer_seconds(bytes, p.bs_to_bs_rate_bps);
}

double CostModel::bs_to_bs_energy(double bytes) const {
  const SystemParameters& p = topo_->params();
  return p.bs_to_bs_power_w * transfer_seconds(bytes, p.bs_to_bs_rate_bps);
}

double CostModel::bs_to_cloud_seconds(double bytes) const {
  if (bytes <= 0.0) return 0.0;
  const SystemParameters& p = topo_->params();
  return p.bs_to_cloud_latency_s +
         transfer_seconds(bytes, p.bs_to_cloud_rate_bps);
}

double CostModel::bs_to_cloud_energy(double bytes) const {
  const SystemParameters& p = topo_->params();
  return p.bs_to_cloud_power_w * transfer_seconds(bytes, p.bs_to_cloud_rate_bps);
}

CostModel::ExternalFetch CostModel::external_fetch(const Task& task) const {
  ExternalFetch f;
  const double beta = task.external_bytes;
  // No external data, or the "owner" is the issuing device itself: nothing
  // to move over the radio.
  if (beta <= 0.0 || task.external_owner == task.id.user) return f;
  f.upload_s = upload_seconds(task.external_owner, beta);
  f.owner_energy = upload_energy(task.external_owner, beta);
  return f;
}

// l = 1: process on the issuing device. The external data travels
// owner -> (owner's BS) [-> issuer's BS] -> issuer; then the device
// computes locally (Eq. 2, Eq. 4's t^(R)_ij1 / E^(R)_ij1).
CostEntry CostModel::local_cost(const Task& task) const {
  const Device& dev = topo_->device(task.id.user);
  const SystemParameters& p = topo_->params();

  CostEntry e;
  e.compute_s = task.cycles() / dev.cpu_hz;
  e.energy_j = p.kappa * task.cycles() * dev.cpu_hz * dev.cpu_hz;  // E^(C)_ij1

  const double beta = task.external_bytes;
  const ExternalFetch fetch = external_fetch(task);
  if (fetch.upload_s > 0.0) {
    e.transfer_s = fetch.upload_s + download_seconds(task.id.user, beta);
    e.energy_j += fetch.owner_energy + download_energy(task.id.user, beta);
    if (!topo_->same_cluster(task.external_owner, task.id.user)) {
      e.transfer_s += bs_to_bs_seconds(beta);
      e.energy_j += bs_to_bs_energy(beta);
    }
  }
  return e;
}

// l = 2: process on the issuing device's base station. Local data α uploads
// from the issuer in parallel with the external fetch (max{...} in the
// paper); the result η(α+β) downloads back to the issuer.
CostEntry CostModel::edge_cost(const Task& task) const {
  const BaseStation& bs = topo_->base_station(topo_->device(task.id.user).base_station);

  CostEntry e;
  e.compute_s = task.cycles() / bs.cpu_hz;
  // Base-station compute energy is negligible next to radio energy (paper,
  // Sec. II.A) and is omitted, as in the paper.

  const double alpha = task.local_bytes;
  const double beta = task.external_bytes;
  const ExternalFetch fetch = external_fetch(task);

  double external_path_s = fetch.upload_s;
  double energy = fetch.owner_energy;
  if (fetch.upload_s > 0.0 &&
      !topo_->same_cluster(task.external_owner, task.id.user)) {
    external_path_s += bs_to_bs_seconds(beta);
    energy += bs_to_bs_energy(beta);
  }
  const double local_path_s =
      alpha > 0.0 ? upload_seconds(task.id.user, alpha) : 0.0;
  energy += alpha > 0.0 ? upload_energy(task.id.user, alpha) : 0.0;

  const double result = task.result_bytes();
  e.transfer_s = std::max(external_path_s, local_path_s) +
                 download_seconds(task.id.user, result);
  e.energy_j = energy + download_energy(task.id.user, result);
  return e;
}

// l = 3: process on the remote cloud. Both α and β are forwarded over the
// WAN (plus the returned result), with the paper's t_{B,C}/e_{B,C} terms.
CostEntry CostModel::cloud_cost(const Task& task) const {
  const SystemParameters& p = topo_->params();

  CostEntry e;
  e.compute_s = task.cycles() / p.cloud_hz;

  const double alpha = task.local_bytes;
  const double beta = task.external_bytes;
  const ExternalFetch fetch = external_fetch(task);

  const double local_path_s =
      alpha > 0.0 ? upload_seconds(task.id.user, alpha) : 0.0;
  double energy = fetch.owner_energy +
                  (alpha > 0.0 ? upload_energy(task.id.user, alpha) : 0.0);

  const double result = task.result_bytes();
  const double wan_bytes = alpha + beta + result;
  e.transfer_s = std::max(fetch.upload_s, local_path_s) +
                 download_seconds(task.id.user, result) +
                 bs_to_cloud_seconds(wan_bytes);
  e.energy_j = energy + download_energy(task.id.user, result) +
               bs_to_cloud_energy(wan_bytes);
  return e;
}

}  // namespace mecsched::mec
