#include "mec/radio.h"

#include <cmath>

#include "common/error.h"

namespace mecsched::mec {

double shannon_rate(double bandwidth_hz, double channel_gain, double tx_power_w,
                    double noise_w) {
  MECSCHED_REQUIRE(bandwidth_hz > 0.0, "bandwidth must be positive");
  MECSCHED_REQUIRE(channel_gain >= 0.0, "channel gain must be non-negative");
  MECSCHED_REQUIRE(tx_power_w >= 0.0, "transmit power must be non-negative");
  MECSCHED_REQUIRE(noise_w > 0.0, "noise power must be positive");
  return bandwidth_hz * std::log2(1.0 + channel_gain * tx_power_w / noise_w);
}

}  // namespace mecsched::mec
