#include "io/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace mecsched::io {

bool Json::as_bool() const {
  if (!is_bool()) throw JsonError("not a bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) throw JsonError("not a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  if (!is_string()) throw JsonError("not a string");
  return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
  if (!is_array()) throw JsonError("not an array");
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::as_object() const {
  if (!is_object()) throw JsonError("not an object");
  return std::get<JsonObject>(value_);
}

JsonArray& Json::as_array() {
  if (!is_array()) throw JsonError("not an array");
  return std::get<JsonArray>(value_);
}

JsonObject& Json::as_object() {
  if (!is_object()) throw JsonError("not an object");
  return std::get<JsonObject>(value_);
}

const Json& Json::at(const std::string& key) const {
  const JsonObject& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw JsonError("missing key: " + key);
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

double Json::number_or(const std::string& key, double fallback) const {
  if (!contains(key)) return fallback;
  return at(key).as_number();
}

namespace {

void escape_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through
        }
    }
  }
  out += '"';
}

void append_number(double d, std::string& out) {
  if (!std::isfinite(d)) throw JsonError("JSON cannot represent NaN/Inf");
  if (d == static_cast<double>(static_cast<long long>(d)) &&
      std::fabs(d) < 1e15) {
    out += std::to_string(static_cast<long long>(d));
    return;
  }
  std::ostringstream os;
  os.precision(17);
  os << d;
  out += os.str();
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    append_number(as_number(), out);
  } else if (is_string()) {
    escape_string(as_string(), out);
  } else if (is_array()) {
    const JsonArray& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i != 0) out += ',';
      newline_indent(out, indent, depth + 1);
      arr[i].dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  } else {
    const JsonObject& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      escape_string(key, out);
      out += indent > 0 ? ": " : ":";
      value.dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("JSON parse error at offset " + std::to_string(pos_) +
                    ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }

  void expect_keyword(const char* kw) {
    for (const char* p = kw; *p; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        expect_keyword("true");
        return Json(true);
      case 'f':
        expect_keyword("false");
        return Json(false);
      case 'n':
        expect_keyword("null");
        return Json(nullptr);
      default:
        return parse_number();
    }
  }

  // Recursive descent: containers deeper than this are rejected instead of
  // risking a stack overflow (frames are much larger under sanitizers).
  static constexpr std::size_t kMaxDepth = 512;

  Json parse_object() {
    const DepthGuard guard(this);
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      take();
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    const DepthGuard guard(this);
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      take();
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = take();
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // high surrogate: require the low half
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("unpaired surrogate");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(code, out);
          break;
        }
        default:
          fail("bad escape");
      }
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v += static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v += static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    return v;
  }

  static void append_utf8(unsigned code, std::string& out) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') take();
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid number");
    }
    const std::string token = text_.substr(start, pos_ - start);
    try {
      std::size_t used = 0;
      const double v = std::stod(token, &used);
      if (used != token.size()) fail("invalid number: " + token);
      return Json(v);
    } catch (const std::logic_error&) {
      fail("invalid number: " + token);
    }
  }

  struct DepthGuard {
    explicit DepthGuard(Parser* p) : parser(p) {
      if (++parser->depth_ > kMaxDepth) {
        parser->fail("nesting deeper than " + std::to_string(kMaxDepth));
      }
    }
    ~DepthGuard() { --parser->depth_; }
    Parser* parser;
  };

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace mecsched::io
