// JSON (de)serialization of data-shared (divisible-task) scenarios and DTA
// pipeline results — the shared-data counterpart of io/codec.h.
#pragma once

#include "dta/data_model.h"
#include "dta/pipeline.h"
#include "io/json.h"

namespace mecsched::io {

Json divisible_task_to_json(const dta::DivisibleTask& task);
dta::DivisibleTask divisible_task_from_json(const Json& j);

Json shared_scenario_to_json(const dta::SharedDataScenario& scenario);
dta::SharedDataScenario shared_scenario_from_json(const Json& j);

// Summary of a DTA run (coverage sizes + aggregate metrics; the rearranged
// task list is reproducible from the scenario, so it is not embedded).
Json dta_result_to_json(const dta::DtaResult& result);

}  // namespace mecsched::io
