// Minimal JSON value, parser and serializer (RFC 8259 subset).
//
// mecsched has no third-party dependencies, so scenario/assignment
// serialization (io/codec.h) and the CLI sit on this hand-rolled JSON
// module. Supported: null, bool, double numbers, strings with the standard
// escapes (\uXXXX decodes the BMP; surrogate pairs are accepted), arrays,
// objects. Not supported (by design): comments, NaN/Infinity, duplicate
// key detection (last one wins, as in most parsers).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/error.h"

namespace mecsched::io {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps serialization deterministic (sorted keys).
using JsonObject = std::map<std::string, Json>;

// Thrown on malformed input text or type-mismatched access.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::size_t u) : value_(static_cast<double>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  // Typed access; throws JsonError on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& as_array();
  JsonObject& as_object();

  // Object field access; throws JsonError if absent or not an object.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  // Field with a default when the key is absent.
  double number_or(const std::string& key, double fallback) const;

  // Compact serialization (no whitespace). `indent` > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  // Parses a complete JSON document; trailing garbage is an error.
  static Json parse(const std::string& text);

  friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

}  // namespace mecsched::io
