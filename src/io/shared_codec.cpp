#include "io/shared_codec.h"

#include "io/codec.h"

namespace mecsched::io {
namespace {

Json item_set_to_json(const dta::ItemSet& items) {
  JsonArray arr;
  arr.reserve(items.size());
  for (std::size_t r : items) arr.emplace_back(r);
  return Json(std::move(arr));
}

dta::ItemSet item_set_from_json(const Json& j) {
  dta::ItemSet out;
  for (const Json& v : j.as_array()) {
    out.push_back(static_cast<std::size_t>(v.as_number()));
  }
  return out;
}

}  // namespace

Json divisible_task_to_json(const dta::DivisibleTask& t) {
  JsonObject o;
  o["user"] = t.id.user;
  o["index"] = t.id.index;
  o["items"] = item_set_to_json(t.items);
  o["op_bytes"] = t.op_bytes;
  o["cycles_per_byte"] = t.cycles_per_byte;
  o["result_kind"] = std::string(
      t.result_kind == mec::ResultSizeKind::kProportional ? "proportional"
                                                          : "constant");
  o["result_ratio"] = t.result_ratio;
  o["result_const_bytes"] = t.result_const_bytes;
  o["resource"] = t.resource;
  o["deadline_s"] = t.deadline_s;
  return Json(std::move(o));
}

dta::DivisibleTask divisible_task_from_json(const Json& j) {
  dta::DivisibleTask t;
  t.id.user = static_cast<std::size_t>(j.at("user").as_number());
  t.id.index = static_cast<std::size_t>(j.at("index").as_number());
  t.items = item_set_from_json(j.at("items"));
  t.op_bytes = j.number_or("op_bytes", t.op_bytes);
  t.cycles_per_byte = j.number_or("cycles_per_byte", t.cycles_per_byte);
  if (j.contains("result_kind")) {
    const std::string& kind = j.at("result_kind").as_string();
    if (kind == "proportional") {
      t.result_kind = mec::ResultSizeKind::kProportional;
    } else if (kind == "constant") {
      t.result_kind = mec::ResultSizeKind::kConstant;
    } else {
      throw JsonError("unknown result_kind: " + kind);
    }
  }
  t.result_ratio = j.number_or("result_ratio", t.result_ratio);
  t.result_const_bytes =
      j.number_or("result_const_bytes", t.result_const_bytes);
  t.resource = j.number_or("resource", t.resource);
  t.deadline_s = j.at("deadline_s").as_number();
  return t;
}

Json shared_scenario_to_json(const dta::SharedDataScenario& scenario) {
  JsonObject root;
  root["topology"] = topology_to_json(scenario.topology);
  JsonArray items;
  for (std::size_t r = 0; r < scenario.universe.num_items(); ++r) {
    items.emplace_back(scenario.universe.item_size(r));
  }
  root["item_bytes"] = Json(std::move(items));
  JsonArray ownership;
  for (const dta::ItemSet& d : scenario.ownership) {
    ownership.push_back(item_set_to_json(d));
  }
  root["ownership"] = Json(std::move(ownership));
  JsonArray tasks;
  for (const dta::DivisibleTask& t : scenario.tasks) {
    tasks.push_back(divisible_task_to_json(t));
  }
  root["tasks"] = Json(std::move(tasks));
  return Json(std::move(root));
}

dta::SharedDataScenario shared_scenario_from_json(const Json& j) {
  std::vector<double> item_bytes;
  for (const Json& v : j.at("item_bytes").as_array()) {
    item_bytes.push_back(v.as_number());
  }
  std::vector<dta::ItemSet> ownership;
  for (const Json& d : j.at("ownership").as_array()) {
    ownership.push_back(item_set_from_json(d));
  }
  std::vector<dta::DivisibleTask> tasks;
  for (const Json& t : j.at("tasks").as_array()) {
    tasks.push_back(divisible_task_from_json(t));
  }
  dta::SharedDataScenario out{topology_from_json(j.at("topology")),
                              dta::DataUniverse(std::move(item_bytes)),
                              std::move(ownership), std::move(tasks)};
  out.validate();
  return out;
}

Json dta_result_to_json(const dta::DtaResult& result) {
  JsonObject o;
  o["total_energy_j"] = result.total_energy_j;
  o["compute_energy_j"] = result.compute_energy_j;
  o["coordination_energy_j"] = result.coordination_energy_j;
  o["processing_time_s"] = result.processing_time_s;
  o["involved_devices"] = result.involved_devices;
  o["rearranged_tasks"] = result.rearranged.size();
  JsonArray shares;
  for (const dta::ItemSet& s : result.coverage.assigned) {
    shares.emplace_back(s.size());
  }
  o["share_sizes"] = Json(std::move(shares));
  return Json(std::move(o));
}

}  // namespace mecsched::io
