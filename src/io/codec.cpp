#include "io/codec.h"

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace mecsched::io {
namespace {

Json radio_to_json(const mec::RadioProfile& r) {
  JsonObject o;
  o["download_bps"] = r.download_bps;
  o["upload_bps"] = r.upload_bps;
  o["tx_power_w"] = r.tx_power_w;
  o["rx_power_w"] = r.rx_power_w;
  return Json(std::move(o));
}

mec::RadioProfile radio_from_json(const Json& j) {
  mec::RadioProfile r;
  r.download_bps = j.at("download_bps").as_number();
  r.upload_bps = j.at("upload_bps").as_number();
  r.tx_power_w = j.at("tx_power_w").as_number();
  r.rx_power_w = j.at("rx_power_w").as_number();
  return r;
}

Json params_to_json(const mec::SystemParameters& p) {
  JsonObject o;
  o["kappa"] = p.kappa;
  o["cycles_per_byte"] = p.cycles_per_byte;
  o["result_ratio"] = p.result_ratio;
  o["device_min_hz"] = p.device_min_hz;
  o["device_max_hz"] = p.device_max_hz;
  o["base_station_hz"] = p.base_station_hz;
  o["cloud_hz"] = p.cloud_hz;
  o["bs_to_bs_latency_s"] = p.bs_to_bs_latency_s;
  o["bs_to_bs_rate_bps"] = p.bs_to_bs_rate_bps;
  o["bs_to_bs_power_w"] = p.bs_to_bs_power_w;
  o["bs_to_cloud_latency_s"] = p.bs_to_cloud_latency_s;
  o["bs_to_cloud_rate_bps"] = p.bs_to_cloud_rate_bps;
  o["bs_to_cloud_power_w"] = p.bs_to_cloud_power_w;
  return Json(std::move(o));
}

mec::SystemParameters params_from_json(const Json& j) {
  mec::SystemParameters d;  // defaults for absent keys
  d.kappa = j.number_or("kappa", d.kappa);
  d.cycles_per_byte = j.number_or("cycles_per_byte", d.cycles_per_byte);
  d.result_ratio = j.number_or("result_ratio", d.result_ratio);
  d.device_min_hz = j.number_or("device_min_hz", d.device_min_hz);
  d.device_max_hz = j.number_or("device_max_hz", d.device_max_hz);
  d.base_station_hz = j.number_or("base_station_hz", d.base_station_hz);
  d.cloud_hz = j.number_or("cloud_hz", d.cloud_hz);
  d.bs_to_bs_latency_s = j.number_or("bs_to_bs_latency_s", d.bs_to_bs_latency_s);
  d.bs_to_bs_rate_bps = j.number_or("bs_to_bs_rate_bps", d.bs_to_bs_rate_bps);
  d.bs_to_bs_power_w = j.number_or("bs_to_bs_power_w", d.bs_to_bs_power_w);
  d.bs_to_cloud_latency_s =
      j.number_or("bs_to_cloud_latency_s", d.bs_to_cloud_latency_s);
  d.bs_to_cloud_rate_bps =
      j.number_or("bs_to_cloud_rate_bps", d.bs_to_cloud_rate_bps);
  d.bs_to_cloud_power_w =
      j.number_or("bs_to_cloud_power_w", d.bs_to_cloud_power_w);
  return d;
}

}  // namespace

Json topology_to_json(const mec::Topology& topology) {
  JsonArray devices;
  for (std::size_t i = 0; i < topology.num_devices(); ++i) {
    const mec::Device& d = topology.device(i);
    JsonObject o;
    o["id"] = d.id;
    o["base_station"] = d.base_station;
    o["cpu_hz"] = d.cpu_hz;
    o["radio"] = radio_to_json(d.radio);
    o["max_resource"] = d.max_resource;
    devices.emplace_back(std::move(o));
  }
  JsonArray stations;
  for (std::size_t b = 0; b < topology.num_base_stations(); ++b) {
    const mec::BaseStation& s = topology.base_station(b);
    JsonObject o;
    o["id"] = s.id;
    o["cpu_hz"] = s.cpu_hz;
    o["max_resource"] = s.max_resource;
    stations.emplace_back(std::move(o));
  }
  JsonObject root;
  root["devices"] = Json(std::move(devices));
  root["base_stations"] = Json(std::move(stations));
  root["params"] = params_to_json(topology.params());
  return Json(std::move(root));
}

mec::Topology topology_from_json(const Json& j) {
  std::vector<mec::Device> devices;
  for (const Json& dj : j.at("devices").as_array()) {
    mec::Device d;
    d.id = static_cast<std::size_t>(dj.at("id").as_number());
    d.base_station = static_cast<std::size_t>(dj.at("base_station").as_number());
    d.cpu_hz = dj.at("cpu_hz").as_number();
    d.radio = radio_from_json(dj.at("radio"));
    d.max_resource = dj.at("max_resource").as_number();
    devices.push_back(d);
  }
  std::vector<mec::BaseStation> stations;
  for (const Json& sj : j.at("base_stations").as_array()) {
    mec::BaseStation s;
    s.id = static_cast<std::size_t>(sj.at("id").as_number());
    s.cpu_hz = sj.at("cpu_hz").as_number();
    s.max_resource = sj.at("max_resource").as_number();
    stations.push_back(s);
  }
  return mec::Topology(std::move(devices), std::move(stations),
                       params_from_json(j.at("params")));
}

Json task_to_json(const mec::Task& t) {
  JsonObject o;
  o["user"] = t.id.user;
  o["index"] = t.id.index;
  o["local_bytes"] = t.local_bytes;
  o["external_bytes"] = t.external_bytes;
  o["external_owner"] = t.external_owner;
  o["cycles_per_byte"] = t.cycles_per_byte;
  o["result_kind"] = std::string(
      t.result_kind == mec::ResultSizeKind::kProportional ? "proportional"
                                                          : "constant");
  o["result_ratio"] = t.result_ratio;
  o["result_const_bytes"] = t.result_const_bytes;
  o["resource"] = t.resource;
  o["deadline_s"] = t.deadline_s;
  return Json(std::move(o));
}

mec::Task task_from_json(const Json& j) {
  mec::Task t;
  t.id.user = static_cast<std::size_t>(j.at("user").as_number());
  t.id.index = static_cast<std::size_t>(j.at("index").as_number());
  t.local_bytes = j.at("local_bytes").as_number();
  t.external_bytes = j.at("external_bytes").as_number();
  t.external_owner = static_cast<std::size_t>(j.at("external_owner").as_number());
  t.cycles_per_byte = j.number_or("cycles_per_byte", t.cycles_per_byte);
  if (j.contains("result_kind")) {
    const std::string& kind = j.at("result_kind").as_string();
    if (kind == "proportional") {
      t.result_kind = mec::ResultSizeKind::kProportional;
    } else if (kind == "constant") {
      t.result_kind = mec::ResultSizeKind::kConstant;
    } else {
      throw JsonError("unknown result_kind: " + kind);
    }
  }
  t.result_ratio = j.number_or("result_ratio", t.result_ratio);
  t.result_const_bytes = j.number_or("result_const_bytes", t.result_const_bytes);
  t.resource = j.number_or("resource", t.resource);
  t.deadline_s = j.at("deadline_s").as_number();
  return t;
}

Json scenario_to_json(const workload::Scenario& scenario) {
  JsonObject root;
  root["topology"] = topology_to_json(scenario.topology);
  JsonArray tasks;
  for (const mec::Task& t : scenario.tasks) tasks.push_back(task_to_json(t));
  root["tasks"] = Json(std::move(tasks));
  return Json(std::move(root));
}

workload::Scenario scenario_from_json(const Json& j) {
  std::vector<mec::Task> tasks;
  for (const Json& tj : j.at("tasks").as_array()) {
    tasks.push_back(task_from_json(tj));
  }
  return workload::Scenario{topology_from_json(j.at("topology")),
                            std::move(tasks)};
}

Json config_to_json(const workload::ScenarioConfig& c) {
  JsonObject o;
  o["num_devices"] = c.num_devices;
  o["num_base_stations"] = c.num_base_stations;
  o["num_tasks"] = c.num_tasks;
  o["max_input_kb"] = c.max_input_kb;
  o["min_input_fraction"] = c.min_input_fraction;
  o["external_ratio_max"] = c.external_ratio_max;
  o["cross_cluster_prob"] = c.cross_cluster_prob;
  o["wifi_prob"] = c.wifi_prob;
  o["deadline_slack_min"] = c.deadline_slack_min;
  o["deadline_slack_max"] = c.deadline_slack_max;
  o["resource_max_units"] = c.resource_max_units;
  o["device_capacity_min"] = c.device_capacity_min;
  o["device_capacity_max"] = c.device_capacity_max;
  o["station_capacity_per_device"] = c.station_capacity_per_device;
  o["result_kind"] = std::string(
      c.result_kind == mec::ResultSizeKind::kProportional ? "proportional"
                                                          : "constant");
  o["result_ratio"] = c.result_ratio;
  o["result_const_kb"] = c.result_const_kb;
  o["seed"] = static_cast<double>(c.seed);
  o["params"] = params_to_json(c.params);
  return Json(std::move(o));
}

workload::ScenarioConfig config_from_json(const Json& j) {
  workload::ScenarioConfig c;  // defaults for absent keys
  c.num_devices =
      static_cast<std::size_t>(j.number_or("num_devices",
                                           static_cast<double>(c.num_devices)));
  c.num_base_stations = static_cast<std::size_t>(j.number_or(
      "num_base_stations", static_cast<double>(c.num_base_stations)));
  c.num_tasks = static_cast<std::size_t>(
      j.number_or("num_tasks", static_cast<double>(c.num_tasks)));
  c.max_input_kb = j.number_or("max_input_kb", c.max_input_kb);
  c.min_input_fraction = j.number_or("min_input_fraction", c.min_input_fraction);
  c.external_ratio_max = j.number_or("external_ratio_max", c.external_ratio_max);
  c.cross_cluster_prob = j.number_or("cross_cluster_prob", c.cross_cluster_prob);
  c.wifi_prob = j.number_or("wifi_prob", c.wifi_prob);
  c.deadline_slack_min = j.number_or("deadline_slack_min", c.deadline_slack_min);
  c.deadline_slack_max = j.number_or("deadline_slack_max", c.deadline_slack_max);
  c.resource_max_units = j.number_or("resource_max_units", c.resource_max_units);
  c.device_capacity_min = j.number_or("device_capacity_min", c.device_capacity_min);
  c.device_capacity_max = j.number_or("device_capacity_max", c.device_capacity_max);
  c.station_capacity_per_device =
      j.number_or("station_capacity_per_device", c.station_capacity_per_device);
  if (j.contains("result_kind")) {
    const std::string& kind = j.at("result_kind").as_string();
    if (kind == "proportional") {
      c.result_kind = mec::ResultSizeKind::kProportional;
    } else if (kind == "constant") {
      c.result_kind = mec::ResultSizeKind::kConstant;
    } else {
      throw JsonError("unknown result_kind: " + kind);
    }
  }
  c.result_ratio = j.number_or("result_ratio", c.result_ratio);
  c.result_const_kb = j.number_or("result_const_kb", c.result_const_kb);
  c.seed = static_cast<std::uint64_t>(
      j.number_or("seed", static_cast<double>(c.seed)));
  if (j.contains("params")) c.params = params_from_json(j.at("params"));
  return c;
}

Json timed_scenario_to_json(const workload::TimedScenario& scenario) {
  JsonObject root;
  root["topology"] = topology_to_json(scenario.topology);
  JsonArray tasks;
  for (const assign::TimedTask& t : scenario.tasks) {
    Json tj = task_to_json(t.task);
    tj.as_object()["release_s"] = Json(t.release_s);
    tasks.push_back(std::move(tj));
  }
  root["tasks"] = Json(std::move(tasks));
  return Json(std::move(root));
}

workload::TimedScenario timed_scenario_from_json(const Json& j) {
  std::vector<assign::TimedTask> tasks;
  for (const Json& tj : j.at("tasks").as_array()) {
    assign::TimedTask t;
    t.task = task_from_json(tj);
    t.release_s = tj.at("release_s").as_number();
    tasks.push_back(std::move(t));
  }
  return workload::TimedScenario{topology_from_json(j.at("topology")),
                                 std::move(tasks)};
}

Json online_result_to_json(const assign::OnlineResult& result) {
  JsonObject o;
  o["total_energy_j"] = result.total_energy_j;
  o["mean_response_s"] = result.mean_response_s;
  o["makespan_s"] = result.makespan_s;
  o["cancelled"] = result.cancelled;
  o["epochs"] = result.epochs;
  JsonArray outcomes;
  for (const assign::OnlineTaskOutcome& t : result.outcomes) {
    JsonObject tj;
    tj["decision"] = Json(assign::to_string(t.decision));
    if (t.decision != assign::Decision::kCancelled) {
      tj["start_s"] = t.start_s;
      tj["finish_s"] = t.finish_s;
    }
    outcomes.emplace_back(std::move(tj));
  }
  o["outcomes"] = Json(std::move(outcomes));
  return Json(std::move(o));
}

Json assignment_to_json(const assign::Assignment& assignment) {
  JsonArray decisions;
  for (assign::Decision d : assignment.decisions) {
    decisions.emplace_back(assign::to_string(d));
  }
  JsonObject root;
  root["decisions"] = Json(std::move(decisions));
  return Json(std::move(root));
}

assign::Assignment assignment_from_json(const Json& j) {
  assign::Assignment a;
  for (const Json& dj : j.at("decisions").as_array()) {
    const std::string& s = dj.as_string();
    if (s == "local") {
      a.decisions.push_back(assign::Decision::kLocal);
    } else if (s == "edge") {
      a.decisions.push_back(assign::Decision::kEdge);
    } else if (s == "cloud") {
      a.decisions.push_back(assign::Decision::kCloud);
    } else if (s == "cancelled") {
      a.decisions.push_back(assign::Decision::kCancelled);
    } else {
      throw JsonError("unknown decision: " + s);
    }
  }
  return a;
}

Json metrics_to_json(const assign::Metrics& m) {
  JsonObject o;
  o["num_tasks"] = m.num_tasks;
  o["cancelled"] = m.cancelled;
  o["deadline_violations"] = m.deadline_violations;
  o["total_energy_j"] = m.total_energy_j;
  o["mean_latency_s"] = m.mean_latency_s;
  o["max_latency_s"] = m.max_latency_s;
  o["on_local"] = m.on_local;
  o["on_edge"] = m.on_edge;
  o["on_cloud"] = m.on_cloud;
  o["unsatisfied_rate"] = m.unsatisfied_rate();
  return Json(std::move(o));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MECSCHED_REQUIRE(in.good(), "cannot open file for reading: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  MECSCHED_REQUIRE(out.good(), "cannot open file for writing: " + path);
  out << content;
  MECSCHED_REQUIRE(out.good(), "failed writing file: " + path);
}

}  // namespace mecsched::io
