// JSON codec for serve workloads: a universe topology plus the event
// trace the daemon replays (src/serve/event.h).
//
// Round-trippable: a workload written by `mecsched generate-serve` and
// reloaded by `mecsched serve --replay` reproduces the identical decision
// log, because the trace's event order is preserved verbatim (the Trace
// constructor's stable sort keeps simultaneous events in file order).
#pragma once

#include "io/json.h"
#include "serve/event.h"
#include "workload/serve_trace.h"

namespace mecsched::io {

Json serve_event_to_json(const serve::Event& event);
serve::Event serve_event_from_json(const Json& j);

Json serve_workload_to_json(const workload::ServeWorkload& workload);
workload::ServeWorkload serve_workload_from_json(const Json& j);

}  // namespace mecsched::io
