// JSON (de)serialization of mecsched's domain objects.
//
// Round-trippable: topology+tasks saved with `scenario_to_json` and loaded
// with `scenario_from_json` reproduce identical cost computations. Used by
// the CLI to pass scenarios and plans between invocations and to archive
// experiment inputs next to their outputs.
#pragma once

#include <string>

#include "assign/assignment.h"
#include "assign/evaluator.h"
#include "io/json.h"
#include "mec/task.h"
#include "mec/topology.h"
#include "workload/arrivals.h"
#include "workload/scenario.h"

namespace mecsched::io {

// --- topology + tasks ---------------------------------------------------
Json topology_to_json(const mec::Topology& topology);
mec::Topology topology_from_json(const Json& j);

Json task_to_json(const mec::Task& task);
mec::Task task_from_json(const Json& j);

Json scenario_to_json(const workload::Scenario& scenario);
workload::Scenario scenario_from_json(const Json& j);

// --- generator config -----------------------------------------------------
Json config_to_json(const workload::ScenarioConfig& config);
// Missing keys keep their defaults, so configs can be sparse.
workload::ScenarioConfig config_from_json(const Json& j);

// --- timed (online) scenarios ----------------------------------------------
Json timed_scenario_to_json(const workload::TimedScenario& scenario);
workload::TimedScenario timed_scenario_from_json(const Json& j);

Json online_result_to_json(const assign::OnlineResult& result);

// --- plans and metrics ----------------------------------------------------
Json assignment_to_json(const assign::Assignment& assignment);
assign::Assignment assignment_from_json(const Json& j);

Json metrics_to_json(const assign::Metrics& metrics);

// --- file helpers -----------------------------------------------------------
std::string read_file(const std::string& path);
void write_file(const std::string& path, const std::string& content);

}  // namespace mecsched::io
