// JSON export of simulation traces: per-task timelines plus (in contention
// mode) per-server utilization — the data needed to plot Gantt charts or
// utilization heatmaps outside the library.
#pragma once

#include "io/json.h"
#include "sim/simulator.h"

namespace mecsched::io {

Json sim_result_to_json(const sim::SimResult& result);

}  // namespace mecsched::io
