#include "io/serve_codec.h"

#include <utility>
#include <vector>

#include "io/codec.h"

namespace mecsched::io {
namespace {

std::string kind_name(serve::EventKind k) {
  switch (k) {
    case serve::EventKind::kTaskArrival:
      return "arrival";
    case serve::EventKind::kDeviceJoin:
      return "join";
    case serve::EventKind::kDeviceLeave:
      return "leave";
    case serve::EventKind::kDeviceMigrate:
      return "migrate";
  }
  throw JsonError("unknown serve event kind");
}

serve::EventKind kind_from_name(const std::string& name) {
  if (name == "arrival") return serve::EventKind::kTaskArrival;
  if (name == "join") return serve::EventKind::kDeviceJoin;
  if (name == "leave") return serve::EventKind::kDeviceLeave;
  if (name == "migrate") return serve::EventKind::kDeviceMigrate;
  throw JsonError("unknown serve event kind: " + name);
}

}  // namespace

Json serve_event_to_json(const serve::Event& event) {
  JsonObject o;
  o["time_s"] = event.time_s;
  o["kind"] = kind_name(event.kind);
  switch (event.kind) {
    case serve::EventKind::kTaskArrival:
      o["task"] = task_to_json(event.task);
      break;
    case serve::EventKind::kDeviceLeave:
      o["device"] = event.device;
      break;
    case serve::EventKind::kDeviceJoin:
    case serve::EventKind::kDeviceMigrate:
      o["device"] = event.device;
      o["station"] = event.station;
      break;
  }
  return Json(std::move(o));
}

serve::Event serve_event_from_json(const Json& j) {
  const double time_s = j.at("time_s").as_number();
  switch (kind_from_name(j.at("kind").as_string())) {
    case serve::EventKind::kTaskArrival:
      return serve::Event::arrival(time_s, task_from_json(j.at("task")));
    case serve::EventKind::kDeviceJoin:
      return serve::Event::join(
          time_s, static_cast<std::size_t>(j.at("device").as_number()),
          static_cast<std::size_t>(j.at("station").as_number()));
    case serve::EventKind::kDeviceLeave:
      return serve::Event::leave(
          time_s, static_cast<std::size_t>(j.at("device").as_number()));
    case serve::EventKind::kDeviceMigrate:
      return serve::Event::migrate(
          time_s, static_cast<std::size_t>(j.at("device").as_number()),
          static_cast<std::size_t>(j.at("station").as_number()));
  }
  throw JsonError("unknown serve event kind");
}

Json serve_workload_to_json(const workload::ServeWorkload& workload) {
  JsonObject root;
  root["topology"] = topology_to_json(workload.universe);
  JsonArray events;
  events.reserve(workload.trace.size());
  for (const serve::Event& e : workload.trace.events()) {
    events.push_back(serve_event_to_json(e));
  }
  root["events"] = Json(std::move(events));
  return Json(std::move(root));
}

workload::ServeWorkload serve_workload_from_json(const Json& j) {
  mec::Topology universe = topology_from_json(j.at("topology"));
  std::vector<serve::Event> events;
  for (const Json& ej : j.at("events").as_array()) {
    events.push_back(serve_event_from_json(ej));
  }
  serve::Trace trace(std::move(events));
  trace.validate_against(universe.num_devices(), universe.num_base_stations());
  return workload::ServeWorkload{std::move(universe), std::move(trace)};
}

}  // namespace mecsched::io
