#include "io/trace_codec.h"

namespace mecsched::io {
namespace {

Json busy_array(const std::vector<double>& busy) {
  JsonArray arr;
  arr.reserve(busy.size());
  for (double b : busy) arr.emplace_back(b);
  return Json(std::move(arr));
}

}  // namespace

Json sim_result_to_json(const sim::SimResult& result) {
  JsonObject root;
  root["makespan_s"] = result.makespan_s;
  root["total_energy_j"] = result.total_energy_j;
  root["events"] = result.events_processed;

  JsonArray tasks;
  for (const sim::TaskTimeline& tl : result.timelines) {
    JsonObject t;
    t["task"] = tl.task;
    t["placed"] = Json(tl.placed);
    if (tl.placed) {
      t["start_s"] = tl.start_s;
      t["finish_s"] = tl.finish_s;
      t["energy_j"] = tl.energy_j;
    }
    tasks.emplace_back(std::move(t));
  }
  root["timeline"] = Json(std::move(tasks));

  if (!result.device_cpu_busy_s.empty()) {
    JsonObject util;
    util["device_uplink_busy_s"] = busy_array(result.device_uplink_busy_s);
    util["device_downlink_busy_s"] = busy_array(result.device_downlink_busy_s);
    util["device_cpu_busy_s"] = busy_array(result.device_cpu_busy_s);
    util["station_cpu_busy_s"] = busy_array(result.station_cpu_busy_s);
    util["backhaul_busy_s"] = result.backhaul_busy_s;
    util["wan_busy_s"] = result.wan_busy_s;
    util["peak_utilization"] = result.peak_utilization();
    root["utilization"] = Json(std::move(util));
  }
  return Json(std::move(root));
}

}  // namespace mecsched::io
