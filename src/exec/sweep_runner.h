// Parallel scenario-grid fan-out with a deterministic result contract.
//
// A sweep is N independent cells (grid index 0..N-1). SweepRunner runs
// each cell once on a work-stealing ThreadPool and returns the per-cell
// results **in grid order**, whatever order the cells completed in, so a
// sweep's table/CSV is byte-identical for --jobs 1 and --jobs N.
//
// Determinism contract (tested in sweep_runner_test.cpp and the CLI sweep
// determinism test):
//   * a cell may depend only on its CellContext — its grid index and the
//     Rng substream derived from (master_seed, index) — never on shared
//     mutable state or completion order;
//   * each cell writes sweep-level metrics into a private obs::Registry
//     shard; shards are merged into Registry::global() in grid order after
//     the join, so merged counters/histograms are schedule-independent.
//     (Metrics the solvers write straight into the global registry remain
//     thread-safe but accumulate in completion order.)
//
// The optional InstanceCache memoizes exact solves (hit == what a fresh
// solve returns, so caching never perturbs results) and, with warm_start,
// passes adjacent-cell solutions to LP-HTA as LP warm hints.
#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/rng.h"
#include "exec/instance_cache.h"
#include "exec/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/window.h"

namespace mecsched::exec {

struct SweepOptions {
  // Worker count; 0 uses ThreadPool::default_jobs() (--jobs flag /
  // MECSCHED_JOBS env / hardware threads).
  std::size_t jobs = 0;
  // Root of the per-cell RNG substreams (CellContext::rng()).
  std::uint64_t master_seed = 1;
  // Optional shared memoization; see instance_cache.h. Not owned.
  InstanceCache* cache = nullptr;
  // Allow cross-cell warm hints (objective-preserving; see docs).
  bool warm_start = false;
  // Whole-sweep wall-clock deadline (unlimited by default). The runner
  // never kills a cell; cells opt in by passing CellContext::cancel() into
  // budget-aware assigners/solvers, which then degrade via their anytime
  // contracts. Cells that *start* past the deadline are tallied into
  // exec.sweep.cells_past_deadline (on their shard, so the count is
  // schedule-independent after the grid-order merge).
  Deadline deadline{};
};

// Everything a cell is allowed to read. Handed to the cell function by the
// runner; valid only for the duration of the call.
class CellContext {
 public:
  CellContext(std::size_t index, const SweepOptions& options,
              obs::Registry& shard)
      : index_(index), options_(&options), shard_(&shard) {}

  std::size_t index() const { return index_; }

  // Deterministic per-cell stream: substream `index` of the master seed.
  // Independent of every other cell by construction.
  std::uint64_t seed() const {
    return Rng(options_->master_seed).substream_seed(index_);
  }
  Rng rng() const { return Rng(options_->master_seed).substream(index_); }

  // Private metric shard, merged into the global registry in grid order.
  obs::Registry& registry() { return *shard_; }

  InstanceCache* cache() const { return options_->cache; }
  bool warm_start() const { return options_->warm_start; }

  // The sweep-wide budget, as a deadline and as a ready-made token for
  // budget-aware assigners (see SweepOptions::deadline).
  const Deadline& deadline() const { return options_->deadline; }
  CancellationToken cancel() const {
    return CancellationToken(options_->deadline);
  }

 private:
  std::size_t index_;
  const SweepOptions* options_;
  obs::Registry* shard_;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {}) : options_(options) {}

  std::size_t jobs() const {
    return options_.jobs > 0 ? options_.jobs : ThreadPool::default_jobs();
  }

  // Runs `fn` once per cell across the pool and returns the results in
  // grid order. Waits for every cell even when one throws, then rethrows
  // the first failure. Each cell's wall-clock lands in the
  // exec.sweep.cell_seconds histogram of its shard (hence, merged, of the
  // global registry).
  template <typename T>
  std::vector<T> run(std::size_t num_cells,
                     const std::function<T(CellContext&)>& fn) {
    std::vector<std::unique_ptr<obs::Registry>> shards(num_cells);
    std::vector<std::optional<T>> slots(num_cells);
    for (std::size_t i = 0; i < num_cells; ++i) {
      shards[i] = std::make_unique<obs::Registry>();
    }
    {
      ThreadPool pool(jobs());
      std::vector<std::future<void>> futures;
      futures.reserve(num_cells);
      for (std::size_t i = 0; i < num_cells; ++i) {
        futures.push_back(pool.submit([this, &fn, &shards, &slots, i] {
          CellContext ctx(i, options_, *shards[i]);
          const bool past_deadline = options_.deadline.expired();
          if (past_deadline) {
            shards[i]->counter("exec.sweep.cells_past_deadline").add();
          }
          obs::FlightRecorder& flight = obs::FlightRecorder::global();
          const auto cut_record = [&](const char* status,
                                      const std::string& detail,
                                      double seconds) {
            obs::SolveRecord r;
            r.layer = "exec";
            r.engine = "sweep_cell";
            r.status = status;
            r.detail = "cell " + std::to_string(i) +
                       (detail.empty() ? "" : ": " + detail);
            r.seconds = seconds;
            r.deadline_residual_ms =
                obs::FlightRecorder::residual_ms(options_.deadline);
            r.deadline_hit = past_deadline;
            flight.record(std::move(r));
          };
          const auto start = std::chrono::steady_clock::now();
          const auto elapsed = [&start] {
            return std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                .count();
          };
          try {
            slots[i].emplace(fn(ctx));
          } catch (const std::exception& e) {
            if (flight.enabled()) cut_record("error", e.what(), elapsed());
            throw;
          }
          const double dt = elapsed();
          shards[i]->histogram("exec.sweep.cell_seconds").observe(dt);
          shards[i]->window("exec.sweep.cell_seconds").observe(dt);
          shards[i]->rate("exec.sweep.cells").record();
          if (flight.enabled()) {
            cut_record(past_deadline ? "deadline" : "ok", "", dt);
          }
        }));
      }
      // Join every cell before touching the slots; surface the first
      // failure only after the pool is quiesced.
      std::exception_ptr first;
      for (std::future<void>& f : futures) {
        try {
          f.get();
        } catch (...) {
          if (!first) first = std::current_exception();
        }
      }
      if (first) std::rethrow_exception(first);
    }
    // Deterministic merge: grid order, independent of completion order.
    for (const auto& shard : shards) {
      obs::Registry::global().merge_from(*shard);
    }
    std::vector<T> out;
    out.reserve(num_cells);
    for (std::optional<T>& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

 private:
  SweepOptions options_;
};

}  // namespace mecsched::exec
