// Memoization for repeated HTA solves: an LRU keyed by a canonical
// fingerprint of the instance, plus a "warm hint" side-channel that hands
// the most recent solution of a grid family to LP-HTA as a simplex warm
// start for the adjacent cell.
//
// The fingerprint hashes exactly the quantities the assignment algorithms
// read — per-placement latencies/energies, deadlines, resource demands,
// cluster membership and the device/station capacities — so two instances
// with the same fingerprint are solver-indistinguishable, and a cache hit
// returns byte-for-byte what a fresh solve would. Warm hints are weaker by
// design: they accelerate the LP pivot path of a *similar* instance and
// preserve the LP objective, but never short-circuit the solve (see
// docs/parallelism.md, "Warm starts").
//
// Thread-safe: the sweep workers share one cache. Hits/misses/evictions
// report into obs (exec.cache.*) and are also readable via stats().
//
// A third reuse tier lives below this one: lp::SymbolicFactorCache
// (lp/sparse_cholesky.h) memoizes the sparse Cholesky *symbolic analysis*
// by LP constraint-pattern fingerprint. It kicks in even when this cache
// misses — two sweep cells with different task data but the same cluster
// shape share the fill-reducing ordering, so only the numeric
// factorization reruns. cmd_sweep sizes it with --cache-capacity too.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "assign/assignment.h"
#include "assign/hta_instance.h"
#include "common/thread_annotations.h"

namespace mecsched::exec {

// Canonical 64-bit fingerprint of everything the assigners consume.
std::uint64_t fingerprint(const assign::HtaInstance& instance);

// Order-dependent hash combiners for building cache keys (e.g. mixing an
// algorithm name into an instance fingerprint).
std::uint64_t mix(std::uint64_t a, std::uint64_t b);
std::uint64_t hash_string(const std::string& s);

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

class InstanceCache {
 public:
  explicit InstanceCache(std::size_t capacity = 128);

  // Exact-hit lookup; refreshes LRU order. nullptr on miss.
  std::shared_ptr<const assign::Assignment> find(std::uint64_t key);

  // Inserts (or refreshes) a solved assignment, evicting the least
  // recently used entry when over capacity.
  void insert(std::uint64_t key, assign::Assignment assignment);

  // Most recent solution stored for `family` (a caller-chosen grouping of
  // similar instances, e.g. hash of (algorithm, repetition)); nullptr when
  // the family has no solution yet.
  std::shared_ptr<const assign::Assignment> warm_hint(
      std::uint64_t family) const;
  void store_warm(std::uint64_t family,
                  std::shared_ptr<const assign::Assignment> assignment);

  // Order-insensitive digest of the cache's contents: every (key, decision
  // vector) pair in the LRU plus every warm-hint family. The backing
  // containers are unordered_maps whose iteration order depends on
  // insertion/rehash history, so the digest sorts keys before hashing —
  // two caches holding the same entries always fingerprint equal, no
  // matter how they got there. Lets sweep runs assert cache-state
  // reproducibility across worker schedules.
  std::uint64_t contents_fingerprint() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  CacheStats stats() const;
  void clear();

 private:
  using Entry = std::pair<std::uint64_t, std::shared_ptr<const assign::Assignment>>;

  mutable Mutex mu_;
  std::size_t capacity_;  // immutable after construction
  // front = most recently used
  std::list<Entry> lru_ MECSCHED_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_
      MECSCHED_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, std::shared_ptr<const assign::Assignment>>
      warm_ MECSCHED_GUARDED_BY(mu_);
  CacheStats stats_ MECSCHED_GUARDED_BY(mu_);
};

}  // namespace mecsched::exec
