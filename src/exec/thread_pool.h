// Work-stealing thread pool — the execution substrate of the sweep runner.
//
// Fixed worker count, one deque per worker: a worker pops its own deque
// from the back (LIFO, cache-warm) and steals from the front of a
// sibling's deque when its own runs dry, so an uneven grid keeps every
// core busy. Design points:
//
//   * submit() returns a std::future; a task that throws stores the
//     exception in its future instead of tearing the pool down,
//   * shutdown is graceful: the destructor (or shutdown()) stops intake,
//     drains every queued task, then joins the workers,
//   * observable: exec.pool.queue_depth (gauge), exec.pool.steals and
//     exec.pool.tasks (counters) report into obs::Registry::global().
//
// The worker count defaults to default_jobs(): the CLI-wide --jobs flag
// (set_default_jobs) wins, then the MECSCHED_JOBS environment variable,
// then one worker per hardware thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.h"

namespace mecsched::exec {

class ThreadPool {
 public:
  // `workers` = 0 picks default_jobs().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();  // graceful: drains queued work, then joins

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Schedules `f` and returns the future of its result. Exceptions thrown
  // by `f` surface from future::get(). Throws ModelError after shutdown.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  std::size_t size() const { return workers_.size(); }

  // Tasks submitted but not yet started.
  std::size_t queue_depth() const {
    return pending_.load(std::memory_order_relaxed);
  }

  // Stops intake, finishes every queued task, joins. Idempotent; the
  // destructor calls it.
  void shutdown();

  // Worker count used when a pool (or sweep) is built with jobs = 0:
  // set_default_jobs() override > MECSCHED_JOBS env > hardware threads.
  static std::size_t default_jobs();
  // Process-wide override (the CLI's --jobs). 0 clears the override.
  static void set_default_jobs(std::size_t n);

 private:
  struct Shard {
    mutable Mutex mu;
    std::deque<std::function<void()>> queue MECSCHED_GUARDED_BY(mu);
  };

  void enqueue(std::function<void()> task);
  void worker_loop(std::size_t id);
  // Pops own work from the back, else steals from a sibling's front.
  bool try_pop(std::size_t id, std::function<void()>& task);

  // Immutable after construction (workers are spawned last in the ctor),
  // so shards_/workers_ need no guard; each Shard locks itself.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  Mutex wake_mu_;
  CondVar wake_cv_;
  bool stop_ MECSCHED_GUARDED_BY(wake_mu_) = false;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::uint64_t> next_shard_{0};
};

}  // namespace mecsched::exec
