#include "exec/thread_pool.h"

#include <cstdlib>
#include <string>

#include "common/error.h"
#include "obs/registry.h"

namespace mecsched::exec {

namespace {

std::atomic<std::size_t>& jobs_override() {
  static std::atomic<std::size_t> value{0};
  return value;
}

}  // namespace

std::size_t ThreadPool::default_jobs() {
  const std::size_t forced = jobs_override().load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  if (const char* env = std::getenv("MECSCHED_JOBS")) {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::set_default_jobs(std::size_t n) {
  jobs_override().store(n, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t n = workers > 0 ? workers : default_jobs();
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    const MutexLock lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const MutexLock lock(wake_mu_);
    MECSCHED_REQUIRE(!stop_, "ThreadPool: submit after shutdown");
  }
  const std::size_t shard =
      next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  {
    const MutexLock lock(shards_[shard]->mu);
    shards_[shard]->queue.push_back(std::move(task));
  }
  const std::size_t depth =
      pending_.fetch_add(1, std::memory_order_relaxed) + 1;
  obs::Registry& reg = obs::Registry::global();
  reg.counter("exec.pool.tasks").add();
  reg.gauge("exec.pool.queue_depth").set(static_cast<double>(depth));
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t id, std::function<void()>& task) {
  {
    Shard& own = *shards_[id];
    const MutexLock lock(own.mu);
    if (!own.queue.empty()) {
      task = std::move(own.queue.back());
      own.queue.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (std::size_t k = 1; k < shards_.size(); ++k) {
    Shard& victim = *shards_[(id + k) % shards_.size()];
    const MutexLock lock(victim.mu);
    if (!victim.queue.empty()) {
      task = std::move(victim.queue.front());
      victim.queue.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      obs::Registry::global().counter("exec.pool.steals").add();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t id) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(id, task)) {
      obs::Registry::global().gauge("exec.pool.queue_depth")
          .set(static_cast<double>(pending_.load(std::memory_order_relaxed)));
      try {
        task();  // packaged_task captures any exception into its future
      } catch (...) {
        // A raw enqueue()d task (or a pathological functor) must not tear
        // the worker down mid-drain: a dead worker strands the queue and
        // deadlocks every future still waiting on it. Swallow, count, keep
        // draining.
        obs::Registry::global().counter("exec.pool.task_exceptions").add();
      }
      continue;
    }
    // Open-coded predicate wait: the analysis sees stop_ read with
    // wake_mu_ held here, where a predicate lambda handed to a
    // condition_variable would be analyzed as a lock-free function.
    const MutexLock lock(wake_mu_);
    while (!stop_ && pending_.load(std::memory_order_relaxed) == 0) {
      wake_cv_.wait(wake_mu_);
    }
    if (stop_ && pending_.load(std::memory_order_relaxed) == 0) return;
  }
}

}  // namespace mecsched::exec
