#include "exec/instance_cache.h"

#include <algorithm>
#include <bit>
#include <vector>

#include "common/error.h"
#include "mec/topology.h"
#include "obs/registry.h"

namespace mecsched::exec {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t mix_double(std::uint64_t h, double v) {
  // Canonicalize -0.0 so numerically equal instances hash equal.
  const double c = v == 0.0 ? 0.0 : v;
  return mix(h, std::bit_cast<std::uint64_t>(c));
}

}  // namespace

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ splitmix64(b));
}

std::uint64_t hash_string(const std::string& s) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  for (const char c : s) h = mix(h, static_cast<std::uint64_t>(c));
  return mix(h, s.size());
}

std::uint64_t fingerprint(const assign::HtaInstance& instance) {
  const mec::Topology& topo = instance.topology();
  std::uint64_t h = mix(topo.num_devices(), topo.num_base_stations());
  for (std::size_t d = 0; d < topo.num_devices(); ++d) {
    const mec::Device& dev = topo.device(d);
    h = mix(h, dev.base_station);
    h = mix_double(h, dev.max_resource);
  }
  for (std::size_t b = 0; b < topo.num_base_stations(); ++b) {
    h = mix_double(h, topo.base_station(b).max_resource);
  }
  h = mix(h, instance.num_tasks());
  for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
    const mec::Task& task = instance.task(t);
    h = mix(h, task.id.user);
    h = mix_double(h, task.resource);
    h = mix_double(h, task.deadline_s);
    for (const mec::Placement p : mec::kAllPlacements) {
      h = mix_double(h, instance.latency(t, p));
      h = mix_double(h, instance.energy(t, p));
    }
  }
  return h;
}

InstanceCache::InstanceCache(std::size_t capacity) : capacity_(capacity) {
  MECSCHED_REQUIRE(capacity > 0, "InstanceCache capacity must be positive");
}

std::shared_ptr<const assign::Assignment> InstanceCache::find(
    std::uint64_t key) {
  const MutexLock lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    obs::Registry::global().counter("exec.cache.misses").add();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++stats_.hits;
  obs::Registry::global().counter("exec.cache.hits").add();
  return it->second->second;
}

void InstanceCache::insert(std::uint64_t key, assign::Assignment assignment) {
  const MutexLock lock(mu_);
  auto shared = std::make_shared<const assign::Assignment>(std::move(assignment));
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(shared);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(shared));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
    obs::Registry::global().counter("exec.cache.evictions").add();
  }
}

std::shared_ptr<const assign::Assignment> InstanceCache::warm_hint(
    std::uint64_t family) const {
  const MutexLock lock(mu_);
  const auto it = warm_.find(family);
  return it == warm_.end() ? nullptr : it->second;
}

void InstanceCache::store_warm(
    std::uint64_t family,
    std::shared_ptr<const assign::Assignment> assignment) {
  const MutexLock lock(mu_);
  warm_[family] = std::move(assignment);
}

std::uint64_t InstanceCache::contents_fingerprint() const {
  const MutexLock lock(mu_);
  // index_/warm_ are unordered; hash over sorted keys so the digest is a
  // function of the *set* of entries, not of bucket layout.
  std::vector<std::uint64_t> keys;
  keys.reserve(index_.size());
  // lint:allow-unordered-iteration -- keys are sorted before hashing.
  for (const auto& [key, unused] : index_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  std::uint64_t h = mix(0x6d656373636865ULL, keys.size());
  for (const std::uint64_t key : keys) {
    h = mix(h, key);
    const auto& assignment = *index_.at(key)->second;
    h = mix(h, assignment.decisions.size());
    for (const assign::Decision d : assignment.decisions) {
      h = mix(h, static_cast<std::uint64_t>(d));
    }
  }
  keys.clear();
  // lint:allow-unordered-iteration -- keys are sorted before hashing.
  for (const auto& [family, unused] : warm_) keys.push_back(family);
  std::sort(keys.begin(), keys.end());
  h = mix(h, keys.size());
  for (const std::uint64_t family : keys) h = mix(h, family);
  return h;
}

std::size_t InstanceCache::size() const {
  const MutexLock lock(mu_);
  return lru_.size();
}

CacheStats InstanceCache::stats() const {
  const MutexLock lock(mu_);
  return stats_;
}

void InstanceCache::clear() {
  const MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  warm_.clear();
  stats_ = CacheStats{};
}

}  // namespace mecsched::exec
