// Failure recovery: repair an assignment after a mobile device dies.
//
// When device `failed` goes down:
//   * tasks it *issued* are lost — there is no radio left to upload their
//     local data or receive their results;
//   * tasks whose *external data owner* it was are lost too — their β is
//     gone (the paper's model has a single owner per task);
//   * tasks that merely *executed* on it (kLocal) but were issued by other
//     devices do not exist in this model (a task only runs locally on its
//     own issuer), so every other task keeps its placement.
//
// The lost tasks are marked cancelled; the survivors are re-checked for
// capacity (removing a device never frees station capacity, so they stay
// feasible). The repaired plan can then be replayed on the simulator with
// the same failure injected to verify no surviving task touches the dead
// hardware.
#pragma once

#include "assign/assignment.h"
#include "assign/hta_instance.h"

namespace mecsched::assign {

struct RecoveryResult {
  Assignment assignment;
  std::size_t lost_issued = 0;  // tasks issued by the failed device
  std::size_t lost_data = 0;    // tasks whose external owner failed
};

RecoveryResult replan_after_device_failure(const HtaInstance& instance,
                                           const Assignment& original,
                                           std::size_t failed_device);

}  // namespace mecsched::assign
