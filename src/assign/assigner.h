// Common interface for all task-assignment algorithms, so benchmarks and
// examples can sweep over {LP-HTA, HGOS, AllToC, AllOffload, ...}
// uniformly.
#pragma once

#include <memory>
#include <string>

#include "assign/assignment.h"
#include "assign/hta_instance.h"

namespace mecsched::assign {

class Assigner {
 public:
  virtual ~Assigner() = default;

  virtual Assignment assign(const HtaInstance& instance) const = 0;
  virtual std::string name() const = 0;
};

}  // namespace mecsched::assign
