// Common interface for all task-assignment algorithms, so benchmarks and
// examples can sweep over {LP-HTA, HGOS, AllToC, AllOffload, ...}
// uniformly.
#pragma once

#include <memory>
#include <string>

#include "common/deadline.h"

#include "assign/assignment.h"
#include "assign/hta_instance.h"

namespace mecsched::assign {

class Assigner {
 public:
  virtual ~Assigner() = default;

  virtual Assignment assign(const HtaInstance& instance) const = 0;

  // Budget-aware entry point. The default ignores the token and runs the
  // plain assign(): the greedy assigners (HGOS, LocalFirst, ...) finish in
  // O(n log n) and *are* the floor a budget degrades to. Solver-backed
  // assigners (LP-HTA, Exact-ILP) override this and thread the token into
  // their engines.
  virtual Assignment assign(const HtaInstance& instance,
                            const CancellationToken& cancel) const {
    (void)cancel;
    return assign(instance);
  }

  virtual std::string name() const = 0;
};

}  // namespace mecsched::assign
