#include "assign/evaluator.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace mecsched::assign {

Metrics evaluate(const HtaInstance& instance, const Assignment& assignment) {
  MECSCHED_REQUIRE(assignment.size() == instance.num_tasks(),
                   "assignment size mismatch");
  Metrics m;
  m.num_tasks = instance.num_tasks();
  double latency_sum = 0.0;
  std::size_t placed = 0;

  for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
    const Decision d = assignment.decisions[t];
    if (d == Decision::kCancelled) {
      ++m.cancelled;
      continue;
    }
    const mec::Placement p = to_placement(d);
    switch (d) {
      case Decision::kLocal:
        ++m.on_local;
        break;
      case Decision::kEdge:
        ++m.on_edge;
        break;
      case Decision::kCloud:
        ++m.on_cloud;
        break;
      case Decision::kCancelled:
        break;
    }
    const double latency = instance.latency(t, p);
    m.total_energy_j += instance.energy(t, p);
    latency_sum += latency;
    m.max_latency_s = std::max(m.max_latency_s, latency);
    if (!instance.meets_deadline(t, p)) ++m.deadline_violations;
    ++placed;
  }
  m.mean_latency_s = placed == 0 ? 0.0 : latency_sum / static_cast<double>(placed);
  return m;
}

FeasibilityReport check_feasibility(const HtaInstance& instance,
                                    const Assignment& assignment) {
  MECSCHED_REQUIRE(assignment.size() == instance.num_tasks(),
                   "assignment size mismatch");
  FeasibilityReport report;
  const mec::Topology& topo = instance.topology();

  std::vector<double> device_load(topo.num_devices(), 0.0);
  std::vector<double> station_load(topo.num_base_stations(), 0.0);

  for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
    const Decision d = assignment.decisions[t];
    if (d == Decision::kCancelled) continue;
    const mec::Task& task = instance.task(t);
    const mec::Placement p = to_placement(d);

    if (!instance.meets_deadline(t, p)) {  // (C1)
      std::ostringstream os;
      os << mec::to_string(task.id) << " on " << mec::to_string(p)
         << " misses deadline: " << instance.latency(t, p) << "s > "
         << task.deadline_s << "s";
      report.problems.push_back(os.str());
    }
    if (d == Decision::kLocal) {
      device_load[task.id.user] += task.resource;
    } else if (d == Decision::kEdge) {
      station_load[topo.device(task.id.user).base_station] += task.resource;
    }
  }

  for (std::size_t i = 0; i < topo.num_devices(); ++i) {  // (C2)
    if (device_load[i] > topo.device(i).max_resource + 1e-9) {
      std::ostringstream os;
      os << "device " << i << " over capacity: " << device_load[i] << " > "
         << topo.device(i).max_resource;
      report.problems.push_back(os.str());
    }
  }
  for (std::size_t b = 0; b < topo.num_base_stations(); ++b) {  // (C3)
    if (station_load[b] > topo.base_station(b).max_resource + 1e-9) {
      std::ostringstream os;
      os << "station " << b << " over capacity: " << station_load[b] << " > "
         << topo.base_station(b).max_resource;
      report.problems.push_back(os.str());
    }
  }

  report.ok = report.problems.empty();
  return report;
}

}  // namespace mecsched::assign
