#include "assign/baselines.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "audit/assignment_audit.h"
#include "common/rng.h"

namespace mecsched::assign {

using mec::Placement;

Assignment AllToCloud::assign(const HtaInstance& instance) const {
  Assignment out;
  out.decisions.assign(instance.num_tasks(), Decision::kCloud);
  audit::check_assignment(instance, out, {.deadlines = false, .capacity = true},
                          "alltoc");
  return out;
}

Assignment AllOffload::assign(const HtaInstance& instance) const {
  // Offload everything; base stations are filled with the tasks that save
  // the most energy relative to the cloud, the overflow goes to the cloud.
  // Deadlines are NOT consulted — that is the point of this baseline.
  Assignment out;
  out.decisions.assign(instance.num_tasks(), Decision::kCloud);
  const mec::Topology& topo = instance.topology();

  for (std::size_t b = 0; b < topo.num_base_stations(); ++b) {
    std::vector<std::size_t> tasks = instance.cluster_tasks(b);
    // Best energy saving per resource unit first.
    std::sort(tasks.begin(), tasks.end(), [&](std::size_t x, std::size_t y) {
      const auto gain = [&](std::size_t t) {
        const double saving = instance.energy(t, Placement::kCloud) -
                              instance.energy(t, Placement::kEdge);
        return saving / std::max(instance.task(t).resource, 1e-9);
      };
      return gain(x) > gain(y);
    });
    double load = 0.0;
    const double cap = topo.base_station(b).max_resource;
    for (std::size_t t : tasks) {
      const double r = instance.task(t).resource;
      if (load + r > cap) continue;
      if (instance.energy(t, Placement::kEdge) >=
          instance.energy(t, Placement::kCloud)) {
        continue;  // edge would not even save energy
      }
      out.decisions[t] = Decision::kEdge;
      load += r;
    }
  }
  audit::check_assignment(instance, out, {.deadlines = false, .capacity = true},
                          "alloffload");
  return out;
}

Assignment RandomAssign::assign(const HtaInstance& instance) const {
  Rng rng(seed_);
  Assignment out;
  out.decisions.assign(instance.num_tasks(), Decision::kCloud);
  const mec::Topology& topo = instance.topology();
  std::vector<double> device_load(topo.num_devices(), 0.0);
  std::vector<double> station_load(topo.num_base_stations(), 0.0);

  for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
    const mec::Task& task = instance.task(t);
    const std::size_t bs = topo.device(task.id.user).base_station;
    const int pick = static_cast<int>(rng.uniform_int(0, 2));
    if (pick == 0 &&
        device_load[task.id.user] + task.resource <=
            topo.device(task.id.user).max_resource) {
      out.decisions[t] = Decision::kLocal;
      device_load[task.id.user] += task.resource;
    } else if (pick == 1 && station_load[bs] + task.resource <=
                                topo.base_station(bs).max_resource) {
      out.decisions[t] = Decision::kEdge;
      station_load[bs] += task.resource;
    }  // otherwise stays kCloud
  }
  audit::check_assignment(instance, out, {.deadlines = false, .capacity = true},
                          "random");
  return out;
}

Assignment LocalFirst::assign(const HtaInstance& instance) const {
  Assignment out;
  out.decisions.assign(instance.num_tasks(), Decision::kCancelled);
  const mec::Topology& topo = instance.topology();
  std::vector<double> device_load(topo.num_devices(), 0.0);
  std::vector<double> station_load(topo.num_base_stations(), 0.0);

  for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
    const mec::Task& task = instance.task(t);
    const std::size_t bs = topo.device(task.id.user).base_station;
    if (instance.meets_deadline(t, Placement::kLocal) &&
        device_load[task.id.user] + task.resource <=
            topo.device(task.id.user).max_resource) {
      out.decisions[t] = Decision::kLocal;
      device_load[task.id.user] += task.resource;
    } else if (instance.meets_deadline(t, Placement::kEdge) &&
               station_load[bs] + task.resource <=
                   topo.base_station(bs).max_resource) {
      out.decisions[t] = Decision::kEdge;
      station_load[bs] += task.resource;
    } else if (instance.meets_deadline(t, Placement::kCloud)) {
      out.decisions[t] = Decision::kCloud;
    }  // else remains cancelled
  }
  audit::check_assignment(instance, out, {.deadlines = true, .capacity = true},
                          "local-first");
  return out;
}

}  // namespace mecsched::assign
