#include "assign/online.h"

#include <algorithm>
#include <numeric>

#include "assign/evaluator.h"
#include "assign/hta_instance.h"
#include "common/error.h"

namespace mecsched::assign {
namespace {

// A task currently occupying capacity somewhere.
struct Running {
  double finish_s;
  Decision where;
  std::size_t device;   // issuer (for kLocal) / its station (for kEdge)
  std::size_t station;
  double resource;
};

// Topology copy with capacities reduced by what is still running.
mec::Topology residual_topology(const mec::Topology& base,
                                const std::vector<Running>& running,
                                double now) {
  std::vector<double> device_used(base.num_devices(), 0.0);
  std::vector<double> station_used(base.num_base_stations(), 0.0);
  for (const Running& r : running) {
    if (r.finish_s <= now) continue;
    if (r.where == Decision::kLocal) device_used[r.device] += r.resource;
    if (r.where == Decision::kEdge) station_used[r.station] += r.resource;
  }
  std::vector<mec::Device> devices;
  devices.reserve(base.num_devices());
  for (std::size_t i = 0; i < base.num_devices(); ++i) {
    mec::Device d = base.device(i);
    d.max_resource = std::max(0.0, d.max_resource - device_used[i]);
    devices.push_back(d);
  }
  std::vector<mec::BaseStation> stations;
  stations.reserve(base.num_base_stations());
  for (std::size_t b = 0; b < base.num_base_stations(); ++b) {
    mec::BaseStation s = base.base_station(b);
    s.max_resource = std::max(0.0, s.max_resource - station_used[b]);
    stations.push_back(s);
  }
  return mec::Topology(std::move(devices), std::move(stations), base.params());
}

}  // namespace

OnlineResult OnlineScheduler::run(const mec::Topology& topology,
                                  const std::vector<TimedTask>& tasks) const {
  MECSCHED_REQUIRE(options_.epoch_s > 0.0, "epoch length must be positive");
  OnlineResult result;
  result.outcomes.assign(tasks.size(), OnlineTaskOutcome{});
  if (tasks.empty()) return result;

  // Process arrivals in release order, but report in input order.
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].release_s < tasks[b].release_s;
  });

  std::vector<Running> running;
  double response_sum = 0.0;
  std::size_t placed = 0;

  std::size_t next = 0;  // index into `order`
  for (std::size_t epoch = 0; next < order.size(); ++epoch) {
    const double now = static_cast<double>(epoch + 1) * options_.epoch_s;
    // Batch: everything released up to `now`.
    std::vector<std::size_t> batch;
    while (next < order.size() && tasks[order[next]].release_s <= now) {
      batch.push_back(order[next++]);
    }
    if (batch.empty()) continue;
    ++result.epochs;

    // Drop finished tasks' reservations, then schedule against what's left.
    running.erase(std::remove_if(running.begin(), running.end(),
                                 [now](const Running& r) {
                                   return r.finish_s <= now;
                                 }),
                  running.end());
    const mec::Topology residual = residual_topology(topology, running, now);

    std::vector<mec::Task> batch_tasks;
    batch_tasks.reserve(batch.size());
    for (std::size_t id : batch) {
      mec::Task t = tasks[id].task;
      // The wait so far eats into the (relative) deadline.
      t.deadline_s -= now - tasks[id].release_s;
      batch_tasks.push_back(t);
    }
    const HtaInstance instance(residual, batch_tasks);
    const Assignment plan = LpHta(options_.lp).assign(instance);

    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::size_t id = batch[i];
      OnlineTaskOutcome& outcome = result.outcomes[id];
      outcome.decision = plan.decisions[i];
      if (outcome.decision == Decision::kCancelled) {
        ++result.cancelled;
        continue;
      }
      const mec::Placement p = to_placement(outcome.decision);
      const double latency = instance.latency(i, p);
      outcome.start_s = now;
      outcome.finish_s = now + latency;
      result.total_energy_j += instance.energy(i, p);
      result.makespan_s = std::max(result.makespan_s, outcome.finish_s);
      response_sum += outcome.finish_s - tasks[id].release_s;
      ++placed;

      const mec::Task& task = batch_tasks[i];
      running.push_back(Running{
          outcome.finish_s, outcome.decision, task.id.user,
          topology.device(task.id.user).base_station, task.resource});
    }
  }
  result.mean_response_s =
      placed == 0 ? 0.0 : response_sum / static_cast<double>(placed);
  return result;
}

}  // namespace mecsched::assign
