#include "assign/recovery.h"

#include <string>

#include "audit/assignment_audit.h"
#include "audit/audit.h"
#include "common/error.h"

namespace mecsched::assign {

RecoveryResult replan_after_device_failure(const HtaInstance& instance,
                                           const Assignment& original,
                                           std::size_t failed_device) {
  MECSCHED_REQUIRE(original.size() == instance.num_tasks(),
                   "assignment size mismatch");
  MECSCHED_REQUIRE(failed_device < instance.topology().num_devices(),
                   "unknown device");
  RecoveryResult out;
  out.assignment = original;

  for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
    if (out.assignment.decisions[t] == Decision::kCancelled) continue;
    const mec::Task& task = instance.task(t);
    if (task.id.user == failed_device) {
      out.assignment.decisions[t] = Decision::kCancelled;
      ++out.lost_issued;
      continue;
    }
    if (task.external_bytes > 0.0 && task.external_owner == failed_device) {
      out.assignment.decisions[t] = Decision::kCancelled;
      ++out.lost_data;
    }
  }
  // Recovery-specific certificate: no surviving task may reference the
  // failed device — neither as issuer (its radio is gone) nor as external
  // data owner (its β is gone). Capacity stays valid (removing tasks never
  // adds load), which the shared auditor re-checks.
  if (audit::enabled(audit::Level::kCheap)) {
    for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
      if (out.assignment.decisions[t] == Decision::kCancelled) continue;
      const mec::Task& task = instance.task(t);
      const bool references_failed =
          task.id.user == failed_device ||
          (task.external_bytes > 0.0 && task.external_owner == failed_device);
      if (references_failed) {
        audit::fail("assign", "recovery:dead-device:task=" + std::to_string(t),
                    static_cast<double>(failed_device),
                    "task " + std::to_string(t) +
                        " survived recovery but references failed device " +
                        std::to_string(failed_device) + " [recovery]");
      }
    }
    audit::check_assignment(instance, out.assignment,
                            {.deadlines = false, .capacity = true},
                            "recovery");
  }
  return out;
}

}  // namespace mecsched::assign
