#include "assign/recovery.h"

#include "common/error.h"

namespace mecsched::assign {

RecoveryResult replan_after_device_failure(const HtaInstance& instance,
                                           const Assignment& original,
                                           std::size_t failed_device) {
  MECSCHED_REQUIRE(original.size() == instance.num_tasks(),
                   "assignment size mismatch");
  MECSCHED_REQUIRE(failed_device < instance.topology().num_devices(),
                   "unknown device");
  RecoveryResult out;
  out.assignment = original;

  for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
    if (out.assignment.decisions[t] == Decision::kCancelled) continue;
    const mec::Task& task = instance.task(t);
    if (task.id.user == failed_device) {
      out.assignment.decisions[t] = Decision::kCancelled;
      ++out.lost_issued;
      continue;
    }
    if (task.external_bytes > 0.0 && task.external_owner == failed_device) {
      out.assignment.decisions[t] = Decision::kCancelled;
      ++out.lost_data;
    }
  }
  return out;
}

}  // namespace mecsched::assign
