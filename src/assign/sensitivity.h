// Capacity sensitivity analysis — what is a unit of edge capacity worth?
//
// Solves each cluster's LP relaxation (the same LP as LP-HTA Step 1) and
// reads the dual values of the resource rows (C2)/(C3). For a minimization
// with "<=" rows the duals are non-positive; their negation is the *shadow
// price*: the marginal decrease in LP-optimal energy per extra unit of
// max_i / max_S. Zero means the capacity is slack; large values tell an
// operator which device or base station to upgrade first.
//
// Shadow prices are exact for the LP relaxation (locally, while the basis
// stays optimal) and a good guide for the integral problem; the test suite
// validates them against finite differences of the LP optimum.
#pragma once

#include <vector>

#include "assign/hta_instance.h"

namespace mecsched::assign {

struct ShadowPrices {
  // J saved per extra resource unit, >= 0. Indexed by device/station id.
  std::vector<double> device;
  std::vector<double> station;
};

ShadowPrices capacity_shadow_prices(const HtaInstance& instance);

}  // namespace mecsched::assign
