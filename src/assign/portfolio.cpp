#include "assign/portfolio.h"

#include <limits>

#include "assign/baselines.h"
#include "assign/evaluator.h"
#include "audit/assignment_audit.h"
#include "assign/hgos.h"
#include "assign/lp_hta.h"
#include "common/error.h"
#include "obs/registry.h"
#include "obs/tracer.h"

namespace mecsched::assign {

Portfolio::Portfolio(std::vector<std::shared_ptr<Assigner>> candidates)
    : candidates_(std::move(candidates)) {
  MECSCHED_REQUIRE(!candidates_.empty(), "portfolio needs candidates");
}

Portfolio Portfolio::standard() {
  std::vector<std::shared_ptr<Assigner>> c;
  c.push_back(std::make_shared<LpHta>());
  c.push_back(std::make_shared<Hgos>());
  c.push_back(std::make_shared<LocalFirst>());
  c.push_back(std::make_shared<AllOffload>());
  return Portfolio(std::move(c));
}

Assignment Portfolio::assign(const HtaInstance& instance) const {
  PortfolioReport unused;
  return assign_with_report(instance, unused);
}

Assignment Portfolio::assign_with_report(const HtaInstance& instance,
                                         PortfolioReport& report) const {
  const obs::ScopedTimer span("portfolio.assign", "assign");
  report = PortfolioReport{};

  struct Score {
    std::size_t unsatisfied = std::numeric_limits<std::size_t>::max();
    bool infeasible = true;
    double energy = std::numeric_limits<double>::infinity();

    bool better_than(const Score& o) const {
      if (unsatisfied != o.unsatisfied) return unsatisfied < o.unsatisfied;
      if (infeasible != o.infeasible) return !infeasible;
      return energy < o.energy;
    }
  };

  Assignment best;
  Score best_score;
  std::string last_error;
  obs::Registry& reg = obs::Registry::global();
  obs::Tracer& tracer = obs::Tracer::global();
  for (const auto& candidate : candidates_) {
    Assignment plan;
    try {
      const obs::ScopedTimer candidate_span(
          "portfolio.candidate", "assign",
          tracer.enabled() ? "\"name\":\"" + candidate->name() + "\""
                           : std::string());
      plan = candidate->assign(instance);
    } catch (const SolverError& e) {
      // A solver blowup in one candidate must not take down the portfolio:
      // skip it and let the others compete.
      ++report.candidates_failed;
      reg.counter("portfolio.candidates_failed").add();
      last_error = candidate->name() + ": " + e.what();
      continue;
    }
    reg.counter("portfolio.candidates_tried").add();
    const Metrics m = evaluate(instance, plan);
    Score score;
    score.unsatisfied = m.cancelled + m.deadline_violations;
    score.infeasible = !check_feasibility(instance, plan).ok;
    score.energy = m.total_energy_j;
    ++report.candidates_tried;
    if (score.better_than(best_score)) {
      best_score = score;
      best = std::move(plan);
      report.winner = candidate->name();
      report.winner_energy_j = m.total_energy_j;
    }
  }
  if (report.candidates_tried == 0) {
    throw SolverError("portfolio: every candidate failed; last error: " +
                      last_error);
  }
  reg.counter("portfolio.won." + report.winner).add();
  tracer.instant("portfolio.winner", "assign",
                 tracer.enabled() ? "\"name\":\"" + report.winner + "\""
                                  : std::string());
  // Shape-only contract: the winner was audited by the candidate that
  // produced it, and a portfolio may legitimately return the least bad of
  // several constraint-violating plans.
  audit::check_assignment(instance, best,
                          {.deadlines = false, .capacity = false},
                          "portfolio");
  return best;
}

}  // namespace mecsched::assign
