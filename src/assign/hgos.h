// HGOS — Heuristic Greedy Offloading Scheme, the paper's main comparator
// (Guo, Liu, Zhang: "Computation offloading for multi-access mobile edge
// computing in ultra-dense networks", IEEE Comm. Mag. 2018, [12]).
//
// [12] is closed-source, so this is a faithful re-implementation from the
// paper's characterization of it: a greedy, energy-driven offloading scheme
// that (a) does not consider per-task delay constraints and (b) does not
// account for the data distribution (it prices every task as if all input
// were local). Each task is placed, most-demanding first, on the subsystem
// with the lowest *perceived* energy whose capacity still has room.
//
// The reproduction target (Sec. V.B/Fig. 2–4): HGOS's energy lands close to
// LP-HTA, but its unsatisfied-task rate is far higher because deadlines are
// never consulted.
#pragma once

#include "assign/assigner.h"

namespace mecsched::assign {

class Hgos : public Assigner {
 public:
  Assignment assign(const HtaInstance& instance) const override;
  std::string name() const override { return "HGOS"; }
};

}  // namespace mecsched::assign
