// Portfolio meta-assigner: run several algorithms on the instance, score
// each plan, keep the best. Scoring is lexicographic:
//   1. fewest unsatisfied tasks (cancelled + deadline violations),
//   2. full constraint feasibility (C2/C3 respected),
//   3. lowest total energy.
// Useful when the workload regime is unknown up front — LP-HTA wins on
// constrained instances, cheaper heuristics tie it on slack ones.
#pragma once

#include <memory>
#include <vector>

#include "assign/assigner.h"

namespace mecsched::assign {

struct PortfolioReport {
  std::string winner;
  double winner_energy_j = 0.0;
  std::size_t candidates_tried = 0;
  // Candidates whose assign() threw SolverError; they are skipped and the
  // remaining candidates still compete. Only if *every* candidate fails
  // does the portfolio rethrow.
  std::size_t candidates_failed = 0;
};

class Portfolio : public Assigner {
 public:
  explicit Portfolio(std::vector<std::shared_ptr<Assigner>> candidates);

  // The standard portfolio: LP-HTA, HGOS, LocalFirst, AllOffload.
  static Portfolio standard();

  Assignment assign(const HtaInstance& instance) const override;
  Assignment assign_with_report(const HtaInstance& instance,
                                PortfolioReport& report) const;

  std::string name() const override { return "Portfolio"; }

 private:
  std::vector<std::shared_ptr<Assigner>> candidates_;
};

}  // namespace mecsched::assign
