// Exact HTA solver via LP-based branch-and-bound.
//
// Produces the true optimum of the HTA integer program — minimize total
// energy subject to (C1)–(C5) — for instances small enough to enumerate
// (tens of tasks). The ablation benchmark uses it to measure LP-HTA's
// *empirical* approximation ratio against Theorem 2's bound; the test suite
// uses it as an oracle.
//
// Tasks with no deadline-feasible placement are cancelled up front (as in
// LP-HTA), so "exact" means: optimal over the schedulable tasks, which is
// exactly the set LP-HTA competes on.
#pragma once

#include "assign/assigner.h"
#include "ilp/branch_bound.h"

namespace mecsched::assign {

struct ExactResult {
  Assignment assignment;
  double energy = 0.0;
  bool proven_optimal = false;
  std::size_t nodes_explored = 0;
};

class ExactHta : public Assigner {
 public:
  explicit ExactHta(ilp::BnbOptions options = {}) : options_(options) {}

  Assignment assign(const HtaInstance& instance) const override;

  // Budgeted entry point: the token rides into each cluster's branch-and-
  // bound (and its node LPs). On expiry the incumbents found so far are
  // returned — integral and feasible, just not proven optimal — and tasks
  // in clusters without an incumbent stay cancelled.
  Assignment assign(const HtaInstance& instance,
                    const CancellationToken& cancel) const override;

  ExactResult solve(const HtaInstance& instance) const;

  std::string name() const override { return "Exact-ILP"; }

 private:
  ilp::BnbOptions options_;
};

}  // namespace mecsched::assign
