// Shared builder for the per-cluster LP relaxation P2 (plus the
// cancel-slack column documented in lp_hta.cpp). Used by LP-HTA's Step 1
// and by the sensitivity analysis, which needs the same LP but reads its
// dual values.
//
// Column layout: 4 consecutive columns per active task
// (local, edge, cloud, cancel). Row layout: one equality row per task (in
// `active` order), then one "<=" row per device (ids in `device_ids`
// order), then the station row.
#pragma once

#include <vector>

#include "assign/hta_instance.h"
#include "lp/problem.h"

namespace mecsched::assign {

struct ClusterLp {
  lp::Problem problem;
  std::vector<std::size_t> active;      // schedulable task indices
  std::vector<std::size_t> unschedulable;  // pre-cancelled task indices
  std::vector<std::size_t> device_ids;  // devices with a C2 row, ascending
  std::vector<std::size_t> device_row;  // constraint index per device_ids[i]
  std::size_t station_row = 0;          // constraint index of the C3 row
  double cancel_penalty = 0.0;

  std::size_t column(std::size_t task_slot, std::size_t l) const {
    return task_slot * 4 + l;
  }
};

ClusterLp build_cluster_lp(const HtaInstance& instance, std::size_t b);

}  // namespace mecsched::assign
