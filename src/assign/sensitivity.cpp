#include "assign/sensitivity.h"

#include <algorithm>

#include "assign/cluster_lp.h"
#include "common/error.h"
#include "lp/simplex.h"

namespace mecsched::assign {

ShadowPrices capacity_shadow_prices(const HtaInstance& instance) {
  const mec::Topology& topo = instance.topology();
  ShadowPrices out;
  out.device.assign(topo.num_devices(), 0.0);
  out.station.assign(topo.num_base_stations(), 0.0);

  const lp::SimplexSolver solver;
  for (std::size_t b = 0; b < topo.num_base_stations(); ++b) {
    const ClusterLp cluster = build_cluster_lp(instance, b);
    if (cluster.active.empty()) continue;
    const lp::Solution s = solver.solve(cluster.problem);
    if (!s.optimal()) {
      throw SolverError("sensitivity: cluster LP not optimal");
    }
    // "<=" rows of a minimization have duals <= 0; the shadow price is the
    // energy saved per unit of extra rhs, i.e. -dual.
    for (std::size_t i = 0; i < cluster.device_ids.size(); ++i) {
      out.device[cluster.device_ids[i]] =
          std::max(0.0, -s.duals[cluster.device_row[i]]);
    }
    out.station[b] = std::max(0.0, -s.duals[cluster.station_row]);
  }
  return out;
}

}  // namespace mecsched::assign
