// LP-HTA — the paper's primary contribution (Sec. III.A).
//
// Per cluster:
//   Step 1  solve the LP relaxation P2 (simplex by default; the
//           interior-point engine the paper cites is selectable),
//   Step 2  reshape ξ into the fractional matrix X[i,j,l],
//   Step 3  round each task to argmax_l X[i,j,l],
//   Step 4  repair deadline violations (move to the best deadline-feasible
//           placement; cancel if none exists),
//   Step 5  repair per-device resource overflows (move largest-resource
//           tasks to the base station; cancel if still over),
//   Step 6  repair station resource overflow (move largest-resource tasks
//           to the cloud; cancel if still over).
//
// The LP of a cluster is always feasible because tasks with no
// deadline-feasible placement are cancelled *before* the LP is built (the
// paper's Step-4 cancellation applied eagerly) and the cloud is
// uncapacitated. `LpHtaReport` exposes the quantities of Theorem 2:
// E_LP^(OPT) and Δ (energy growth caused by the repair migrations), from
// which the instance-specific ratio bound 3 + Δ/E_LP is computable.
#pragma once

#include <algorithm>
#include <cstddef>

#include "assign/assigner.h"
#include "lp/simplex.h"
#include "lp/sparse_matrix.h"

namespace mecsched::assign {

enum class LpEngine { kSimplex, kInteriorPoint };

struct LpHtaOptions {
  LpEngine engine = LpEngine::kSimplex;
  // Clusters are independent (Sec. III.A treats them separately), so their
  // LPs can be solved on worker threads. Deterministic either way — the
  // merge order is fixed.
  bool parallel_clusters = false;
  // Solver hygiene (lp/presolve.h, lp/scaling.h). Both preserve the LP
  // optimum exactly; they trade a little setup for smaller / better-
  // conditioned solves. Off by default to keep Step 1 literally P2.
  bool presolve = false;
  bool equilibrate = false;
  // Per-cluster LP iteration budget (simplex pivots / IPM steps). 0 keeps
  // the engine defaults. A too-small budget makes Step 1 throw SolverError
  // ("not optimal (iteration-limit)") — callers that must never abort wrap
  // LP-HTA in a control::FallbackChain.
  std::size_t max_lp_iterations = 0;
  // Optional warm-start hint: a previously computed assignment for a
  // *similar* instance (e.g. the adjacent sweep cell, via
  // exec::InstanceCache). Each cluster LP starts from the hinted 0/1 point
  // instead of the all-artificial basis, typically cutting phase-1 pivots.
  // Objective-preserving (the LP optimum is unchanged) but pivot-path-
  // sensitive; only consulted on the plain simplex path (engine ==
  // kSimplex, presolve/equilibrate off — those transforms change the
  // variable space). Not owned; must outlive the assign() call.
  const Assignment* warm_hint = nullptr;
  // Sparse-kernel dispatch, forwarded to both LP engines (see
  // lp/sparse_matrix.h). The cluster LPs are block-structured and very
  // sparse — 4 columns per task touching at most 3 rows each — so large
  // clusters clear the kAuto density threshold and get the CSR kernels;
  // small ones keep the dense path. Assignment-preserving either way.
  lp::SparseMode sparse_mode = lp::SparseMode::kAuto;
  // Step-1 simplex tuning, forwarded verbatim to lp::SimplexOptions
  // (ignored by the interior-point engine). The defaults — eta-file LU
  // basis kernel, Dantzig pricing — are the measured-fastest combination
  // on the paper's cluster LPs; kDenseInverse is the differential-testing
  // escape hatch (see lp/simplex.h), and kDevex / kSteepestEdge trade
  // more work per pivot for fewer pivots on degenerate instances.
  // Assignment-preserving: every combination reaches the same optimum.
  lp::PricingRule pricing = lp::PricingRule::kDantzig;
  lp::BasisKernel basis = lp::BasisKernel::kEtaLu;
  // Cooperative solve budget, forwarded to the Step-1 LP engines. On expiry
  // a cluster whose LP holds a usable anytime point (see solution.h) keeps
  // it — Steps 2-6 round and repair it like any relaxation, and the final
  // assignment audit still applies — otherwise Step 1 throws SolverError
  // ("not optimal (deadline)") and a wrapping control::FallbackChain
  // escalates with whatever budget remains.
  CancellationToken cancel{};
};

struct LpHtaReport {
  double lp_objective = 0.0;      // E_LP^(OPT), summed over clusters
  double rounded_energy = 0.0;    // energy right after Step 3
  double final_energy = 0.0;      // energy of the returned assignment
  std::size_t cancelled_infeasible = 0;  // no placement meets the deadline
  std::size_t cancelled_capacity = 0;    // Steps 5/6 ran out of room
  std::size_t lp_iterations = 0;

  // Corollary 1's alternative bound: max E_ij3 / min E_ij1 over the
  // instance (finite only when some task was scheduled).
  double corollary1_bound = 0.0;

  // Δ of Theorem 2: energy added by the Step 4–6 migrations.
  double delta() const { return final_energy - rounded_energy; }
  // Instance-specific bound of Theorem 2: 3 + Δ/E_LP^(OPT).
  double theorem2_bound() const {
    return lp_objective <= 0.0 ? 3.0 : 3.0 + std::max(0.0, delta()) / lp_objective;
  }
  // min of the two published bounds (Corollary 1).
  double ratio_bound() const {
    return corollary1_bound > 0.0 ? std::min(theorem2_bound(), corollary1_bound)
                                  : theorem2_bound();
  }
};

class LpHta : public Assigner {
 public:
  explicit LpHta(LpHtaOptions options = {}) : options_(options) {}

  Assignment assign(const HtaInstance& instance) const override;

  // Budgeted entry point: runs with `options_` plus the given token (the
  // sooner of the two deadlines wins when both are set).
  Assignment assign(const HtaInstance& instance,
                    const CancellationToken& cancel) const override;

  // Like assign(), but also returns the Theorem-2 diagnostics.
  Assignment assign_with_report(const HtaInstance& instance,
                                LpHtaReport& report) const;

  std::string name() const override {
    return options_.engine == LpEngine::kSimplex ? "LP-HTA"
                                                 : "LP-HTA(ipm)";
  }

 private:
  LpHtaOptions options_;
};

}  // namespace mecsched::assign
