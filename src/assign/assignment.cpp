#include "assign/assignment.h"

#include <algorithm>

#include "common/error.h"

namespace mecsched::assign {

std::string to_string(Decision d) {
  switch (d) {
    case Decision::kLocal:
      return "local";
    case Decision::kEdge:
      return "edge";
    case Decision::kCloud:
      return "cloud";
    case Decision::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

mec::Placement to_placement(Decision d) {
  MECSCHED_REQUIRE(d != Decision::kCancelled,
                   "cancelled tasks have no placement");
  return static_cast<mec::Placement>(static_cast<int>(d));
}

Decision to_decision(mec::Placement p) {
  return static_cast<Decision>(static_cast<int>(p));
}

std::size_t Assignment::count(Decision d) const {
  return static_cast<std::size_t>(
      std::count(decisions.begin(), decisions.end(), d));
}

}  // namespace mecsched::assign
