// Partial offloading — an extension implementing the related-work family
// the paper contrasts against (Hermes [25], DVS-based partial offloading
// [26]): instead of the binary device/edge/cloud choice of HTA, a task may
// split its computation, processing a fraction θ of its local data on the
// device while the base station handles the rest plus the external data.
//
// Model (consistent with Sec. II):
//   device side   t_dev(θ)  = θ·α·λ / f_i                    (increasing)
//   edge side     t_edge(θ) = max{ up((1-θ)α), fetch(β) }
//                             + ((1-θ)α + β)·λ / f_s + down(η)  (decreasing)
//   task latency  max{ t_dev, t_edge }  — the two sides run in parallel.
//
// The latency-optimal θ* is where the increasing and decreasing sides
// cross (or a corner), found by bisection. Capacities are ignored — this
// is the *fluid lower bound* the ablation benchmark compares LP-HTA's
// binary decisions against; it answers "how much latency does integrality
// cost?".
#pragma once

#include <vector>

#include "assign/hta_instance.h"

namespace mecsched::assign {

struct PartialDecision {
  double theta = 0.0;      // fraction of α processed on the device
  double latency_s = 0.0;  // max of the two parallel sides at θ*
  double energy_j = 0.0;
};

// Latency-optimal split of task `t`.
PartialDecision optimal_split(const HtaInstance& instance, std::size_t t);

struct PartialOffloadResult {
  std::vector<PartialDecision> decisions;
  double mean_latency_s = 0.0;
  double total_energy_j = 0.0;
};

// Splits every task independently (no capacity coupling).
PartialOffloadResult run_partial(const HtaInstance& instance);

}  // namespace mecsched::assign
