#include "assign/hgos.h"

#include <algorithm>
#include <array>
#include <vector>

#include "audit/assignment_audit.h"
#include "mec/cost_model.h"

namespace mecsched::assign {

using mec::Placement;

Assignment Hgos::assign(const HtaInstance& instance) const {
  Assignment out;
  out.decisions.assign(instance.num_tasks(), Decision::kCloud);
  const mec::Topology& topo = instance.topology();

  std::vector<double> device_load(topo.num_devices(), 0.0);
  std::vector<double> station_load(topo.num_base_stations(), 0.0);

  // Data-distribution-blind energy: HGOS prices a task as if all of its
  // input data were already local to the issuing device (β folded into α).
  const mec::CostModel model(topo);
  auto perceived_energy = [&](std::size_t t, Placement p) {
    mec::Task blind = instance.task(t);
    blind.local_bytes = blind.input_bytes();
    blind.external_bytes = 0.0;
    return model.evaluate(blind, p).energy_j;
  };

  // Most demanding (largest input) tasks choose first — the greedy order of
  // the scheme.
  std::vector<std::size_t> order(instance.num_tasks());
  for (std::size_t t = 0; t < order.size(); ++t) order[t] = t;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return instance.task(a).input_bytes() > instance.task(b).input_bytes();
  });

  for (std::size_t t : order) {
    const mec::Task& task = instance.task(t);
    const std::size_t bs = topo.device(task.id.user).base_station;

    std::array<std::pair<double, Placement>, 3> choices = {{
        {perceived_energy(t, Placement::kLocal), Placement::kLocal},
        {perceived_energy(t, Placement::kEdge), Placement::kEdge},
        {perceived_energy(t, Placement::kCloud), Placement::kCloud},
    }};
    std::sort(choices.begin(), choices.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    for (const auto& [energy, p] : choices) {
      (void)energy;
      if (p == Placement::kLocal) {
        if (device_load[task.id.user] + task.resource >
            topo.device(task.id.user).max_resource) {
          continue;
        }
        device_load[task.id.user] += task.resource;
      } else if (p == Placement::kEdge) {
        if (station_load[bs] + task.resource >
            topo.base_station(bs).max_resource) {
          continue;
        }
        station_load[bs] += task.resource;
      }
      out.decisions[t] = to_decision(p);
      break;
    }
  }
  // HGOS never consults deadlines (its defining flaw, Sec. V.B), so the
  // contract audits capacity only.
  audit::check_assignment(instance, out, {.deadlines = false, .capacity = true},
                          "hgos");
  return out;
}

}  // namespace mecsched::assign
