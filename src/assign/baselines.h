// Baseline assigners from the paper's evaluation plus two extra heuristics
// used by the ablation benchmarks.
//
//   AllToC      — every task goes to the remote cloud (Sec. V.B).
//   AllOffload  — every task is offloaded off the device: to the base
//                 station while its capacity lasts (cheapest-energy tasks
//                 first), the rest to the cloud (Sec. V.B).
//   RandomAssign— uniform random placement (capacity-aware); ablation-only.
//   LocalFirst  — greedy local > edge > cloud respecting deadline and
//                 capacity; ablation-only.
#pragma once

#include <cstdint>

#include "assign/assigner.h"

namespace mecsched::assign {

class AllToCloud : public Assigner {
 public:
  Assignment assign(const HtaInstance& instance) const override;
  std::string name() const override { return "AllToC"; }
};

class AllOffload : public Assigner {
 public:
  Assignment assign(const HtaInstance& instance) const override;
  std::string name() const override { return "AllOffload"; }
};

class RandomAssign : public Assigner {
 public:
  explicit RandomAssign(std::uint64_t seed = 1) : seed_(seed) {}
  Assignment assign(const HtaInstance& instance) const override;
  std::string name() const override { return "Random"; }

 private:
  std::uint64_t seed_;
};

class LocalFirst : public Assigner {
 public:
  Assignment assign(const HtaInstance& instance) const override;
  std::string name() const override { return "LocalFirst"; }
};

}  // namespace mecsched::assign
