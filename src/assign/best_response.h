// Best-response decentralized offloading (BRD) — a congestion-game
// baseline in the spirit of the decentralized mechanisms the paper cites
// ([8] Chen, [13] Tang & He): every task is a selfish player that
// repeatedly moves to the subsystem minimizing its *own* cost given what
// everyone else chose, until no task wants to move (a Nash equilibrium) or
// a round cap is hit.
//
// Congestion model (what makes the game non-trivial):
//   * a device's CPU is processor-shared by its local tasks,
//   * a base station's CPU is processor-shared by the tasks it hosts,
//   * the cluster's WAN uplink is shared by its cloud-bound tasks.
// A player's cost is energy + delay_weight × congested latency. Capacity
// limits (C2)/(C3) restrict the strategy space; deadlines are NOT part of
// the cost — exactly the blind spot the paper attributes to this family,
// which the ablation benchmark quantifies against LP-HTA.
#pragma once

#include "assign/assigner.h"

namespace mecsched::assign {

struct BestResponseOptions {
  double delay_weight = 10.0;   // J per second: latency's exchange rate
  std::size_t max_rounds = 100;
};

struct BestResponseReport {
  bool converged = false;   // a pure Nash equilibrium was reached
  std::size_t rounds = 0;   // full passes over the task set
  std::size_t moves = 0;    // total strategy changes
};

class BestResponse : public Assigner {
 public:
  explicit BestResponse(BestResponseOptions options = {})
      : options_(options) {}

  Assignment assign(const HtaInstance& instance) const override;
  Assignment assign_with_report(const HtaInstance& instance,
                                BestResponseReport& report) const;

  std::string name() const override { return "BRD"; }

 private:
  BestResponseOptions options_;
};

}  // namespace mecsched::assign
