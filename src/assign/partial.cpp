#include "assign/partial.h"

#include <algorithm>

#include "mec/cost_model.h"

namespace mecsched::assign {

PartialDecision optimal_split(const HtaInstance& instance, std::size_t t) {
  const mec::Topology& topo = instance.topology();
  const mec::CostModel cost(topo);
  const mec::Task& task = instance.task(t);
  const mec::Device& dev = topo.device(task.id.user);
  const mec::BaseStation& bs = topo.base_station(dev.base_station);
  const mec::SystemParameters& params = topo.params();

  const double alpha = task.local_bytes;
  const double beta = task.external_bytes;
  const double lambda = task.cycles_per_byte;
  const double result = task.result_bytes();

  const bool fetch_needed = beta > 0.0 && task.external_owner != task.id.user;
  double fetch_s = 0.0;
  double fetch_energy = 0.0;
  if (fetch_needed) {
    fetch_s = cost.upload_seconds(task.external_owner, beta);
    fetch_energy = cost.upload_energy(task.external_owner, beta);
    if (!topo.same_cluster(task.external_owner, task.id.user)) {
      fetch_s += cost.bs_to_bs_seconds(beta);
      fetch_energy += cost.bs_to_bs_energy(beta);
    }
  }
  const double down_s = cost.download_seconds(task.id.user, result);
  const double down_energy = cost.download_energy(task.id.user, result);

  const auto device_side = [&](double theta) {
    return theta * alpha * lambda / dev.cpu_hz;
  };
  const auto edge_side = [&](double theta) {
    const double offloaded = (1.0 - theta) * alpha;
    if (offloaded <= 0.0 && beta <= 0.0) {
      return 0.0;  // nothing runs at the edge: no compute, no result leg
    }
    const double up_s =
        offloaded > 0.0 ? cost.upload_seconds(task.id.user, offloaded) : 0.0;
    return std::max(up_s, fetch_s) +
           (offloaded + beta) * lambda / bs.cpu_hz + down_s;
  };
  const auto objective = [&](double theta) {
    return std::max(device_side(theta), edge_side(theta));
  };

  // device_side grows with θ, edge_side shrinks (with a jump to 0 at θ = 1
  // when β = 0); the interior minimum of the max is where they cross.
  // Evaluate that crossing plus both corners and keep the best.
  double theta = 1.0;
  if (device_side(1.0) > edge_side(1.0)) {
    double lo = 0.0, hi = 1.0;  // device_side(lo) <= edge_side(lo)
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (device_side(mid) <= edge_side(mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    theta = 0.5 * (lo + hi);
  }
  for (double corner : {0.0, 1.0}) {
    if (objective(corner) < objective(theta)) theta = corner;
  }

  PartialDecision out;
  out.theta = theta;
  out.latency_s = objective(theta);
  const double offloaded = (1.0 - theta) * alpha;
  out.energy_j =
      params.kappa * theta * alpha * lambda * dev.cpu_hz * dev.cpu_hz +
      (offloaded > 0.0 ? cost.upload_energy(task.id.user, offloaded) : 0.0);
  if (offloaded > 0.0 || beta > 0.0) {
    // Only when the edge actually runs something does its result (and the
    // external fetch) cross the radio.
    out.energy_j += fetch_energy + down_energy;
  }
  return out;
}

PartialOffloadResult run_partial(const HtaInstance& instance) {
  PartialOffloadResult out;
  out.decisions.reserve(instance.num_tasks());
  double latency_sum = 0.0;
  for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
    out.decisions.push_back(optimal_split(instance, t));
    latency_sum += out.decisions.back().latency_s;
    out.total_energy_j += out.decisions.back().energy_j;
  }
  out.mean_latency_s = instance.num_tasks() == 0
                           ? 0.0
                           : latency_sum / static_cast<double>(
                                               instance.num_tasks());
  return out;
}

}  // namespace mecsched::assign
