// Online task arrival — an extension beyond the paper's quasi-static
// setting (its Sec. II assumes all tasks are known up front; real MEC
// systems see a stream).
//
// The scheduler batches arrivals into fixed epochs. At each epoch boundary
// it (a) releases the resources of tasks that finished, (b) shrinks every
// pending task's deadline by the time it already waited, and (c) runs
// LP-HTA on the batch against the *residual* capacities. Tasks whose
// remaining slack is gone are cancelled, like LP-HTA's own escape hatch.
//
// This turns the paper's one-shot algorithm into a rolling-horizon policy
// and lets the ablation benchmark measure the price of not knowing the
// future (online vs clairvoyant-offline LP-HTA on the same task set).
#pragma once

#include <vector>

#include "assign/assignment.h"
#include "assign/lp_hta.h"
#include "mec/task.h"
#include "mec/topology.h"

namespace mecsched::assign {

struct TimedTask {
  mec::Task task;       // deadline_s is *relative* to the release time
  double release_s = 0.0;
};

struct OnlineOptions {
  double epoch_s = 0.5;  // batching window
  LpHtaOptions lp{};
};

struct OnlineTaskOutcome {
  Decision decision = Decision::kCancelled;
  double start_s = 0.0;   // epoch boundary where it was scheduled
  double finish_s = 0.0;  // start + latency (0 when cancelled)
};

struct OnlineResult {
  std::vector<OnlineTaskOutcome> outcomes;  // aligned with the input order
  double total_energy_j = 0.0;
  double mean_response_s = 0.0;  // finish - release over placed tasks
  double makespan_s = 0.0;
  std::size_t cancelled = 0;
  std::size_t epochs = 0;
};

class OnlineScheduler {
 public:
  explicit OnlineScheduler(OnlineOptions options = {}) : options_(options) {}

  OnlineResult run(const mec::Topology& topology,
                   const std::vector<TimedTask>& tasks) const;

 private:
  OnlineOptions options_;
};

}  // namespace mecsched::assign
