#include "assign/cluster_lp.h"

#include <algorithm>
#include <map>

namespace mecsched::assign {

using mec::Placement;

ClusterLp build_cluster_lp(const HtaInstance& instance, std::size_t b) {
  const mec::Topology& topo = instance.topology();
  ClusterLp out;

  for (std::size_t t : instance.cluster_tasks(b)) {
    if (instance.schedulable(t)) {
      out.active.push_back(t);
    } else {
      out.unschedulable.push_back(t);
    }
  }
  if (out.active.empty()) return out;

  double penalty = 1.0;
  for (std::size_t t : out.active) {
    penalty = std::max(penalty, instance.energy(t, Placement::kCloud));
  }
  out.cancel_penalty = 2.0 * penalty + 1.0;

  for (std::size_t idx = 0; idx < out.active.size(); ++idx) {
    const std::size_t t = out.active[idx];
    for (std::size_t l = 0; l < 3; ++l) {
      const Placement pl = mec::kAllPlacements[l];
      const double latency = instance.latency(t, pl);
      const double ub =
          latency <= 0.0
              ? 1.0
              : std::min(1.0, instance.task(t).deadline_s / latency);
      out.problem.add_variable(instance.energy(t, pl), 0.0, ub);
    }
    const std::size_t cancel = out.problem.add_variable(out.cancel_penalty, 0.0, 1.0);
    out.problem.add_constraint({{out.column(idx, 0), 1.0},
                                {out.column(idx, 1), 1.0},
                                {out.column(idx, 2), 1.0},
                                {cancel, 1.0}},
                               lp::Relation::kEqual, 1.0);
  }

  std::map<std::size_t, std::vector<lp::Term>> device_rows;
  std::vector<lp::Term> station_terms;
  for (std::size_t idx = 0; idx < out.active.size(); ++idx) {
    const mec::Task& task = instance.task(out.active[idx]);
    device_rows[task.id.user].push_back({out.column(idx, 0), task.resource});
    station_terms.push_back({out.column(idx, 1), task.resource});
  }
  for (auto& [device, terms] : device_rows) {
    out.device_ids.push_back(device);
    out.device_row.push_back(out.problem.add_constraint(
        std::move(terms), lp::Relation::kLessEqual,
        topo.device(device).max_resource));
  }
  out.station_row = out.problem.add_constraint(
      std::move(station_terms), lp::Relation::kLessEqual,
      topo.base_station(b).max_resource);
  return out;
}

}  // namespace mecsched::assign
