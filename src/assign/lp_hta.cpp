#include "assign/lp_hta.h"

#include "assign/cluster_lp.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <future>
#include <limits>
#include <map>
#include <vector>

#include "audit/assignment_audit.h"
#include "audit/audit.h"
#include "common/chaos_hook.h"
#include "common/error.h"
#include "obs/flight_recorder.h"
#include "lp/interior_point.h"
#include "lp/presolve.h"
#include "lp/problem.h"
#include "lp/scaling.h"
#include "lp/simplex.h"
#include "obs/registry.h"
#include "obs/tracer.h"

namespace mecsched::assign {
namespace {

using mec::Placement;

constexpr std::array<Placement, 3> kPlacements = mec::kAllPlacements;

// Column index of task-slot `idx` with placement `l` in the cluster LP.
// Each task owns 4 consecutive columns: local, edge, cloud, cancel-slack.
std::size_t column(std::size_t idx, std::size_t l) { return idx * 4 + l; }

// A deadline-degraded relaxation is still usable when the engine kept its
// anytime half of the kDeadline contract (a non-empty x): Steps 2-6 round
// and repair it like any fractional point, and the final assignment audit
// applies unchanged. An empty x (expiry before feasibility) is a failure.
bool usable_anytime(const lp::Solution& s) {
  return s.status == lp::SolveStatus::kDeadline && !s.x.empty();
}

lp::Solution solve_exact(const lp::Problem& p, const LpHtaOptions& options,
                         const std::vector<double>* guess = nullptr) {
  const std::size_t budget = options.max_lp_iterations;
  if (options.engine == LpEngine::kInteriorPoint) {
    lp::InteriorPointOptions ipm;
    if (budget > 0) ipm.max_iterations = budget;
    ipm.sparse_mode = options.sparse_mode;
    ipm.cancel = options.cancel;
    const lp::Solution s = lp::InteriorPointSolver(ipm).solve(p);
    if (s.optimal()) return s;
    if (usable_anytime(s)) {
      obs::Registry::global().counter("lp_hta.anytime_relaxations").add();
      return s;
    }
    // The IPM certifies optimality but cannot always prove feasibility
    // issues; the simplex solver is the fallback arbiter.
  }
  lp::SimplexOptions smx;
  if (budget > 0) smx.max_iterations = budget;
  smx.sparse_pricing = options.sparse_mode;
  smx.pricing = options.pricing;
  smx.basis = options.basis;
  smx.cancel = options.cancel;
  const lp::SimplexSolver solver(smx);
  const lp::Solution s = guess != nullptr ? solver.solve(p, *guess)
                                          : solver.solve(p);
  if (!s.optimal()) {
    if (usable_anytime(s)) {
      obs::Registry::global().counter("lp_hta.anytime_relaxations").add();
      return s;
    }
    throw SolverError("LP-HTA: cluster relaxation not optimal (" +
                      lp::to_string(s.status) + ")");
  }
  return s;
}

lp::Solution solve_relaxation(const lp::Problem& p,
                              const LpHtaOptions& options,
                              const std::vector<double>* guess = nullptr) {
  // Optional hygiene layers; both are objective-preserving transforms.
  // They also reindex / rescale the variable space, so the warm guess is
  // only forwarded on the plain path.
  if (options.presolve) {
    const lp::Presolved pre = lp::presolve(p);
    if (pre.infeasible()) {
      throw SolverError("LP-HTA: presolve proved the relaxation infeasible");
    }
    if (options.equilibrate) {
      const lp::ScaledProblem sp = lp::equilibrate(pre.reduced());
      return pre.restore(sp.unscale(solve_exact(sp.problem(), options),
                                    pre.reduced()));
    }
    return pre.restore(solve_exact(pre.reduced(), options));
  }
  if (options.equilibrate) {
    const lp::ScaledProblem sp = lp::equilibrate(p);
    return sp.unscale(solve_exact(sp.problem(), options), p);
  }
  return solve_exact(p, options, guess);
}

// Translates a hinted assignment into a 0/1 point over the cluster LP's
// columns (4 per active task). Tasks the hint cancels (or doesn't cover)
// put their unit on the cancel-slack column.
std::vector<double> build_warm_guess(const std::vector<std::size_t>& active,
                                     const Assignment& hint) {
  std::vector<double> guess(active.size() * 4, 0.0);
  for (std::size_t idx = 0; idx < active.size(); ++idx) {
    const std::size_t t = active[idx];
    std::size_t col = 3;  // cancel slack
    if (t < hint.decisions.size()) {
      for (std::size_t l = 0; l < 3; ++l) {
        if (hint.decisions[t] == to_decision(kPlacements[l])) col = l;
      }
    }
    guess[column(idx, col)] = 1.0;
  }
  return guess;
}

// Everything one cluster contributes: its tasks' decisions plus its share
// of the Theorem-2 diagnostics. Clusters are independent (Sec. III.A), so
// these can be computed in parallel and merged.
struct ClusterOutcome {
  std::vector<std::pair<std::size_t, Decision>> decisions;
  double lp_objective = 0.0;
  double rounded_energy = 0.0;
  std::size_t cancelled_infeasible = 0;
  std::size_t cancelled_capacity = 0;
  std::size_t lp_iterations = 0;
  // The relaxation ran out of budget and served its anytime point.
  bool deadline_degraded = false;
};

// Renders the per-cluster span args only when a trace is being captured —
// the string build is not free and the spans are per-cluster-per-epoch.
std::string cluster_args(std::size_t b) {
  return obs::Tracer::global().enabled() ? "\"station\":" + std::to_string(b)
                                         : std::string();
}

ClusterOutcome solve_cluster(const HtaInstance& instance, std::size_t b,
                             const LpHtaOptions& options) {
  const obs::ScopedTimer cluster_span("lp_hta.cluster", "assign",
                                      cluster_args(b));
  const mec::Topology& topo = instance.topology();
  ClusterOutcome out;

  // Local decision buffer for the cluster's tasks.
  std::map<std::size_t, Decision> decide;

  // ---- Pre-Step + Step 1: the LP relaxation P2 for this cluster (see
  // cluster_lp.h). Tasks with no deadline-feasible placement are cancelled
  // eagerly (the paper's Step-4 "cancel and inform users"); each remaining
  // task gets a cancel-slack column (a documented deviation from the
  // literal P2 that keeps the LP feasible under deadline-capacity
  // interactions; with no cancellation pressure the relaxation is exactly
  // P2).
  const ClusterLp cluster = build_cluster_lp(instance, b);
  for (std::size_t t : cluster.unschedulable) {
    decide[t] = Decision::kCancelled;
    ++out.cancelled_infeasible;
  }
  const std::vector<std::size_t>& active = cluster.active;
  if (active.empty()) {
    for (const auto& [t, d] : decide) out.decisions.emplace_back(t, d);
    return out;
  }
  const lp::Problem& p = cluster.problem;

  std::vector<double> warm_guess;
  const std::vector<double>* guess = nullptr;
  if (options.warm_hint != nullptr && options.engine == LpEngine::kSimplex &&
      !options.presolve && !options.equilibrate) {
    warm_guess = build_warm_guess(active, *options.warm_hint);
    guess = &warm_guess;
  }

  lp::Solution relax;
  {
    // Step 1 — the paper's "solve the relaxation" phase. The nested
    // lp.presolve / lp.simplex.solve / lp.ipm.solve spans decompose it.
    const obs::ScopedTimer relax_span("lp_hta.relax", "assign",
                                      cluster_args(b));
    relax = solve_relaxation(p, options, guess);
  }
  out.lp_iterations = relax.iterations;
  out.deadline_degraded = relax.status == lp::SolveStatus::kDeadline;
  // E_LP^(OPT) over the *real* placement columns (the cancel slack's
  // penalty is an artifact, not energy).
  for (std::size_t idx = 0; idx < active.size(); ++idx) {
    for (std::size_t l = 0; l < 3; ++l) {
      out.lp_objective += p.cost(column(idx, l)) * relax.x[column(idx, l)];
    }
  }

  // Step 4–6 migrations (deadline repair + capacity evictions), reported
  // as the "repair pressure" of this cluster.
  std::size_t repair_moves = 0;

  // ---- Steps 2+3: round each task to argmax_l X[i,j,l] (the cancel slack
  // competes too; tasks rounding to it are cancelled).
  {
    const obs::ScopedTimer round_span("lp_hta.round", "assign",
                                      cluster_args(b));
    for (std::size_t idx = 0; idx < active.size(); ++idx) {
      const std::size_t t = active[idx];
      std::size_t q = 0;
      for (std::size_t l = 1; l < 4; ++l) {
        if (relax.x[column(idx, l)] > relax.x[column(idx, q)]) q = l;
      }
      if (q == 3) {
        decide[t] = Decision::kCancelled;
        ++out.cancelled_capacity;
        continue;
      }
      out.rounded_energy += instance.energy(t, kPlacements[q]);

      // ---- Step 4: deadline repair. If the rounded placement misses the
      // deadline, take the deadline-feasible placement with the largest
      // fractional mass (guaranteed to exist after the pre-step).
      if (!instance.meets_deadline(t, kPlacements[q])) {
        std::size_t best = 3;
        for (std::size_t l = 0; l < 3; ++l) {
          if (!instance.meets_deadline(t, kPlacements[l])) continue;
          if (best == 3 ||
              relax.x[column(idx, l)] > relax.x[column(idx, best)]) {
            best = l;
          }
        }
        q = best;  // best < 3 by schedulability
        ++repair_moves;
      }
      decide[t] = to_decision(kPlacements[q]);
    }
  }

  const obs::ScopedTimer repair_span("lp_hta.repair", "assign",
                                     cluster_args(b));

  // ---- Step 5: per-device capacity repair.
  for (const std::size_t device : cluster.device_ids) {
    std::vector<std::size_t> local;  // tasks of this device placed locally
    double load = 0.0;
    for (std::size_t t : active) {
      if (instance.task(t).id.user == device &&
          decide[t] == Decision::kLocal) {
        local.push_back(t);
        load += instance.task(t).resource;
      }
    }
    const double cap = topo.device(device).max_resource;
    // Largest resource first, per the paper's greedy selection.
    std::sort(local.begin(), local.end(), [&](std::size_t a, std::size_t c) {
      return instance.task(a).resource > instance.task(c).resource;
    });
    // Pass 1: migrate to the base station when its latency fits.
    for (std::size_t t : local) {
      if (load <= cap) break;
      if (instance.meets_deadline(t, Placement::kEdge)) {
        decide[t] = Decision::kEdge;
        load -= instance.task(t).resource;
        ++repair_moves;
      }
    }
    // Pass 2: still over — cancel greedily by resource occupation.
    for (std::size_t t : local) {
      if (load <= cap) break;
      if (decide[t] == Decision::kLocal) {
        decide[t] = Decision::kCancelled;
        ++out.cancelled_capacity;
        load -= instance.task(t).resource;
        ++repair_moves;
      }
    }
  }

  // ---- Step 6: station capacity repair.
  {
    std::vector<std::size_t> on_edge;
    double load = 0.0;
    for (std::size_t t : active) {
      if (decide[t] == Decision::kEdge) {
        on_edge.push_back(t);
        load += instance.task(t).resource;
      }
    }
    const double cap = topo.base_station(b).max_resource;
    std::sort(on_edge.begin(), on_edge.end(),
              [&](std::size_t a, std::size_t c) {
                return instance.task(a).resource > instance.task(c).resource;
              });
    for (std::size_t t : on_edge) {
      if (load <= cap) break;
      if (instance.meets_deadline(t, Placement::kCloud)) {
        decide[t] = Decision::kCloud;
        load -= instance.task(t).resource;
        ++repair_moves;
      }
    }
    for (std::size_t t : on_edge) {
      if (load <= cap) break;
      if (decide[t] == Decision::kEdge) {
        decide[t] = Decision::kCancelled;
        ++out.cancelled_capacity;
        load -= instance.task(t).resource;
        ++repair_moves;
      }
    }
  }

  obs::Registry& reg = obs::Registry::global();
  reg.counter("lp_hta.clusters_solved").add();
  reg.counter("lp_hta.repair_moves").add(repair_moves);
  reg.counter("lp_hta.cancelled_infeasible").add(out.cancelled_infeasible);
  reg.counter("lp_hta.cancelled_capacity").add(out.cancelled_capacity);

  out.decisions.reserve(decide.size());
  for (const auto& [t, d] : decide) out.decisions.emplace_back(t, d);
  return out;
}

}  // namespace

Assignment LpHta::assign(const HtaInstance& instance) const {
  LpHtaReport unused;
  return assign_with_report(instance, unused);
}

Assignment LpHta::assign(const HtaInstance& instance,
                         const CancellationToken& cancel) const {
  if (cancel.unlimited()) return assign(instance);
  LpHtaOptions budgeted = options_;
  // The caller's token wins (its cancel flag is honoured), tightened to the
  // sooner of the two deadlines when the options carry one as well.
  budgeted.cancel = cancel.with_deadline(options_.cancel.deadline());
  LpHtaReport unused;
  return LpHta(budgeted).assign_with_report(instance, unused);
}

Assignment LpHta::assign_with_report(const HtaInstance& instance,
                                     LpHtaReport& report) const {
  const obs::ScopedTimer span("lp_hta.assign", "assign");
  obs::FlightRecorder& flight = obs::FlightRecorder::global();
  const std::uint64_t chaos_before =
      flight.enabled() ? chaos::local_injections() : 0;
  // Assign-layer flight record: one per LP-HTA run, aggregating the
  // cluster solves (the per-LP records come from the lp layer itself).
  const auto cut_record = [&](const std::string& status,
                              const std::string& detail,
                              const std::string& audit_verdict,
                              std::uint64_t iterations, bool degraded) {
    obs::SolveRecord r;
    r.layer = "assign";
    r.engine = "lp_hta";
    r.status = status;
    r.detail = detail;
    r.seconds = span.elapsed_s();
    r.iterations = iterations;
    r.deadline_residual_ms =
        obs::FlightRecorder::residual_ms(options_.cancel.deadline());
    r.deadline_hit = degraded;
    r.warm_start = options_.warm_hint != nullptr;
    r.chaos_hits = chaos::local_injections() - chaos_before;
    r.audit = audit_verdict;
    flight.record(std::move(r));
  };
  report = LpHtaReport{};
  Assignment out;
  out.decisions.assign(instance.num_tasks(), Decision::kCancelled);
  const std::size_t clusters = instance.topology().num_base_stations();

  std::vector<ClusterOutcome> outcomes(clusters);
  try {
    if (options_.parallel_clusters && clusters > 1) {
      std::vector<std::future<ClusterOutcome>> futures;
      futures.reserve(clusters);
      for (std::size_t b = 0; b < clusters; ++b) {
        futures.push_back(std::async(std::launch::async, [&, b] {
          return solve_cluster(instance, b, options_);
        }));
      }
      for (std::size_t b = 0; b < clusters; ++b) {
        outcomes[b] = futures[b].get();
      }
    } else {
      for (std::size_t b = 0; b < clusters; ++b) {
        outcomes[b] = solve_cluster(instance, b, options_);
      }
    }
  } catch (const SolverError& e) {
    if (flight.enabled()) cut_record("error", e.what(), "", 0, false);
    throw;
  }

  bool deadline_degraded = false;
  for (const ClusterOutcome& c : outcomes) {
    for (const auto& [t, d] : c.decisions) out.decisions[t] = d;
    report.lp_objective += c.lp_objective;
    report.rounded_energy += c.rounded_energy;
    report.cancelled_infeasible += c.cancelled_infeasible;
    report.cancelled_capacity += c.cancelled_capacity;
    report.lp_iterations += c.lp_iterations;
    deadline_degraded = deadline_degraded || c.deadline_degraded;
  }

  // Final energy for the Theorem-2 diagnostics, plus Corollary 1's
  // max E_ij3 / min E_ij1 alternative bound.
  double max_e3 = 0.0;
  double min_e1 = std::numeric_limits<double>::infinity();
  for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
    max_e3 = std::max(max_e3, instance.energy(t, Placement::kCloud));
    min_e1 = std::min(min_e1, instance.energy(t, Placement::kLocal));
    if (out.decisions[t] == Decision::kCancelled) continue;
    report.final_energy += instance.energy(t, to_placement(out.decisions[t]));
  }
  if (instance.num_tasks() > 0 && min_e1 > 0.0 &&
      std::isfinite(min_e1)) {
    report.corollary1_bound = max_e3 / min_e1;
  }

  // Integrality gap of this instance: how far rounding + repair pushed the
  // energy above the LP lower bound (0 = rounding was free).
  if (report.lp_objective > 0.0) {
    const double gap = report.final_energy / report.lp_objective - 1.0;
    obs::Registry& reg = obs::Registry::global();
    reg.gauge("lp_hta.last_integrality_gap").set(gap);
    reg.histogram("lp_hta.integrality_gap").observe(gap);
  }
  // Steps 4–6 promise a deadline- and capacity-feasible plan (cancelling
  // where necessary); hold them to it.
  try {
    audit::check_assignment(instance, out,
                            {.deadlines = true, .capacity = true}, name());
  } catch (const audit::AuditError& e) {
    if (flight.enabled()) {
      cut_record("audit-error", "", e.what(), report.lp_iterations,
                 deadline_degraded);
    }
    throw;
  }
  if (flight.enabled()) {
    cut_record(deadline_degraded ? "deadline" : "ok", "", "ok",
               report.lp_iterations, deadline_degraded);
  }
  return out;
}

}  // namespace mecsched::assign
