#include "assign/best_response.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "audit/assignment_audit.h"

namespace mecsched::assign {

using mec::Placement;

namespace {

// Mutable congestion state: how many tasks sit on each shared resource.
struct Load {
  std::vector<int> device_tasks;       // local tasks per device
  std::vector<int> station_tasks;      // edge tasks per station
  std::vector<int> cloud_tasks;        // cloud tasks per cluster (WAN share)
  std::vector<double> device_res;      // resource units used locally
  std::vector<double> station_res;     // resource units used at stations
};

// Congested latency of task t under `d`, *assuming t already counted* in
// the load tallies (so a lone task sees multiplier 1).
double congested_latency(const HtaInstance& inst, const Load& load,
                         std::size_t t, Placement p) {
  const mec::Task& task = inst.task(t);
  const std::size_t dev = task.id.user;
  const std::size_t bs = inst.topology().device(dev).base_station;
  const mec::CostEntry& base = inst.costs(t).at(p);
  switch (p) {
    case Placement::kLocal:
      return base.compute_s * std::max(1, load.device_tasks[dev]) +
             base.transfer_s;
    case Placement::kEdge:
      return base.compute_s * std::max(1, load.station_tasks[bs]) +
             base.transfer_s;
    case Placement::kCloud:
      // WAN transfer shared by this cluster's cloud-bound tasks.
      return base.compute_s +
             base.transfer_s * std::max(1, load.cloud_tasks[bs]);
  }
  return base.latency_s();
}

}  // namespace

Assignment BestResponse::assign(const HtaInstance& instance) const {
  BestResponseReport unused;
  return assign_with_report(instance, unused);
}

Assignment BestResponse::assign_with_report(const HtaInstance& instance,
                                            BestResponseReport& report) const {
  report = BestResponseReport{};
  const mec::Topology& topo = instance.topology();

  Load load;
  load.device_tasks.assign(topo.num_devices(), 0);
  load.station_tasks.assign(topo.num_base_stations(), 0);
  load.cloud_tasks.assign(topo.num_base_stations(), 0);
  load.device_res.assign(topo.num_devices(), 0.0);
  load.station_res.assign(topo.num_base_stations(), 0.0);

  // Everyone starts on the cloud (always admissible).
  Assignment out;
  out.decisions.assign(instance.num_tasks(), Decision::kCloud);
  for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
    const std::size_t bs =
        topo.device(instance.task(t).id.user).base_station;
    ++load.cloud_tasks[bs];
  }

  auto remove_from = [&](std::size_t t, Placement p) {
    const mec::Task& task = instance.task(t);
    const std::size_t dev = task.id.user;
    const std::size_t bs = topo.device(dev).base_station;
    switch (p) {
      case Placement::kLocal:
        --load.device_tasks[dev];
        load.device_res[dev] -= task.resource;
        break;
      case Placement::kEdge:
        --load.station_tasks[bs];
        load.station_res[bs] -= task.resource;
        break;
      case Placement::kCloud:
        --load.cloud_tasks[bs];
        break;
    }
  };
  auto add_to = [&](std::size_t t, Placement p) {
    const mec::Task& task = instance.task(t);
    const std::size_t dev = task.id.user;
    const std::size_t bs = topo.device(dev).base_station;
    switch (p) {
      case Placement::kLocal:
        ++load.device_tasks[dev];
        load.device_res[dev] += task.resource;
        break;
      case Placement::kEdge:
        ++load.station_tasks[bs];
        load.station_res[bs] += task.resource;
        break;
      case Placement::kCloud:
        ++load.cloud_tasks[bs];
        break;
    }
  };

  for (report.rounds = 0; report.rounds < options_.max_rounds;
       ++report.rounds) {
    bool anyone_moved = false;
    for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
      const Placement current = to_placement(out.decisions[t]);
      const mec::Task& task = instance.task(t);
      const std::size_t dev = task.id.user;
      const std::size_t bs = topo.device(dev).base_station;

      // Evaluate the player's options with itself removed from the load.
      remove_from(t, current);
      Placement best = current;
      double best_cost = std::numeric_limits<double>::infinity();
      for (Placement p : mec::kAllPlacements) {
        // capacity admissibility (the player re-adds its own demand)
        if (p == Placement::kLocal &&
            load.device_res[dev] + task.resource >
                topo.device(dev).max_resource) {
          continue;
        }
        if (p == Placement::kEdge &&
            load.station_res[bs] + task.resource >
                topo.base_station(bs).max_resource) {
          continue;
        }
        // count the player into the congestion it would experience
        add_to(t, p);
        const double cost = instance.energy(t, p) +
                            options_.delay_weight *
                                congested_latency(instance, load, t, p);
        remove_from(t, p);
        // strict improvement avoids oscillating between ties
        if (cost < best_cost - 1e-12) {
          best_cost = cost;
          best = p;
        }
      }
      add_to(t, best);
      if (best != current) {
        out.decisions[t] = to_decision(best);
        ++report.moves;
        anyone_moved = true;
      }
    }
    if (!anyone_moved) {
      report.converged = true;
      ++report.rounds;
      break;
    }
  }
  // BRD restricts the strategy space by (C2)/(C3) but ignores deadlines.
  audit::check_assignment(instance, out, {.deadlines = false, .capacity = true},
                          "brd");
  return out;
}

}  // namespace mecsched::assign
