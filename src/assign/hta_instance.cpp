#include "assign/hta_instance.h"

#include "common/error.h"

namespace mecsched::assign {

HtaInstance::HtaInstance(const mec::Topology& topology,
                         std::vector<mec::Task> tasks)
    : topology_(&topology), tasks_(std::move(tasks)) {
  const mec::CostModel model(topology);
  costs_.reserve(tasks_.size());
  tasks_by_cluster_.resize(topology.num_base_stations());
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    const mec::Task& task = tasks_[t];
    MECSCHED_REQUIRE(task.id.user < topology.num_devices(),
                     "task " + std::to_string(t) + " issued by unknown device " +
                         std::to_string(task.id.user) + " (topology has " +
                         std::to_string(topology.num_devices()) + " devices)");
    MECSCHED_REQUIRE(
        task.external_owner < topology.num_devices(),
        "task " + std::to_string(t) + ": external data owned by unknown device " +
            std::to_string(task.external_owner) + " (topology has " +
            std::to_string(topology.num_devices()) + " devices)");
    MECSCHED_REQUIRE(task.local_bytes >= 0.0 && task.external_bytes >= 0.0,
                     "task " + std::to_string(t) + ": negative data size (local " +
                         std::to_string(task.local_bytes) + " B, external " +
                         std::to_string(task.external_bytes) + " B)");
    MECSCHED_REQUIRE(task.resource >= 0.0,
                     "task " + std::to_string(t) +
                         ": negative resource occupation (" +
                         std::to_string(task.resource) + ")");
    costs_.push_back(model.evaluate(task));
    tasks_by_cluster_[topology.device(task.id.user).base_station].push_back(t);
  }
}

bool HtaInstance::schedulable(std::size_t t) const {
  for (mec::Placement p : mec::kAllPlacements) {
    if (meets_deadline(t, p)) return true;
  }
  return false;
}

}  // namespace mecsched::assign
