#include "assign/exact.h"

#include <cmath>
#include <map>

#include "audit/assignment_audit.h"
#include "common/error.h"
#include "lp/problem.h"

namespace mecsched::assign {

using mec::Placement;

Assignment ExactHta::assign(const HtaInstance& instance) const {
  return solve(instance).assignment;
}

Assignment ExactHta::assign(const HtaInstance& instance,
                            const CancellationToken& cancel) const {
  if (cancel.unlimited()) return assign(instance);
  ilp::BnbOptions budgeted = options_;
  budgeted.cancel = cancel.with_deadline(options_.cancel.deadline());
  return ExactHta(budgeted).solve(instance).assignment;
}

ExactResult ExactHta::solve(const HtaInstance& instance) const {
  ExactResult result;
  result.assignment.decisions.assign(instance.num_tasks(),
                                     Decision::kCancelled);
  result.proven_optimal = true;
  const mec::Topology& topo = instance.topology();

  for (std::size_t b = 0; b < topo.num_base_stations(); ++b) {
    std::vector<std::size_t> active;
    for (std::size_t t : instance.cluster_tasks(b)) {
      if (instance.schedulable(t)) active.push_back(t);
    }
    if (active.empty()) continue;

    lp::Problem p;
    std::vector<std::size_t> int_vars;
    for (std::size_t idx = 0; idx < active.size(); ++idx) {
      const std::size_t t = active[idx];
      for (std::size_t l = 0; l < 3; ++l) {
        const Placement pl = mec::kAllPlacements[l];
        // Deadline as variable availability: infeasible placements are
        // fixed at zero, which is C1 for binary variables.
        const double ub = instance.meets_deadline(t, pl) ? 1.0 : 0.0;
        int_vars.push_back(
            p.add_variable(instance.energy(t, pl), 0.0, ub));
      }
      p.add_constraint({{idx * 3 + 0, 1.0}, {idx * 3 + 1, 1.0},
                        {idx * 3 + 2, 1.0}},
                       lp::Relation::kEqual, 1.0);
    }
    std::map<std::size_t, std::vector<lp::Term>> device_rows;
    std::vector<lp::Term> station_row;
    for (std::size_t idx = 0; idx < active.size(); ++idx) {
      const mec::Task& task = instance.task(active[idx]);
      device_rows[task.id.user].push_back({idx * 3 + 0, task.resource});
      station_row.push_back({idx * 3 + 1, task.resource});
    }
    for (auto& [device, terms] : device_rows) {
      p.add_constraint(std::move(terms), lp::Relation::kLessEqual,
                       topo.device(device).max_resource);
    }
    p.add_constraint(std::move(station_row), lp::Relation::kLessEqual,
                     topo.base_station(b).max_resource);

    const ilp::BnbResult mip = ilp::BranchAndBound(options_).solve(p, int_vars);
    if (mip.status == ilp::BnbStatus::kInfeasible) {
      // Capacity-infeasible cluster (cloud always absorbs tasks, so this
      // only happens when even the mandatory placements cannot fit). The
      // exact semantics of partial cancellation are LP-HTA's territory;
      // report non-optimality instead of guessing.
      result.proven_optimal = false;
      continue;
    }
    if (mip.status == ilp::BnbStatus::kNodeLimit ||
        mip.status == ilp::BnbStatus::kDeadline) {
      result.proven_optimal = false;
    }
    if (mip.x.empty()) continue;

    for (std::size_t idx = 0; idx < active.size(); ++idx) {
      for (std::size_t l = 0; l < 3; ++l) {
        if (std::round(mip.x[idx * 3 + l]) == 1.0) {
          result.assignment.decisions[active[idx]] =
              to_decision(mec::kAllPlacements[l]);
        }
      }
    }
    result.nodes_explored += mip.nodes_explored;
  }

  for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
    if (result.assignment.decisions[t] == Decision::kCancelled) continue;
    result.energy +=
        instance.energy(t, to_placement(result.assignment.decisions[t]));
  }
  // The exact solver optimizes subject to (C1)–(C5); its output must be
  // feasible outright.
  audit::check_assignment(instance, result.assignment,
                          {.deadlines = true, .capacity = true}, "exact");
  return result;
}

}  // namespace mecsched::assign
