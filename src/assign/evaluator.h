// Assignment evaluation: the metrics the paper's figures report (total
// energy, average latency, unsatisfied-task rate) plus a full constraint
// checker for (C1)–(C5) used by tests and by callers that want to verify a
// plan before executing it.
#pragma once

#include <string>
#include <vector>

#include "assign/assignment.h"
#include "assign/hta_instance.h"

namespace mecsched::assign {

struct Metrics {
  std::size_t num_tasks = 0;
  std::size_t cancelled = 0;
  std::size_t deadline_violations = 0;  // placed tasks exceeding T_ij

  double total_energy_j = 0.0;   // Σ E_ijl over placed tasks
  double mean_latency_s = 0.0;   // over placed tasks
  double max_latency_s = 0.0;

  std::size_t on_local = 0;
  std::size_t on_edge = 0;
  std::size_t on_cloud = 0;

  // Paper's "unsatisfied task rate": tasks whose delay constraint cannot be
  // met — cancelled tasks count as unsatisfied too.
  double unsatisfied_rate() const {
    return num_tasks == 0
               ? 0.0
               : static_cast<double>(cancelled + deadline_violations) /
                     static_cast<double>(num_tasks);
  }
};

Metrics evaluate(const HtaInstance& instance, const Assignment& assignment);

// Constraint audit of (C1)-(C5). `ok` is true iff every placed task meets
// its deadline and no device/station exceeds its resource cap. Violations
// are described in `problems` (one line each) for debuggability.
struct FeasibilityReport {
  bool ok = true;
  std::vector<std::string> problems;
};

FeasibilityReport check_feasibility(const HtaInstance& instance,
                                    const Assignment& assignment);

}  // namespace mecsched::assign
