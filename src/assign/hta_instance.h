// A fully materialized HTA problem instance (the "Input" block of Sec. II.C):
// topology + tasks + precomputed per-placement costs + the per-cluster task
// partition that lets LP-HTA treat each cluster independently (Sec. III.A,
// "each cluster can be considered separately").
#pragma once

#include <vector>

#include "mec/cost_model.h"
#include "mec/task.h"
#include "mec/topology.h"

namespace mecsched::assign {

class HtaInstance {
 public:
  HtaInstance(const mec::Topology& topology, std::vector<mec::Task> tasks);

  const mec::Topology& topology() const { return *topology_; }
  const std::vector<mec::Task>& tasks() const { return tasks_; }
  const mec::Task& task(std::size_t t) const { return tasks_[t]; }
  std::size_t num_tasks() const { return tasks_.size(); }

  // Precomputed Sec.-II costs for task `t`.
  const mec::TaskCosts& costs(std::size_t t) const { return costs_[t]; }

  double latency(std::size_t t, mec::Placement p) const {
    return costs_[t].latency(p);
  }
  double energy(std::size_t t, mec::Placement p) const {
    return costs_[t].energy(p);
  }
  // Whether placement `p` meets task t's deadline (t_ijl <= T_ij).
  bool meets_deadline(std::size_t t, mec::Placement p) const {
    return latency(t, p) <= tasks_[t].deadline_s + 1e-12;
  }
  // True if at least one placement meets the deadline.
  bool schedulable(std::size_t t) const;

  // Task indices whose issuing device belongs to base station `b`.
  const std::vector<std::size_t>& cluster_tasks(std::size_t b) const {
    return tasks_by_cluster_[b];
  }

 private:
  const mec::Topology* topology_;
  std::vector<mec::Task> tasks_;
  std::vector<mec::TaskCosts> costs_;
  std::vector<std::vector<std::size_t>> tasks_by_cluster_;
};

}  // namespace mecsched::assign
