// Assignment result types shared by all task-assignment algorithms.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mec/cost_model.h"

namespace mecsched::assign {

// Where one task ends up. kCancelled corresponds to the paper's "cancel the
// task and inform the user" escape hatch in Steps 4–6 of LP-HTA.
enum class Decision : int { kLocal = 0, kEdge = 1, kCloud = 2, kCancelled = 3 };

std::string to_string(Decision d);

// Converts a (non-cancelled) decision to the cost-model placement.
mec::Placement to_placement(Decision d);
Decision to_decision(mec::Placement p);

struct Assignment {
  // One decision per task, indexed like HtaInstance::tasks.
  std::vector<Decision> decisions;

  std::size_t size() const { return decisions.size(); }
  std::size_t count(Decision d) const;
  std::size_t cancelled() const { return count(Decision::kCancelled); }
};

}  // namespace mecsched::assign
