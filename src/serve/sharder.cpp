#include "serve/sharder.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "common/error.h"

namespace mecsched::serve {
namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

}  // namespace

Sharder::Sharder(const mec::Topology& universe, ShardingOptions options)
    : universe_(&universe) {
  MECSCHED_REQUIRE(options.num_shards >= 1, "num_shards must be >= 1");
  const std::size_t ns = universe.num_base_stations();
  num_shards_ = std::min(options.num_shards, ns);
  station_shard_.resize(ns);
  for (std::size_t b = 0; b < ns; ++b) {
    // Contiguous near-equal blocks; monotone in b, so a shard's cells are
    // a station-id range (the "neighborhood").
    station_shard_[b] = b * num_shards_ / ns;
  }
}

std::size_t Sharder::shard_of_station(std::size_t station) const {
  MECSCHED_REQUIRE(station < station_shard_.size(),
                   "station " + std::to_string(station) + " out of range");
  return station_shard_[station];
}

std::vector<ShardProblem> Sharder::build(
    const Population& population,
    const std::vector<double>& device_residual,
    const std::vector<double>& station_residual,
    const std::vector<const PendingTask*>& batch,
    const std::vector<double>& residual_deadline_s) const {
  const std::size_t nd = universe_->num_devices();
  const std::size_t ns = universe_->num_base_stations();
  MECSCHED_REQUIRE(device_residual.size() == nd &&
                       station_residual.size() == ns,
                   "residual vectors must match the universe topology");
  MECSCHED_REQUIRE(residual_deadline_s.size() == batch.size(),
                   "residual deadlines must align with the batch");

  // Route each task to the shard of its issuer's current cell.
  std::vector<std::vector<std::size_t>> shard_tasks(num_shards_);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::size_t issuer = batch[i]->task.id.user;
    MECSCHED_REQUIRE(population.up(issuer),
                     "batch task issuer " + std::to_string(issuer) +
                         " is not up (triage must run first)");
    shard_tasks[station_shard_[population.station(issuer)]].push_back(i);
  }

  // Bucket the up population by shard, in global-id order.
  std::vector<std::vector<std::size_t>> shard_devices(num_shards_);
  for (std::size_t g = 0; g < nd; ++g) {
    if (population.up(g)) {
      shard_devices[station_shard_[population.station(g)]].push_back(g);
    }
  }

  // Scratch global->local maps, reset per shard via the touched lists.
  std::vector<std::size_t> device_local(nd, kNone);
  std::vector<std::size_t> station_local(ns, kNone);

  std::vector<ShardProblem> problems;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    if (shard_tasks[s].empty()) continue;

    // Halo owners: up devices serving external data from another shard.
    std::vector<std::size_t> halo;
    for (const std::size_t i : shard_tasks[s]) {
      const mec::Task& t = batch[i]->task;
      if (t.external_bytes <= 0.0) continue;
      MECSCHED_REQUIRE(population.up(t.external_owner),
                       "external owner " + std::to_string(t.external_owner) +
                           " is not up (triage must run first)");
      if (station_shard_[population.station(t.external_owner)] != s) {
        halo.push_back(t.external_owner);
      }
    }
    std::sort(halo.begin(), halo.end());
    halo.erase(std::unique(halo.begin(), halo.end()), halo.end());

    // Station roster: the shard's own block, then halo cells (sorted).
    std::vector<std::size_t> stations;
    for (std::size_t b = 0; b < ns; ++b) {
      if (station_shard_[b] == s) stations.push_back(b);
    }
    const std::size_t core_stations = stations.size();
    {
      std::vector<std::size_t> halo_stations;
      for (const std::size_t g : halo) {
        halo_stations.push_back(population.station(g));
      }
      std::sort(halo_stations.begin(), halo_stations.end());
      halo_stations.erase(
          std::unique(halo_stations.begin(), halo_stations.end()),
          halo_stations.end());
      stations.insert(stations.end(), halo_stations.begin(),
                      halo_stations.end());
    }
    for (std::size_t local = 0; local < stations.size(); ++local) {
      station_local[stations[local]] = local;
    }

    std::vector<mec::BaseStation> shard_stations;
    shard_stations.reserve(stations.size());
    for (std::size_t local = 0; local < stations.size(); ++local) {
      mec::BaseStation bs = universe_->base_station(stations[local]);
      bs.id = local;
      // Halo cells carry zero capacity: their ledger belongs to the
      // owning shard.
      bs.max_resource = local < core_stations
                            ? std::max(0.0, station_residual[stations[local]])
                            : 0.0;
      shard_stations.push_back(bs);
    }

    // Device roster: core population, then halo owners.
    std::vector<std::size_t> roster = shard_devices[s];
    roster.insert(roster.end(), halo.begin(), halo.end());
    for (std::size_t local = 0; local < roster.size(); ++local) {
      device_local[roster[local]] = local;
    }
    std::vector<mec::Device> shard_dev;
    shard_dev.reserve(roster.size());
    for (std::size_t local = 0; local < roster.size(); ++local) {
      const std::size_t g = roster[local];
      mec::Device d = universe_->device(g);
      d.id = local;
      d.base_station = station_local[population.station(g)];
      d.max_resource = local < shard_devices[s].size()
                           ? std::max(0.0, device_residual[g])
                           : 0.0;
      shard_dev.push_back(d);
    }

    std::vector<mec::Task> tasks;
    std::vector<std::size_t> task_ids;
    tasks.reserve(shard_tasks[s].size());
    task_ids.reserve(shard_tasks[s].size());
    for (const std::size_t i : shard_tasks[s]) {
      mec::Task t = batch[i]->task;
      t.id.user = device_local[t.id.user];
      t.external_owner =
          t.external_bytes > 0.0 ? device_local[t.external_owner] : 0;
      t.deadline_s = residual_deadline_s[i];
      tasks.push_back(std::move(t));
      task_ids.push_back(batch[i]->id);
    }

    // Reset the scratch maps for the next shard.
    for (const std::size_t g : roster) device_local[g] = kNone;
    for (const std::size_t b : stations) station_local[b] = kNone;

    problems.push_back(ShardProblem{
        s,
        mec::Topology(std::move(shard_dev), std::move(shard_stations),
                      universe_->params()),
        std::move(tasks), std::move(task_ids), std::move(roster),
        halo.size()});
  }
  return problems;
}

}  // namespace mecsched::serve
