// Sharder: partitions the city into base-station neighborhoods and cuts
// one HtaInstance-sized problem per shard per epoch.
//
// The paper's LP-HTA already decomposes by cluster (Sec. III.A treats each
// cluster separately); the sharder lifts that one level: stations are
// split into num_shards contiguous blocks ("neighborhoods"), each epoch
// batch is routed to the shard of its issuer's *current* cell, and every
// shard becomes an independent topology + task list with dense local ids
// that the solvers consume unchanged. Shards are then solvable in
// parallel — results are gathered and applied in shard order, which keeps
// the decision log byte-identical at any worker count.
//
// Shard-boundary data sharing is handled with *halo* entries: a task
// whose external owner sits in another shard gets a zero-capacity copy of
// the owner device (and, when needed, the owner's cell as a zero-capacity
// halo station) so the cost model prices the cross-neighborhood fetch
// exactly as the universe topology would. Halo entries carry no capacity,
// so the owning shard's ledger is never double-spent.
#pragma once

#include <cstddef>
#include <vector>

#include "mec/task.h"
#include "mec/topology.h"
#include "serve/population.h"

namespace mecsched::serve {

struct ShardingOptions {
  std::size_t num_shards = 1;  // clamped to the station count at build
};

// An admitted task waiting for (or re-entering) a decision.
struct PendingTask {
  std::size_t id = 0;       // daemon-scoped, dense
  mec::Task task{};         // global ids; deadline_s as issued
  double arrival_s = 0.0;   // admission time on the virtual clock
  std::size_t attempts = 0; // admissions consumed so far
};

// One shard's cut of an epoch: a self-contained HTA problem.
struct ShardProblem {
  std::size_t shard = 0;
  mec::Topology topology;  // local dense ids, residual capacities
  std::vector<mec::Task> tasks;          // user/owner remapped to local ids
  std::vector<std::size_t> task_ids;     // local task -> PendingTask::id
  std::vector<std::size_t> device_global;  // local device -> universe id
  std::size_t halo_devices = 0;          // trailing zero-capacity entries
};

class Sharder {
 public:
  // Throws ModelError for num_shards == 0. More shards than stations is
  // clamped (each shard needs at least one cell).
  Sharder(const mec::Topology& universe, ShardingOptions options);

  std::size_t num_shards() const { return num_shards_; }
  std::size_t shard_of_station(std::size_t station) const;

  // Cuts one epoch: routes each batch task to its issuer's shard, carves
  // per-shard topologies out of the up population with the given residual
  // capacities (indexed by universe ids; a down device's residual is
  // ignored), and remaps ids. residual_deadline_s aligns with batch and
  // overrides each task's deadline (the slack left after waiting). Shards
  // with no tasks are omitted; the returned problems are in shard order.
  // Every batch issuer — and every external owner — must be up (the
  // daemon triages the rest away before building).
  std::vector<ShardProblem> build(
      const Population& population,
      const std::vector<double>& device_residual,
      const std::vector<double>& station_residual,
      const std::vector<const PendingTask*>& batch,
      const std::vector<double>& residual_deadline_s) const;

 private:
  const mec::Topology* universe_;
  std::size_t num_shards_;
  std::vector<std::size_t> station_shard_;  // station -> shard
};

}  // namespace mecsched::serve
