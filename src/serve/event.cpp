#include "serve/event.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mecsched::serve {

std::string to_string(EventKind k) {
  switch (k) {
    case EventKind::kTaskArrival:
      return "task-arrival";
    case EventKind::kDeviceJoin:
      return "device-join";
    case EventKind::kDeviceLeave:
      return "device-leave";
    case EventKind::kDeviceMigrate:
      return "device-migrate";
  }
  return "unknown";
}

Event Event::arrival(double time_s, mec::Task task) {
  Event e;
  e.time_s = time_s;
  e.kind = EventKind::kTaskArrival;
  e.task = std::move(task);
  e.device = e.task.id.user;
  return e;
}

Event Event::join(double time_s, std::size_t device, std::size_t station) {
  Event e;
  e.time_s = time_s;
  e.kind = EventKind::kDeviceJoin;
  e.device = device;
  e.station = station;
  return e;
}

Event Event::leave(double time_s, std::size_t device) {
  Event e;
  e.time_s = time_s;
  e.kind = EventKind::kDeviceLeave;
  e.device = device;
  return e;
}

Event Event::migrate(double time_s, std::size_t device, std::size_t station) {
  Event e;
  e.time_s = time_s;
  e.kind = EventKind::kDeviceMigrate;
  e.device = device;
  e.station = station;
  return e;
}

Trace::Trace(std::vector<Event> events) : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) {
                     return a.time_s < b.time_s;
                   });
  for (const Event& e : events_) {
    if (e.kind == EventKind::kTaskArrival) ++arrivals_;
  }
}

double Trace::horizon_s() const {
  return events_.empty() ? 0.0 : events_.back().time_s;
}

void Trace::validate_against(std::size_t num_devices,
                             std::size_t num_stations) const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    MECSCHED_REQUIRE(std::isfinite(e.time_s) && e.time_s >= 0.0,
                     "event " + std::to_string(i) +
                         ": time must be finite and non-negative");
    MECSCHED_REQUIRE(e.device < num_devices,
                     "event " + std::to_string(i) + ": device " +
                         std::to_string(e.device) + " out of range (" +
                         std::to_string(num_devices) + " devices)");
    if (e.kind == EventKind::kDeviceJoin ||
        e.kind == EventKind::kDeviceMigrate) {
      MECSCHED_REQUIRE(e.station < num_stations,
                       "event " + std::to_string(i) + ": station " +
                           std::to_string(e.station) + " out of range (" +
                           std::to_string(num_stations) + " stations)");
    }
    if (e.kind == EventKind::kTaskArrival) {
      MECSCHED_REQUIRE(e.task.id.user == e.device,
                       "event " + std::to_string(i) +
                           ": arrival issuer does not match event device");
      MECSCHED_REQUIRE(
          e.task.local_bytes >= 0.0 && e.task.external_bytes >= 0.0,
          "event " + std::to_string(i) + ": task data sizes must be >= 0");
      MECSCHED_REQUIRE(e.task.resource > 0.0,
                       "event " + std::to_string(i) +
                           ": task resource must be positive");
      MECSCHED_REQUIRE(std::isfinite(e.task.deadline_s) &&
                           e.task.deadline_s > 0.0,
                       "event " + std::to_string(i) +
                           ": task deadline must be finite and positive");
      if (e.task.external_bytes > 0.0) {
        MECSCHED_REQUIRE(e.task.external_owner < num_devices,
                         "event " + std::to_string(i) +
                             ": external owner " +
                             std::to_string(e.task.external_owner) +
                             " out of range");
      }
    }
  }
}

}  // namespace mecsched::serve
