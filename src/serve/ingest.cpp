#include "serve/ingest.h"

#include <cmath>
#include <string>

#include "common/error.h"

namespace mecsched::serve {

IngestCursor::IngestCursor(const Trace& trace, BatchingOptions batching)
    : trace_(&trace), batching_(batching) {
  MECSCHED_REQUIRE(std::isfinite(batching_.window_s) &&
                       batching_.window_s > 0.0,
                   "batching window must be finite and positive, got " +
                       std::to_string(batching_.window_s));
}

Window IngestCursor::next_window(double from_s) {
  Window w;
  w.close_s = from_s + batching_.window_s;
  const std::vector<Event>& events = trace_->events();
  std::size_t arrivals = 0;
  while (next_ < events.size() && events[next_].time_s <= w.close_s) {
    const Event& e = events[next_++];
    w.events.push_back(e);
    if (e.kind == EventKind::kTaskArrival &&
        batching_.max_batch > 0 && ++arrivals >= batching_.max_batch) {
      // The cap'th arrival closes the window at its own timestamp; the
      // epoch boundary moves up, never back (simultaneous events already
      // consumed stay in this window).
      w.close_s = std::max(from_s, e.time_s);
      w.closed_by_size = true;
      break;
    }
  }
  return w;
}

bool AdmissionControl::offer(std::size_t queue_depth) {
  if (options_.max_queue > 0 && queue_depth >= options_.max_queue) {
    ++rejected_;
    return false;
  }
  ++admitted_;
  return true;
}

}  // namespace mecsched::serve
