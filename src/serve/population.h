// The live device population: which devices are attached, and to which
// cell. The daemon's view of "the system as it is now".
//
// The universe topology fixes each device's identity, radio and home
// station; the population overlays the mutable part — presence and the
// *current* serving station, which churn events move around. Duplicate
// transitions (join while up, leave while down) are tolerated no-ops so a
// generated churn stream needs no global up/down bookkeeping.
#pragma once

#include <cstddef>
#include <vector>

#include "mec/topology.h"
#include "serve/event.h"

namespace mecsched::serve {

class Population {
 public:
  // Everyone starts up, attached to their home (topology) station.
  explicit Population(const mec::Topology& universe);

  std::size_t size() const { return up_.size(); }
  bool up(std::size_t device) const { return up_[device]; }
  std::size_t station(std::size_t device) const { return station_[device]; }
  std::size_t num_up() const { return num_up_; }

  // Applies one churn event (arrival events are ignored here — they do
  // not move devices). Join re-attaches at the event's target station;
  // migrate moves an *up* device (a migrate of a down device is a no-op).
  void apply(const Event& e);

 private:
  std::vector<char> up_;  // vector<bool> is bit-packed; char keeps it simple
  std::vector<std::size_t> station_;
  std::size_t num_up_ = 0;
};

}  // namespace mecsched::serve
