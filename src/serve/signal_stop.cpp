#include "serve/signal_stop.h"

#include <atomic>
#include <csignal>

#include "common/error.h"

namespace mecsched::serve {
namespace {

// The one live instance's source. The handler reads this atomically and
// only touches the source's own atomic flag, keeping the handler body
// async-signal-safe.
std::atomic<CancellationSource*> g_active{nullptr};

void handle_signal(int /*signum*/) {
  CancellationSource* src = g_active.load(std::memory_order_acquire);
  if (src != nullptr) src->request_cancel();
}

using Handler = void (*)(int);
Handler g_prev_int = SIG_DFL;
Handler g_prev_term = SIG_DFL;

}  // namespace

ScopedSignalStop::ScopedSignalStop() {
  CancellationSource* expected = nullptr;
  MECSCHED_REQUIRE(g_active.compare_exchange_strong(
                       expected, &source_, std::memory_order_acq_rel),
                   "only one ScopedSignalStop may be live at a time");
  g_prev_int = std::signal(SIGINT, &handle_signal);
  g_prev_term = std::signal(SIGTERM, &handle_signal);
}

ScopedSignalStop::~ScopedSignalStop() {
  std::signal(SIGINT, g_prev_int);
  std::signal(SIGTERM, g_prev_term);
  g_active.store(nullptr, std::memory_order_release);
}

}  // namespace mecsched::serve
