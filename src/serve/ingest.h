// Ingest path: batching windows over the event trace, plus admission
// control on the arrival queue.
//
// The daemon does not decide per arrival — it accumulates a *window* of
// events and decides at the window boundary (the epoch). A window closes
// on whichever comes first:
//   * the deadline: window_s virtual seconds after it opened, or
//   * the size cap: the max_batch'th task arrival (when max_batch > 0) —
//     a burst closes the window early so queueing delay stays bounded.
//
// AdmissionControl bounds the undecided backlog: when the waiting queue
// already holds max_queue tasks, further arrivals are rejected at ingest
// (counted, logged, never solved). 0 = accept everything.
#pragma once

#include <cstddef>
#include <vector>

#include "serve/event.h"

namespace mecsched::serve {

struct BatchingOptions {
  double window_s = 0.5;      // epoch length on the virtual clock
  std::size_t max_batch = 0;  // arrivals that force an early close; 0 = off
};

// One closed batching window.
struct Window {
  double close_s = 0.0;       // the epoch boundary: decisions happen here
  std::vector<Event> events;  // trace order, time_s <= close_s
  bool closed_by_size = false;
};

// Positional reader of the trace: each next_window() consumes the events
// of one window. Pure function of (trace, options, call sequence) — no
// wall clock — so replays are exact.
class IngestCursor {
 public:
  // Throws ModelError for a non-positive or non-finite window_s.
  IngestCursor(const Trace& trace, BatchingOptions batching);

  bool exhausted() const { return next_ >= trace_->events().size(); }

  // Closes and returns the window opening at from_s. Includes every
  // remaining event with time_s <= close; when max_batch is set, the
  // max_batch'th arrival is included and closes the window at its own
  // timestamp (so the next window opens there).
  Window next_window(double from_s);

 private:
  const Trace* trace_;
  BatchingOptions batching_;
  std::size_t next_ = 0;  // first unconsumed event
};

struct AdmissionOptions {
  std::size_t max_queue = 0;  // undecided-task cap; 0 = unlimited
};

class AdmissionControl {
 public:
  explicit AdmissionControl(AdmissionOptions options = {})
      : options_(options) {}

  // One arrival against the current undecided backlog. True = admitted.
  bool offer(std::size_t queue_depth);

  std::size_t admitted() const { return admitted_; }
  std::size_t rejected() const { return rejected_; }

 private:
  AdmissionOptions options_;
  std::size_t admitted_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace mecsched::serve
