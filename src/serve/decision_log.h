// The decision log: one line per task disposition — terminal (decide,
// reject, expire, lost-issuer, exhausted, abandoned) or re-admission
// (retry) — in the exact order the daemon settled it.
//
// This is the daemon's externally-visible output and its determinism
// witness: CI replays the same trace at --jobs 1 and --jobs 4 and diffs
// the CSV byte-for-byte. Shard solves run in parallel, but dispositions
// are appended from the epoch loop in shard order, so the log never sees
// the worker schedule. Numbers are rendered with a fixed %.9g format —
// enough digits to be injective for the model's doubles, no
// locale/stream-state dependence.
#pragma once

#include <cstdint>
#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "assign/assignment.h"
#include "mec/task.h"

namespace mecsched::serve {

enum class DecisionKind {
  kDecide = 0,    // placed; `decision` and latency/energy are meaningful
  kReject,        // refused at admission (queue full)
  kExpire,        // residual slack gone before a successful attempt
  kLostIssuer,    // issuer left; nobody to deliver the result to
  kRetry,         // interrupted or unplaceable; re-admitted with backoff
  kExhausted,     // max_attempts consumed without completing
  kAbandoned,     // daemon stopped (signal) with the task still open
};

std::string to_string(DecisionKind k);

struct DecisionRecord {
  std::size_t epoch = 0;
  double time_s = 0.0;  // virtual clock at disposition
  mec::TaskId task{};
  DecisionKind kind = DecisionKind::kDecide;
  std::size_t shard = 0;
  assign::Decision decision = assign::Decision::kCancelled;
  std::size_t attempt = 0;   // admissions consumed when disposed
  double latency_s = 0.0;    // admission-to-decision (kDecide only)
  double energy_j = 0.0;     // kDecide only
};

class DecisionLog {
 public:
  void append(DecisionRecord r) { records_.push_back(std::move(r)); }

  const std::vector<DecisionRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  // Deterministic CSV: header + one line per record, append order.
  void write_csv(std::ostream& out) const;

  // Order-sensitive digest of every field of every record — the compact
  // equality the determinism tests assert.
  std::uint64_t digest() const;

 private:
  std::vector<DecisionRecord> records_;
};

}  // namespace mecsched::serve
