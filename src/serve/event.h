// Typed event stream for the serve daemon (docs/serve.md, "Event model").
//
// A Trace is the daemon's only input: an immutable, time-sorted sequence
// of task arrivals and device churn. Everything downstream — batching
// windows, admission, sharding, reconciliation — consumes events in trace
// order, which is what makes a serve run replayable: the same trace and
// options produce a byte-identical decision log at any --jobs count.
//
// Times are *virtual* seconds on the trace's own clock. The daemon never
// reads the wall clock for decisions; wall time only feeds observability.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mec/task.h"

namespace mecsched::serve {

enum class EventKind {
  kTaskArrival = 0,  // `task` is valid; task.id.user is the issuer
  kDeviceJoin,       // `device` attaches to `station` (rejoin after leave)
  kDeviceLeave,      // `device` departs; its running work is interrupted
  kDeviceMigrate,    // `device` re-attaches to `station` mid-session
};

std::string to_string(EventKind k);

struct Event {
  double time_s = 0.0;
  EventKind kind = EventKind::kTaskArrival;
  mec::Task task{};         // kTaskArrival only
  std::size_t device = 0;   // join / leave / migrate subject
  std::size_t station = 0;  // join / migrate target cell

  static Event arrival(double time_s, mec::Task task);
  static Event join(double time_s, std::size_t device, std::size_t station);
  static Event leave(double time_s, std::size_t device);
  static Event migrate(double time_s, std::size_t device,
                       std::size_t station);
};

class Trace {
 public:
  Trace() = default;
  // Stable-sorts by time: simultaneous events keep their input order, so
  // generator output order is part of the replay contract.
  explicit Trace(std::vector<Event> events);

  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  std::size_t arrivals() const { return arrivals_; }
  std::size_t churn_events() const { return events_.size() - arrivals_; }
  // Time of the last event (0 for an empty trace).
  double horizon_s() const;

  // Throws ModelError when an event references a device or station outside
  // the universe topology, carries a negative/non-finite time, or an
  // arrival's task is malformed (non-positive resource, negative sizes).
  void validate_against(std::size_t num_devices,
                        std::size_t num_stations) const;

 private:
  std::vector<Event> events_;
  std::size_t arrivals_ = 0;
};

}  // namespace mecsched::serve
