#include "serve/reconciler.h"

#include <algorithm>

namespace mecsched::serve {

Interruptions Reconciler::observe(const Event& e) {
  Interruptions out;
  if (e.kind != EventKind::kDeviceLeave &&
      e.kind != EventKind::kDeviceMigrate) {
    return out;
  }
  std::vector<RunningTask> keep;
  keep.reserve(running_.size());
  for (const RunningTask& r : running_) {
    if (r.finish_s <= e.time_s) {  // already done when the event struck
      keep.push_back(r);
      continue;
    }
    if (e.kind == EventKind::kDeviceLeave) {
      if (r.issuer == e.device) {
        out.lost_issuer.push_back(r.id);
        continue;
      }
      if (r.has_external && r.owner == e.device) {
        out.orphaned.push_back(r.id);
        continue;
      }
    } else {  // kDeviceMigrate
      if (r.issuer == e.device && r.where != assign::Decision::kLocal) {
        out.orphaned.push_back(r.id);
        continue;
      }
    }
    keep.push_back(r);
  }
  running_.swap(keep);
  return out;
}

std::vector<std::size_t> Reconciler::collect_completions(double now) {
  std::vector<std::size_t> done;
  for (const RunningTask& r : running_) {
    if (r.finish_s <= now) done.push_back(r.id);
  }
  running_.erase(std::remove_if(running_.begin(), running_.end(),
                                [now](const RunningTask& r) {
                                  return r.finish_s <= now;
                                }),
                 running_.end());
  return done;
}

void Reconciler::occupancy(double now, std::vector<double>& device_used,
                           std::vector<double>& station_used) const {
  for (const RunningTask& r : running_) {
    if (r.finish_s <= now) continue;
    if (r.where == assign::Decision::kLocal) {
      device_used[r.issuer] += r.resource;
    } else if (r.where == assign::Decision::kEdge) {
      station_used[r.station] += r.resource;
    }
  }
}

}  // namespace mecsched::serve
