#include "serve/decision_log.h"

#include <cstdio>

#include "exec/instance_cache.h"

namespace mecsched::serve {
namespace {

// Fixed-format double rendering: locale-independent, stream-state-free.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string to_string(DecisionKind k) {
  switch (k) {
    case DecisionKind::kDecide:
      return "decide";
    case DecisionKind::kReject:
      return "reject";
    case DecisionKind::kExpire:
      return "expire";
    case DecisionKind::kLostIssuer:
      return "lost-issuer";
    case DecisionKind::kRetry:
      return "retry";
    case DecisionKind::kExhausted:
      return "exhausted";
    case DecisionKind::kAbandoned:
      return "abandoned";
  }
  return "unknown";
}

void DecisionLog::write_csv(std::ostream& out) const {
  out << "epoch,time_s,user,index,kind,shard,decision,attempt,"
         "latency_s,energy_j\n";
  for (const DecisionRecord& r : records_) {
    out << r.epoch << ',' << fmt(r.time_s) << ',' << r.task.user << ','
        << r.task.index << ',' << to_string(r.kind) << ',' << r.shard << ','
        << assign::to_string(r.decision) << ',' << r.attempt << ','
        << fmt(r.latency_s) << ',' << fmt(r.energy_j) << '\n';
  }
}

std::uint64_t DecisionLog::digest() const {
  std::uint64_t h = exec::hash_string("mecsched.serve.decision_log");
  for (const DecisionRecord& r : records_) {
    h = exec::mix(h, r.epoch);
    h = exec::mix(h, exec::hash_string(fmt(r.time_s)));
    h = exec::mix(h, r.task.user);
    h = exec::mix(h, r.task.index);
    h = exec::mix(h, static_cast<std::uint64_t>(r.kind));
    h = exec::mix(h, r.shard);
    h = exec::mix(h, static_cast<std::uint64_t>(r.decision));
    h = exec::mix(h, r.attempt);
    h = exec::mix(h, exec::hash_string(fmt(r.latency_s)));
    h = exec::mix(h, exec::hash_string(fmt(r.energy_j)));
  }
  return h;
}

}  // namespace mecsched::serve
