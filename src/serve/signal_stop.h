// ScopedSignalStop: turns SIGINT/SIGTERM into a cooperative cancel.
//
// The daemon never dies mid-epoch: the signal handler only flips the
// CancellationSource's atomic flag (async-signal-safe — one relaxed store
// on a pre-existing atomic, no allocation, no locks). The epoch loop sees
// the flag at its next boundary, settles open tasks as abandoned, and
// returns normally — so the CLI's usual exit path still runs and
// --flight-out / --trace / --metrics-out capture the shutdown, which is
// exactly the run worth autopsying.
//
// At most one instance may be live at a time (the handler routes through
// one static slot); the previous handlers are restored on destruction.
#pragma once

#include "common/deadline.h"

namespace mecsched::serve {

class ScopedSignalStop {
 public:
  ScopedSignalStop();   // installs SIGINT + SIGTERM handlers
  ~ScopedSignalStop();  // restores the previous handlers

  ScopedSignalStop(const ScopedSignalStop&) = delete;
  ScopedSignalStop& operator=(const ScopedSignalStop&) = delete;

  CancellationToken token() const { return source_.token(); }
  bool triggered() const { return source_.cancel_requested(); }

 private:
  CancellationSource source_;
};

}  // namespace mecsched::serve
