#include "serve/daemon.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "assign/hta_instance.h"
#include "common/error.h"
#include "exec/instance_cache.h"
#include "exec/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "obs/window.h"
#include "serve/population.h"
#include "serve/reconciler.h"

namespace mecsched::serve {
namespace {

using assign::Decision;
using control::ReadmissionEntry;

double wall_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// What one shard solve hands back to the epoch loop.
struct ShardOutcome {
  assign::Assignment plan;
  control::FallbackRung rung = control::FallbackRung::kLpHta;
  bool cache_hit = false;
  // Chosen-placement costs per shard task (0 for cancelled entries).
  std::vector<double> latency_s;
  std::vector<double> energy_j;
};

}  // namespace

ServeDaemon::ServeDaemon(ServeOptions options) : options_(std::move(options)) {}

ServeResult ServeDaemon::run(const mec::Topology& universe, const Trace& trace,
                             DecisionLog* log,
                             const CancellationToken& stop) const {
  MECSCHED_REQUIRE(std::isfinite(options_.epoch_budget_ms) &&
                       options_.epoch_budget_ms >= 0.0,
                   "epoch_budget_ms must be finite and non-negative");
  MECSCHED_REQUIRE(options_.cache_capacity >= 1,
                   "cache_capacity must be >= 1");
  trace.validate_against(universe.num_devices(), universe.num_base_stations());

  ServeResult result;
  Population pop(universe);
  Reconciler recon;
  control::ReadmissionQueue waiting(options_.readmission);
  IngestCursor cursor(trace, options_.batching);
  AdmissionControl admission(options_.admission);
  const Sharder sharder(universe, options_.sharding);
  exec::ThreadPool pool(options_.jobs);
  exec::InstanceCache cache(options_.cache_capacity);
  std::vector<PendingTask> pending;  // id = index, append-only

  obs::Registry& reg = obs::Registry::global();
  obs::FlightRecorder& flight = obs::FlightRecorder::global();
  const obs::ScopedTimer run_span("serve.run", "serve");

  const double budget_s = options_.epoch_budget_ms * 1e-3;
  const std::size_t nd = universe.num_devices();
  const std::size_t ns = universe.num_base_stations();
  double now = 0.0;
  std::size_t epoch = 0;

  auto append = [&](double t, const mec::TaskId& id, DecisionKind kind,
                    std::size_t attempt) {
    if (log != nullptr) {
      log->append({epoch, t, id, kind, 0, Decision::kCancelled, attempt,
                   0.0, 0.0});
    }
  };

  // Re-admit with backoff, or settle as exhausted.
  auto retry_or_exhaust = [&](std::size_t id, double t) {
    const PendingTask& p = pending[id];
    if (waiting.retry(id, p.attempts, epoch)) {
      append(t, p.task.id, DecisionKind::kRetry, p.attempts);
    } else {
      ++result.exhausted;
      append(t, p.task.id, DecisionKind::kExhausted, p.attempts);
    }
  };

  for (;; ++epoch) {
    if (stop.expired()) {
      // Graceful stop: settle everything still open so the log accounts
      // for every admitted task — waiting room first (admission order),
      // then in-flight work (start order).
      result.stopped_early = true;
      for (const ReadmissionEntry& w : waiting.take_ready(
               std::numeric_limits<std::size_t>::max())) {
        ++result.abandoned;
        append(now, pending[w.id].task.id, DecisionKind::kAbandoned,
               pending[w.id].attempts);
      }
      for (const RunningTask& r : recon.running()) {
        ++result.abandoned;
        append(now, pending[r.id].task.id, DecisionKind::kAbandoned,
               pending[r.id].attempts);
      }
      break;
    }
    if (cursor.exhausted() && waiting.empty() && recon.running().empty()) {
      break;
    }

    const obs::ScopedTimer epoch_span(
        "serve.epoch", "serve",
        obs::Tracer::global().enabled()
            ? "\"epoch\":" + std::to_string(epoch) +
                  ",\"running\":" + std::to_string(recon.running().size()) +
                  ",\"waiting\":" + std::to_string(waiting.waiting())
            : std::string());

    // ---- 1. Ingest: close the window, replay its events in trace order.
    Window w = cursor.next_window(now);
    now = w.close_s;
    result.virtual_now_s = now;
    for (const Event& e : w.events) {
      ++result.events;
      if (e.kind == EventKind::kTaskArrival) {
        ++result.arrivals;
        if (admission.offer(waiting.waiting())) {
          const std::size_t id = pending.size();
          pending.push_back(PendingTask{id, e.task, e.time_s, 0});
          waiting.admit(id, epoch);
        } else {
          append(e.time_s, e.task.id, DecisionKind::kReject, 0);
        }
      } else {
        const Interruptions hit = recon.observe(e);
        for (const std::size_t id : hit.lost_issuer) {
          ++result.lost_issuer;
          append(e.time_s, pending[id].task.id, DecisionKind::kLostIssuer,
                 pending[id].attempts);
        }
        for (const std::size_t id : hit.orphaned) {
          ++result.orphaned;
          retry_or_exhaust(id, e.time_s);
        }
        pop.apply(e);
      }
    }

    // ---- Completions free their reservations.
    result.completed += recon.collect_completions(now).size();

    ++result.epochs;

    // ---- 2. Triage the epoch batch.
    const std::vector<ReadmissionEntry> ready = waiting.take_ready(epoch);
    reg.gauge("serve.queue.depth")
        .set(static_cast<double>(waiting.waiting()));
    if (ready.empty()) continue;

    std::vector<const PendingTask*> batch;
    std::vector<double> residuals;
    for (const ReadmissionEntry& wte : ready) {
      PendingTask& p = pending[wte.id];
      p.attempts = wte.attempts + 1;
      // Residual slack, net of the time this epoch's decision is allowed
      // to burn (the configured budget, for determinism).
      const double residual =
          p.task.deadline_s - (now - p.arrival_s) - budget_s;
      if (residual <= 0.0) {
        ++result.expired;
        append(now, p.task.id, DecisionKind::kExpire, p.attempts);
        continue;
      }
      if (!pop.up(p.task.id.user)) {
        ++result.lost_issuer;
        append(now, p.task.id, DecisionKind::kLostIssuer, p.attempts);
        continue;
      }
      if (p.task.external_bytes > 0.0 && !pop.up(p.task.external_owner)) {
        // The owner may rejoin; park the task.
        retry_or_exhaust(wte.id, now);
        continue;
      }
      batch.push_back(&p);
      residuals.push_back(residual);
    }
    if (batch.empty()) continue;
    ++result.decide_epochs;

    // ---- 3. Shard against the residual system.
    std::vector<double> dev_res(nd);
    std::vector<double> st_res(ns);
    {
      std::vector<double> dev_used(nd, 0.0);
      std::vector<double> st_used(ns, 0.0);
      recon.occupancy(now, dev_used, st_used);
      for (std::size_t g = 0; g < nd; ++g) {
        dev_res[g] = universe.device(g).max_resource - dev_used[g];
      }
      for (std::size_t b = 0; b < ns; ++b) {
        st_res[b] = universe.base_station(b).max_resource - st_used[b];
      }
    }
    const std::vector<ShardProblem> shards =
        sharder.build(pop, dev_res, st_res, batch, residuals);

    // ---- 4. Solve every shard in parallel under one epoch deadline.
    CancellationToken epoch_token = stop;
    if (options_.epoch_budget_ms > 0.0) {
      epoch_token =
          stop.with_deadline(Deadline::after_ms(options_.epoch_budget_ms));
    }
    auto solve_shard = [&](const ShardProblem& sp) -> ShardOutcome {
      const auto t0 = std::chrono::steady_clock::now();
      const assign::HtaInstance inst(sp.topology, sp.tasks);
      const std::uint64_t key =
          exec::mix(exec::fingerprint(inst), exec::hash_string("serve"));
      ShardOutcome oc;
      std::shared_ptr<const assign::Assignment> hint;
      if (const auto cached = cache.find(key)) {
        oc.plan = *cached;  // byte-identical to a fresh solve
        oc.cache_hit = true;
      } else {
        assign::LpHtaOptions lp_opts = options_.lp;
        const std::uint64_t family =
            exec::mix(exec::hash_string("serve-shard"), sp.shard);
        if (options_.warm_start) {
          // The previous epoch's plan for this neighborhood; epochs are
          // barriers, so the hint never races its producer.
          hint = cache.warm_hint(family);
          lp_opts.warm_hint = hint.get();
        }
        const control::FallbackChain chain(lp_opts);
        oc.plan = chain.assign(inst, oc.rung, epoch_token);
        if (options_.warm_start) {
          cache.store_warm(
              family, std::make_shared<const assign::Assignment>(oc.plan));
        }
        cache.insert(key, oc.plan);
      }
      oc.latency_s.assign(sp.tasks.size(), 0.0);
      oc.energy_j.assign(sp.tasks.size(), 0.0);
      for (std::size_t t = 0; t < sp.tasks.size(); ++t) {
        if (oc.plan.decisions[t] == Decision::kCancelled) continue;
        const mec::Placement pl = assign::to_placement(oc.plan.decisions[t]);
        oc.latency_s[t] = inst.latency(t, pl);
        oc.energy_j[t] = inst.energy(t, pl);
      }
      if (flight.enabled()) {
        obs::SolveRecord rec;
        rec.layer = "serve";
        rec.engine = "shard";
        rec.status = oc.cache_hit ? "cache-hit" : control::to_string(oc.rung);
        rec.detail = "epoch " + std::to_string(epoch) + " shard " +
                     std::to_string(sp.shard);
        rec.seconds = wall_ms(t0) * 1e-3;
        rec.iterations = sp.tasks.size();
        rec.deadline_residual_ms =
            obs::FlightRecorder::residual_ms(epoch_token.deadline());
        rec.deadline_hit = epoch_token.expired();
        rec.warm_start = hint != nullptr;
        rec.cache_hit = oc.cache_hit;
        flight.record(std::move(rec));
      }
      return oc;
    };

    const auto solve_t0 = std::chrono::steady_clock::now();
    std::vector<std::future<ShardOutcome>> futures;
    futures.reserve(shards.size());
    for (const ShardProblem& sp : shards) {
      futures.push_back(
          pool.submit([&solve_shard, &sp] { return solve_shard(sp); }));
    }
    std::vector<ShardOutcome> outcomes;
    outcomes.reserve(shards.size());
    for (std::future<ShardOutcome>& f : futures) {
      outcomes.push_back(f.get());  // shard order, not finish order
    }
    const double solve_ms = wall_ms(solve_t0);
    reg.histogram("serve.epoch.solve_ms").observe(solve_ms);
    reg.window("serve.epoch.solve_ms").observe(solve_ms);
    if (options_.epoch_budget_ms > 0.0 && epoch_token.expired()) {
      reg.counter("serve.epoch.budget_expired").add();
    }

    // ---- 5. Apply in shard order: the decision log never sees the
    // worker schedule.
    for (std::size_t i = 0; i < shards.size(); ++i) {
      const ShardProblem& sp = shards[i];
      const ShardOutcome& oc = outcomes[i];
      ++result.shard_solves;
      if (oc.cache_hit) {
        ++result.cache_hits;
      } else {
        ++result.rungs[oc.rung];
      }
      for (std::size_t t = 0; t < sp.tasks.size(); ++t) {
        const std::size_t id = sp.task_ids[t];
        const PendingTask& p = pending[id];
        const Decision d = oc.plan.decisions[t];
        if (d == Decision::kCancelled) {
          retry_or_exhaust(id, now);
          continue;
        }
        const double finish = now + oc.latency_s[t];
        const double wait_s = now - p.arrival_s;
        result.total_energy_j += oc.energy_j[t];
        result.makespan_s = std::max(result.makespan_s, finish);
        ++result.decisions;
        recon.start({id, finish, d, p.task.id.user,
                     pop.station(p.task.id.user), p.task.resource,
                     p.task.external_bytes > 0.0, p.task.external_owner});
        if (log != nullptr) {
          log->append({epoch, now, p.task.id, DecisionKind::kDecide,
                       sp.shard, d, p.attempts, wait_s, oc.energy_j[t]});
        }
        reg.histogram("serve.admit_to_decision_ms").observe(wait_s * 1e3);
        reg.window("serve.admit_to_decision_ms").observe(wait_s * 1e3);
        reg.rate("serve.decisions").record();
      }
    }
  }

  result.admitted = admission.admitted();
  result.rejected = admission.rejected();
  result.retries = waiting.retries();

  reg.counter("serve.runs").add();
  reg.counter("serve.events.ingested").add(result.events);
  reg.counter("serve.arrivals").add(result.arrivals);
  reg.counter("serve.admission.admitted").add(result.admitted);
  reg.counter("serve.admission.rejected").add(result.rejected);
  reg.counter("serve.epochs").add(result.epochs);
  reg.counter("serve.decisions").add(result.decisions);
  reg.counter("serve.completed").add(result.completed);
  reg.counter("serve.expired").add(result.expired);
  reg.counter("serve.lost_issuer").add(result.lost_issuer);
  reg.counter("serve.exhausted").add(result.exhausted);
  reg.counter("serve.orphans").add(result.orphaned);
  reg.counter("serve.readmissions").add(result.retries);
  reg.counter("serve.abandoned").add(result.abandoned);
  reg.counter("serve.shard_solves").add(result.shard_solves);
  reg.counter("serve.cache_hits").add(result.cache_hits);
  return result;
}

}  // namespace mecsched::serve
