#include "serve/population.h"

namespace mecsched::serve {

Population::Population(const mec::Topology& universe)
    : up_(universe.num_devices(), 1),
      station_(universe.num_devices()),
      num_up_(universe.num_devices()) {
  for (std::size_t i = 0; i < universe.num_devices(); ++i) {
    station_[i] = universe.device(i).base_station;
  }
}

void Population::apply(const Event& e) {
  switch (e.kind) {
    case EventKind::kTaskArrival:
      break;
    case EventKind::kDeviceJoin:
      if (!up_[e.device]) {
        up_[e.device] = 1;
        ++num_up_;
      }
      station_[e.device] = e.station;
      break;
    case EventKind::kDeviceLeave:
      if (up_[e.device]) {
        up_[e.device] = 0;
        --num_up_;
      }
      break;
    case EventKind::kDeviceMigrate:
      if (up_[e.device]) station_[e.device] = e.station;
      break;
  }
}

}  // namespace mecsched::serve
