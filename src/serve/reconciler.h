// Epoch reconciler: tracks in-flight work and resolves it against churn.
//
// Once a task is placed it occupies capacity until its analytic finish
// time. Between epoch boundaries devices leave and migrate; the
// reconciler classifies what that does to each in-flight task:
//
//   * issuer leaves        -> lost: nobody is left to receive the result;
//   * external owner leaves-> orphaned: the data source is gone mid-fetch,
//                             the task goes back to the waiting room;
//   * issuer migrates      -> an edge/cloud placement is orphaned (the
//                             serving cell changed under it; the delivery
//                             path through the old station is gone), a
//                             local run travels with the device and
//                             survives;
//   * owner migrates       -> survives (the fetch is pinned at start).
//
// Interruption is at whole-run granularity, matching the resilient
// controller's analytic-execution model: a task that finished before the
// event's timestamp is unaffected even if collection happens later.
#pragma once

#include <cstddef>
#include <vector>

#include "assign/assignment.h"
#include "serve/event.h"

namespace mecsched::serve {

// One placed task occupying capacity somewhere.
struct RunningTask {
  std::size_t id = 0;  // daemon-scoped pending-task id
  double finish_s = 0.0;
  assign::Decision where = assign::Decision::kCancelled;
  std::size_t issuer = 0;
  std::size_t station = 0;  // issuer's serving cell at decision time
  double resource = 0.0;
  bool has_external = false;
  std::size_t owner = 0;  // external data owner (valid if has_external)
};

// Tasks a churn event tore out of the running set.
struct Interruptions {
  std::vector<std::size_t> lost_issuer;  // terminal
  std::vector<std::size_t> orphaned;     // re-admittable
};

class Reconciler {
 public:
  void start(const RunningTask& t) { running_.push_back(t); }

  // Classifies one churn event against the running set, removing the
  // interrupted tasks. Arrival and join events never interrupt.
  Interruptions observe(const Event& e);

  // Removes and returns (in start order) the ids of tasks with
  // finish_s <= now.
  std::vector<std::size_t> collect_completions(double now);

  const std::vector<RunningTask>& running() const { return running_; }

  // Occupancy of still-running work at `now`: per-device resource for
  // local placements, per-station resource for edge placements. The
  // daemon subtracts these from the universe capacities to price each
  // epoch against the residual system.
  void occupancy(double now, std::vector<double>& device_used,
                 std::vector<double>& station_used) const;

 private:
  std::vector<RunningTask> running_;
};

}  // namespace mecsched::serve
