// ServeDaemon: the online, sharded scheduling loop behind `mecsched serve`.
//
// Epoch lifecycle (docs/serve.md):
//
//   1. ingest  — close the next batching window (IngestCursor): arrivals
//      pass admission control into the waiting room (ReadmissionQueue,
//      shared with the resilient controller), churn events update the
//      Population and are reconciled against in-flight work (issuer gone
//      -> lost; owner gone / issuer migrated off-cell -> orphaned and
//      re-admitted with backoff);
//   2. triage  — pull the epoch batch in admission order; expire tasks
//      whose residual slack (net of the configured epoch budget) is gone,
//      drop tasks whose issuer left, park tasks whose external owner is
//      currently away;
//   3. shard   — cut the survivors into per-neighborhood HtaInstances
//      against the residual capacities (Sharder);
//   4. solve   — shards run in parallel on one long-lived thread pool,
//      each through the FallbackChain under the shared epoch deadline
//      (anytime degradation per shard), with exact-hit memoization and
//      per-shard warm-start hints from the InstanceCache;
//   5. apply   — outcomes are gathered and committed *in shard order*:
//      placements start running (capacity reserved until the analytic
//      finish time), cancellations go back to the waiting room.
//
// Determinism contract: the virtual clock, batching, triage order,
// sharding and the apply order are all independent of the worker count,
// so the same (universe, trace, options) yields a byte-identical
// DecisionLog at --jobs 1 and --jobs N. The epoch budget is the exception
// — a wall-clock deadline makes rung selection machine-dependent — so the
// CI determinism gate runs unbudgeted (same trade the sweep path makes).
//
// A cooperative stop token (Ctrl-C via ScopedSignalStop, or tests) ends
// the run at the next epoch boundary; open tasks are logged as abandoned
// so the decision log always accounts for every admitted task.
#pragma once

#include <cstddef>

#include "assign/lp_hta.h"
#include "common/deadline.h"
#include "control/fallback.h"
#include "control/readmission.h"
#include "mec/topology.h"
#include "serve/decision_log.h"
#include "serve/event.h"
#include "serve/ingest.h"
#include "serve/sharder.h"

namespace mecsched::serve {

struct ServeOptions {
  BatchingOptions batching{};     // epoch window + size cap
  AdmissionOptions admission{};   // waiting-room depth cap
  ShardingOptions sharding{};
  control::ReadmissionOptions readmission{};  // retry budget + backoff
  // Per-epoch decision budget (0 = unlimited). Shared by all shards of
  // the epoch as one absolute deadline, and charged against each task's
  // residual slack at triage — deterministically, as the *configured*
  // value, not measured wall time.
  double epoch_budget_ms = 0.0;
  std::size_t jobs = 0;            // shard-solve workers; 0 = default_jobs
  std::size_t cache_capacity = 128;
  bool warm_start = true;          // per-shard simplex warm hints
  assign::LpHtaOptions lp{};       // rung-0 configuration
};

struct ServeResult {
  std::size_t events = 0;        // trace events ingested
  std::size_t arrivals = 0;
  std::size_t admitted = 0;
  std::size_t rejected = 0;      // refused at admission
  std::size_t decisions = 0;     // tasks placed
  std::size_t completed = 0;
  std::size_t expired = 0;       // slack gone at triage
  std::size_t lost_issuer = 0;   // issuer left (waiting or mid-run)
  std::size_t exhausted = 0;     // retry budget consumed
  std::size_t orphaned = 0;      // in-flight work interrupted by churn
  std::size_t retries = 0;       // successful re-admissions
  std::size_t abandoned = 0;     // open at an early stop
  std::size_t epochs = 0;        // loop heartbeats (drain included)
  std::size_t decide_epochs = 0; // epochs that solved at least one shard
  std::size_t shard_solves = 0;  // shard problems solved (or cache-hit)
  std::size_t cache_hits = 0;    // exact-hit shard plans
  control::RungHistogram rungs;  // which rung served each shard solve
  double total_energy_j = 0.0;
  double makespan_s = 0.0;       // last analytic finish
  double virtual_now_s = 0.0;    // clock when the loop ended
  bool stopped_early = false;    // stop token fired
};

class ServeDaemon {
 public:
  explicit ServeDaemon(ServeOptions options = {});

  // Runs the trace to completion (or to `stop`). `log` may be nullptr.
  // The trace is validated against the universe topology.
  ServeResult run(const mec::Topology& universe, const Trace& trace,
                  DecisionLog* log = nullptr,
                  const CancellationToken& stop = {}) const;

 private:
  ServeOptions options_;
};

}  // namespace mecsched::serve
