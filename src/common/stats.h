// Streaming summary statistics and small helpers used by the metrics and
// benchmark layers.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace mecsched {

// Online accumulator (Welford) for mean/variance plus min/max/sum. Cheap to
// copy; merging two accumulators is supported so per-thread partials can be
// combined.
//
// Edge-case contract (tested in stats_test.cpp): with zero samples, mean,
// variance, stddev, min and max are all quiet NaN — "no data" is explicit,
// never a fabricated 0 or ±infinity. With one sample, variance and stddev
// are exactly 0 and mean/min/max are that sample. sum() of an empty
// summary is 0 (the additive identity is meaningful).
class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? nan_() : mean_; }
  double variance() const;  // population variance; NaN when empty
  double stddev() const;    // NaN when empty
  double min() const { return count_ == 0 ? nan_() : min_; }
  double max() const { return count_ == 0 ? nan_() : max_; }

 private:
  static double nan_() { return std::numeric_limits<double>::quiet_NaN(); }

  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Percentile over a copy of the data (linear interpolation between ranks).
// `q` is clamped to [0, 1]. Edge cases are part of the contract: empty
// input returns quiet NaN (no data, no answer); a single sample is every
// percentile of itself.
double percentile(std::vector<double> values, double q);

// True when |a - b| <= tol * max(1, |a|, |b|).
bool approx_equal(double a, double b, double tol = 1e-9);

}  // namespace mecsched
