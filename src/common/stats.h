// Streaming summary statistics and small helpers used by the metrics and
// benchmark layers.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace mecsched {

// Online accumulator (Welford) for mean/variance plus min/max/sum. Cheap to
// copy; merging two accumulators is supported so per-thread partials can be
// combined.
class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Percentile over a copy of the data (linear interpolation between ranks).
// `q` in [0, 1]; returns NaN on empty input.
double percentile(std::vector<double> values, double q);

// True when |a - b| <= tol * max(1, |a|, |b|).
bool approx_equal(double a, double b, double tol = 1e-9);

}  // namespace mecsched
