// Fixed-width console table used by the benchmark harness to print the
// paper's figure series ("rows the paper reports"). Columns auto-size to
// the widest cell; numeric cells are right-aligned.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mecsched {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Appends a row. Row length must match the header length.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` significant decimals.
  static std::string num(double v, int precision = 4);

  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace mecsched
