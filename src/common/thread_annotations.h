// Clang thread-safety annotations + the annotated mutex vocabulary.
//
// The project's headline contract — byte-identical decision logs and sweep
// metrics at any --jobs count — used to be guarded only dynamically (TSan
// jobs, replay diffs). This header moves the locking discipline into the
// type system: every mutex-guarded member in the tree is declared with
// MECSCHED_GUARDED_BY, every lock-holding helper with MECSCHED_REQUIRES,
// and a Clang build with -Werror=thread-safety (CI job `thread-safety`,
// locally -DMECSCHED_THREAD_SAFETY=ON) rejects any access that the
// analysis cannot prove race-free. Off Clang every macro expands to
// nothing and Mutex/MutexLock/CondVar behave exactly like std::mutex /
// std::lock_guard / std::condition_variable.
//
// Usage pattern (see docs/static-analysis.md, "Thread-safety annotations"):
//
//   class Cache {
//    public:
//     void insert(Key k, Value v) MECSCHED_EXCLUDES(mu_) {
//       const MutexLock lock(mu_);
//       entries_[k] = std::move(v);   // proven: mu_ is held
//     }
//    private:
//     std::size_t evict_locked() MECSCHED_REQUIRES(mu_);
//     mutable Mutex mu_;
//     std::map<Key, Value> entries_ MECSCHED_GUARDED_BY(mu_);
//   };
//
// Waivers: a function that must step outside the analysis (e.g. adopting
// a lock across an FFI boundary) carries MECSCHED_NO_THREAD_SAFETY_ANALYSIS
// with a justification comment; the project lint's `unannotated-mutex`
// rule keeps classes from growing unannotated guarded state off-Clang.
#pragma once

#include <condition_variable>
#include <mutex>

// Clang exposes the analysis attributes behind __has_attribute; GCC and
// MSVC define neither, so the macros vanish there and the wrappers cost
// exactly what the std primitives cost.
#if defined(__clang__) && defined(__has_attribute)
#define MECSCHED_TSA_HAS(x) __has_attribute(x)
#else
#define MECSCHED_TSA_HAS(x) 0
#endif

#if MECSCHED_TSA_HAS(capability)
#define MECSCHED_TSA(x) __attribute__((x))
#else
#define MECSCHED_TSA(x)
#endif

// A type usable as a capability ("mutex" names the capability kind in
// diagnostics). Applied to the Mutex wrapper below.
#define MECSCHED_CAPABILITY(x) MECSCHED_TSA(capability(x))

// RAII types that acquire in their constructor and release in their
// destructor (MutexLock).
#define MECSCHED_SCOPED_CAPABILITY MECSCHED_TSA(scoped_lockable)

// Data members: readable/writable only while the named capability is held.
#define MECSCHED_GUARDED_BY(x) MECSCHED_TSA(guarded_by(x))
// Pointer members: the *pointee* is guarded (the pointer itself is not).
#define MECSCHED_PT_GUARDED_BY(x) MECSCHED_TSA(pt_guarded_by(x))

// Functions: caller must hold the capability (exclusively / shared).
#define MECSCHED_REQUIRES(...) \
  MECSCHED_TSA(requires_capability(__VA_ARGS__))
#define MECSCHED_REQUIRES_SHARED(...) \
  MECSCHED_TSA(requires_shared_capability(__VA_ARGS__))

// Functions: acquire/release the capability (lock(), unlock(), RAII
// ctors/dtors). ACQUIRE/RELEASE with no argument refer to `this` — the
// pattern scoped lockers use.
#define MECSCHED_ACQUIRE(...) \
  MECSCHED_TSA(acquire_capability(__VA_ARGS__))
#define MECSCHED_ACQUIRE_SHARED(...) \
  MECSCHED_TSA(acquire_shared_capability(__VA_ARGS__))
#define MECSCHED_RELEASE(...) \
  MECSCHED_TSA(release_capability(__VA_ARGS__))
#define MECSCHED_TRY_ACQUIRE(...) \
  MECSCHED_TSA(try_acquire_capability(__VA_ARGS__))

// Functions: caller must NOT hold the capability (deadlock guard for
// public entry points of self-locking classes).
#define MECSCHED_EXCLUDES(...) MECSCHED_TSA(locks_excluded(__VA_ARGS__))

// Lock-ordering declarations, checked under -Wthread-safety-beta: a
// seeded inversion is a compile error in the thread-safety CI job (and
// regression-tested by tests/analysis/).
#define MECSCHED_ACQUIRED_BEFORE(...) \
  MECSCHED_TSA(acquired_before(__VA_ARGS__))
#define MECSCHED_ACQUIRED_AFTER(...) \
  MECSCHED_TSA(acquired_after(__VA_ARGS__))

// Functions returning a reference to a capability (rare; accessors that
// expose a member mutex to a sibling class).
#define MECSCHED_RETURN_CAPABILITY(x) MECSCHED_TSA(lock_returned(x))

// Escape hatch. Every use must carry a justification comment — the
// documented waiver policy (docs/static-analysis.md); there is no other
// sanctioned way to silence the analysis.
#define MECSCHED_NO_THREAD_SAFETY_ANALYSIS \
  MECSCHED_TSA(no_thread_safety_analysis)

namespace mecsched {

// std::mutex with the capability attribute the analysis needs. The tree
// uses this wrapper for every lock (the project lint's `unannotated-mutex`
// rule assumes it); std::mutex itself carries no annotations in either
// standard library, so locks taken through it are invisible to the
// analysis.
class MECSCHED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MECSCHED_ACQUIRE() { mu_.lock(); }
  void unlock() MECSCHED_RELEASE() { mu_.unlock(); }
  bool try_lock() MECSCHED_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // The underlying handle, for CondVar only: the analysis cannot track
  // operations made through it.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII lock — the project's std::lock_guard. Scoped-capability annotated,
// so the analysis knows the capability is held exactly for the lifetime
// of the lock object.
class MECSCHED_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MECSCHED_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~MutexLock() MECSCHED_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to the annotated Mutex. wait() requires the
// caller to hold `mu` (enforced on Clang); internally it adopts the native
// handle for the duration of the std wait, which releases and reacquires —
// the capability is held again on return, so from the caller's point of
// view the requirement is continuous, matching the analysis model.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) MECSCHED_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's MutexLock
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mecsched
