// Unit conventions used throughout mecsched.
//
// All physical quantities are carried as `double` in SI base units:
//   data sizes      -> bytes
//   time            -> seconds
//   energy          -> joules
//   CPU frequency   -> hertz (cycles per second)
//   link rate       -> bits per second
//   power           -> watts
//
// This header centralises the conversion constants so that no magic
// multipliers appear at call sites. The paper quotes sizes in "kb" (read as
// kilobytes, decimal), rates in Mbps and frequencies in GHz.
#pragma once

namespace mecsched::units {

// --- data size (bytes) ---
inline constexpr double kKiloByte = 1e3;
inline constexpr double kMegaByte = 1e6;
inline constexpr double kGigaByte = 1e9;

constexpr double kilobytes(double kb) { return kb * kKiloByte; }
constexpr double megabytes(double mb) { return mb * kMegaByte; }

// --- link rate (bits per second) ---
inline constexpr double kKbps = 1e3;
inline constexpr double kMbps = 1e6;
inline constexpr double kGbps = 1e9;

constexpr double mbps(double v) { return v * kMbps; }
constexpr double gbps(double v) { return v * kGbps; }

// --- frequency (hertz) ---
inline constexpr double kMHz = 1e6;
inline constexpr double kGHz = 1e9;

constexpr double gigahertz(double v) { return v * kGHz; }

// --- time (seconds) ---
inline constexpr double kMilliSecond = 1e-3;

constexpr double milliseconds(double v) { return v * kMilliSecond; }

// Bits in a byte; transmission times divide a byte count by a bit rate.
inline constexpr double kBitsPerByte = 8.0;

// Time (s) to push `bytes` through a link of `bits_per_second`.
constexpr double transfer_seconds(double bytes, double bits_per_second) {
  return bytes * kBitsPerByte / bits_per_second;
}

}  // namespace mecsched::units
