// Real-time solve budgets: a monotonic-clock `Deadline`, a cooperative
// `CancellationToken` threaded through every solver loop, and the
// process-wide default budget installed by the CLI's global `--budget-ms`.
//
// The contract (docs/robustness.md) is *anytime degradation*: a solver that
// observes an expired token stops at the next iteration boundary and returns
// the best answer it holds (SolveStatus::kDeadline), it never hangs and never
// throws for an expired budget. `expired()` costs one relaxed atomic load
// plus, when a deadline is set, one steady_clock read — cheap enough for a
// per-pivot check.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

namespace mecsched {

// A point on the monotonic clock. Default-constructed deadlines are
// unlimited: `expired()` is always false and `remaining_s()` is +infinity.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  static Deadline unlimited() { return Deadline{}; }
  // Throws ModelError for negative or non-finite budgets. A zero budget is
  // legal and is already expired: callers get an immediate kDeadline, which
  // is exactly the degenerate case the fallback floor exists for.
  static Deadline after_s(double seconds);
  static Deadline after_ms(double ms) { return after_s(ms * 1e-3); }
  static Deadline at(Clock::time_point when);

  bool is_unlimited() const { return !bounded_; }
  bool expired() const { return bounded_ && Clock::now() >= at_; }

  // Seconds until expiry, clamped at zero; +infinity when unlimited.
  double remaining_s() const;
  double remaining_ms() const;

  // A deadline `fraction` of the remaining budget from now — used to split
  // a decision budget across sequential stages. Never later than the parent
  // (so a child cannot outlive it); unlimited parents yield unlimited
  // children. `fraction` must lie in (0, 1].
  Deadline child(double fraction) const;

  // The sooner of the two (an unlimited deadline never wins).
  static Deadline earlier(const Deadline& a, const Deadline& b);

 private:
  bool bounded_ = false;
  Clock::time_point at_{};
};

// Cooperative cancellation: a nullable shared flag (set by a
// CancellationSource, e.g. on operator Ctrl-C or epoch rollover) combined
// with a Deadline. Tokens are cheap value types; copies observe the same
// flag. A default-constructed token never expires.
class CancellationToken {
 public:
  CancellationToken() = default;
  explicit CancellationToken(Deadline deadline) : deadline_(deadline) {}

  bool cancel_requested() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }
  bool expired() const { return cancel_requested() || deadline_.expired(); }
  bool unlimited() const { return !flag_ && deadline_.is_unlimited(); }

  const Deadline& deadline() const { return deadline_; }

  // The same flag, with the deadline tightened to the sooner of the two.
  CancellationToken with_deadline(Deadline deadline) const;

 private:
  friend class CancellationSource;
  std::shared_ptr<const std::atomic<bool>> flag_;
  Deadline deadline_;
};

// Owns the flag behind a family of tokens.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }

  CancellationToken token(Deadline deadline = Deadline::unlimited()) const;

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// Process-wide default per-solve budget, installed by the CLI's global
// `--budget-ms` for the duration of one invocation (same pattern as
// exec::ThreadPool::set_default_jobs). Zero means "no default budget".
// Throws ModelError for negative or non-finite values.
void set_default_solve_budget_ms(double ms);
double default_solve_budget_ms();

// The token a solver entry point should actually honour: `token` as given
// when it already carries a deadline, otherwise tightened with the process
// default budget (if one is installed; the cancel flag is preserved either
// way). Solvers call this once per solve, at entry — never per iteration.
CancellationToken effective_solve_token(const CancellationToken& token);

}  // namespace mecsched
