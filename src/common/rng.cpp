#include "common/rng.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace mecsched {

double Rng::uniform(double lo, double hi) {
  MECSCHED_REQUIRE(lo <= hi, "uniform bounds out of order");
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MECSCHED_REQUIRE(lo <= hi, "uniform_int bounds out of order");
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  MECSCHED_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli p outside [0,1]");
  std::bernoulli_distribution d(p);
  return d(engine_);
}

double Rng::exponential(double mean) {
  MECSCHED_REQUIRE(mean > 0.0, "exponential mean must be positive");
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

double Rng::truncated_normal(double mean, double stddev, double lo) {
  std::normal_distribution<double> d(mean, stddev);
  // Resampling keeps the conditional distribution exact; the callers use
  // truncation points well inside the bulk so this terminates quickly.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const double x = d(engine_);
    if (x >= lo) return x;
  }
  return lo;  // pathological parameters: fall back to the bound
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  MECSCHED_REQUIRE(!weights.empty(), "weighted_index needs weights");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  MECSCHED_REQUIRE(total > 0.0, "weighted_index needs a positive total");
  double x = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  MECSCHED_REQUIRE(k <= n, "cannot sample more elements than exist");
  // Floyd's algorithm: O(k) expected insertions.
  std::vector<std::size_t> out;
  out.reserve(k);
  std::vector<bool> chosen(n, false);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t =
        static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(j)));
    if (chosen[t]) {
      chosen[j] = true;
      out.push_back(j);
    } else {
      chosen[t] = true;
      out.push_back(t);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {
// SplitMix64 finalizer; decorrelates child seeds from (seed, stream).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

Rng Rng::fork(std::uint64_t stream) const {
  return Rng(splitmix64(seed_ ^ splitmix64(stream + 1)));
}

std::uint64_t Rng::substream_seed(std::uint64_t key) const {
  // Salted differently from fork() so substream(k) and fork(k) are
  // themselves decorrelated; two splitmix rounds decorrelate adjacent keys.
  return splitmix64(splitmix64(seed_ + 0x6a09e667f3bcc909ULL) ^
                    splitmix64(key ^ 0xbb67ae8584caa73bULL));
}

Rng Rng::substream(std::uint64_t key) const {
  return Rng(substream_seed(key));
}

}  // namespace mecsched
