// Deterministic random-number generation for workloads and tests.
//
// Every stochastic component in mecsched draws from an explicitly seeded
// `Rng`, so a scenario is fully reproducible from (seed, parameters). The
// class wraps std::mt19937_64 with the handful of distributions the
// workload generator needs; fresh independent streams can be forked so
// that adding a new consumer does not perturb existing draws.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace mecsched {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Bernoulli draw with probability `p` of true.
  bool bernoulli(double p);

  // Exponentially distributed double with the given mean (> 0).
  double exponential(double mean);

  // Normal draw, truncated below at `lo` (resampled).
  double truncated_normal(double mean, double stddev, double lo);

  // Picks an index in [0, weights.size()) with probability proportional to
  // weights[i]. Weights must be non-negative and not all zero.
  std::size_t weighted_index(const std::vector<double>& weights);

  // A random subset of {0, ..., n-1} of exactly `k` elements (k <= n),
  // uniformly over all such subsets, in increasing order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  // In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  // Forks an independent stream; the child's sequence is decorrelated from
  // the parent's by mixing the fork index into the seed.
  Rng fork(std::uint64_t stream) const;

  // Derives the substream keyed by `key` — the grid-sharding primitive of
  // the parallel sweep runner. The child depends only on (seed, key),
  // never on this engine's draw position or on how many other substreams
  // were derived, so sweep cell `key` generates identical data whether the
  // grid runs on 1 worker or N (regression-tested in rng_test.cpp).
  Rng substream(std::uint64_t key) const;

  // The seed substream(key) is built from; callers that persist or log a
  // cell's seed use this.
  std::uint64_t substream_seed(std::uint64_t key) const;

  std::mt19937_64& engine() { return engine_; }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace mecsched
