#include "common/csv.h"

#include "common/error.h"

namespace mecsched {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  MECSCHED_REQUIRE(out_.good(), "cannot open CSV file: " + path);
  write_row(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  MECSCHED_REQUIRE(cells.size() == columns_, "CSV row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace mecsched
