// Error-handling primitives for mecsched.
//
// The library reports programmer errors (precondition violations) via
// MECSCHED_REQUIRE which throws std::invalid_argument, and numeric/solver
// failures via dedicated exception types. Benchmarks and examples are free
// to let these propagate; library code never calls std::abort.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mecsched {

// Thrown when a solver cannot make progress (singular system, unbounded LP
// iterations exhausted, ...). Distinct from an *infeasible* model, which is
// reported through solver status codes, not exceptions.
class SolverError : public std::runtime_error {
 public:
  explicit SolverError(const std::string& what) : std::runtime_error(what) {}
};

// Thrown when input data fails validation (negative sizes, mismatched
// dimensions, ...).
class ModelError : public std::invalid_argument {
 public:
  explicit ModelError(const std::string& what) : std::invalid_argument(what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ModelError(os.str());
}
}  // namespace detail

}  // namespace mecsched

// Precondition check that survives NDEBUG builds: invalid inputs must be
// rejected in release binaries too (these guard public API boundaries).
#define MECSCHED_REQUIRE(expr, msg)                                       \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::mecsched::detail::require_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                                     \
  } while (false)
