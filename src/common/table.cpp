#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace mecsched {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MECSCHED_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  MECSCHED_REQUIRE(cells.size() == headers_.size(),
                   "row width differs from header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_sep = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::setw(static_cast<int>(widths[c])) << row[c] << ' ';
    }
    os << "|\n";
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  t.print(os);
  return os;
}

}  // namespace mecsched
