// Minimal CSV writer. Benchmarks optionally dump their series as CSV (next
// to the console table) so figures can be re-plotted externally.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace mecsched {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Throws ModelError if
  // the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void write_row(const std::vector<std::string>& cells);

  // Escapes a single field per RFC 4180 (quotes fields containing comma,
  // quote or newline).
  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace mecsched
