#include "common/chaos_hook.h"

#include <atomic>

namespace mecsched::chaos {

namespace {

std::atomic<Hook*>& installed() {
  static std::atomic<Hook*> hook{nullptr};
  return hook;
}

}  // namespace

void arm(Hook* hook) { installed().store(hook, std::memory_order_release); }

bool armed() {
  return installed().load(std::memory_order_relaxed) != nullptr;
}

Action probe(const char* engine, std::size_t rows, std::size_t cols,
             std::size_t iteration) {
  Hook* hook = installed().load(std::memory_order_acquire);
  if (hook == nullptr) return Action::kNone;
  return hook->probe(engine, rows, cols, iteration);
}

}  // namespace mecsched::chaos
