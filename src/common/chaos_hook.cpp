#include "common/chaos_hook.h"

#include <atomic>
#include <cstdint>

namespace mecsched::chaos {

namespace {

std::atomic<Hook*>& installed() {
  static std::atomic<Hook*> hook{nullptr};
  return hook;
}

thread_local std::uint64_t local_injections_count = 0;

}  // namespace

void arm(Hook* hook) { installed().store(hook, std::memory_order_release); }

bool armed() {
  return installed().load(std::memory_order_relaxed) != nullptr;
}

Action probe(const char* engine, std::size_t rows, std::size_t cols,
             std::size_t iteration) {
  Hook* hook = installed().load(std::memory_order_acquire);
  if (hook == nullptr) return Action::kNone;
  const Action action = hook->probe(engine, rows, cols, iteration);
  if (action != Action::kNone) ++local_injections_count;
  return action;
}

std::uint64_t local_injections() { return local_injections_count; }

}  // namespace mecsched::chaos
