#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace mecsched {

void Summary::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::variance() const {
  if (count_ == 0) return nan_();
  return m2_ / static_cast<double>(count_);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

bool approx_equal(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace mecsched
