// Solver-level chaos injection point. The solvers (lp/, ilp/) probe this
// hook at iteration boundaries; the chaos driver (sim/solver_chaos.h)
// implements it and arms it for the duration of a drill. The indirection
// keeps the dependency arrow pointing the right way: lp/ cannot link sim/,
// so the hook lives here and the driver installs itself at runtime.
//
// The disarmed fast path is a single relaxed atomic load — cheap enough to
// sit inside the simplex pivot loop.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mecsched::chaos {

// What a probe tells the solver to do at this iteration. Stall and cancel
// both surface as SolveStatus::kDeadline (a stalled solver is indistinguish-
// able from one whose budget ran out); NaN poisoning corrupts the next
// factorization input and must be caught by the solver's non-finite guards;
// kError makes the solver throw a SolverError on the spot.
enum class Action { kNone = 0, kStall, kPoisonNan, kCancel, kError };

class Hook {
 public:
  virtual ~Hook() = default;
  // Must be thread-safe and a pure function of its arguments (plus the
  // driver's seed): byte-identical fault traces across thread schedules
  // depend on it.
  virtual Action probe(const char* engine, std::size_t rows, std::size_t cols,
                       std::size_t iteration) = 0;
};

// Installs `hook` process-wide (not owned; nullptr disarms). The caller
// must keep the hook alive until it disarms — sim::ChaosArmed does this
// with RAII.
void arm(Hook* hook);

// True when a hook is installed.
bool armed();

// Probes the installed hook; Action::kNone when disarmed.
Action probe(const char* engine, std::size_t rows, std::size_t cols,
             std::size_t iteration);

// Count of non-kNone probe results on the *calling thread* since process
// start. A solve runs on one thread, so the flight recorder attributes
// injected faults to a solve by taking the before/after delta — the
// global chaos.injected.* counters are racy per-solve under parallel
// cluster workers.
std::uint64_t local_injections();

}  // namespace mecsched::chaos
