#include "common/deadline.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace mecsched {

namespace {

std::atomic<double>& budget_override() {
  static std::atomic<double> ms{0.0};
  return ms;
}

}  // namespace

Deadline Deadline::after_s(double seconds) {
  MECSCHED_REQUIRE(std::isfinite(seconds) && seconds >= 0.0,
                   "deadline budget must be a finite non-negative number of "
                   "seconds");
  Deadline d;
  d.bounded_ = true;
  d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(seconds));
  return d;
}

Deadline Deadline::at(Clock::time_point when) {
  Deadline d;
  d.bounded_ = true;
  d.at_ = when;
  return d;
}

double Deadline::remaining_s() const {
  if (!bounded_) return std::numeric_limits<double>::infinity();
  const double s = std::chrono::duration<double>(at_ - Clock::now()).count();
  return s > 0.0 ? s : 0.0;
}

double Deadline::remaining_ms() const {
  const double s = remaining_s();
  return std::isfinite(s) ? s * 1e3 : s;
}

Deadline Deadline::child(double fraction) const {
  MECSCHED_REQUIRE(std::isfinite(fraction) && fraction > 0.0 &&
                       fraction <= 1.0,
                   "child-budget fraction must lie in (0, 1]");
  if (!bounded_) return Deadline{};
  return earlier(*this, after_s(remaining_s() * fraction));
}

Deadline Deadline::earlier(const Deadline& a, const Deadline& b) {
  if (!a.bounded_) return b;
  if (!b.bounded_) return a;
  return a.at_ <= b.at_ ? a : b;
}

CancellationToken CancellationToken::with_deadline(Deadline deadline) const {
  CancellationToken t = *this;
  t.deadline_ = Deadline::earlier(deadline_, deadline);
  return t;
}

CancellationToken CancellationSource::token(Deadline deadline) const {
  CancellationToken t;
  t.flag_ = flag_;
  t.deadline_ = deadline;
  return t;
}

void set_default_solve_budget_ms(double ms) {
  MECSCHED_REQUIRE(std::isfinite(ms) && ms >= 0.0,
                   "--budget-ms must be a finite non-negative number");
  budget_override().store(ms, std::memory_order_relaxed);
}

double default_solve_budget_ms() {
  return budget_override().load(std::memory_order_relaxed);
}

CancellationToken effective_solve_token(const CancellationToken& token) {
  if (!token.deadline().is_unlimited()) return token;
  const double ms = default_solve_budget_ms();
  if (ms <= 0.0) return token;
  return token.with_deadline(Deadline::after_ms(ms));
}

}  // namespace mecsched
