// 0/1 knapsack solvers.
//
// Theorem 1 of the paper reduces the HTA special case (max_i = 0,
// T_ij = ∞) to 0/1 knapsack: item (i,j) has value E_ij3 - E_ij2 and weight
// C_ij, capacity max_S. These solvers make that special case exactly
// solvable, which the test suite uses to validate LP-HTA end-to-end.
#pragma once

#include <cstdint>
#include <vector>

namespace mecsched::ilp {

struct KnapsackResult {
  double value = 0.0;
  std::vector<bool> taken;
};

// Exact DP over integer weights: O(n * capacity) time and memory.
// Values may be arbitrary non-negative doubles.
KnapsackResult knapsack_dp(const std::vector<double>& values,
                           const std::vector<std::int64_t>& weights,
                           std::int64_t capacity);

// Exact branch-and-bound with the fractional (Dantzig) upper bound; handles
// real-valued weights. Intended for n up to a few hundred.
KnapsackResult knapsack_branch_bound(const std::vector<double>& values,
                                     const std::vector<double>& weights,
                                     double capacity);

// Exhaustive 2^n reference (n <= 25); test oracle only.
KnapsackResult knapsack_brute_force(const std::vector<double>& values,
                                    const std::vector<double>& weights,
                                    double capacity);

}  // namespace mecsched::ilp
