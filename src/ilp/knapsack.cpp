#include "ilp/knapsack.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace mecsched::ilp {
namespace {

void validate(std::size_t n_values, std::size_t n_weights) {
  MECSCHED_REQUIRE(n_values == n_weights,
                   "values/weights must have equal length");
}

}  // namespace

KnapsackResult knapsack_dp(const std::vector<double>& values,
                           const std::vector<std::int64_t>& weights,
                           std::int64_t capacity) {
  validate(values.size(), weights.size());
  MECSCHED_REQUIRE(capacity >= 0, "capacity must be non-negative");
  for (std::size_t i = 0; i < weights.size(); ++i) {
    MECSCHED_REQUIRE(weights[i] >= 0, "weights must be non-negative");
    MECSCHED_REQUIRE(values[i] >= 0.0, "values must be non-negative");
  }

  const std::size_t n = values.size();
  const auto cap = static_cast<std::size_t>(capacity);
  // best[i][w] = max value using items [0, i) with weight budget w.
  // Kept as full 2-D table to allow solution reconstruction.
  std::vector<std::vector<double>> best(n + 1,
                                        std::vector<double>(cap + 1, 0.0));
  for (std::size_t i = 1; i <= n; ++i) {
    const auto w_i = static_cast<std::size_t>(weights[i - 1]);
    for (std::size_t w = 0; w <= cap; ++w) {
      best[i][w] = best[i - 1][w];
      if (w_i <= w) {
        best[i][w] = std::max(best[i][w], best[i - 1][w - w_i] + values[i - 1]);
      }
    }
  }

  KnapsackResult out;
  out.value = best[n][cap];
  out.taken.assign(n, false);
  std::size_t w = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (best[i + 1][w] != best[i][w]) {
      out.taken[i] = true;
      w -= static_cast<std::size_t>(weights[i]);
    }
  }
  return out;
}

namespace {

struct BnbItem {
  double value;
  double weight;
  std::size_t original_index;
};

struct BnbState {
  const std::vector<BnbItem>& items;
  double capacity;
  double best_value = 0.0;
  std::vector<bool> best_taken;
  std::vector<bool> current;

  // Dantzig bound: fill greedily by density, last item fractionally.
  double upper_bound(std::size_t k, double value, double remaining) const {
    double bound = value;
    for (std::size_t i = k; i < items.size(); ++i) {
      if (items[i].weight <= remaining) {
        remaining -= items[i].weight;
        bound += items[i].value;
      } else {
        if (items[i].weight > 0.0) {
          bound += items[i].value * remaining / items[i].weight;
        }
        break;
      }
    }
    return bound;
  }

  void search(std::size_t k, double value, double remaining) {
    if (value > best_value) {
      best_value = value;
      best_taken = current;
    }
    if (k == items.size()) return;
    if (upper_bound(k, value, remaining) <= best_value + 1e-12) return;

    if (items[k].weight <= remaining) {  // take branch first (greedy order)
      current[k] = true;
      search(k + 1, value + items[k].value, remaining - items[k].weight);
      current[k] = false;
    }
    search(k + 1, value, remaining);
  }
};

}  // namespace

KnapsackResult knapsack_branch_bound(const std::vector<double>& values,
                                     const std::vector<double>& weights,
                                     double capacity) {
  validate(values.size(), weights.size());
  MECSCHED_REQUIRE(capacity >= 0.0, "capacity must be non-negative");
  const std::size_t n = values.size();

  std::vector<BnbItem> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    MECSCHED_REQUIRE(weights[i] >= 0.0, "weights must be non-negative");
    MECSCHED_REQUIRE(values[i] >= 0.0, "values must be non-negative");
    items[i] = {values[i], weights[i], i};
  }
  std::sort(items.begin(), items.end(), [](const BnbItem& a, const BnbItem& b) {
    const double da = a.weight > 0 ? a.value / a.weight : 1e300;
    const double db = b.weight > 0 ? b.value / b.weight : 1e300;
    return da > db;
  });

  BnbState state{items, capacity, 0.0, {}, std::vector<bool>(n, false)};
  state.best_taken.assign(n, false);
  state.search(0, 0.0, capacity);

  KnapsackResult out;
  out.value = state.best_value;
  out.taken.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (state.best_taken[i]) out.taken[items[i].original_index] = true;
  }
  return out;
}

KnapsackResult knapsack_brute_force(const std::vector<double>& values,
                                    const std::vector<double>& weights,
                                    double capacity) {
  validate(values.size(), weights.size());
  const std::size_t n = values.size();
  MECSCHED_REQUIRE(n <= 25, "brute force limited to 25 items");

  KnapsackResult out;
  out.taken.assign(n, false);
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    double v = 0.0, w = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        v += values[i];
        w += weights[i];
      }
    }
    if (w <= capacity && v > out.value) {
      out.value = v;
      for (std::size_t i = 0; i < n; ++i) out.taken[i] = (mask >> i) & 1u;
    }
  }
  return out;
}

}  // namespace mecsched::ilp
