// LP-based branch-and-bound for mixed 0/1 integer programs.
//
// Solves a general-form lp::Problem in which a designated subset of
// variables must take integer values. Bounds come from the simplex solver;
// branching is most-fractional-first with depth-first traversal, and the
// incumbent prunes by objective. Intended for the *small* exact solves the
// evaluation needs (ground-truth optimum of the HTA instance, empirical
// ratio-bound measurements) — not a production MIP engine, and documented
// as such.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/deadline.h"

#include "lp/problem.h"
#include "lp/simplex.h"
#include "lp/solution.h"

namespace mecsched::ilp {

// kDeadline: the solve budget expired mid-search. The incumbent found so
// far (if any) is in `x`/`objective` and `best_bound` reports the proven
// lower bound at the stop — the anytime half of the budget contract.
enum class BnbStatus { kOptimal, kInfeasible, kNodeLimit, kDeadline };

struct BnbResult {
  BnbStatus status = BnbStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
  std::size_t nodes_explored = 0;
  // Proven lower bound on the optimum (minimization) at termination:
  // min over the incumbent and every open node's parent LP bound. Equals
  // `objective` when status == kOptimal; -infinity when the search stopped
  // before the root relaxation bounded anything.
  double best_bound = -std::numeric_limits<double>::infinity();

  // Optimality gap of the incumbent: zero at optimality, +infinity when
  // there is no incumbent or no finite bound.
  double bound_gap() const {
    if (x.empty() || !std::isfinite(best_bound)) {
      return std::numeric_limits<double>::infinity();
    }
    return std::max(objective - best_bound, 0.0);
  }
};

struct BnbOptions {
  std::size_t max_nodes = 200'000;
  double integrality_tolerance = 1e-6;
  // Prune nodes whose LP bound is within this of the incumbent.
  double objective_tolerance = 1e-9;
  // Cooperative budget, checked at every node expansion and threaded into
  // the node LP relaxations. On expiry the search stops with kDeadline and
  // the incumbent/bound pair above. A token without its own deadline picks
  // up the process default budget (--budget-ms).
  CancellationToken cancel{};
};

class BranchAndBound {
 public:
  explicit BranchAndBound(BnbOptions options = {}) : options_(options) {}

  // `integer_vars` lists the variable indices that must be integral.
  BnbResult solve(const lp::Problem& problem,
                  const std::vector<std::size_t>& integer_vars) const;

 private:
  BnbOptions options_;
};

}  // namespace mecsched::ilp
