// LP-based branch-and-bound for mixed 0/1 integer programs.
//
// Solves a general-form lp::Problem in which a designated subset of
// variables must take integer values. Bounds come from the simplex solver;
// branching is most-fractional-first with depth-first traversal, and the
// incumbent prunes by objective. Intended for the *small* exact solves the
// evaluation needs (ground-truth optimum of the HTA instance, empirical
// ratio-bound measurements) — not a production MIP engine, and documented
// as such.
#pragma once

#include <vector>

#include "lp/problem.h"
#include "lp/simplex.h"
#include "lp/solution.h"

namespace mecsched::ilp {

enum class BnbStatus { kOptimal, kInfeasible, kNodeLimit };

struct BnbResult {
  BnbStatus status = BnbStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
  std::size_t nodes_explored = 0;
};

struct BnbOptions {
  std::size_t max_nodes = 200'000;
  double integrality_tolerance = 1e-6;
  // Prune nodes whose LP bound is within this of the incumbent.
  double objective_tolerance = 1e-9;
};

class BranchAndBound {
 public:
  explicit BranchAndBound(BnbOptions options = {}) : options_(options) {}

  // `integer_vars` lists the variable indices that must be integral.
  BnbResult solve(const lp::Problem& problem,
                  const std::vector<std::size_t>& integer_vars) const;

 private:
  BnbOptions options_;
};

}  // namespace mecsched::ilp
