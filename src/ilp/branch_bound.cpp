#include "ilp/branch_bound.h"

#include <cmath>
#include <limits>

#include "common/chaos_hook.h"
#include "common/error.h"
#include "obs/registry.h"

namespace mecsched::ilp {
namespace {

// A node is the root problem plus tightened bounds on the integer vars,
// carrying its parent relaxation's objective as a proven lower bound on
// every completion below it (-infinity for the root).
struct Node {
  std::vector<double> lo;
  std::vector<double> hi;
  double bound = -std::numeric_limits<double>::infinity();
};

// Rebuilds a Problem identical to `base` but with the node's bounds.
lp::Problem with_bounds(const lp::Problem& base, const Node& node) {
  lp::Problem p;
  for (std::size_t v = 0; v < base.num_variables(); ++v) {
    p.add_variable(base.cost(v), node.lo[v], node.hi[v],
                   base.variable_name(v));
  }
  for (std::size_t r = 0; r < base.num_constraints(); ++r) {
    const lp::Constraint& c = base.constraint(r);
    p.add_constraint(c.terms, c.relation, c.rhs, c.name);
  }
  return p;
}

}  // namespace

BnbResult BranchAndBound::solve(
    const lp::Problem& problem,
    const std::vector<std::size_t>& integer_vars) const {
  for (std::size_t v : integer_vars) {
    MECSCHED_REQUIRE(v < problem.num_variables(),
                     "integer variable index out of range");
    MECSCHED_REQUIRE(std::isfinite(problem.upper(v)),
                     "integer variables must be bounded");
  }

  const CancellationToken token = effective_solve_token(options_.cancel);
  lp::SimplexOptions lp_options;
  lp_options.cancel = token;  // node relaxations share the search budget
  const lp::SimplexSolver solver(lp_options);
  BnbResult best;
  double incumbent = std::numeric_limits<double>::infinity();

  Node root;
  root.lo.resize(problem.num_variables());
  root.hi.resize(problem.num_variables());
  for (std::size_t v = 0; v < problem.num_variables(); ++v) {
    root.lo[v] = problem.lower(v);
    root.hi[v] = problem.upper(v);
  }

  // DFS stack; iterable so an early stop can report the proven bound over
  // the unexplored frontier.
  std::vector<Node> open;
  open.push_back(std::move(root));

  // Stops with the incumbent found so far; the proven lower bound is the
  // min over the incumbent and every open node's inherited bound.
  const auto stop_early = [&](BnbStatus status) {
    best.status = status;
    double bound = incumbent;
    for (const Node& nd : open) bound = std::min(bound, nd.bound);
    best.best_bound = bound;
    if (status == BnbStatus::kDeadline) {
      obs::Registry& reg = obs::Registry::global();
      reg.counter("solve.deadline.bnb").add();
      if (options_.cancel.cancel_requested()) {
        reg.counter("solve.cancelled").add();
      }
      reg.gauge("ilp.bnb.last_gap").set(best.bound_gap());
    }
    return best;
  };

  while (!open.empty()) {
    if (token.expired()) return stop_early(BnbStatus::kDeadline);
    if (chaos::armed()) {
      switch (chaos::probe("bnb", problem.num_constraints(),
                           problem.num_variables(), best.nodes_explored)) {
        case chaos::Action::kNone:
          break;
        case chaos::Action::kStall:
        case chaos::Action::kCancel:
          return stop_early(BnbStatus::kDeadline);
        case chaos::Action::kPoisonNan:
        case chaos::Action::kError:
          throw SolverError("branch-and-bound: injected solver fault");
      }
    }
    if (best.nodes_explored >= options_.max_nodes) {
      // Any incumbent found so far is kept in `best`, but optimality is
      // unproven.
      return stop_early(BnbStatus::kNodeLimit);
    }
    const Node node = open.back();
    open.pop_back();
    ++best.nodes_explored;

    // Bound infeasibility can be introduced by branching (lo > hi).
    bool bounds_ok = true;
    for (std::size_t v = 0; v < node.lo.size(); ++v) {
      if (node.lo[v] > node.hi[v]) {
        bounds_ok = false;
        break;
      }
    }
    if (!bounds_ok) continue;

    const lp::Problem sub = with_bounds(problem, node);
    const lp::Solution relax = solver.solve(sub);
    if (relax.status == lp::SolveStatus::kInfeasible) continue;
    if (relax.status == lp::SolveStatus::kUnbounded) {
      // An unbounded relaxation of a node would make the MIP unbounded;
      // our use cases are always bounded, so treat it as a modelling bug.
      throw SolverError("branch-and-bound: unbounded LP relaxation");
    }
    if (relax.status == lp::SolveStatus::kDeadline) {
      // The budget ran out inside the node LP. The node is unexplored:
      // put it back so its bound counts toward the reported gap.
      open.push_back(node);
      return stop_early(BnbStatus::kDeadline);
    }
    if (relax.status != lp::SolveStatus::kOptimal) continue;
    if (relax.objective >= incumbent - options_.objective_tolerance) continue;

    // Branch on the most fractional integer variable (closest to 0.5).
    std::size_t branch_var = problem.num_variables();
    double best_dist = options_.integrality_tolerance;
    for (std::size_t v : integer_vars) {
      const double frac = relax.x[v] - std::floor(relax.x[v]);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist > best_dist) {
        best_dist = dist;
        branch_var = v;
      }
    }

    if (branch_var == problem.num_variables()) {
      // Integral: new incumbent (strict improvement guaranteed by bound
      // check above).
      incumbent = relax.objective;
      best.objective = relax.objective;
      best.x = relax.x;
      // Snap near-integral values exactly.
      for (std::size_t v : integer_vars) best.x[v] = std::round(best.x[v]);
      best.status = BnbStatus::kOptimal;
      continue;
    }

    const double xval = relax.x[branch_var];
    Node down = node;
    down.hi[branch_var] = std::floor(xval);
    down.bound = relax.objective;
    Node up = node;
    up.lo[branch_var] = std::ceil(xval);
    up.bound = relax.objective;
    // DFS, exploring the side nearer the fractional value first (pushed
    // last so it pops first).
    if (xval - std::floor(xval) > 0.5) {
      open.push_back(std::move(down));
      open.push_back(std::move(up));
    } else {
      open.push_back(std::move(up));
      open.push_back(std::move(down));
    }
  }

  if (!std::isfinite(incumbent)) {
    best.status = BnbStatus::kInfeasible;
  } else {
    best.best_bound = best.objective;  // search exhausted: bound is tight
  }
  return best;
}

}  // namespace mecsched::ilp
