#include "ilp/branch_bound.h"

#include <cmath>
#include <limits>
#include <stack>

#include "common/error.h"

namespace mecsched::ilp {
namespace {

// A node is the root problem plus tightened bounds on the integer vars.
struct Node {
  std::vector<double> lo;
  std::vector<double> hi;
};

// Rebuilds a Problem identical to `base` but with the node's bounds.
lp::Problem with_bounds(const lp::Problem& base, const Node& node) {
  lp::Problem p;
  for (std::size_t v = 0; v < base.num_variables(); ++v) {
    p.add_variable(base.cost(v), node.lo[v], node.hi[v],
                   base.variable_name(v));
  }
  for (std::size_t r = 0; r < base.num_constraints(); ++r) {
    const lp::Constraint& c = base.constraint(r);
    p.add_constraint(c.terms, c.relation, c.rhs, c.name);
  }
  return p;
}

}  // namespace

BnbResult BranchAndBound::solve(
    const lp::Problem& problem,
    const std::vector<std::size_t>& integer_vars) const {
  for (std::size_t v : integer_vars) {
    MECSCHED_REQUIRE(v < problem.num_variables(),
                     "integer variable index out of range");
    MECSCHED_REQUIRE(std::isfinite(problem.upper(v)),
                     "integer variables must be bounded");
  }

  const lp::SimplexSolver solver;
  BnbResult best;
  double incumbent = std::numeric_limits<double>::infinity();

  Node root;
  root.lo.resize(problem.num_variables());
  root.hi.resize(problem.num_variables());
  for (std::size_t v = 0; v < problem.num_variables(); ++v) {
    root.lo[v] = problem.lower(v);
    root.hi[v] = problem.upper(v);
  }

  std::stack<Node> open;
  open.push(std::move(root));

  while (!open.empty()) {
    if (best.nodes_explored >= options_.max_nodes) {
      // Any incumbent found so far is kept in `best`, but optimality is
      // unproven.
      best.status = BnbStatus::kNodeLimit;
      return best;
    }
    const Node node = open.top();
    open.pop();
    ++best.nodes_explored;

    // Bound infeasibility can be introduced by branching (lo > hi).
    bool bounds_ok = true;
    for (std::size_t v = 0; v < node.lo.size(); ++v) {
      if (node.lo[v] > node.hi[v]) {
        bounds_ok = false;
        break;
      }
    }
    if (!bounds_ok) continue;

    const lp::Problem sub = with_bounds(problem, node);
    const lp::Solution relax = solver.solve(sub);
    if (relax.status == lp::SolveStatus::kInfeasible) continue;
    if (relax.status == lp::SolveStatus::kUnbounded) {
      // An unbounded relaxation of a node would make the MIP unbounded;
      // our use cases are always bounded, so treat it as a modelling bug.
      throw SolverError("branch-and-bound: unbounded LP relaxation");
    }
    if (relax.status != lp::SolveStatus::kOptimal) continue;
    if (relax.objective >= incumbent - options_.objective_tolerance) continue;

    // Branch on the most fractional integer variable (closest to 0.5).
    std::size_t branch_var = problem.num_variables();
    double best_dist = options_.integrality_tolerance;
    for (std::size_t v : integer_vars) {
      const double frac = relax.x[v] - std::floor(relax.x[v]);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist > best_dist) {
        best_dist = dist;
        branch_var = v;
      }
    }

    if (branch_var == problem.num_variables()) {
      // Integral: new incumbent (strict improvement guaranteed by bound
      // check above).
      incumbent = relax.objective;
      best.objective = relax.objective;
      best.x = relax.x;
      // Snap near-integral values exactly.
      for (std::size_t v : integer_vars) best.x[v] = std::round(best.x[v]);
      best.status = BnbStatus::kOptimal;
      continue;
    }

    const double xval = relax.x[branch_var];
    Node down = node;
    down.hi[branch_var] = std::floor(xval);
    Node up = node;
    up.lo[branch_var] = std::ceil(xval);
    // DFS, exploring the side nearer the fractional value first (pushed
    // last so it pops first).
    if (xval - std::floor(xval) > 0.5) {
      open.push(std::move(down));
      open.push(std::move(up));
    } else {
      open.push(std::move(up));
      open.push(std::move(down));
    }
  }

  if (!std::isfinite(incumbent)) {
    best.status = BnbStatus::kInfeasible;
  }
  return best;
}

}  // namespace mecsched::ilp
