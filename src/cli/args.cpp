#include "cli/args.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "common/error.h"

namespace mecsched::cli {

ArgParser::ArgParser(std::set<std::string> allowed_flags,
                     std::set<std::string> allowed_switches)
    : allowed_flags_(std::move(allowed_flags)),
      allowed_switches_(std::move(allowed_switches)) {}

void ArgParser::parse(const std::vector<std::string>& tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    MECSCHED_REQUIRE(tok.rfind("--", 0) == 0, "expected --flag, got: " + tok);
    const std::string name = tok.substr(2);
    if (allowed_switches_.count(name) > 0) {
      switches_.insert(name);
      continue;
    }
    MECSCHED_REQUIRE(allowed_flags_.count(name) > 0, "unknown flag: " + tok);
    MECSCHED_REQUIRE(i + 1 < tokens.size(), "flag needs a value: " + tok);
    values_[name] = tokens[++i];
  }
}

bool ArgParser::has(const std::string& flag) const {
  return values_.count(flag) > 0;
}

std::string ArgParser::get(const std::string& flag,
                           const std::string& fallback) const {
  const auto it = values_.find(flag);
  return it == values_.end() ? fallback : it->second;
}

double ArgParser::get_num(const std::string& flag, double fallback) const {
  const auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double v = std::stod(it->second, &used);
    MECSCHED_REQUIRE(used == it->second.size(),
                     "not a number: --" + flag + " " + it->second);
    // std::stod happily parses "nan", "inf" and overflows to ±inf; none of
    // those is a meaningful value for any mecsched flag.
    MECSCHED_REQUIRE(std::isfinite(v),
                     "--" + flag + " wants a finite number, got '" +
                         it->second + "'");
    return v;
  } catch (const std::logic_error&) {
    throw ModelError("not a number: --" + flag + " " + it->second);
  }
}

std::size_t ArgParser::get_count(const std::string& flag,
                                 std::size_t fallback) const {
  const auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  const bool digits =
      !text.empty() && std::all_of(text.begin(), text.end(), [](char c) {
        return std::isdigit(static_cast<unsigned char>(c)) != 0;
      });
  MECSCHED_REQUIRE(digits, "--" + flag +
                               " wants a non-negative integer, got '" + text +
                               "'");
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), nullptr, 10);
  MECSCHED_REQUIRE(errno != ERANGE &&
                       v <= std::numeric_limits<std::size_t>::max(),
                   "--" + flag + " is out of range: " + text);
  return static_cast<std::size_t>(v);
}

double ArgParser::get_positive_num(const std::string& flag,
                                   double fallback) const {
  const double v = get_num(flag, fallback);
  MECSCHED_REQUIRE(v > 0.0, "--" + flag + " wants a positive number, got '" +
                                get(flag, "") + "'");
  return v;
}

double ArgParser::get_probability(const std::string& flag,
                                  double fallback) const {
  const double v = get_num(flag, fallback);
  MECSCHED_REQUIRE(v >= 0.0 && v <= 1.0,
                   "--" + flag + " wants a probability in [0, 1], got '" +
                       get(flag, "") + "'");
  return v;
}

bool ArgParser::get_switch(const std::string& name) const {
  return switches_.count(name) > 0;
}

}  // namespace mecsched::cli
