// Named scenario grids for `mecsched sweep`.
//
// Each grid mirrors one figure sweep of the paper's Sec. V (same x-axis,
// scenario knobs and seed derivation as the bench/ binary of the same
// name), plus a tiny `smoke` grid sized for tests and CI determinism
// checks. The sweep command fans (x, repetition) cells over
// exec::SweepRunner, so a grid definition is all data: where the x-axis
// runs, how a cell's scenario is built, and which metric each cell
// reports.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "assign/evaluator.h"
#include "workload/scenario.h"

namespace mecsched::cli {

struct SweepGrid {
  std::string name;         // CLI spelling: --grid <name>
  std::string description;  // one-liner for --list
  std::string x_label;      // CSV/table header of the x column
  std::vector<double> xs;
  // Scenario for the cell at sweep position `x`, repetition seed `seed`
  // (1-based, matching bench::run_holistic_sweep).
  std::function<workload::ScenarioConfig(double x, std::uint64_t seed)>
      config_at;
  // The per-cell measurement stored under each algorithm's series.
  std::function<double(const assign::Metrics&)> metric;
  std::string metric_label;  // e.g. "total energy (J)"
};

// All built-in grids, in listing order.
const std::vector<SweepGrid>& sweep_grids();

// nullptr when `name` is not a known grid.
const SweepGrid* find_sweep_grid(const std::string& name);

}  // namespace mecsched::cli
