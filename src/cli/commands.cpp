#include "cli/commands.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <map>
#include <sstream>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <utility>

#include "assign/baselines.h"
#include "assign/best_response.h"
#include "assign/evaluator.h"
#include "assign/exact.h"
#include "assign/hgos.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "assign/portfolio.h"
#include "assign/recovery.h"
#include "assign/sensitivity.h"
#include "audit/audit.h"
#include "cli/args.h"
#include "cli/sweep_grids.h"
#include "common/deadline.h"
#include "common/error.h"
#include "common/table.h"
#include "control/fallback.h"
#include "control/resilient.h"
#include "dta/pipeline.h"
#include "exec/instance_cache.h"
#include "exec/sweep_runner.h"
#include "exec/thread_pool.h"
#include "io/codec.h"
#include "lp/sparse_cholesky.h"
#include "mec/cost_breakdown.h"
#include "io/shared_codec.h"
#include "io/trace_codec.h"
#include "metrics/series.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "io/serve_codec.h"
#include "serve/daemon.h"
#include "serve/decision_log.h"
#include "serve/signal_stop.h"
#include "sim/simulator.h"
#include "sim/solver_chaos.h"
#include "workload/arrivals.h"
#include "workload/faults.h"
#include "workload/scenario.h"
#include "workload/serve_trace.h"
#include "workload/shared_data.h"

namespace mecsched::cli {
namespace {

std::unique_ptr<assign::Assigner> make_assigner(const std::string& name) {
  if (name == "lp-hta") return std::make_unique<assign::LpHta>();
  if (name == "lp-hta-ipm") {
    return std::make_unique<assign::LpHta>(
        assign::LpHtaOptions{assign::LpEngine::kInteriorPoint});
  }
  if (name == "hgos") return std::make_unique<assign::Hgos>();
  if (name == "alltoc") return std::make_unique<assign::AllToCloud>();
  if (name == "alloffload") return std::make_unique<assign::AllOffload>();
  if (name == "local-first") return std::make_unique<assign::LocalFirst>();
  if (name == "random") return std::make_unique<assign::RandomAssign>();
  if (name == "exact") return std::make_unique<assign::ExactHta>();
  if (name == "brd") return std::make_unique<assign::BestResponse>();
  if (name == "portfolio") {
    return std::make_unique<assign::Portfolio>(assign::Portfolio::standard());
  }
  throw ModelError("unknown algorithm: " + name +
                   " (try lp-hta, lp-hta-ipm, hgos, alltoc, alloffload, "
                   "local-first, random, exact, brd, portfolio)");
}

workload::Scenario load_scenario(const ArgParser& args) {
  const std::string path = args.get("scenario", "");
  MECSCHED_REQUIRE(!path.empty(), "--scenario <file> is required");
  return io::scenario_from_json(io::Json::parse(io::read_file(path)));
}

assign::Assignment load_plan(const ArgParser& args) {
  const std::string path = args.get("plan", "");
  MECSCHED_REQUIRE(!path.empty(), "--plan <file> is required");
  return io::assignment_from_json(io::Json::parse(io::read_file(path)));
}

void emit(const io::Json& j, const ArgParser& args, std::ostream& out) {
  const std::string path = args.get("out", "");
  if (path.empty()) {
    out << j.dump(2) << '\n';
  } else {
    io::write_file(path, j.dump(2) + "\n");
    out << "wrote " << path << '\n';
  }
}

// Global flags, accepted by every command. They are stripped from the
// token stream before the per-command ArgParsers (which reject unknown
// flags) run.
struct GlobalFlags {
  std::string trace_path;    // --trace <file>: Chrome trace_event JSON
  std::string metrics_path;  // --metrics-out <file>: Prometheus text
  std::string flight_path;   // --flight-out <file>: per-solve flight JSONL
  bool summary = false;      // --obs-summary: console table after the run
  bool has_jobs = false;     // --jobs <n>: sweep/pool worker count
  std::size_t jobs = 0;
  bool has_audit = false;    // --audit off|cheap|full: certificate checks
  audit::Level audit_level = audit::Level::kOff;
  double budget_ms = 0.0;    // --budget-ms: per-solve deadline (0 = off)

  bool obs_active() const {
    return summary || !trace_path.empty() || !metrics_path.empty();
  }
};

// Strict positive-integer parse for flags stripped before ArgParser runs.
// strtoul alone is not enough: it accepts "-1" (wrapping to 2^64-1) and
// trailing garbage.
std::size_t parse_positive_count(const std::string& flag,
                                 const std::string& text) {
  const bool digits =
      !text.empty() && std::all_of(text.begin(), text.end(), [](char c) {
        return std::isdigit(static_cast<unsigned char>(c)) != 0;
      });
  MECSCHED_REQUIRE(digits, flag + " wants a positive integer, got '" + text +
                               "'");
  errno = 0;
  const unsigned long long n = std::strtoull(text.c_str(), nullptr, 10);
  MECSCHED_REQUIRE(errno != ERANGE &&
                       n <= std::numeric_limits<std::size_t>::max(),
                   flag + " is out of range: " + text);
  MECSCHED_REQUIRE(n > 0, flag + " wants a positive integer, got '" + text +
                              "'");
  return static_cast<std::size_t>(n);
}

GlobalFlags strip_global_flags(std::vector<std::string>& tokens) {
  GlobalFlags flags;
  std::vector<std::string> kept;
  kept.reserve(tokens.size());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i] == "--trace" || tokens[i] == "--metrics-out" ||
        tokens[i] == "--flight-out") {
      MECSCHED_REQUIRE(i + 1 < tokens.size(),
                       tokens[i] + " requires a file argument");
      (tokens[i] == "--trace"   ? flags.trace_path
       : tokens[i] == "--metrics-out" ? flags.metrics_path
                                      : flags.flight_path) = tokens[i + 1];
      ++i;
    } else if (tokens[i] == "--jobs") {
      MECSCHED_REQUIRE(i + 1 < tokens.size(), "--jobs requires a count");
      flags.has_jobs = true;
      flags.jobs = parse_positive_count("--jobs", tokens[i + 1]);
      ++i;
    } else if (tokens[i] == "--budget-ms") {
      MECSCHED_REQUIRE(i + 1 < tokens.size(),
                       "--budget-ms requires a value in milliseconds");
      const std::string& text = tokens[i + 1];
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      MECSCHED_REQUIRE(end != nullptr && end != text.c_str() && *end == '\0' &&
                           std::isfinite(v) && v > 0.0,
                       "--budget-ms wants a positive number of milliseconds, "
                       "got '" + text + "'");
      flags.budget_ms = v;
      ++i;
    } else if (tokens[i] == "--audit") {
      MECSCHED_REQUIRE(i + 1 < tokens.size(),
                       "--audit requires a level (off, cheap or full)");
      flags.has_audit = true;
      flags.audit_level = audit::parse_level(tokens[i + 1]);
      ++i;
    } else if (tokens[i] == "--obs-summary") {
      flags.summary = true;
    } else {
      kept.push_back(tokens[i]);
    }
  }
  tokens = std::move(kept);
  return flags;
}

int dispatch(const std::string& command, const std::vector<std::string>& rest,
             std::ostream& out, std::ostream& err) {
  if (command == "generate") return cmd_generate(rest, out);
  if (command == "assign") return cmd_assign(rest, out);
  if (command == "evaluate") return cmd_evaluate(rest, out);
  if (command == "simulate") return cmd_simulate(rest, out);
  if (command == "compare") return cmd_compare(rest, out);
  if (command == "generate-shared") return cmd_generate_shared(rest, out);
  if (command == "sensitivity") return cmd_sensitivity(rest, out);
  if (command == "breakdown") return cmd_breakdown(rest, out);
  if (command == "recover") return cmd_recover(rest, out);
  if (command == "generate-arrivals") return cmd_generate_arrivals(rest, out);
  if (command == "online") return cmd_online(rest, out);
  if (command == "trace") return cmd_trace(rest, out);
  if (command == "dta") return cmd_dta(rest, out);
  if (command == "churn") return cmd_churn(rest, out);
  if (command == "sweep") return cmd_sweep(rest, out);
  if (command == "chaos") return cmd_chaos(rest, out);
  if (command == "generate-serve") return cmd_generate_serve(rest, out);
  if (command == "serve") return cmd_serve(rest, out);
  if (command == "report") return cmd_report(rest, out);
  err << "unknown command: " << command << "\n\n" << usage();
  return 1;
}

}  // namespace

std::string usage() {
  return
      "usage: mecsched <command> [flags]\n"
      "\n"
      "commands:\n"
      "  generate  --tasks N --devices N --stations N --seed S\n"
      "            [--max-input-kb X] [--config cfg.json] [--out scenario.json]\n"
      "  assign    --scenario s.json [--algorithm lp-hta] [--out plan.json]\n"
      "  evaluate  --scenario s.json --plan p.json [--out metrics.json]\n"
      "  simulate  --scenario s.json --plan p.json [--contention]\n"
      "  compare   --scenario s.json\n"
      "  sensitivity --scenario s.json   (capacity shadow prices)\n"
      "  trace     --scenario s.json --plan p.json [--contention]\n"
      "  breakdown --scenario s.json --task T [--placement local|edge|cloud]\n"
      "  recover   --scenario s.json --plan p.json --device D [--out p2.json]\n"
      "  generate-arrivals --tasks N --rate R [--out timed.json]\n"
      "  online    --scenario timed.json [--epoch-s E] [--out result.json]\n"
      "  churn     --tasks N --devices N --stations N --seed S [--rate R]\n"
      "            [--horizon H] [--mtbf S] [--mttr S] [--outage-rate R]\n"
      "            [--outage-duration S] [--correlated-prob P] [--fade-rate R]\n"
      "            [--epoch-s E] [--max-attempts K] [--out result.json]\n"
      "  generate-shared --tasks N --devices N --stations N --items N\n"
      "            --seed S [--out shared.json]\n"
      "  dta       --scenario shared.json [--strategy workload|workload-bytes"
      "|number]\n"
      "            [--scheduler lp-hta|greedy] [--out result.json]\n"
      "  sweep     [--grid fig2a|fig2b|fig4a|fig4b|smoke] [--reps N]\n"
      "            [--seed S] [--cache-capacity N] [--warm-start]\n"
      "            [--csv] [--out series.csv] [--list]\n"
      "  chaos     [--cells N] [--tasks N] [--devices N] [--stations N]\n"
      "            [--seed S] [--stall-prob P] [--nan-prob P]\n"
      "            [--cancel-prob P] [--error-prob P] [--csv]\n"
      "            (solver fault injection drill; see docs/robustness.md)\n"
      "  generate-serve --devices N --stations N --seed S [--epochs N]\n"
      "            [--epoch-s E] [--rate R] [--join-rate R] [--leave-rate R]\n"
      "            [--migrate-rate R] [--max-input-kb X] [--out workload.json]\n"
      "  serve     [--replay workload.json | generator knobs as above]\n"
      "            [--epoch-s E] [--batch-max N] [--shards N] [--max-queue N]\n"
      "            [--max-attempts K] [--epoch-budget-ms MS]\n"
      "            [--cache-capacity N] [--no-warm-start]\n"
      "            [--decisions-out log.csv] [--out result.json]\n"
      "            (online sharded scheduling daemon; see docs/serve.md)\n"
      "  report    --flight records.jsonl [--metrics out.prom] [--top N]\n"
      "            (render a flight-record post-mortem; see\n"
      "            docs/observability.md)\n"
      "\n"
      "global flags (any command):\n"
      "  --trace out.json      write a Chrome trace_event file of the run\n"
      "                        (open in chrome://tracing or ui.perfetto.dev)\n"
      "  --metrics-out out.prom  write solver/controller metrics in the\n"
      "                        Prometheus text format\n"
      "  --obs-summary         print a metric summary table after the run\n"
      "  --jobs N              worker threads for parallel sweeps (default:\n"
      "                        MECSCHED_JOBS env, else all hardware threads);\n"
      "                        sweep output is identical for every N\n"
      "  --audit LEVEL         runtime solver certificates: off, cheap or\n"
      "                        full (default: MECSCHED_AUDIT env, else the\n"
      "                        build default; see docs/static-analysis.md)\n"
      "  --budget-ms MS        wall-clock budget per solve: LP/ILP engines\n"
      "                        degrade to their best anytime answer at the\n"
      "                        deadline instead of running long (see\n"
      "                        docs/robustness.md)\n"
      "  --flight-out f.jsonl  record one structured line per solve (engine,\n"
      "                        status, timing, deadline residual, fallback\n"
      "                        rung, chaos hits); written even when the\n"
      "                        command fails — feed it to mecsched report\n"
      "\n"
      "algorithms: lp-hta lp-hta-ipm hgos alltoc alloffload local-first "
      "random exact brd portfolio\n";
}

int cmd_generate(const std::vector<std::string>& tokens, std::ostream& out) {
  ArgParser args({"tasks", "devices", "stations", "seed", "max-input-kb",
                  "config", "out"},
                 {});
  args.parse(tokens);

  workload::ScenarioConfig cfg;
  if (args.has("config")) {
    cfg = io::config_from_json(
        io::Json::parse(io::read_file(args.get("config", ""))));
  }
  cfg.num_tasks = args.get_count("tasks", cfg.num_tasks);
  cfg.num_devices = args.get_count("devices", cfg.num_devices);
  cfg.num_base_stations = args.get_count("stations", cfg.num_base_stations);
  cfg.seed = args.get_count("seed", static_cast<std::size_t>(cfg.seed));
  cfg.max_input_kb = args.get_num("max-input-kb", cfg.max_input_kb);

  const workload::Scenario scenario = workload::make_scenario(cfg);
  emit(io::scenario_to_json(scenario), args, out);
  return 0;
}

int cmd_assign(const std::vector<std::string>& tokens, std::ostream& out) {
  ArgParser args({"scenario", "algorithm", "out"}, {});
  args.parse(tokens);

  const workload::Scenario scenario = load_scenario(args);
  const assign::HtaInstance instance(scenario.topology, scenario.tasks);
  const auto algorithm = make_assigner(args.get("algorithm", "lp-hta"));
  const assign::Assignment plan = algorithm->assign(instance);
  emit(io::assignment_to_json(plan), args, out);
  return 0;
}

int cmd_evaluate(const std::vector<std::string>& tokens, std::ostream& out) {
  ArgParser args({"scenario", "plan", "out"}, {});
  args.parse(tokens);

  const workload::Scenario scenario = load_scenario(args);
  const assign::HtaInstance instance(scenario.topology, scenario.tasks);
  const assign::Assignment plan = load_plan(args);
  MECSCHED_REQUIRE(plan.size() == instance.num_tasks(),
                   "plan size does not match scenario");

  io::Json j = io::metrics_to_json(assign::evaluate(instance, plan));
  const assign::FeasibilityReport feas =
      assign::check_feasibility(instance, plan);
  j.as_object()["feasible"] = io::Json(feas.ok);
  io::JsonArray problems;
  for (const std::string& p : feas.problems) problems.emplace_back(p);
  j.as_object()["problems"] = io::Json(std::move(problems));
  emit(j, args, out);
  return feas.ok ? 0 : 2;
}

int cmd_simulate(const std::vector<std::string>& tokens, std::ostream& out) {
  ArgParser args({"scenario", "plan", "out"}, {"contention"});
  args.parse(tokens);

  const workload::Scenario scenario = load_scenario(args);
  const assign::HtaInstance instance(scenario.topology, scenario.tasks);
  const assign::Assignment plan = load_plan(args);
  MECSCHED_REQUIRE(plan.size() == instance.num_tasks(),
                   "plan size does not match scenario");

  sim::SimOptions sim_opts;
  sim_opts.model_contention = args.get_switch("contention");
  const sim::SimResult r = sim::simulate(instance, plan, sim_opts);
  io::JsonObject o;
  o["makespan_s"] = r.makespan_s;
  o["total_energy_j"] = r.total_energy_j;
  o["events"] = r.events_processed;
  io::JsonArray tasks;
  for (const sim::TaskTimeline& tl : r.timelines) {
    io::JsonObject t;
    t["task"] = tl.task;
    t["placed"] = io::Json(tl.placed);
    if (tl.placed) {
      t["latency_s"] = tl.latency_s();
      t["energy_j"] = tl.energy_j;
    }
    tasks.emplace_back(std::move(t));
  }
  o["tasks"] = io::Json(std::move(tasks));
  emit(io::Json(std::move(o)), args, out);
  return 0;
}

int cmd_compare(const std::vector<std::string>& tokens, std::ostream& out) {
  ArgParser args({"scenario"}, {});
  args.parse(tokens);

  const workload::Scenario scenario = load_scenario(args);
  const assign::HtaInstance instance(scenario.topology, scenario.tasks);

  Table table({"algorithm", "energy (J)", "mean latency (s)",
               "unsatisfied", "feasible"});
  for (const char* name :
       {"lp-hta", "hgos", "alltoc", "alloffload", "local-first"}) {
    const auto algorithm = make_assigner(name);
    const assign::Assignment plan = algorithm->assign(instance);
    const assign::Metrics m = assign::evaluate(instance, plan);
    const bool ok = assign::check_feasibility(instance, plan).ok;
    table.add_row({algorithm->name(), Table::num(m.total_energy_j, 1),
                   Table::num(m.mean_latency_s, 3),
                   Table::num(m.unsatisfied_rate(), 3), ok ? "yes" : "no"});
  }
  out << table;
  return 0;
}

int cmd_breakdown(const std::vector<std::string>& tokens, std::ostream& out) {
  ArgParser args({"scenario", "task", "placement", "out"}, {});
  args.parse(tokens);
  const workload::Scenario scenario = load_scenario(args);
  const std::size_t t = args.get_count("task", 0);
  MECSCHED_REQUIRE(t < scenario.tasks.size(), "--task index out of range");

  const std::string where = args.get("placement", "");
  std::vector<mec::Placement> placements;
  if (where.empty()) {
    placements.assign(mec::kAllPlacements.begin(), mec::kAllPlacements.end());
  } else if (where == "local") {
    placements = {mec::Placement::kLocal};
  } else if (where == "edge") {
    placements = {mec::Placement::kEdge};
  } else if (where == "cloud") {
    placements = {mec::Placement::kCloud};
  } else {
    throw ModelError("unknown placement: " + where);
  }

  io::JsonObject root;
  for (mec::Placement p : placements) {
    const mec::CostBreakdown b =
        mec::explain(scenario.topology, scenario.tasks[t], p);
    io::JsonArray legs;
    for (const mec::CostLeg& leg : b.legs) {
      io::JsonObject lj;
      lj["label"] = io::Json(leg.label);
      lj["time_s"] = leg.time_s;
      lj["energy_j"] = leg.energy_j;
      lj["parallel"] = io::Json(leg.parallel);
      legs.emplace_back(std::move(lj));
    }
    io::JsonObject pj;
    pj["legs"] = io::Json(std::move(legs));
    pj["total_time_s"] = b.total_time();
    pj["total_energy_j"] = b.total_energy();
    root[mec::to_string(p)] = io::Json(std::move(pj));
  }
  emit(io::Json(std::move(root)), args, out);
  return 0;
}

int cmd_recover(const std::vector<std::string>& tokens, std::ostream& out) {
  ArgParser args({"scenario", "plan", "device", "out"}, {});
  args.parse(tokens);
  const workload::Scenario scenario = load_scenario(args);
  const assign::HtaInstance instance(scenario.topology, scenario.tasks);
  const assign::Assignment plan = load_plan(args);
  MECSCHED_REQUIRE(plan.size() == instance.num_tasks(),
                   "plan size does not match scenario");
  const std::size_t device = args.get_count("device", 0);
  const assign::RecoveryResult r =
      assign::replan_after_device_failure(instance, plan, device);
  io::Json j = io::assignment_to_json(r.assignment);
  j.as_object()["lost_issued"] = io::Json(r.lost_issued);
  j.as_object()["lost_data"] = io::Json(r.lost_data);
  emit(j, args, out);
  return 0;
}

int cmd_generate_arrivals(const std::vector<std::string>& tokens,
                          std::ostream& out) {
  ArgParser args({"tasks", "devices", "stations", "seed", "rate", "out"}, {});
  args.parse(tokens);
  workload::ArrivalConfig cfg;
  cfg.scenario.num_tasks = args.get_count("tasks", cfg.scenario.num_tasks);
  cfg.scenario.num_devices =
      args.get_count("devices", cfg.scenario.num_devices);
  cfg.scenario.num_base_stations =
      args.get_count("stations", cfg.scenario.num_base_stations);
  cfg.scenario.seed =
      args.get_count("seed", static_cast<std::size_t>(cfg.scenario.seed));
  cfg.arrival_rate_per_s = args.get_num("rate", cfg.arrival_rate_per_s);
  emit(io::timed_scenario_to_json(workload::make_timed_scenario(cfg)), args,
       out);
  return 0;
}

int cmd_online(const std::vector<std::string>& tokens, std::ostream& out) {
  ArgParser args({"scenario", "epoch-s", "out"}, {});
  args.parse(tokens);
  const std::string path = args.get("scenario", "");
  MECSCHED_REQUIRE(!path.empty(), "--scenario <file> is required");
  const workload::TimedScenario scenario =
      io::timed_scenario_from_json(io::Json::parse(io::read_file(path)));
  assign::OnlineOptions opts;
  opts.epoch_s = args.get_num("epoch-s", opts.epoch_s);
  const assign::OnlineResult r =
      assign::OnlineScheduler(opts).run(scenario.topology, scenario.tasks);
  emit(io::online_result_to_json(r), args, out);
  return 0;
}

int cmd_sensitivity(const std::vector<std::string>& tokens,
                    std::ostream& out) {
  ArgParser args({"scenario", "out"}, {});
  args.parse(tokens);
  const workload::Scenario scenario = load_scenario(args);
  const assign::HtaInstance instance(scenario.topology, scenario.tasks);
  const assign::ShadowPrices sp = assign::capacity_shadow_prices(instance);

  io::JsonArray devices, stations;
  for (double v : sp.device) devices.emplace_back(v);
  for (double v : sp.station) stations.emplace_back(v);
  io::JsonObject o;
  o["device_shadow_price_j_per_unit"] = io::Json(std::move(devices));
  o["station_shadow_price_j_per_unit"] = io::Json(std::move(stations));
  emit(io::Json(std::move(o)), args, out);
  return 0;
}

int cmd_trace(const std::vector<std::string>& tokens, std::ostream& out) {
  ArgParser args({"scenario", "plan", "out"}, {"contention"});
  args.parse(tokens);
  const workload::Scenario scenario = load_scenario(args);
  const assign::HtaInstance instance(scenario.topology, scenario.tasks);
  const assign::Assignment plan = load_plan(args);
  MECSCHED_REQUIRE(plan.size() == instance.num_tasks(),
                   "plan size does not match scenario");
  sim::SimOptions sim_opts;
  sim_opts.model_contention = args.get_switch("contention");
  const sim::SimResult r = sim::simulate(instance, plan, sim_opts);
  emit(io::sim_result_to_json(r), args, out);
  return 0;
}

int cmd_generate_shared(const std::vector<std::string>& tokens,
                        std::ostream& out) {
  ArgParser args({"tasks", "devices", "stations", "items", "seed",
                  "max-input-kb", "out"},
                 {});
  args.parse(tokens);

  workload::SharedDataConfig cfg;
  cfg.num_tasks = args.get_count("tasks", cfg.num_tasks);
  cfg.num_devices = args.get_count("devices", cfg.num_devices);
  cfg.num_base_stations = args.get_count("stations", cfg.num_base_stations);
  cfg.num_items = args.get_count("items", cfg.num_items);
  cfg.seed = args.get_count("seed", static_cast<std::size_t>(cfg.seed));
  cfg.max_input_kb = args.get_num("max-input-kb", cfg.max_input_kb);

  const dta::SharedDataScenario scenario = workload::make_shared_scenario(cfg);
  emit(io::shared_scenario_to_json(scenario), args, out);
  return 0;
}

int cmd_dta(const std::vector<std::string>& tokens, std::ostream& out) {
  ArgParser args({"scenario", "strategy", "scheduler", "out"}, {});
  args.parse(tokens);

  const std::string path = args.get("scenario", "");
  MECSCHED_REQUIRE(!path.empty(), "--scenario <file> is required");
  const dta::SharedDataScenario scenario =
      io::shared_scenario_from_json(io::Json::parse(io::read_file(path)));

  dta::DtaOptions opts;
  const std::string strategy = args.get("strategy", "workload");
  if (strategy == "workload") {
    opts.strategy = dta::DtaStrategy::kWorkload;
  } else if (strategy == "workload-bytes") {
    opts.strategy = dta::DtaStrategy::kWorkloadBytes;
  } else if (strategy == "number") {
    opts.strategy = dta::DtaStrategy::kNumber;
  } else {
    throw ModelError("unknown strategy: " + strategy +
                     " (try workload, workload-bytes, number)");
  }
  const std::string scheduler = args.get("scheduler", "lp-hta");
  if (scheduler == "lp-hta") {
    opts.scheduler = dta::PartialScheduler::kLpHta;
  } else if (scheduler == "greedy") {
    opts.scheduler = dta::PartialScheduler::kLocalGreedy;
  } else {
    throw ModelError("unknown scheduler: " + scheduler +
                     " (try lp-hta, greedy)");
  }

  const dta::DtaResult result = dta::run_dta(scenario, opts);
  io::Json j = io::dta_result_to_json(result);
  j.as_object()["strategy"] = io::Json(dta::to_string(opts.strategy));
  emit(j, args, out);
  return 0;
}

int cmd_churn(const std::vector<std::string>& tokens, std::ostream& out) {
  ArgParser args({"tasks", "devices", "stations", "seed", "rate", "horizon",
                  "mtbf", "mttr", "outage-rate", "outage-duration",
                  "correlated-prob", "fade-rate", "epoch-s", "max-attempts",
                  "out"},
                 {});
  args.parse(tokens);

  workload::ArrivalConfig arrivals;
  arrivals.scenario.num_tasks =
      args.get_count("tasks", arrivals.scenario.num_tasks);
  arrivals.scenario.num_devices =
      args.get_count("devices", arrivals.scenario.num_devices);
  arrivals.scenario.num_base_stations =
      args.get_count("stations", arrivals.scenario.num_base_stations);
  arrivals.scenario.seed = args.get_count(
      "seed", static_cast<std::size_t>(arrivals.scenario.seed));
  arrivals.arrival_rate_per_s =
      args.get_num("rate", arrivals.arrival_rate_per_s);
  const workload::TimedScenario scenario =
      workload::make_timed_scenario(arrivals);

  workload::FaultModelConfig faults_cfg;
  faults_cfg.seed = arrivals.scenario.seed + 1;  // independent stream
  faults_cfg.horizon_s = args.get_num("horizon", faults_cfg.horizon_s);
  faults_cfg.device_mtbf_s = args.get_num("mtbf", 20.0);
  faults_cfg.device_mttr_s = args.get_num("mttr", faults_cfg.device_mttr_s);
  faults_cfg.station_outage_rate_per_s =
      args.get_num("outage-rate", faults_cfg.station_outage_rate_per_s);
  faults_cfg.station_outage_duration_s =
      args.get_num("outage-duration", faults_cfg.station_outage_duration_s);
  faults_cfg.correlated_device_prob =
      args.get_num("correlated-prob", faults_cfg.correlated_device_prob);
  faults_cfg.link_fade_rate_per_s =
      args.get_num("fade-rate", faults_cfg.link_fade_rate_per_s);
  const sim::FaultSchedule faults =
      workload::make_fault_schedule(faults_cfg, scenario.topology);

  control::ResilientOptions opts;
  // Presolve preserves the LP optimum exactly; turning it on here keeps the
  // churn trace representative of the full solver pipeline.
  opts.lp.presolve = true;
  opts.epoch_s = args.get_num("epoch-s", opts.epoch_s);
  opts.max_attempts = args.get_count("max-attempts", opts.max_attempts);
  const control::ResilientResult r =
      control::ResilientController(opts).run(scenario.topology, scenario.tasks,
                                             faults);

  io::JsonObject o;
  o["tasks"] = scenario.tasks.size();
  o["fault_events"] = faults.size();
  o["device_failures"] = faults.device_failures();
  o["station_failures"] = faults.station_failures();
  o["completed"] = r.completed;
  o["unsatisfied"] = r.unsatisfied;
  o["unsatisfied_rate"] = r.unsatisfied_rate();
  o["retries"] = r.retries;
  o["orphaned"] = r.orphaned;
  o["rescued_by_dta"] = r.rescued_by_dta;
  o["epochs"] = r.epochs;
  o["total_energy_j"] = r.total_energy_j;
  o["makespan_s"] = r.makespan_s;
  io::JsonObject rungs;
  for (std::size_t i = 0; i < control::kNumRungs; ++i) {
    const auto rung = static_cast<control::FallbackRung>(i);
    rungs[control::to_string(rung)] = r.rungs.at(rung);
  }
  o["fallback_rungs"] = io::Json(std::move(rungs));
  emit(io::Json(std::move(o)), args, out);
  return 0;
}

int cmd_sweep(const std::vector<std::string>& tokens, std::ostream& out) {
  ArgParser args({"grid", "reps", "seed", "cache-capacity", "out"},
                 {"warm-start", "csv", "list"});
  args.parse(tokens);

  if (args.get_switch("list")) {
    Table t({"grid", "x-axis", "cells", "description"});
    for (const SweepGrid& g : sweep_grids()) {
      t.add_row({g.name, g.x_label, std::to_string(g.xs.size()),
                 g.description});
    }
    out << t;
    return 0;
  }

  const std::string grid_name = args.get("grid", "smoke");
  const SweepGrid* grid = find_sweep_grid(grid_name);
  MECSCHED_REQUIRE(grid != nullptr,
                   "unknown grid: " + grid_name + " (see sweep --list)");
  const std::size_t reps = args.get_count("reps", 3);
  MECSCHED_REQUIRE(reps > 0, "--reps must be positive");

  exec::InstanceCache cache(args.get_count("cache-capacity", 128));
  // The LP layer keeps its own pattern-keyed cache of symbolic Cholesky
  // analyses (lp/sparse_cholesky.h); size it alongside the plan cache so
  // every distinct constraint shape in the sweep keeps its ordering warm.
  lp::SymbolicFactorCache::global().set_capacity(
      args.get_count("cache-capacity", 128));
  exec::SweepOptions sweep_opts;
  sweep_opts.master_seed = args.get_count("seed", 1);
  sweep_opts.cache = &cache;
  sweep_opts.warm_start = args.get_switch("warm-start");

  std::vector<std::unique_ptr<assign::Assigner>> algorithms;
  algorithms.push_back(std::make_unique<assign::LpHta>());
  algorithms.push_back(std::make_unique<assign::Hgos>());
  algorithms.push_back(std::make_unique<assign::AllToCloud>());
  algorithms.push_back(std::make_unique<assign::AllOffload>());
  std::vector<std::string> names;
  names.reserve(algorithms.size());
  for (const auto& a : algorithms) names.push_back(a->name());

  // One cell per (x, repetition); each runs every algorithm on the cell's
  // scenario. Exact cache hits replace a solve with the identical stored
  // plan; with --warm-start, LP-HTA additionally seeds its simplex from
  // the most recent LP-HTA plan (objective-preserving, pivot-path-
  // sensitive — see docs/parallelism.md).
  metrics::SeriesCollector series(grid->x_label, names);
  using CellResult = std::vector<std::pair<std::string, double>>;
  exec::SweepRunner runner(sweep_opts);
  const std::vector<CellResult> results = runner.run<CellResult>(
      grid->xs.size() * reps, [&](exec::CellContext& ctx) {
        const double x = grid->xs[ctx.index() / reps];
        const std::uint64_t rep = ctx.index() % reps + 1;
        const workload::Scenario scenario =
            workload::make_scenario(grid->config_at(x, rep));
        const assign::HtaInstance instance(scenario.topology, scenario.tasks);
        const std::uint64_t fp = exec::fingerprint(instance);
        CellResult cell;
        cell.reserve(algorithms.size());
        for (const auto& algorithm : algorithms) {
          const std::string name = algorithm->name();
          const std::uint64_t key = exec::mix(fp, exec::hash_string(name));
          assign::Assignment plan;
          if (const auto hit = ctx.cache()->find(key)) {
            plan = *hit;
          } else {
            if (ctx.warm_start() && name == "LP-HTA") {
              const std::uint64_t family = exec::hash_string(name);
              const auto hint = ctx.cache()->warm_hint(family);
              assign::LpHtaOptions lp_opts;
              lp_opts.warm_hint = hint.get();
              plan = assign::LpHta(lp_opts).assign(instance);
              ctx.cache()->store_warm(
                  family, std::make_shared<const assign::Assignment>(plan));
            } else {
              plan = algorithm->assign(instance);
            }
            ctx.cache()->insert(key, plan);
          }
          cell.emplace_back(name,
                            grid->metric(assign::evaluate(instance, plan)));
        }
        return cell;
      });
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double x = grid->xs[i / reps];
    for (const auto& [name, value] : results[i]) series.add(x, name, value);
  }

  const std::string out_path = args.get("out", "");
  if (!out_path.empty()) {
    series.write_csv(out_path);
    out << "wrote " << out_path << '\n';
  } else if (args.get_switch("csv")) {
    // Bare CSV on stdout: exactly the cell means, byte-identical at every
    // --jobs count (asserted in commands_test.cpp and CI).
    series.write_csv(out);
  } else {
    out << grid->metric_label << " (" << grid->name << ", jobs="
        << runner.jobs() << "):\n"
        << series.to_table(3);
    const exec::CacheStats cs = cache.stats();
    out << "cache: " << cs.hits << " hits, " << cs.misses << " misses, "
        << cs.evictions << " evictions\n";
  }
  return 0;
}

int cmd_chaos(const std::vector<std::string>& tokens, std::ostream& out) {
  ArgParser args({"cells", "tasks", "devices", "stations", "seed",
                  "stall-prob", "nan-prob", "cancel-prob", "error-prob"},
                 {"csv"});
  args.parse(tokens);

  const std::size_t cells = args.get_count("cells", 8);
  MECSCHED_REQUIRE(cells > 0, "--cells must be positive");
  sim::SolverChaosConfig cfg;
  cfg.seed = args.get_count("seed", 1);
  cfg.stall_prob = args.get_probability("stall-prob", 0.02);
  cfg.nan_prob = args.get_probability("nan-prob", 0.02);
  cfg.cancel_prob = args.get_probability("cancel-prob", 0.02);
  cfg.error_prob = args.get_probability("error-prob", 0.02);

  workload::ScenarioConfig base;
  base.num_tasks = args.get_count("tasks", 24);
  base.num_devices = args.get_count("devices", 8);
  base.num_base_stations = args.get_count("stations", 2);

  // The drill: every cell runs the full fallback chain while the armed hook
  // injects solver faults from the seeded matrix. The per-cell table and
  // the aggregated trace below must be byte-identical at any --jobs level
  // (the CI chaos job diffs --jobs 1 against --jobs 4).
  sim::SolverChaos chaos(cfg);
  const sim::ChaosArmed armed(chaos);
  const control::FallbackChain chain;

  struct CellOutcome {
    std::size_t rung;
    std::uint64_t digest;
    double energy_j;
  };
  exec::SweepOptions sweep_opts;
  sweep_opts.master_seed = cfg.seed;
  exec::SweepRunner runner(sweep_opts);
  const std::vector<CellOutcome> results =
      runner.run<CellOutcome>(cells, [&](exec::CellContext& ctx) {
        workload::ScenarioConfig cell_cfg = base;
        cell_cfg.seed = ctx.seed();
        const workload::Scenario scenario = workload::make_scenario(cell_cfg);
        const assign::HtaInstance instance(scenario.topology, scenario.tasks);
        control::FallbackRung rung = control::FallbackRung::kLpHta;
        const assign::Assignment plan =
            chain.assign(instance, rung, ctx.cancel());
        std::uint64_t digest = exec::fingerprint(instance);
        for (const assign::Decision d : plan.decisions) {
          digest = exec::mix(digest, static_cast<std::uint64_t>(d) + 1);
        }
        return CellOutcome{static_cast<std::size_t>(rung), digest,
                           assign::evaluate(instance, plan).total_energy_j};
      });

  const std::vector<sim::SolverFaultRecord> trace = chaos.trace();
  if (args.get_switch("csv")) {
    out << "cell,rung,digest,energy_j\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      out << i << ','
          << control::to_string(
                 static_cast<control::FallbackRung>(results[i].rung))
          << ',' << results[i].digest << ','
          << Table::num(results[i].energy_j, 3) << '\n';
    }
    out << "engine,rows,cols,iteration,kind,count\n";
    for (const sim::SolverFaultRecord& r : trace) {
      out << r.engine << ',' << r.rows << ',' << r.cols << ',' << r.iteration
          << ',' << sim::to_string(r.kind) << ',' << r.count << '\n';
    }
    return 0;
  }

  Table cells_table({"cell", "rung", "digest", "energy (J)"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    cells_table.add_row(
        {std::to_string(i),
         control::to_string(static_cast<control::FallbackRung>(results[i].rung)),
         std::to_string(results[i].digest),
         Table::num(results[i].energy_j, 3)});
  }
  out << cells_table;
  out << "injected faults: " << chaos.injected() << '\n';
  if (!trace.empty()) {
    Table fault_table({"engine", "rows", "cols", "iteration", "kind", "count"});
    for (const sim::SolverFaultRecord& r : trace) {
      fault_table.add_row({r.engine, std::to_string(r.rows),
                           std::to_string(r.cols), std::to_string(r.iteration),
                           sim::to_string(r.kind), std::to_string(r.count)});
    }
    out << fault_table;
  }
  return 0;
}

namespace {

// Shared by generate-serve and serve's generator path, so a workload
// generated inline and one replayed from the emitted JSON are identical.
workload::ServeTraceConfig serve_trace_config_from_args(const ArgParser& args) {
  workload::ServeTraceConfig cfg;
  cfg.scenario.num_devices =
      args.get_count("devices", cfg.scenario.num_devices);
  cfg.scenario.num_base_stations =
      args.get_count("stations", cfg.scenario.num_base_stations);
  cfg.scenario.seed =
      args.get_count("seed", static_cast<std::size_t>(cfg.scenario.seed));
  cfg.scenario.max_input_kb =
      args.get_positive_num("max-input-kb", cfg.scenario.max_input_kb);
  cfg.epochs = args.get_count("epochs", cfg.epochs);
  cfg.epoch_s = args.get_positive_num("epoch-s", cfg.epoch_s);
  cfg.arrival_rate_per_s =
      args.get_positive_num("rate", cfg.arrival_rate_per_s);
  // Churn rates may be zero (off); get_num still rejects NaN/garbage and
  // the generator rejects negatives.
  cfg.join_rate_per_s = args.get_num("join-rate", cfg.join_rate_per_s);
  cfg.leave_rate_per_s = args.get_num("leave-rate", cfg.leave_rate_per_s);
  cfg.migrate_rate_per_s =
      args.get_num("migrate-rate", cfg.migrate_rate_per_s);
  return cfg;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

}  // namespace

int cmd_generate_serve(const std::vector<std::string>& tokens,
                       std::ostream& out) {
  ArgParser args({"devices", "stations", "seed", "epochs", "epoch-s", "rate",
                  "join-rate", "leave-rate", "migrate-rate", "max-input-kb",
                  "out"},
                 {});
  args.parse(tokens);
  const workload::ServeWorkload workload =
      workload::make_serve_workload(serve_trace_config_from_args(args));
  emit(io::serve_workload_to_json(workload), args, out);
  return 0;
}

int cmd_serve(const std::vector<std::string>& tokens, std::ostream& out) {
  ArgParser args({"replay", "devices", "stations", "seed", "epochs", "rate",
                  "join-rate", "leave-rate", "migrate-rate", "max-input-kb",
                  "epoch-s", "batch-max", "shards", "max-queue",
                  "max-attempts", "epoch-budget-ms", "cache-capacity",
                  "decisions-out", "out"},
                 {"no-warm-start"});
  args.parse(tokens);

  // --epoch-s is both the batching window and (generator path) the trace's
  // epoch length, so one trace epoch is one decision epoch by default.
  const double epoch_s = args.get_positive_num("epoch-s", 0.5);

  const std::string replay = args.get("replay", "");
  const workload::ServeWorkload workload = [&] {
    if (!replay.empty()) {
      return io::serve_workload_from_json(
          io::Json::parse(io::read_file(replay)));
    }
    workload::ServeTraceConfig cfg = serve_trace_config_from_args(args);
    cfg.epoch_s = epoch_s;
    return workload::make_serve_workload(cfg);
  }();

  serve::ServeOptions opts;
  opts.batching.window_s = epoch_s;
  opts.batching.max_batch =
      args.get_count("batch-max", opts.batching.max_batch);
  opts.sharding.num_shards =
      args.get_count("shards", opts.sharding.num_shards);
  opts.admission.max_queue =
      args.get_count("max-queue", opts.admission.max_queue);
  opts.readmission.max_attempts =
      args.get_count("max-attempts", opts.readmission.max_attempts);
  // 0 (the default) disables the budget; get_positive_num validates the
  // fallback too, so only consult it when the flag is present.
  if (args.has("epoch-budget-ms")) {
    opts.epoch_budget_ms = args.get_positive_num("epoch-budget-ms", 0.0);
  }
  opts.cache_capacity =
      args.get_count("cache-capacity", opts.cache_capacity);
  opts.warm_start = !args.get_switch("no-warm-start");
  // Size the LP layer's symbolic-factor cache alongside the plan cache,
  // as the sweep runner does: shard shapes recur every epoch.
  lp::SymbolicFactorCache::global().set_capacity(opts.cache_capacity);

  serve::DecisionLog log;
  // Ctrl-C / SIGTERM stop the loop at the next epoch boundary; the normal
  // return path then runs, so --flight-out / --metrics-out / --trace still
  // capture the interrupted run.
  serve::ScopedSignalStop stop;
  const serve::ServeResult r = serve::ServeDaemon(opts).run(
      workload.universe, workload.trace, &log, stop.token());

  const std::string decisions_path = args.get("decisions-out", "");
  if (!decisions_path.empty()) {
    std::ostringstream csv;
    log.write_csv(csv);
    io::write_file(decisions_path, csv.str());
    out << "wrote " << decisions_path << '\n';
  }

  io::JsonObject o;
  o["events"] = r.events;
  o["arrivals"] = r.arrivals;
  o["admitted"] = r.admitted;
  o["rejected"] = r.rejected;
  o["decisions"] = r.decisions;
  o["completed"] = r.completed;
  o["expired"] = r.expired;
  o["lost_issuer"] = r.lost_issuer;
  o["exhausted"] = r.exhausted;
  o["orphaned"] = r.orphaned;
  o["retries"] = r.retries;
  o["abandoned"] = r.abandoned;
  o["epochs"] = r.epochs;
  o["decide_epochs"] = r.decide_epochs;
  o["shard_solves"] = r.shard_solves;
  o["cache_hits"] = r.cache_hits;
  o["total_energy_j"] = r.total_energy_j;
  o["makespan_s"] = r.makespan_s;
  o["virtual_now_s"] = r.virtual_now_s;
  o["stopped_early"] = io::Json(r.stopped_early);
  o["decision_digest"] = hex64(log.digest());
  io::JsonObject rungs;
  for (std::size_t i = 0; i < control::kNumRungs; ++i) {
    const auto rung = static_cast<control::FallbackRung>(i);
    rungs[control::to_string(rung)] = r.rungs.at(rung);
  }
  o["fallback_rungs"] = io::Json(std::move(rungs));
  emit(io::Json(std::move(o)), args, out);
  return 0;
}

int cmd_report(const std::vector<std::string>& tokens, std::ostream& out) {
  ArgParser args({"flight", "metrics", "top"}, {});
  args.parse(tokens);
  const std::string flight_path = args.get("flight", "");
  MECSCHED_REQUIRE(!flight_path.empty(),
                   "--flight <records.jsonl> is required");
  const std::size_t top_k = args.get_count("top", 5);

  // Null-tolerant field access: the dump writes NaN fields as JSON null.
  const auto str_field = [](const io::Json& j, const std::string& key) {
    return j.contains(key) && j.at(key).is_string() ? j.at(key).as_string()
                                                    : std::string("-");
  };
  const auto num_field = [](const io::Json& j, const std::string& key) {
    return j.contains(key) && j.at(key).is_number()
               ? j.at(key).as_number()
               : std::numeric_limits<double>::quiet_NaN();
  };
  const auto bool_field = [](const io::Json& j, const std::string& key) {
    return j.contains(key) && j.at(key).is_bool() && j.at(key).as_bool();
  };

  std::vector<io::Json> records;
  {
    std::istringstream lines(io::read_file(flight_path));
    std::string line;
    while (std::getline(lines, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      records.push_back(io::Json::parse(line));
    }
  }
  out << "flight report: " << records.size() << " records from "
      << flight_path << '\n';
  if (records.empty()) return 0;

  // Outcome breakdown by (layer, engine, status). std::map keys keep the
  // rendering deterministic regardless of record order.
  struct Outcome {
    std::size_t count = 0;
    double seconds = 0.0;
  };
  std::map<std::string, Outcome> outcomes;
  struct Miss {
    std::size_t count = 0;
    double min_residual_ms = std::numeric_limits<double>::quiet_NaN();
  };
  std::map<std::string, Miss> misses;
  for (const io::Json& r : records) {
    const std::string layer = str_field(r, "layer");
    const std::string engine = str_field(r, "engine");
    const std::string status = str_field(r, "status");
    Outcome& o = outcomes[layer + "\t" + engine + "\t" + status];
    ++o.count;
    const double s = num_field(r, "seconds");
    if (std::isfinite(s)) o.seconds += s;
    if (status == "deadline" || bool_field(r, "deadline_hit")) {
      Miss& m = misses[layer + "\t" + engine];
      ++m.count;
      const double residual = num_field(r, "deadline_residual_ms");
      if (std::isfinite(residual) &&
          !(residual >= m.min_residual_ms)) {  // NaN-safe min
        m.min_residual_ms = residual;
      }
    }
  }
  const auto split3 = [](const std::string& key) {
    std::vector<std::string> parts;
    std::istringstream ss(key);
    std::string part;
    while (std::getline(ss, part, '\t')) parts.push_back(part);
    while (parts.size() < 3) parts.emplace_back("-");
    return parts;
  };

  out << "\noutcomes by layer/engine/status:\n";
  Table outcome_table({"layer", "engine", "status", "count", "seconds"});
  for (const auto& [key, o] : outcomes) {
    const std::vector<std::string> parts = split3(key);
    outcome_table.add_row({parts[0], parts[1], parts[2],
                           std::to_string(o.count), Table::num(o.seconds, 6)});
  }
  out << outcome_table;

  if (!misses.empty()) {
    out << "\ndeadline misses (status deadline or expired budget):\n";
    Table miss_table({"layer", "engine", "misses", "min_residual_ms"});
    for (const auto& [key, m] : misses) {
      const std::vector<std::string> parts = split3(key);
      miss_table.add_row({parts[0], parts[1], std::to_string(m.count),
                          std::isfinite(m.min_residual_ms)
                              ? Table::num(m.min_residual_ms, 3)
                              : "-"});
    }
    out << miss_table;
  }

  // Top-k slowest solves, the usual first stop of a latency post-mortem.
  std::vector<const io::Json*> by_time;
  by_time.reserve(records.size());
  for (const io::Json& r : records) by_time.push_back(&r);
  std::stable_sort(by_time.begin(), by_time.end(),
                   [&](const io::Json* a, const io::Json* b) {
                     const double sa = num_field(*a, "seconds");
                     const double sb = num_field(*b, "seconds");
                     return (std::isfinite(sa) ? sa : -1.0) >
                            (std::isfinite(sb) ? sb : -1.0);
                   });
  if (by_time.size() > top_k) by_time.resize(top_k);
  out << "\ntop " << by_time.size() << " slowest solves:\n";
  Table slow_table(
      {"seq", "layer", "engine", "status", "seconds", "iters", "detail"});
  for (const io::Json* r : by_time) {
    const double seq = num_field(*r, "seq");
    const double iters = num_field(*r, "iterations");
    std::string detail = str_field(*r, "detail");
    if (detail.size() > 40) detail = detail.substr(0, 37) + "...";
    slow_table.add_row(
        {std::isfinite(seq) ? std::to_string(static_cast<long long>(seq))
                            : "-",
         str_field(*r, "layer"), str_field(*r, "engine"),
         str_field(*r, "status"), Table::num(num_field(*r, "seconds"), 6),
         std::isfinite(iters) ? std::to_string(static_cast<long long>(iters))
                              : "-",
         detail});
  }
  out << slow_table;

  // Optional metrics snapshot: surface the rolling-window gauge families
  // next to the flight record so percentiles and post-mortems line up.
  const std::string metrics_path = args.get("metrics", "");
  if (!metrics_path.empty()) {
    out << "\nwindowed metrics from " << metrics_path << ":\n";
    std::istringstream lines(io::read_file(metrics_path));
    std::string line;
    std::size_t shown = 0;
    while (std::getline(lines, line)) {
      if (line.rfind("# ", 0) == 0) continue;
      if (line.find("_window_") != std::string::npos) {
        out << "  " << line << '\n';
        ++shown;
      }
    }
    if (shown == 0) out << "  (no *_window_* series found)\n";
  }
  return 0;
}

int run(const std::vector<std::string>& argv, std::ostream& out,
        std::ostream& err) {
  if (argv.empty() || argv[0] == "--help" || argv[0] == "help") {
    out << usage();
    return argv.empty() ? 1 : 0;
  }
  const std::string command = argv[0];
  std::vector<std::string> rest(argv.begin() + 1, argv.end());

  GlobalFlags obs_flags;
  int code = 1;
  try {
    obs_flags = strip_global_flags(rest);
    if (obs_flags.obs_active()) obs::Registry::global().reset();
    if (!obs_flags.trace_path.empty()) obs::Tracer::global().enable();
    if (!obs_flags.flight_path.empty()) {
      obs::FlightRecorder::global().clear();
      obs::FlightRecorder::global().enable();
    }
    if (obs_flags.has_jobs) exec::ThreadPool::set_default_jobs(obs_flags.jobs);
    if (obs_flags.has_audit) audit::set_level(obs_flags.audit_level);
    if (obs_flags.budget_ms > 0) {
      set_default_solve_budget_ms(obs_flags.budget_ms);
    }
    {
      const obs::ScopedTimer span("cli." + command, "cli");
      code = dispatch(command, rest, out, err);
    }
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    code = 1;
  }
  // The --jobs, --audit and --budget-ms overrides are per-invocation (the
  // test harness calls run() repeatedly in one process).
  if (obs_flags.has_jobs) exec::ThreadPool::set_default_jobs(0);
  if (obs_flags.has_audit) audit::set_level(audit::default_level());
  if (obs_flags.budget_ms > 0) set_default_solve_budget_ms(0.0);

  // Export even when the command failed — a trace of the failing run is
  // precisely the artifact worth keeping. The flight record doubly so: its
  // whole point is the post-mortem of a SolverError / audit failure /
  // blown deadline.
  try {
    if (!obs_flags.trace_path.empty()) {
      const std::uint64_t trace_drops = obs::Tracer::global().dropped();
      obs::write_chrome_trace(obs::Tracer::global(), obs_flags.trace_path);
      obs::Tracer::global().disable();
      out << "wrote trace " << obs_flags.trace_path << '\n';
      if (trace_drops > 0) {
        err << "warning: tracer ring overflowed; dropped " << trace_drops
            << " events (see obs.tracer.dropped_events)\n";
      }
    }
    if (!obs_flags.flight_path.empty()) {
      obs::FlightRecorder& flight = obs::FlightRecorder::global();
      obs::write_flight_jsonl(flight, obs_flags.flight_path);
      out << "wrote flight record " << obs_flags.flight_path << '\n';
      if (flight.dropped() > 0) {
        err << "warning: flight recorder ring overflowed; dropped "
            << flight.dropped() << " records\n";
      }
      flight.disable();
    }
    if (!obs_flags.metrics_path.empty()) {
      obs::write_prometheus(obs::Registry::global(), obs_flags.metrics_path);
      out << "wrote metrics " << obs_flags.metrics_path << '\n';
    }
    if (obs_flags.summary) out << obs::summary_table(obs::Registry::global());
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
  return code;
}

}  // namespace mecsched::cli
