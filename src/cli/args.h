// Tiny command-line argument parser for the mecsched tool.
//
//   mecsched <command> [--flag value]... [--switch]...
//
// Flags are declared up front so typos fail fast with a helpful message
// instead of being ignored.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace mecsched::cli {

class ArgParser {
 public:
  // `allowed_flags` take a value; `allowed_switches` are boolean.
  ArgParser(std::set<std::string> allowed_flags,
            std::set<std::string> allowed_switches);

  // Parses argv-style tokens (excluding the program/command names).
  // Throws ModelError on unknown flags or missing values.
  void parse(const std::vector<std::string>& tokens);

  bool has(const std::string& flag) const;
  std::string get(const std::string& flag, const std::string& fallback) const;
  // Finite number; rejects "nan"/"inf" (std::stod accepts both) and
  // trailing garbage with a ModelError naming the flag.
  double get_num(const std::string& flag, double fallback) const;
  // Non-negative integer count. Digits only — no sign, no decimal point, so
  // "-1" cannot wrap around to 2^64-1 — and overflow is an error, not a
  // silent clamp.
  std::size_t get_count(const std::string& flag, std::size_t fallback) const;
  // Finite and strictly positive.
  double get_positive_num(const std::string& flag, double fallback) const;
  // Finite probability in [0, 1].
  double get_probability(const std::string& flag, double fallback) const;
  bool get_switch(const std::string& name) const;

 private:
  std::set<std::string> allowed_flags_;
  std::set<std::string> allowed_switches_;
  std::map<std::string, std::string> values_;
  std::set<std::string> switches_;
};

}  // namespace mecsched::cli
