// The mecsched command set. Each command is a pure function from parsed
// arguments to an exit code, writing results to the given stream, so the
// whole CLI is unit-testable without spawning processes.
//
//   generate        — build a scenario from generator knobs, write JSON
//   assign          — run an algorithm on a scenario, write plan JSON
//   evaluate        — score a plan (energy/latency/unsatisfied/feasibility)
//   simulate        — replay a plan on the discrete-event simulator
//   compare         — run every algorithm on a scenario, print the table
//   generate-shared — build a data-shared (divisible-task) scenario
//   dta             — run the DTA pipeline on a shared scenario
//   sensitivity     — capacity shadow prices of a scenario
//   trace           — simulate a plan and dump the event timeline
//   generate-arrivals — Poisson-timed scenario for the online scheduler
//   online          — run the rolling-horizon scheduler on a timed scenario
//   breakdown       — itemized Sec. II cost legs of one task
//   recover         — repair a plan after a device failure
//   churn           — run the resilient controller under generated churn
//   sweep           — run a named figure grid on the parallel sweep runner
//   chaos           — solver fault-injection drill over the fallback chain
//   generate-serve  — build a serve workload (universe + event trace)
//   serve           — online sharded scheduling daemon (replay or generate)
//   report          — render a flight-record post-mortem (see --flight-out)
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mecsched::cli {

// Dispatches `mecsched <command> ...`. argv excludes the program name.
// Returns the process exit code; errors are printed to `err`.
int run(const std::vector<std::string>& argv, std::ostream& out,
        std::ostream& err);

// Individual commands (tokens exclude the command name).
int cmd_generate(const std::vector<std::string>& tokens, std::ostream& out);
int cmd_assign(const std::vector<std::string>& tokens, std::ostream& out);
int cmd_evaluate(const std::vector<std::string>& tokens, std::ostream& out);
int cmd_simulate(const std::vector<std::string>& tokens, std::ostream& out);
int cmd_compare(const std::vector<std::string>& tokens, std::ostream& out);
int cmd_generate_shared(const std::vector<std::string>& tokens,
                        std::ostream& out);
int cmd_sensitivity(const std::vector<std::string>& tokens, std::ostream& out);
int cmd_breakdown(const std::vector<std::string>& tokens, std::ostream& out);
int cmd_recover(const std::vector<std::string>& tokens, std::ostream& out);
int cmd_generate_arrivals(const std::vector<std::string>& tokens,
                          std::ostream& out);
int cmd_online(const std::vector<std::string>& tokens, std::ostream& out);
int cmd_trace(const std::vector<std::string>& tokens, std::ostream& out);
int cmd_dta(const std::vector<std::string>& tokens, std::ostream& out);
int cmd_churn(const std::vector<std::string>& tokens, std::ostream& out);
int cmd_sweep(const std::vector<std::string>& tokens, std::ostream& out);
int cmd_chaos(const std::vector<std::string>& tokens, std::ostream& out);
int cmd_generate_serve(const std::vector<std::string>& tokens,
                       std::ostream& out);
int cmd_serve(const std::vector<std::string>& tokens, std::ostream& out);
int cmd_report(const std::vector<std::string>& tokens, std::ostream& out);

std::string usage();

}  // namespace mecsched::cli
