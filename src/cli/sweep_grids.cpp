#include "cli/sweep_grids.h"

namespace mecsched::cli {
namespace {

// Sec. V.A scale shared by the figure grids (mirrors bench_common.h).
constexpr std::size_t kDevices = 50;
constexpr std::size_t kStations = 5;

std::vector<double> range(double lo, double hi, double step) {
  std::vector<double> xs;
  for (double x = lo; x <= hi; x += step) xs.push_back(x);
  return xs;
}

workload::ScenarioConfig tasks_cell(double x, std::uint64_t seed) {
  workload::ScenarioConfig cfg;
  cfg.num_devices = kDevices;
  cfg.num_base_stations = kStations;
  cfg.num_tasks = static_cast<std::size_t>(x);
  cfg.max_input_kb = 3000.0;
  cfg.seed = seed * 1000 + static_cast<std::uint64_t>(x);
  return cfg;
}

workload::ScenarioConfig datasize_cell(double x, std::uint64_t seed) {
  workload::ScenarioConfig cfg;
  cfg.num_devices = kDevices;
  cfg.num_base_stations = kStations;
  cfg.num_tasks = 100;
  cfg.max_input_kb = x;
  cfg.seed = seed * 1000 + static_cast<std::uint64_t>(x);
  return cfg;
}

double energy(const assign::Metrics& m) { return m.total_energy_j; }
double latency(const assign::Metrics& m) { return m.mean_latency_s; }

std::vector<SweepGrid> make_grids() {
  std::vector<SweepGrid> grids;
  grids.push_back({"fig2a", "energy cost vs number of tasks (100..450)",
                   "tasks", range(100, 450, 50), tasks_cell, energy,
                   "total energy (J)"});
  grids.push_back({"fig2b", "energy cost vs max input size (1000..5000 kB)",
                   "max input (kB)", range(1000, 5000, 1000), datasize_cell,
                   energy, "total energy (J)"});
  grids.push_back({"fig4a", "average latency vs number of tasks (100..450)",
                   "tasks", range(100, 450, 50), tasks_cell, latency,
                   "average latency (s)"});
  grids.push_back({"fig4b", "average latency vs max input size (1000..5000 kB)",
                   "max input (kB)", range(1000, 5000, 1000), datasize_cell,
                   latency, "average latency (s)"});
  // Deliberately tiny: exercises the full parallel path (pool, shards,
  // cache) in well under a second, for unit tests and the CI determinism
  // check.
  grids.push_back({"smoke", "tiny fast grid for tests and CI determinism",
                   "tasks", range(20, 40, 10),
                   [](double x, std::uint64_t seed) {
                     workload::ScenarioConfig cfg;
                     cfg.num_devices = 10;
                     cfg.num_base_stations = 2;
                     cfg.num_tasks = static_cast<std::size_t>(x);
                     cfg.max_input_kb = 1000.0;
                     cfg.seed = seed * 1000 + static_cast<std::uint64_t>(x);
                     return cfg;
                   },
                   energy, "total energy (J)"});
  return grids;
}

}  // namespace

const std::vector<SweepGrid>& sweep_grids() {
  // Function-local static: constructed once on first use, destroyed at
  // exit — no heap leak, no naked new.
  static const std::vector<SweepGrid> grids = make_grids();
  return grids;
}

const SweepGrid* find_sweep_grid(const std::string& name) {
  for (const SweepGrid& g : sweep_grids()) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

}  // namespace mecsched::cli
