#include "control/resilient.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "common/deadline.h"

#include "assign/hta_instance.h"
#include "common/error.h"
#include "control/readmission.h"
#include "mec/cost_model.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "obs/window.h"

namespace mecsched::control {
namespace {

using assign::Decision;
using assign::TimedTask;
using sim::FaultKind;
using sim::FaultSchedule;

std::string fate_name(TaskFate f) {
  switch (f) {
    case TaskFate::kPending:
      return "pending";
    case TaskFate::kCompleted:
      return "completed";
    case TaskFate::kRescuedByDta:
      return "rescued-by-dta";
    case TaskFate::kLostIssuer:
      return "lost-issuer";
    case TaskFate::kDeadlineExpired:
      return "deadline-expired";
    case TaskFate::kRetriesExhausted:
      return "retries-exhausted";
  }
  return "unknown";
}

// A task occupying capacity somewhere (mirrors assign/online.cpp).
struct Running {
  std::size_t id = 0;  // input index
  double finish_s = 0.0;
  Decision where = Decision::kCancelled;
  std::size_t issuer = 0;
  std::size_t station = 0;  // issuer's serving station
  double resource = 0.0;
  bool has_external = false;
  std::size_t owner = 0;  // external data owner (valid if has_external)
};

// The system as the controller sees it at `now`: residual capacities minus
// running occupancy, zero capacity on dead hardware, radios re-priced by
// the current link factor.
mec::Topology observed_topology(const mec::Topology& base,
                                const std::vector<Running>& running,
                                const FaultSchedule& faults, double now) {
  std::vector<double> device_used(base.num_devices(), 0.0);
  std::vector<double> station_used(base.num_base_stations(), 0.0);
  for (const Running& r : running) {
    if (r.finish_s <= now) continue;
    if (r.where == Decision::kLocal) device_used[r.issuer] += r.resource;
    if (r.where == Decision::kEdge) station_used[r.station] += r.resource;
  }
  std::vector<mec::Device> devices;
  devices.reserve(base.num_devices());
  for (std::size_t i = 0; i < base.num_devices(); ++i) {
    mec::Device d = base.device(i);
    d.max_resource = faults.device_up(i, now)
                         ? std::max(0.0, d.max_resource - device_used[i])
                         : 0.0;
    const double factor = faults.link_factor(i, now);
    d.radio.upload_bps *= factor;
    d.radio.download_bps *= factor;
    devices.push_back(d);
  }
  std::vector<mec::BaseStation> stations;
  stations.reserve(base.num_base_stations());
  for (std::size_t b = 0; b < base.num_base_stations(); ++b) {
    mec::BaseStation s = base.base_station(b);
    s.max_resource = faults.station_up(b, now)
                         ? std::max(0.0, s.max_resource - station_used[b])
                         : 0.0;
    stations.push_back(s);
  }
  return mec::Topology(std::move(devices), std::move(stations), base.params());
}

}  // namespace

std::string to_string(TaskFate f) { return fate_name(f); }

ResilientResult ResilientController::run(const mec::Topology& topology,
                                         const std::vector<TimedTask>& tasks,
                                         const FaultSchedule& faults,
                                         const SharedDataView* shared) const {
  MECSCHED_REQUIRE(options_.epoch_s > 0.0, "epoch length must be positive");
  MECSCHED_REQUIRE(options_.max_attempts >= 1,
                   "max_attempts must be >= 1, got " +
                       std::to_string(options_.max_attempts));
  MECSCHED_REQUIRE(options_.backoff_base_epochs >= 1,
                   "backoff_base_epochs must be >= 1, got " +
                       std::to_string(options_.backoff_base_epochs));
  MECSCHED_REQUIRE(std::isfinite(options_.decision_budget_ms) &&
                       options_.decision_budget_ms >= 0.0,
                   "decision_budget_ms must be finite and non-negative");
  faults.validate_against(topology.num_devices(),
                          topology.num_base_stations());
  if (shared != nullptr) {
    MECSCHED_REQUIRE(shared->task_items.size() == tasks.size(),
                     "SharedDataView::task_items must align with tasks (" +
                         std::to_string(shared->task_items.size()) + " vs " +
                         std::to_string(tasks.size()) + ")");
    MECSCHED_REQUIRE(
        shared->ownership.size() == topology.num_devices(),
        "SharedDataView::ownership must have one set per device (" +
            std::to_string(shared->ownership.size()) + " vs " +
            std::to_string(topology.num_devices()) + ")");
  }

  ResilientResult result;
  result.outcomes.assign(tasks.size(), ResilientTaskOutcome{});
  if (tasks.empty()) return result;

  // Arrivals in release order.
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].release_s < tasks[b].release_s;
  });

  std::vector<Running> running;
  // The shared waiting-room: bounded retry + exponential epoch backoff,
  // take_ready() in admission order (control/readmission.h).
  ReadmissionQueue waiting(
      {options_.max_attempts, options_.backoff_base_epochs});
  std::size_t next = 0;  // index into `order`

  const double epoch_s = options_.epoch_s;
  const FallbackChain chain(options_.lp);

  // Settle a task that cannot complete.
  auto give_up = [&](std::size_t id, TaskFate fate) {
    result.outcomes[id].fate = fate;
    result.outcomes[id].decision = Decision::kCancelled;
  };

  // Re-admit after a failed attempt, or give up when attempts are gone.
  auto backoff_or_fail = [&](std::size_t id, std::size_t attempts,
                             std::size_t epoch) {
    if (!waiting.retry(id, attempts, epoch)) {
      give_up(id, TaskFate::kRetriesExhausted);
    }
  };

  // DTA rescue: re-divide the task's items across owners alive at `now`.
  // Returns true and fills finish/energy on success.
  auto try_rescue = [&](std::size_t id, const mec::Task& task,
                        double residual_deadline, double now, double* finish,
                        double* energy) -> bool {
    if (!options_.dta_rescue || shared == nullptr) return false;
    const dta::ItemSet& items = shared->task_items[id];
    if (items.empty()) return false;

    // Ownership restricted to live devices; bail if an item is lost.
    std::vector<dta::ItemSet> alive_ownership(shared->ownership.size());
    for (std::size_t dev = 0; dev < shared->ownership.size(); ++dev) {
      if (faults.device_up(dev, now)) {
        alive_ownership[dev] = shared->ownership[dev];
      }
    }
    dta::ItemSet covered;
    for (const dta::ItemSet& own : alive_ownership) {
      covered = dta::set_union(covered, own);
    }
    if (!dta::set_minus(items, covered).empty()) return false;

    dta::DivisibleTask div;
    div.id = task.id;
    div.items = items;
    div.cycles_per_byte = task.cycles_per_byte;
    div.result_kind = task.result_kind;
    div.result_ratio = task.result_ratio;
    div.result_const_bytes = task.result_const_bytes;
    div.resource = task.resource;
    div.deadline_s = residual_deadline;

    dta::SharedDataScenario scenario{topology,
                                     dta::DataUniverse(shared->item_bytes),
                                     std::move(alive_ownership),
                                     {div}};
    dta::DtaOptions dta_opts;
    dta_opts.strategy = options_.rescue_strategy;
    // The greedy partial scheduler cannot throw SolverError; rescue must
    // stay on the no-abort path.
    dta_opts.scheduler = dta::PartialScheduler::kLocalGreedy;
    const dta::DtaResult rescue = dta::run_dta(scenario, dta_opts);
    if (rescue.partials_cancelled > 0 ||
        rescue.partials_deadline_violations > 0 ||
        rescue.processing_time_s > residual_deadline) {
      return false;
    }
    *finish = now + rescue.processing_time_s;
    *energy = rescue.total_energy_j;
    return true;
  };

  const obs::ScopedTimer run_span("controller.run", "control");

  for (std::size_t epoch = 0;
       next < order.size() || !waiting.empty() || !running.empty(); ++epoch) {
    // One span per epoch: the controller's heartbeat in the trace. Args
    // are only rendered while a capture is live.
    const obs::ScopedTimer epoch_span(
        "controller.epoch", "control",
        obs::Tracer::global().enabled()
            ? "\"epoch\":" + std::to_string(epoch) +
                  ",\"running\":" + std::to_string(running.size()) +
                  ",\"waiting\":" + std::to_string(waiting.waiting())
            : std::string());
    const double now = static_cast<double>(epoch + 1) * epoch_s;
    const double prev = static_cast<double>(epoch) * epoch_s;

    // ---- Observe faults that hit running tasks during the last epoch.
    for (const sim::FaultEvent& ev : faults.events_between(prev, now)) {
      std::vector<Running> keep;
      keep.reserve(running.size());
      for (Running& r : running) {
        if (r.finish_s <= ev.time_s) {  // already finished when it struck
          keep.push_back(r);
          continue;
        }
        const bool issuer_died =
            ev.kind == FaultKind::kDeviceFail && ev.target == r.issuer;
        const bool owner_died = ev.kind == FaultKind::kDeviceFail &&
                                r.has_external && ev.target == r.owner;
        const bool path_died = ev.kind == FaultKind::kStationFail &&
                               ev.target == r.station &&
                               r.where != Decision::kLocal;
        if (issuer_died) {
          give_up(r.id, TaskFate::kLostIssuer);
        } else if (owner_died || path_died) {
          ++result.orphaned;
          backoff_or_fail(r.id, result.outcomes[r.id].attempts, epoch);
        } else {
          keep.push_back(r);
        }
      }
      running.swap(keep);
    }

    // ---- Completions free their reservations.
    for (const Running& r : running) {
      if (r.finish_s <= now && result.outcomes[r.id].fate == TaskFate::kPending) {
        result.outcomes[r.id].fate = TaskFate::kCompleted;
        ++result.completed;
      }
    }
    running.erase(std::remove_if(running.begin(), running.end(),
                                 [now](const Running& r) {
                                   return r.finish_s <= now;
                                 }),
                  running.end());

    // ---- Admit new arrivals.
    while (next < order.size() && tasks[order[next]].release_s <= now) {
      waiting.admit(order[next++], epoch);
    }

    // ---- Pull this epoch's batch out of the waiting room.
    const std::vector<ReadmissionEntry> batch = waiting.take_ready(epoch);
    if (batch.empty()) continue;
    ++result.epochs;

    const mec::Topology observed =
        observed_topology(topology, running, faults, now);
    const mec::CostModel observed_cost(observed);

    // ---- Triage: dead issuers, dead owners (rescue), dark cells.
    std::vector<ReadmissionEntry> lp_batch;
    std::vector<mec::Task> lp_tasks;
    for (const ReadmissionEntry& w : batch) {
      const TimedTask& tt = tasks[w.id];
      const std::size_t issuer = tt.task.id.user;
      // Residual slack, net of the time this epoch's decision is allowed
      // to burn: the scheduler's own thinking time is part of the task's
      // latency budget.
      const double residual = tt.task.deadline_s - (now - tt.release_s) -
                              options_.decision_budget_ms * 1e-3;
      const std::size_t attempts_after = w.attempts + 1;
      result.outcomes[w.id].attempts = attempts_after;

      if (residual <= 0.0) {
        give_up(w.id, TaskFate::kDeadlineExpired);
        continue;
      }
      if (!faults.device_up(issuer, now)) {
        // Truly lost: nobody is left to receive the result.
        give_up(w.id, TaskFate::kLostIssuer);
        continue;
      }

      const bool owner_down = tt.task.external_bytes > 0.0 &&
                              !faults.device_up(tt.task.external_owner, now);
      if (owner_down) {
        double finish = 0.0;
        double energy = 0.0;
        if (try_rescue(w.id, tt.task, residual, now, &finish, &energy)) {
          ResilientTaskOutcome& o = result.outcomes[w.id];
          o.fate = TaskFate::kRescuedByDta;
          o.decision = Decision::kLocal;  // partials run on the survivors
          o.start_s = now;
          o.finish_s = finish;
          result.total_energy_j += energy;
          result.makespan_s = std::max(result.makespan_s, finish);
          ++result.completed;
          ++result.rescued_by_dta;
          obs::Tracer& tracer = obs::Tracer::global();
          tracer.instant("controller.dta_rescue", "control",
                         tracer.enabled()
                             ? "\"task\":" + std::to_string(w.id)
                             : std::string());
          continue;
        }
        // The owner may come back; wait for it.
        backoff_or_fail(w.id, attempts_after, epoch);
        continue;
      }

      const std::size_t bs = topology.device(issuer).base_station;
      if (!faults.station_up(bs, now)) {
        // The cell is dark: only fully-local execution is possible, and
        // only if the external data (if any) sits in the same cluster is
        // the fetch even routable. Otherwise wait for the cell.
        const bool fetch_routable =
            tt.task.external_bytes <= 0.0 ||
            topology.same_cluster(tt.task.external_owner, issuer);
        const mec::CostEntry local =
            observed_cost.evaluate(tt.task, mec::Placement::kLocal);
        double used = 0.0;
        for (const Running& r : running) {
          if (r.where == Decision::kLocal && r.issuer == issuer) {
            used += r.resource;
          }
        }
        const bool fits =
            used + tt.task.resource <= topology.device(issuer).max_resource;
        if (fetch_routable && fits && local.latency_s() <= residual) {
          ResilientTaskOutcome& o = result.outcomes[w.id];
          o.decision = Decision::kLocal;
          o.start_s = now;
          o.finish_s = now + local.latency_s();
          result.total_energy_j += local.energy_j;
          result.makespan_s = std::max(result.makespan_s, o.finish_s);
          running.push_back({w.id, o.finish_s, Decision::kLocal, issuer, bs,
                             tt.task.resource, tt.task.external_bytes > 0.0,
                             tt.task.external_owner});
          continue;
        }
        backoff_or_fail(w.id, attempts_after, epoch);
        continue;
      }

      mec::Task t = tt.task;
      t.deadline_s = residual;
      lp_batch.push_back(w);
      lp_tasks.push_back(t);
    }

    // ---- Schedule the healthy batch through the fallback chain.
    if (lp_tasks.empty()) continue;
    const assign::HtaInstance instance(observed, lp_tasks);
    FallbackRung rung = FallbackRung::kLocalFirst;
    CancellationToken epoch_token;
    if (options_.decision_budget_ms > 0.0) {
      epoch_token =
          CancellationToken(Deadline::after_ms(options_.decision_budget_ms));
    }
    const auto decide_start = std::chrono::steady_clock::now();
    const assign::Assignment plan =
        chain.assign(instance, rung, epoch_token);
    const double decision_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - decide_start)
            .count();
    obs::Registry& obs_reg = obs::Registry::global();
    obs_reg.histogram("controller.decision_ms").observe(decision_ms);
    obs_reg.window("controller.decision_ms").observe(decision_ms);
    obs_reg.rate("controller.decisions").record();
    obs::FlightRecorder& flight = obs::FlightRecorder::global();
    if (flight.enabled()) {
      obs::SolveRecord rec;
      rec.layer = "control";
      rec.engine = "decision";
      rec.status = to_string(rung);
      rec.detail = "epoch " + std::to_string(epoch);
      rec.seconds = decision_ms * 1e-3;
      rec.iterations = lp_tasks.size();
      rec.deadline_residual_ms =
          obs::FlightRecorder::residual_ms(epoch_token.deadline());
      rec.deadline_hit = epoch_token.expired();
      flight.record(std::move(rec));
    }
    ++result.rungs[rung];

    for (std::size_t i = 0; i < lp_batch.size(); ++i) {
      const ReadmissionEntry& w = lp_batch[i];
      const Decision d = plan.decisions[i];
      if (d == Decision::kCancelled) {
        backoff_or_fail(w.id, w.attempts + 1, epoch);
        continue;
      }
      const mec::Placement p = assign::to_placement(d);
      const double latency = instance.latency(i, p);
      ResilientTaskOutcome& o = result.outcomes[w.id];
      o.decision = d;
      o.start_s = now;
      o.finish_s = now + latency;
      result.total_energy_j += instance.energy(i, p);
      result.makespan_s = std::max(result.makespan_s, o.finish_s);
      const mec::Task& t = lp_tasks[i];
      running.push_back({w.id, o.finish_s, d, t.id.user,
                         topology.device(t.id.user).base_station, t.resource,
                         t.external_bytes > 0.0, t.external_owner});
    }
  }

  for (const ResilientTaskOutcome& o : result.outcomes) {
    MECSCHED_REQUIRE(o.fate != TaskFate::kPending,
                     "internal: task left pending after the epoch loop");
  }
  result.retries = waiting.retries();
  result.unsatisfied = result.outcomes.size() - result.completed;

  obs::Registry& reg = obs::Registry::global();
  reg.counter("controller.runs").add();
  reg.counter("controller.epochs").add(result.epochs);
  reg.counter("controller.completed").add(result.completed);
  reg.counter("controller.unsatisfied").add(result.unsatisfied);
  reg.counter("controller.orphaned").add(result.orphaned);
  reg.counter("controller.retries").add(result.retries);
  reg.counter("controller.rescued_by_dta").add(result.rescued_by_dta);
  return result;
}

}  // namespace mecsched::control
