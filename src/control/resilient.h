// Resilient rolling-horizon controller — the degradation-tolerant wrapper
// around the online epoch scheduler (assign/online.h).
//
// The plain OnlineScheduler batches arrivals into epochs and runs LP-HTA on
// each batch; it assumes the system it planned against still exists when
// the tasks run. This controller drops that assumption. At every epoch
// boundary it observes the FaultSchedule and
//
//   * cancels truly-lost tasks: the issuer died, so there is no radio left
//     to upload data or receive a result;
//   * re-admits orphaned tasks — tasks whose executor (edge/cloud path) or
//     external data owner died mid-run — with *residual* deadlines (the
//     wait so far is gone for good) and bounded retry: at most
//     `max_attempts` admissions per task, re-admission delayed by an
//     exponentially growing epoch backoff;
//   * rescues orphaned *divisible* tasks whose external owner is down by
//     re-dividing the task's data across the surviving owners through the
//     DTA pipeline (graceful degradation instead of cancellation) — this
//     needs the optional SharedDataView;
//   * prices the system as it is *now*: dead devices and stations carry
//     zero capacity, degraded links are re-priced at their current rates,
//     and tasks in a cluster whose cell is down can only run locally until
//     the cell recovers;
//   * never aborts on a solver failure: every batch goes through the
//     FallbackChain (LP-HTA budgeted -> HGOS -> LocalFirst), and the
//     histogram of which rung served is reported.
//
// Modelling notes: execution is analytic (Sec. II costs), matching
// OnlineScheduler — faults interrupt tasks at the granularity of whole
// runs, not stages (the event simulator covers stage granularity). Energy
// spent on an attempt that is later orphaned stays spent. Rescued tasks'
// partial executors are not charged against the epoch capacity ledger (the
// rescue path uses the generously-capacitated shared-data regime).
#pragma once

#include <cstddef>
#include <vector>

#include "assign/online.h"
#include "control/fallback.h"
#include "dta/data_model.h"
#include "dta/pipeline.h"
#include "mec/topology.h"
#include "sim/fault_schedule.h"

namespace mecsched::control {

struct ResilientOptions {
  double epoch_s = 0.5;
  // Admissions per task: 1 = no retry. Each re-admission (orphaned, owner
  // down, cell down, or cancelled by the scheduler) consumes one attempt.
  std::size_t max_attempts = 3;
  // Re-admission after a failed attempt waits backoff_base_epochs *
  // 2^(attempts-1) epochs.
  std::size_t backoff_base_epochs = 1;
  // Rung-0 configuration; lp.max_lp_iterations is the iteration budget
  // that keeps a degenerate LP from stalling an epoch.
  assign::LpHtaOptions lp{};
  // Re-divide orphaned divisible tasks across surviving owners.
  bool dta_rescue = true;
  dta::DtaStrategy rescue_strategy = dta::DtaStrategy::kWorkload;
  // Per-epoch wall-clock budget for the scheduling decision itself
  // (0 = unlimited). When set, two things happen: (a) every batch goes to
  // the FallbackChain with a deadline of this many milliseconds, so a
  // stalling LP degrades to the greedy floor instead of blocking the
  // epoch; and (b) the decision time is charged against each task's
  // residual deadline — a task whose residual slack is smaller than the
  // decision budget is expired at triage (the decision alone would consume
  // what is left). Deterministic: the *configured* budget is subtracted,
  // not the measured wall time, so results do not depend on machine speed.
  double decision_budget_ms = 0.0;
};

// Optional data-shared view of the workload: per-item sizes, per-device
// ownership (with replicas), and each task's item set (empty = the task is
// holistic-only and cannot be rescued by re-division).
struct SharedDataView {
  std::vector<double> item_bytes;
  std::vector<dta::ItemSet> ownership;   // one per device
  std::vector<dta::ItemSet> task_items;  // one per task
};

enum class TaskFate {
  kPending = 0,         // never admitted (internal; absent from results)
  kCompleted,
  kRescuedByDta,        // completed via re-division across survivors
  kLostIssuer,          // issuer device dead at admission or mid-run
  kDeadlineExpired,     // residual slack gone before a successful attempt
  kRetriesExhausted,    // max_attempts consumed without completing
};

std::string to_string(TaskFate f);

struct ResilientTaskOutcome {
  TaskFate fate = TaskFate::kPending;
  assign::Decision decision = assign::Decision::kCancelled;
  double start_s = 0.0;   // epoch boundary of the successful admission
  double finish_s = 0.0;  // completion (0 when unsatisfied)
  std::size_t attempts = 0;
};

struct ResilientResult {
  std::vector<ResilientTaskOutcome> outcomes;  // aligned with input order

  std::size_t completed = 0;      // includes rescued_by_dta
  std::size_t unsatisfied = 0;    // tasks - completed
  std::size_t retries = 0;        // re-admissions beyond first attempts
  std::size_t orphaned = 0;       // running tasks interrupted by a fault
  std::size_t rescued_by_dta = 0;
  RungHistogram rungs;            // which fallback rung served each epoch

  double total_energy_j = 0.0;    // all attempts, wasted work included
  double makespan_s = 0.0;
  std::size_t epochs = 0;

  double unsatisfied_rate() const {
    return outcomes.empty() ? 0.0
                            : static_cast<double>(unsatisfied) /
                                  static_cast<double>(outcomes.size());
  }
};

class ResilientController {
 public:
  explicit ResilientController(ResilientOptions options = {})
      : options_(options) {}

  // `shared` may be nullptr (no DTA rescue). The fault schedule's targets
  // are validated against the topology.
  ResilientResult run(const mec::Topology& topology,
                      const std::vector<assign::TimedTask>& tasks,
                      const sim::FaultSchedule& faults,
                      const SharedDataView* shared = nullptr) const;

 private:
  ResilientOptions options_;
};

}  // namespace mecsched::control
