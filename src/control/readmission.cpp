#include "control/readmission.h"

#include <algorithm>
#include <string>

#include "common/error.h"

namespace mecsched::control {

ReadmissionQueue::ReadmissionQueue(ReadmissionOptions options)
    : options_(options) {
  MECSCHED_REQUIRE(options_.max_attempts >= 1,
                   "max_attempts must be >= 1, got " +
                       std::to_string(options_.max_attempts));
  MECSCHED_REQUIRE(options_.backoff_base_epochs >= 1,
                   "backoff_base_epochs must be >= 1, got " +
                       std::to_string(options_.backoff_base_epochs));
}

void ReadmissionQueue::admit(std::size_t id, std::size_t epoch) {
  waiting_.push_back({id, epoch, 0});
}

bool ReadmissionQueue::retry(std::size_t id, std::size_t attempts,
                             std::size_t epoch) {
  if (attempts >= options_.max_attempts) return false;
  // Shift caps at 2^20 epochs: far beyond any horizon, and safely below
  // the point where the shift itself would overflow.
  const std::size_t delay = options_.backoff_base_epochs
                            << std::min<std::size_t>(attempts - 1, 20);
  waiting_.push_back({id, epoch + delay, attempts});
  ++retries_;
  return true;
}

std::vector<ReadmissionEntry> ReadmissionQueue::take_ready(std::size_t epoch) {
  std::vector<ReadmissionEntry> batch;
  std::vector<ReadmissionEntry> later;
  for (const ReadmissionEntry& w : waiting_) {
    (w.ready_epoch <= epoch ? batch : later).push_back(w);
  }
  waiting_.swap(later);
  return batch;
}

}  // namespace mecsched::control
