#include "control/fallback.h"

#include <chrono>
#include <numeric>

#include "assign/baselines.h"
#include "assign/hgos.h"
#include "common/error.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "obs/window.h"

namespace mecsched::control {

std::string to_string(FallbackRung r) {
  switch (r) {
    case FallbackRung::kLpHta:
      return "LP-HTA";
    case FallbackRung::kHgos:
      return "HGOS";
    case FallbackRung::kLocalFirst:
      return "LocalFirst";
  }
  return "unknown";
}

std::size_t RungHistogram::total() const {
  return std::accumulate(served.begin(), served.end(), std::size_t{0});
}

FallbackChain::FallbackChain(assign::LpHtaOptions lp) {
  rungs_.push_back(std::make_shared<assign::LpHta>(lp));
  rungs_.push_back(std::make_shared<assign::Hgos>());
  rungs_.push_back(std::make_shared<assign::LocalFirst>());
}

FallbackChain::FallbackChain(
    std::vector<std::shared_ptr<assign::Assigner>> rungs)
    : rungs_(std::move(rungs)) {
  MECSCHED_REQUIRE(!rungs_.empty() && rungs_.size() <= kNumRungs,
                   "fallback chain needs 1.." + std::to_string(kNumRungs) +
                       " rungs, got " + std::to_string(rungs_.size()));
}

assign::Assignment FallbackChain::assign(const assign::HtaInstance& instance,
                                         FallbackRung& served) const {
  return assign(instance, served, CancellationToken{});
}

assign::Assignment FallbackChain::assign(const assign::HtaInstance& instance,
                                         FallbackRung& served,
                                         const CancellationToken& cancel)
    const {
  obs::Registry& reg = obs::Registry::global();
  obs::Tracer& tracer = obs::Tracer::global();
  obs::FlightRecorder& flight = obs::FlightRecorder::global();
  if (!cancel.deadline().is_unlimited()) {
    reg.histogram("fallback.budget_ms").observe(cancel.deadline()
                                                    .remaining_ms());
  }
  // One flight record per rung outcome: served, failed or skipped — the
  // post-mortem view of how a decision degraded down the chain.
  const auto cut_record = [&](FallbackRung rung, const std::string& status,
                              const std::string& detail, double seconds) {
    obs::SolveRecord rec;
    rec.layer = "control";
    rec.engine = to_string(rung);
    rec.status = status;
    rec.detail = detail;
    rec.seconds = seconds;
    rec.deadline_residual_ms =
        obs::FlightRecorder::residual_ms(cancel.deadline());
    rec.deadline_hit = cancel.expired();
    flight.record(std::move(rec));
  };
  std::string last_error;
  for (std::size_t r = 0; r < rungs_.size(); ++r) {
    const auto rung = static_cast<FallbackRung>(r);
    if (r + 1 < rungs_.size() && cancel.expired()) {
      // The budget is gone; don't even start a non-final rung, drop
      // straight toward the floor.
      reg.counter("fallback.skipped." + to_string(rung)).add();
      if (flight.enabled()) cut_record(rung, "skipped", last_error, 0.0);
      if (last_error.empty()) last_error = "budget exhausted";
      continue;
    }
    const auto rung_start = std::chrono::steady_clock::now();
    const auto rung_ms = [&rung_start] {
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - rung_start)
          .count();
    };
    try {
      assign::Assignment plan = rungs_[r]->assign(instance, cancel);
      served = rung;
      const double ms = rung_ms();
      reg.counter("fallback.served." + to_string(rung)).add();
      reg.histogram("fallback.rung_ms").observe(ms);
      reg.window("fallback.rung_ms").observe(ms);
      if (flight.enabled()) cut_record(rung, "served", "", ms * 1e-3);
      return plan;
    } catch (const SolverError& e) {
      last_error = e.what();
      const double ms = rung_ms();
      // A rung falling over is exactly the kind of rare event a trace
      // should pin to a timestamp.
      reg.counter("fallback.failed." + to_string(rung)).add();
      reg.histogram("fallback.rung_ms").observe(ms);
      reg.window("fallback.rung_ms").observe(ms);
      if (flight.enabled()) cut_record(rung, "failed", e.what(), ms * 1e-3);
      tracer.instant("fallback.rung_failed", "control",
                     tracer.enabled()
                         ? "\"rung\":\"" + to_string(rung) + "\""
                         : std::string());
    }
  }
  throw SolverError("every fallback rung failed; last error: " + last_error);
}

}  // namespace mecsched::control
