// Orphan re-admission with bounded retry and exponential epoch backoff —
// the waiting-room every epoch-driven controller shares.
//
// Extracted from ResilientController so the serve daemon (serve/daemon.h)
// and the churn CLI run one implementation of the retry policy instead of
// two copies that drift. The contract:
//
//   * admit() enters a task with zero attempts consumed, ready at the
//     given epoch;
//   * retry() re-enters a task after a failed attempt, delayed by
//     backoff_base_epochs * 2^(attempts-1) epochs, or refuses (returns
//     false) once max_attempts admissions are consumed — the caller then
//     settles the task's terminal fate;
//   * take_ready() pops everything ready at an epoch boundary *in
//     admission order*. Batch order is part of the determinism contract:
//     both controllers feed the batch to solvers whose output depends on
//     task order, and a replayed trace must produce a byte-identical
//     decision log.
#pragma once

#include <cstddef>
#include <vector>

namespace mecsched::control {

struct ReadmissionOptions {
  // Admissions per task: 1 = no retry. Each admission (first or re-)
  // consumes one attempt.
  std::size_t max_attempts = 3;
  // Re-admission after a failed attempt waits backoff_base_epochs *
  // 2^(attempts-1) epochs.
  std::size_t backoff_base_epochs = 1;
};

// One task awaiting (re-)admission.
struct ReadmissionEntry {
  std::size_t id = 0;           // caller-scoped task identifier
  std::size_t ready_epoch = 0;  // first epoch eligible for take_ready()
  std::size_t attempts = 0;     // admissions already consumed
};

class ReadmissionQueue {
 public:
  // Throws ModelError for max_attempts == 0 or backoff_base_epochs == 0.
  explicit ReadmissionQueue(ReadmissionOptions options = {});

  // First admission: ready at `epoch`, zero attempts consumed yet.
  void admit(std::size_t id, std::size_t epoch);

  // Re-admission after a failed attempt (`attempts` already consumed,
  // >= 1). True when the retry was scheduled; false when the attempt
  // budget is exhausted.
  bool retry(std::size_t id, std::size_t attempts, std::size_t epoch);

  // Pops every entry with ready_epoch <= epoch, preserving admission
  // order; later entries keep waiting.
  std::vector<ReadmissionEntry> take_ready(std::size_t epoch);

  std::size_t waiting() const { return waiting_.size(); }
  bool empty() const { return waiting_.empty(); }
  // Successful retry() calls (re-admissions beyond first attempts).
  std::size_t retries() const { return retries_; }
  const ReadmissionOptions& options() const { return options_; }

 private:
  ReadmissionOptions options_;
  std::vector<ReadmissionEntry> waiting_;
  std::size_t retries_ = 0;
};

}  // namespace mecsched::control
