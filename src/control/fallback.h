// Solver fallback chain: no SolverError or iteration-limit blowup may ever
// abort an epoch of the rolling-horizon controller.
//
// The chain tries its rungs in fixed quality order —
//
//   rung 0  LP-HTA under an iteration budget (the paper's algorithm; best
//           energy, but its Step-1 LP can exhaust the budget on adversarial
//           or degenerate instances),
//   rung 1  HGOS (greedy, never solves an LP),
//   rung 2  LocalFirst (O(n) greedy; cannot fail),
//
// — catching SolverError from a rung and moving on, and records which rung
// served. Only if *every* rung throws does the chain rethrow the last
// error; with the default rungs that cannot happen, which is the
// availability guarantee the resilient controller builds on.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "assign/assigner.h"
#include "assign/lp_hta.h"

namespace mecsched::control {

enum class FallbackRung : std::size_t {
  kLpHta = 0,
  kHgos = 1,
  kLocalFirst = 2,
};

inline constexpr std::size_t kNumRungs = 3;

std::string to_string(FallbackRung r);

// Cumulative tally of which rung produced each served assignment.
struct RungHistogram {
  std::array<std::size_t, kNumRungs> served{};

  std::size_t total() const;
  std::size_t& operator[](FallbackRung r) {
    return served[static_cast<std::size_t>(r)];
  }
  std::size_t at(FallbackRung r) const {
    return served[static_cast<std::size_t>(r)];
  }
};

class FallbackChain {
 public:
  // The standard chain described above. `lp` configures rung 0;
  // lp.max_lp_iterations is the iteration budget (0 = engine default).
  explicit FallbackChain(assign::LpHtaOptions lp = {});

  // A custom chain (tests use throwing stubs). Rungs map to histogram
  // slots by position; at most kNumRungs rungs.
  explicit FallbackChain(
      std::vector<std::shared_ptr<assign::Assigner>> rungs);

  // Runs the chain. On success fills `served` with the winning rung and
  // returns its plan; rethrows the last SolverError only if every rung
  // failed.
  assign::Assignment assign(const assign::HtaInstance& instance,
                            FallbackRung& served) const;

  // Budgeted run. Every rung receives the same token (its deadline is
  // absolute, so later rungs automatically see only the *remaining*
  // budget); a rung that degrades to kDeadline internally either returns
  // an audited anytime plan or throws, in which case the next rung runs
  // with what is left. Non-final rungs are skipped outright once the
  // budget is exhausted — the final rung is the O(n log n) floor and
  // always runs. Observability: histogram fallback.budget_ms (remaining
  // budget at entry) and counters fallback.skipped.<rung>.
  assign::Assignment assign(const assign::HtaInstance& instance,
                            FallbackRung& served,
                            const CancellationToken& cancel) const;

 private:
  std::vector<std::shared_ptr<assign::Assigner>> rungs_;
};

}  // namespace mecsched::control
