#include "sim/event_queue.h"

#include <algorithm>

#include "common/error.h"

namespace mecsched::sim {

void EventQueue::schedule(double when, Callback cb) {
  MECSCHED_REQUIRE(when >= now_ - 1e-12, "cannot schedule into the past");
  queue_.push(Event{std::max(when, now_), next_seq_++, std::move(cb)});
}

double EventQueue::run() {
  double last = 0.0;
  while (!queue_.empty()) {
    // Moving out of the priority queue requires a const_cast-free copy;
    // callbacks are small so the copy is fine.
    Event e = queue_.top();
    queue_.pop();
    now_ = e.when;
    last = e.when;
    ++processed_;
    e.cb(now_);
  }
  return last;
}

double Resource::acquire(double now, double duration) {
  MECSCHED_REQUIRE(duration >= 0.0, "service duration must be non-negative");
  const double start = std::max(now, free_at_);
  free_at_ = start + duration;
  busy_time_ += duration;
  return start;
}

}  // namespace mecsched::sim
