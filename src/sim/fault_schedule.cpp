#include "sim/fault_schedule.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace mecsched::sim {

std::string to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kDeviceFail:
      return "device-fail";
    case FaultKind::kDeviceRecover:
      return "device-recover";
    case FaultKind::kStationFail:
      return "station-fail";
    case FaultKind::kStationRecover:
      return "station-recover";
    case FaultKind::kLinkDegrade:
      return "link-degrade";
    case FaultKind::kLinkRestore:
      return "link-restore";
  }
  return "unknown";
}

namespace {

std::string describe(const FaultEvent& e) {
  std::ostringstream os;
  os << to_string(e.kind) << " target=" << e.target << " at t=" << e.time_s;
  if (e.kind == FaultKind::kLinkDegrade) os << " factor=" << e.factor;
  return os.str();
}

bool targets_device(FaultKind k) {
  return k == FaultKind::kDeviceFail || k == FaultKind::kDeviceRecover ||
         k == FaultKind::kLinkDegrade || k == FaultKind::kLinkRestore;
}

}  // namespace

FaultSchedule::FaultSchedule(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  for (const FaultEvent& e : events_) {
    MECSCHED_REQUIRE(e.time_s >= 0.0, "fault event before t=0: " + describe(e));
    if (e.kind == FaultKind::kLinkDegrade) {
      MECSCHED_REQUIRE(e.factor > 0.0 && e.factor <= 1.0,
                       "link degradation factor must be in (0, 1]: " +
                           describe(e));
    }
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time_s < b.time_s;
                   });
}

void FaultSchedule::validate_against(std::size_t num_devices,
                                     std::size_t num_stations) const {
  for (const FaultEvent& e : events_) {
    if (targets_device(e.kind)) {
      MECSCHED_REQUIRE(e.target < num_devices,
                       "fault event targets unknown device (" + describe(e) +
                           ", topology has " + std::to_string(num_devices) +
                           " devices)");
    } else {
      MECSCHED_REQUIRE(e.target < num_stations,
                       "fault event targets unknown station (" + describe(e) +
                           ", topology has " + std::to_string(num_stations) +
                           " stations)");
    }
  }
}

bool FaultSchedule::device_up(std::size_t device, double t) const {
  bool up = true;
  for (const FaultEvent& e : events_) {
    if (e.time_s > t) break;
    if (e.target != device) continue;
    if (e.kind == FaultKind::kDeviceFail) up = false;
    if (e.kind == FaultKind::kDeviceRecover) up = true;
  }
  return up;
}

bool FaultSchedule::station_up(std::size_t station, double t) const {
  bool up = true;
  for (const FaultEvent& e : events_) {
    if (e.time_s > t) break;
    if (e.target != station) continue;
    if (e.kind == FaultKind::kStationFail) up = false;
    if (e.kind == FaultKind::kStationRecover) up = true;
  }
  return up;
}

double FaultSchedule::link_factor(std::size_t device, double t) const {
  double factor = 1.0;
  for (const FaultEvent& e : events_) {
    if (e.time_s > t) break;
    if (e.target != device) continue;
    if (e.kind == FaultKind::kLinkDegrade) factor = e.factor;
    if (e.kind == FaultKind::kLinkRestore) factor = 1.0;
  }
  return factor;
}

std::vector<FaultEvent> FaultSchedule::events_between(double from,
                                                      double to) const {
  std::vector<FaultEvent> out;
  for (const FaultEvent& e : events_) {
    if (e.time_s > to) break;
    if (e.time_s > from) out.push_back(e);
  }
  return out;
}

std::size_t FaultSchedule::device_failures() const {
  std::size_t n = 0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kDeviceFail) ++n;
  }
  return n;
}

std::size_t FaultSchedule::station_failures() const {
  std::size_t n = 0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kStationFail) ++n;
  }
  return n;
}

FaultSchedule FaultSchedule::single_device_failure(std::size_t device,
                                                   double at_s) {
  return FaultSchedule({{at_s, FaultKind::kDeviceFail, device, 1.0}});
}

FaultSchedule FaultSchedule::merged_with(const FaultSchedule& extra) const {
  std::vector<FaultEvent> all = events_;
  all.insert(all.end(), extra.events_.begin(), extra.events_.end());
  return FaultSchedule(std::move(all));
}

}  // namespace mecsched::sim
