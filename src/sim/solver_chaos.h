// Solver-level chaos injection — the solver-side sibling of the topology
// fault machinery in sim/fault_schedule.h. Where FaultSchedule fails
// devices, stations and links, SolverChaos fails the *solvers themselves*:
// iteration stalls, NaN poisoning of a factorization, forced cancellation
// at pivot k, and spurious SolverErrors, injected through the
// common::chaos hook the lp/ and ilp/ engines probe at their iteration
// boundaries.
//
// Determinism contract (tested in solver_chaos_test.cpp and CI's chaos
// job): the decision at each probe site is a pure hash of
// (seed, engine, rows, cols, iteration) — never a global solve counter or
// a clock — so the same seed yields byte-identical fault traces and final
// assignments at any --jobs level. Stalls and cancellations surface as
// deterministic SolveStatus::kDeadline at that iteration, with no
// wall-clock sleeps anywhere.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/chaos_hook.h"
#include "common/thread_annotations.h"

namespace mecsched::sim {

enum class SolverFaultKind {
  kStall = 0,       // solver stops making progress -> kDeadline
  kNanPoison,       // factorization input corrupted -> SolverError (guards)
  kCancel,          // forced cancellation at this iteration -> kDeadline
  kSpuriousError,   // solver throws SolverError outright
};

std::string to_string(SolverFaultKind k);

// One entry of the deterministic fault matrix: fault `engine` ("simplex",
// "ipm", "bnb") at exactly `iteration` (every solve that reaches it).
struct ForcedSolverFault {
  std::string engine;
  std::size_t iteration = 0;
  SolverFaultKind kind = SolverFaultKind::kCancel;
};

struct SolverChaosConfig {
  std::uint64_t seed = 1;
  // Per-probe-site fault probabilities (each site is one solver iteration;
  // a fault fires at most one kind per site). Must each lie in [0, 1] and
  // sum to at most 1.
  double stall_prob = 0.0;
  double nan_prob = 0.0;
  double cancel_prob = 0.0;
  double error_prob = 0.0;
  // Deterministic overrides, checked before the probabilistic draw.
  std::vector<ForcedSolverFault> forced;
};

// One injected fault, as recorded into the trace. Identical probe sites
// are aggregated by `count` when the trace is read back.
struct SolverFaultRecord {
  std::string engine;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t iteration = 0;
  SolverFaultKind kind = SolverFaultKind::kStall;
  std::size_t count = 1;

  friend bool operator==(const SolverFaultRecord&,
                         const SolverFaultRecord&) = default;
};

class SolverChaos final : public chaos::Hook {
 public:
  // Validates the config (probabilities in range).
  explicit SolverChaos(SolverChaosConfig config);

  // The hook the solvers call. Thread-safe; deterministic in its arguments.
  chaos::Action probe(const char* engine, std::size_t rows, std::size_t cols,
                      std::size_t iteration) override;

  // Injected-fault trace: sorted by (engine, rows, cols, iteration, kind)
  // and aggregated, so it is byte-identical across thread schedules.
  std::vector<SolverFaultRecord> trace() const;

  // Total faults injected so far.
  std::size_t injected() const;

  const SolverChaosConfig& config() const { return config_; }

 private:
  SolverChaosConfig config_;  // immutable after construction
  mutable Mutex mu_;
  std::vector<SolverFaultRecord> records_ MECSCHED_GUARDED_BY(mu_);
};

// RAII arming of the process-wide solver hook. At most one drill at a time;
// nesting is a programming error (the inner scope would disarm the outer).
class ChaosArmed {
 public:
  explicit ChaosArmed(SolverChaos& chaos) { chaos::arm(&chaos); }
  ~ChaosArmed() { chaos::arm(nullptr); }
  ChaosArmed(const ChaosArmed&) = delete;
  ChaosArmed& operator=(const ChaosArmed&) = delete;
};

}  // namespace mecsched::sim
