#include "sim/solver_chaos.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <tuple>

#include "common/error.h"
#include "obs/registry.h"

namespace mecsched::sim {

namespace {

// splitmix64: the standard 64-bit finalizer-style mixer. Deterministic and
// platform-independent, which is all the fault draw needs.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash_cstr(const char* s) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 1099511628211ull;
  }
  return h;
}

chaos::Action to_action(SolverFaultKind k) {
  switch (k) {
    case SolverFaultKind::kStall:
      return chaos::Action::kStall;
    case SolverFaultKind::kNanPoison:
      return chaos::Action::kPoisonNan;
    case SolverFaultKind::kCancel:
      return chaos::Action::kCancel;
    case SolverFaultKind::kSpuriousError:
      return chaos::Action::kError;
  }
  return chaos::Action::kNone;
}

void require_probability(double p, const char* name) {
  MECSCHED_REQUIRE(std::isfinite(p) && p >= 0.0 && p <= 1.0,
                   std::string(name) + " must lie in [0, 1]");
}

}  // namespace

std::string to_string(SolverFaultKind k) {
  switch (k) {
    case SolverFaultKind::kStall:
      return "stall";
    case SolverFaultKind::kNanPoison:
      return "nan-poison";
    case SolverFaultKind::kCancel:
      return "cancel";
    case SolverFaultKind::kSpuriousError:
      return "spurious-error";
  }
  return "unknown";
}

SolverChaos::SolverChaos(SolverChaosConfig config)
    : config_(std::move(config)) {
  require_probability(config_.stall_prob, "stall_prob");
  require_probability(config_.nan_prob, "nan_prob");
  require_probability(config_.cancel_prob, "cancel_prob");
  require_probability(config_.error_prob, "error_prob");
  const double total = config_.stall_prob + config_.nan_prob +
                       config_.cancel_prob + config_.error_prob;
  MECSCHED_REQUIRE(total <= 1.0 + 1e-12,
                   "solver-chaos fault probabilities must sum to at most 1");
}

chaos::Action SolverChaos::probe(const char* engine, std::size_t rows,
                                 std::size_t cols, std::size_t iteration) {
  SolverFaultKind kind{};
  bool fire = false;

  // Forced fault-matrix entries first: "cancel simplex at pivot 7".
  for (const ForcedSolverFault& f : config_.forced) {
    if (f.iteration == iteration && f.engine == engine) {
      kind = f.kind;
      fire = true;
      break;
    }
  }

  if (!fire) {
    // Pure hash of (seed, site): no global counters, no clocks — the same
    // solve faults identically whatever thread runs it.
    const std::uint64_t h =
        mix64(config_.seed ^ hash_cstr(engine) ^
              mix64(static_cast<std::uint64_t>(rows) * 0x9e3779b97f4a7c15ull) ^
              mix64(static_cast<std::uint64_t>(cols) * 0xc2b2ae3d27d4eb4full) ^
              mix64(static_cast<std::uint64_t>(iteration) *
                    0x165667b19e3779f9ull));
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
    double edge = config_.stall_prob;
    if (u < edge) {
      kind = SolverFaultKind::kStall;
      fire = true;
    } else if (u < (edge += config_.nan_prob)) {
      kind = SolverFaultKind::kNanPoison;
      fire = true;
    } else if (u < (edge += config_.cancel_prob)) {
      kind = SolverFaultKind::kCancel;
      fire = true;
    } else if (u < (edge += config_.error_prob)) {
      kind = SolverFaultKind::kSpuriousError;
      fire = true;
    }
  }

  if (!fire) return chaos::Action::kNone;

  {
    const MutexLock lock(mu_);
    records_.push_back({engine, rows, cols, iteration, kind, 1});
  }
  obs::Registry::global().counter("chaos.injected." + to_string(kind)).add();
  return to_action(kind);
}

std::vector<SolverFaultRecord> SolverChaos::trace() const {
  std::vector<SolverFaultRecord> out;
  {
    const MutexLock lock(mu_);
    out = records_;
  }
  std::sort(out.begin(), out.end(),
            [](const SolverFaultRecord& a, const SolverFaultRecord& b) {
              return std::tie(a.engine, a.rows, a.cols, a.iteration, a.kind) <
                     std::tie(b.engine, b.rows, b.cols, b.iteration, b.kind);
            });
  // Aggregate identical sites (the same solve shape can fault many times
  // across cells); the collapsed form is what must be byte-identical.
  std::vector<SolverFaultRecord> collapsed;
  for (const SolverFaultRecord& r : out) {
    if (!collapsed.empty()) {
      SolverFaultRecord& last = collapsed.back();
      if (last.engine == r.engine && last.rows == r.rows &&
          last.cols == r.cols && last.iteration == r.iteration &&
          last.kind == r.kind) {
        ++last.count;
        continue;
      }
    }
    collapsed.push_back(r);
  }
  return collapsed;
}

std::size_t SolverChaos::injected() const {
  const MutexLock lock(mu_);
  return records_.size();
}

}  // namespace mecsched::sim
