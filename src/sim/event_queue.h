// Discrete-event simulation core: a time-ordered queue of callbacks.
//
// Events at equal timestamps fire in insertion order (a monotone sequence
// number breaks ties), which makes every simulation run deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mecsched::sim {

class EventQueue {
 public:
  using Callback = std::function<void(double now)>;

  // Schedules `cb` at absolute time `when` (must be >= the current time).
  void schedule(double when, Callback cb);

  // Runs until no events remain. Returns the time of the last event (0 if
  // none ran).
  double run();

  double now() const { return now_; }
  std::size_t processed() const { return processed_; }

 private:
  struct Event {
    double when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

// A FIFO, non-preemptive server (a radio link, a CPU, a backhaul pipe).
// acquire() returns the time service can start for a request arriving at
// `now` and books the server until start + duration.
class Resource {
 public:
  double acquire(double now, double duration);

  double free_at() const { return free_at_; }
  double busy_time() const { return busy_time_; }

 private:
  double free_at_ = 0.0;
  double busy_time_ = 0.0;
};

}  // namespace mecsched::sim
