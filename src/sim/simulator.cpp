#include "sim/simulator.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "mec/cost_model.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "sim/event_queue.h"

namespace mecsched::sim {
namespace {

using assign::Decision;
using units::transfer_seconds;

// One service step: hold `resource` (nullable => no contention) for
// `duration`, then wait `latency` more (propagation that does not occupy
// the resource), spending `energy`.
struct Stage {
  Resource* resource = nullptr;
  double duration = 0.0;
  double latency = 0.0;
  double energy = 0.0;
  // The mobile device whose hardware this stage occupies (its CPU or its
  // radio); stages on base stations / WAN / cloud carry no device and are
  // immune to device-failure injection.
  std::optional<std::size_t> device;
  // The base station whose CPU or forwarding path this stage needs; a
  // station outage at the stage's start kills the task.
  std::optional<std::size_t> station;
  // Radio stages are subject to the device's link-degradation factor.
  bool radio = false;
};

using Chain = std::vector<Stage>;

// The execution plan of one placed task: parallel prefix legs that join,
// then a sequential suffix. Legs may be empty (they join immediately).
struct TaskPlan {
  std::vector<Chain> legs;
  Chain suffix;
};

// Mutable per-task state shared by the scheduled callbacks.
struct TaskState {
  std::size_t task = 0;
  int pending_legs = 0;
  TaskTimeline* timeline = nullptr;
  Chain suffix;
};

// Runs `chain[idx..]` starting at the current event time, then calls
// `done`. All captured state is by value (shared_ptr / copies), so no
// callback ever references a dead stack frame. `faults` outlives the
// queue run (it lives in simulate()'s frame).
void run_chain(EventQueue& queue, std::shared_ptr<const Chain> chain,
               std::size_t idx, double now, TaskTimeline* timeline,
               const FaultSchedule* faults, std::function<void(double)> done) {
  if (idx == chain->size()) {
    done(now);
    return;
  }
  const Stage& s = (*chain)[idx];
  // Link degradation stretches a radio stage's service time and energy;
  // the factor is sampled when the stage is requested.
  double duration = s.duration;
  double energy = s.energy;
  if (s.radio && s.device.has_value()) {
    const double factor = faults->link_factor(*s.device, now);
    duration /= factor;
    energy /= factor;
  }
  const double start =
      s.resource != nullptr ? s.resource->acquire(now, duration) : now;
  const bool device_dead =
      s.device.has_value() && !faults->device_up(*s.device, start);
  const bool station_dead =
      s.station.has_value() && !faults->station_up(*s.station, start);
  if (device_dead || station_dead) {
    // The hardware died before this stage could begin: the task is lost.
    timeline->failed = true;
    return;
  }
  timeline->energy_j += energy;
  queue.schedule(start + duration + s.latency,
                 [&queue, chain, idx, timeline, faults,
                  done = std::move(done)](double when) {
                   run_chain(queue, chain, idx + 1, when, timeline, faults,
                             std::move(done));
                 });
}

// All FIFO servers of the simulated system.
struct Servers {
  std::vector<Resource> device_up;
  std::vector<Resource> device_down;
  std::vector<Resource> device_cpu;
  std::vector<Resource> station_cpu;
  Resource backhaul;
  Resource wan;
};

}  // namespace

SimResult simulate(const assign::HtaInstance& instance,
                   const assign::Assignment& assignment, SimOptions options) {
  const obs::ScopedTimer span("sim.run", "sim");
  MECSCHED_REQUIRE(assignment.size() == instance.num_tasks(),
                   "assignment size mismatch");
  const mec::Topology& topo = instance.topology();
  const mec::SystemParameters& params = topo.params();
  const mec::CostModel cost(topo);

  SimResult result;
  result.timelines.resize(instance.num_tasks());

  Servers servers;
  const bool contend = options.model_contention;
  if (contend) {
    servers.device_up.resize(topo.num_devices());
    servers.device_down.resize(topo.num_devices());
    servers.device_cpu.resize(topo.num_devices());
    servers.station_cpu.resize(topo.num_base_stations());
  }
  auto up = [&](std::size_t d) { return contend ? &servers.device_up[d] : nullptr; };
  auto down = [&](std::size_t d) { return contend ? &servers.device_down[d] : nullptr; };
  auto dev_cpu = [&](std::size_t d) { return contend ? &servers.device_cpu[d] : nullptr; };
  auto bs_cpu = [&](std::size_t b) { return contend ? &servers.station_cpu[b] : nullptr; };
  Resource* backhaul = contend ? &servers.backhaul : nullptr;
  Resource* wan = contend ? &servers.wan : nullptr;

  // ---- Build the plan of every placed task (pure data, no callbacks).
  std::vector<TaskPlan> plans(instance.num_tasks());
  for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
    const Decision d = assignment.decisions[t];
    if (d == Decision::kCancelled) continue;
    const mec::Task& task = instance.task(t);
    const std::size_t issuer = task.id.user;
    const std::size_t owner = task.external_owner;
    const std::size_t bs = topo.device(issuer).base_station;
    const double alpha = task.local_bytes;
    const double beta = task.external_bytes;
    const double result_bytes = task.result_bytes();
    const bool fetch_needed = beta > 0.0 && owner != issuer;
    const bool cross = fetch_needed && !topo.same_cluster(owner, issuer);
    TaskPlan& plan = plans[t];

    // External fetch leg up to the issuer's base station. The backhaul hop
    // only exists for local/edge placements; for cloud the owner's station
    // forwards straight over the WAN (Sec. II, t^(R)_ij3 has no t_BB term).
    Chain fetch_leg;
    if (fetch_needed) {
      fetch_leg.push_back({up(owner), cost.upload_seconds(owner, beta), 0.0,
                           cost.upload_energy(owner, beta), owner,
                           std::nullopt, true});
      if (cross && d != Decision::kCloud) {
        // The backhaul hop lands at the issuer's station; an outage there
        // leaves the fetched data undeliverable.
        fetch_leg.push_back({backhaul,
                             transfer_seconds(beta, params.bs_to_bs_rate_bps),
                             params.bs_to_bs_latency_s,
                             cost.bs_to_bs_energy(beta), std::nullopt, bs,
                             false});
      }
    }

    switch (d) {
      case Decision::kLocal: {
        Chain leg = fetch_leg;
        if (fetch_needed) {
          leg.push_back({down(issuer), cost.download_seconds(issuer, beta),
                         0.0, cost.download_energy(issuer, beta), issuer,
                         std::nullopt, true});
        }
        plan.legs.push_back(std::move(leg));
        const double f = topo.device(issuer).cpu_hz;
        plan.suffix.push_back({dev_cpu(issuer), task.cycles() / f, 0.0,
                               params.kappa * task.cycles() * f * f, issuer,
                               std::nullopt, false});
        break;
      }
      case Decision::kEdge: {
        plan.legs.push_back(std::move(fetch_leg));
        Chain alpha_leg;
        if (alpha > 0.0) {
          alpha_leg.push_back({up(issuer), cost.upload_seconds(issuer, alpha),
                               0.0, cost.upload_energy(issuer, alpha), issuer,
                               std::nullopt, true});
        }
        plan.legs.push_back(std::move(alpha_leg));
        plan.suffix.push_back(
            {bs_cpu(bs), task.cycles() / topo.base_station(bs).cpu_hz, 0.0,
             0.0, std::nullopt, bs, false});
        plan.suffix.push_back({down(issuer),
                               cost.download_seconds(issuer, result_bytes),
                               0.0,
                               cost.download_energy(issuer, result_bytes),
                               issuer, std::nullopt, true});
        break;
      }
      case Decision::kCloud: {
        plan.legs.push_back(std::move(fetch_leg));
        Chain alpha_leg;
        if (alpha > 0.0) {
          alpha_leg.push_back({up(issuer), cost.upload_seconds(issuer, alpha),
                               0.0, cost.upload_energy(issuer, alpha), issuer,
                               std::nullopt, true});
        }
        plan.legs.push_back(std::move(alpha_leg));
        const double wan_bytes = alpha + beta + result_bytes;
        // The issuer's station forwards everything over the WAN; its
        // outage severs the cloud path for the whole cluster.
        plan.suffix.push_back(
            {wan, transfer_seconds(wan_bytes, params.bs_to_cloud_rate_bps),
             params.bs_to_cloud_latency_s, cost.bs_to_cloud_energy(wan_bytes),
             std::nullopt, bs, false});
        // Cloud computation: width-unbounded, never a shared resource.
        plan.suffix.push_back(
            {nullptr, task.cycles() / params.cloud_hz, 0.0, 0.0,
             std::nullopt, std::nullopt, false});
        plan.suffix.push_back({down(issuer),
                               cost.download_seconds(issuer, result_bytes),
                               0.0,
                               cost.download_energy(issuer, result_bytes),
                               issuer, std::nullopt, true});
        break;
      }
      case Decision::kCancelled:
        break;
    }
  }

  // ---- Execute.
  MECSCHED_REQUIRE(
      options.release_times.empty() ||
          options.release_times.size() == instance.num_tasks(),
      "release_times must be empty or one per task (got " +
          std::to_string(options.release_times.size()) + " for " +
          std::to_string(instance.num_tasks()) + " tasks)");
  // Fold the legacy one-shot injection into the schedule.
  FaultSchedule faults = options.faults;
  if (options.failed_device.has_value()) {
    faults = faults.merged_with(FaultSchedule::single_device_failure(
        *options.failed_device, options.failure_time_s));
  }
  faults.validate_against(topo.num_devices(), topo.num_base_stations());
  const FaultSchedule* failure = &faults;

  EventQueue queue;
  for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
    TaskTimeline& tl = result.timelines[t];
    tl.task = t;
    if (assignment.decisions[t] == Decision::kCancelled) continue;
    tl.placed = true;

    auto state = std::make_shared<TaskState>();
    state->task = t;
    state->timeline = &tl;
    state->pending_legs = static_cast<int>(plans[t].legs.size());
    state->suffix = plans[t].suffix;
    auto legs = std::make_shared<std::vector<Chain>>(plans[t].legs);

    const double release =
        options.release_times.empty() ? 0.0 : options.release_times[t];
    queue.schedule(release, [&queue, state, legs, failure](double now) {
      state->timeline->start_s = now;
      auto on_all_legs_done = [&queue, state, failure](double when) {
        auto suffix = std::make_shared<const Chain>(state->suffix);
        run_chain(queue, suffix, 0, when, state->timeline, failure,
                  [state](double finish) {
                    state->timeline->finish_s = finish;
                  });
      };
      auto leg_done = [state, on_all_legs_done](double when) {
        if (--state->pending_legs <= 0) on_all_legs_done(when);
      };
      if (legs->empty()) {
        on_all_legs_done(now);
        return;
      }
      for (const Chain& leg : *legs) {
        run_chain(queue, std::make_shared<const Chain>(leg), 0, now,
                  state->timeline, failure, leg_done);
      }
    });
  }

  result.makespan_s = queue.run();
  result.events_processed = queue.processed();
  {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("sim.runs").add();
    reg.counter("sim.events_processed").add(result.events_processed);
    reg.histogram("sim.events_per_run")
        .observe(static_cast<double>(result.events_processed));
  }
  double max_finish = 0.0;
  for (const TaskTimeline& tl : result.timelines) {
    if (!tl.placed) continue;
    // Failed tasks keep the energy they burned before dying (it was really
    // spent) but contribute no completion to the makespan.
    result.total_energy_j += tl.energy_j;
    if (tl.failed) {
      ++result.failed_tasks;
      continue;
    }
    max_finish = std::max(max_finish, tl.finish_s);
  }
  result.makespan_s = max_finish;

  if (contend) {
    auto busy = [](const std::vector<Resource>& rs) {
      std::vector<double> out(rs.size());
      for (std::size_t i = 0; i < rs.size(); ++i) out[i] = rs[i].busy_time();
      return out;
    };
    result.device_uplink_busy_s = busy(servers.device_up);
    result.device_downlink_busy_s = busy(servers.device_down);
    result.device_cpu_busy_s = busy(servers.device_cpu);
    result.station_cpu_busy_s = busy(servers.station_cpu);
    result.backhaul_busy_s = servers.backhaul.busy_time();
    result.wan_busy_s = servers.wan.busy_time();
  }
  return result;
}

double SimResult::peak_utilization() const {
  if (makespan_s <= 0.0) return 0.0;
  double peak = 0.0;
  for (const auto* v : {&device_uplink_busy_s, &device_downlink_busy_s,
                        &device_cpu_busy_s, &station_cpu_busy_s}) {
    for (double b : *v) peak = std::max(peak, b);
  }
  peak = std::max({peak, backhaul_busy_s, wan_busy_s});
  return peak / makespan_s;
}

}  // namespace mecsched::sim
