// Timed fault injection for the discrete-event simulator and the resilient
// controller (control/resilient.h).
//
// The paper's Sec. II model is quasi-static: devices, tasks and shared data
// are fixed for the whole horizon. Real data-shared MEC systems churn — the
// data owners are mobile devices that leave coverage and come back, cells go
// down, links fade. A FaultSchedule is the ordered timeline of such events:
//
//   * device failure / recovery   — the device's CPU and radio vanish and
//     reappear; stages *starting* while it is down never run (in-flight
//     stages complete: a transmission underway is already in the air),
//   * base-station outage / recovery — the station's CPU and its backhaul /
//     WAN forwarding stop serving its cluster,
//   * link degradation            — a device's radio rates are multiplied by
//     `factor` (< 1 stretches transfer time and energy) until restored.
//
// The schedule is immutable once built (events sorted by time, validated);
// state queries answer "is X up at time t" by replaying the prefix of
// events with time <= t, so an event taking effect exactly at t is already
// visible at t — matching the simulator's historical "start >= failure
// instant" semantics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mecsched::sim {

enum class FaultKind {
  kDeviceFail = 0,
  kDeviceRecover = 1,
  kStationFail = 2,
  kStationRecover = 3,
  kLinkDegrade = 4,   // device link rates *= factor (factor in (0, 1])
  kLinkRestore = 5,   // factor back to 1
};

std::string to_string(FaultKind k);

struct FaultEvent {
  double time_s = 0.0;
  FaultKind kind = FaultKind::kDeviceFail;
  std::size_t target = 0;  // device id, or station id for station events
  double factor = 1.0;     // kLinkDegrade only
};

class FaultSchedule {
 public:
  FaultSchedule() = default;
  // Sorts by time (stable: simultaneous events keep insertion order) and
  // validates factors; target ids are validated against a topology at the
  // point of use (validate_against below).
  explicit FaultSchedule(std::vector<FaultEvent> events);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  // Throws ModelError (with the offending event spelled out) if any event
  // targets a device/station outside [0, num_devices) / [0, num_stations).
  void validate_against(std::size_t num_devices,
                        std::size_t num_stations) const;

  // ---- State queries. Events with time <= t have taken effect at t.
  bool device_up(std::size_t device, double t) const;
  bool station_up(std::size_t station, double t) const;
  // Multiplier on the device's radio rates at t (1.0 = healthy).
  double link_factor(std::size_t device, double t) const;

  // Events with time in (from, to] — the deltas one controller epoch
  // observes at its boundary.
  std::vector<FaultEvent> events_between(double from, double to) const;

  // Counts of failure events (not recoveries), for reporting.
  std::size_t device_failures() const;
  std::size_t station_failures() const;

  // The legacy one-shot injection of SimOptions{failed_device,
  // failure_time_s} as a schedule.
  static FaultSchedule single_device_failure(std::size_t device, double at_s);

  // This schedule plus `extra`'s events, re-sorted.
  FaultSchedule merged_with(const FaultSchedule& extra) const;

 private:
  std::vector<FaultEvent> events_;  // sorted by time_s
};

}  // namespace mecsched::sim
