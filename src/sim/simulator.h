// Discrete-event execution of an assignment plan.
//
// Replays every placed task through the same physical stages the Sec. II
// analytic model prices — external fetch, uplinks, backhaul/WAN hops,
// computation, result download — as events on a shared timeline.
//
// Two modes:
//   * model_contention = false (default): every task has private copies of
//     its links/CPUs, so per-task latency and energy must equal the
//     CostModel values exactly. This is the independent validation of the
//     analytic model (the `abl_sim_vs_analytic` benchmark and the
//     integration tests rely on it).
//   * model_contention = true: devices' radios and CPUs and each base
//     station's CPU are FIFO servers; concurrent tasks queue. Latencies
//     then dominate the analytic ones — an extension the paper's model
//     abstracts away, useful for judging how optimistic the analytic
//     numbers are.
#pragma once

#include <optional>
#include <vector>

#include "assign/assignment.h"
#include "assign/hta_instance.h"
#include "sim/fault_schedule.h"

namespace mecsched::sim {

struct SimOptions {
  bool model_contention = false;

  // Release times (seconds), one per task; empty means everything is
  // released at t = 0. Used to replay online schedules.
  std::vector<double> release_times;

  // Fault injection: an ordered timeline of device failures/recoveries,
  // base-station outages and link degradations (see fault_schedule.h).
  // A stage that would *start* on dead hardware never runs; the task is
  // marked `failed` and its remaining stages (and energy) are skipped.
  // Stages already in flight when a failure hits are allowed to complete
  // (a transmission underway is modelled as already in the air). A stage
  // starting after the hardware *recovered* runs normally. Radio stages
  // starting under a degraded link take 1/factor times as long and burn
  // 1/factor times the energy (transmit power is constant; the factor is
  // sampled at the stage's start).
  FaultSchedule faults;

  // Legacy single-failure injection: merged into `faults` as a
  // kDeviceFail event. Kept so existing callers and serialized options
  // keep working.
  std::optional<std::size_t> failed_device;
  double failure_time_s = 0.0;
};

struct TaskTimeline {
  std::size_t task = 0;     // index into the instance
  double start_s = 0.0;
  double finish_s = 0.0;
  double energy_j = 0.0;
  bool placed = false;
  bool failed = false;      // killed by fault injection

  double latency_s() const { return finish_s - start_s; }
};

struct SimResult {
  std::vector<TaskTimeline> timelines;  // one per task (placed or not)
  double makespan_s = 0.0;
  double total_energy_j = 0.0;
  std::size_t events_processed = 0;
  std::size_t failed_tasks = 0;  // killed by failure injection

  // Busy time per shared server — populated only in contention mode
  // (empty/-zero otherwise, since without contention nothing is shared).
  std::vector<double> device_uplink_busy_s;
  std::vector<double> device_downlink_busy_s;
  std::vector<double> device_cpu_busy_s;
  std::vector<double> station_cpu_busy_s;
  double backhaul_busy_s = 0.0;
  double wan_busy_s = 0.0;

  // Peak utilization (busiest server's busy time / makespan); 0 without
  // contention data.
  double peak_utilization() const;
};

SimResult simulate(const assign::HtaInstance& instance,
                   const assign::Assignment& assignment,
                   SimOptions options = {});

}  // namespace mecsched::sim
