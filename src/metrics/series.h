// Experiment series collection for the benchmark harness.
//
// Every figure in Sec. V is a set of series over one sweep variable
// (#tasks, input size, ...). SeriesCollector accumulates repeated
// measurements per (x, series) cell, averages them, and renders the
// console table / CSV that the bench binaries print — the "rows the paper
// reports".
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"

namespace mecsched::metrics {

class SeriesCollector {
 public:
  SeriesCollector(std::string x_label, std::vector<std::string> series_names);

  // Adds one measurement of `series` at sweep position `x`. Repeated calls
  // with the same (x, series) average (repetitions over seeds).
  void add(double x, const std::string& series, double value);

  // Folds a whole pre-aggregated Summary into a cell. This is the bridge
  // from the observability registry: obs::Histogram::summary() (and any
  // per-thread Summary partial) drops straight into a sweep cell without
  // replaying individual samples.
  void add_summary(double x, const std::string& series, const Summary& s);

  // Merges another collector into this one — cells with the same
  // (x, series) combine via Summary::merge, and series unknown here are
  // appended. Lets per-shard/per-process collectors be reduced into one.
  void merge(const SeriesCollector& other);

  // Returns a collector whose x positions are snapped to the nearest
  // multiple of `bucket_width` (> 0), merging cells that land in the same
  // bucket. Aligns sweeps recorded at slightly different x (e.g. measured
  // rates) onto a common grid.
  SeriesCollector resample(double bucket_width) const;

  // Mean of the accumulated cell; NaN if empty.
  double mean(double x, const std::string& series) const;

  // Sample count of the cell; 0 if absent.
  std::size_t count(double x, const std::string& series) const;

  std::vector<double> xs() const;
  const std::vector<std::string>& series_names() const { return names_; }

  // One row per x, one column per series (means), plus the x column.
  Table to_table(int precision = 3) const;

  // Writes the same grid as CSV.
  void write_csv(const std::string& path, int precision = 6) const;
  // Same rows to an already-open stream (e.g. stdout for `mecsched sweep
  // --csv`). Row content is identical to the file variant.
  void write_csv(std::ostream& out, int precision = 6) const;

 private:
  // Header + data rows, shared by both write_csv overloads.
  std::vector<std::vector<std::string>> csv_rows(int precision) const;

  std::string x_label_;
  std::vector<std::string> names_;
  std::map<double, std::map<std::string, Summary>> cells_;
};

}  // namespace mecsched::metrics
