#include "metrics/series.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "common/csv.h"
#include "common/error.h"

namespace mecsched::metrics {

SeriesCollector::SeriesCollector(std::string x_label,
                                 std::vector<std::string> series_names)
    : x_label_(std::move(x_label)), names_(std::move(series_names)) {
  MECSCHED_REQUIRE(!names_.empty(), "need at least one series");
}

void SeriesCollector::add(double x, const std::string& series, double value) {
  MECSCHED_REQUIRE(
      std::find(names_.begin(), names_.end(), series) != names_.end(),
      "unknown series: " + series);
  cells_[x][series].add(value);
}

void SeriesCollector::add_summary(double x, const std::string& series,
                                  const Summary& s) {
  MECSCHED_REQUIRE(
      std::find(names_.begin(), names_.end(), series) != names_.end(),
      "unknown series: " + series);
  if (s.count() == 0) return;
  cells_[x][series].merge(s);
}

void SeriesCollector::merge(const SeriesCollector& other) {
  for (const std::string& name : other.names_) {
    if (std::find(names_.begin(), names_.end(), name) == names_.end()) {
      names_.push_back(name);
    }
  }
  for (const auto& [x, row] : other.cells_) {
    for (const auto& [name, summary] : row) {
      cells_[x][name].merge(summary);
    }
  }
}

SeriesCollector SeriesCollector::resample(double bucket_width) const {
  MECSCHED_REQUIRE(bucket_width > 0.0, "bucket width must be positive");
  SeriesCollector out(x_label_, names_);
  for (const auto& [x, row] : cells_) {
    const double snapped = std::round(x / bucket_width) * bucket_width;
    for (const auto& [name, summary] : row) {
      out.cells_[snapped][name].merge(summary);
    }
  }
  return out;
}

double SeriesCollector::mean(double x, const std::string& series) const {
  const auto row = cells_.find(x);
  if (row == cells_.end()) return std::numeric_limits<double>::quiet_NaN();
  const auto cell = row->second.find(series);
  if (cell == row->second.end() || cell->second.count() == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return cell->second.mean();
}

std::size_t SeriesCollector::count(double x, const std::string& series) const {
  const auto row = cells_.find(x);
  if (row == cells_.end()) return 0;
  const auto cell = row->second.find(series);
  return cell == row->second.end() ? 0 : cell->second.count();
}

std::vector<double> SeriesCollector::xs() const {
  std::vector<double> out;
  out.reserve(cells_.size());
  for (const auto& [x, row] : cells_) out.push_back(x);
  return out;
}

namespace {
// Sweep positions are usually integers (task counts, kB) but sometimes
// ratios; print whole numbers without decimals and fractions with two.
std::string format_x(double x) {
  return Table::num(x, x == static_cast<double>(static_cast<long long>(x))
                           ? 0
                           : 2);
}
}  // namespace

Table SeriesCollector::to_table(int precision) const {
  std::vector<std::string> header = {x_label_};
  header.insert(header.end(), names_.begin(), names_.end());
  Table t(std::move(header));
  for (const auto& [x, row] : cells_) {
    std::vector<std::string> cells = {format_x(x)};
    for (const std::string& name : names_) {
      const auto cell = row.find(name);
      cells.push_back(cell == row.end() || cell->second.count() == 0
                          ? "-"
                          : Table::num(cell->second.mean(), precision));
    }
    t.add_row(std::move(cells));
  }
  return t;
}

std::vector<std::vector<std::string>> SeriesCollector::csv_rows(
    int precision) const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(cells_.size() + 1);
  std::vector<std::string> header = {x_label_};
  header.insert(header.end(), names_.begin(), names_.end());
  rows.push_back(std::move(header));
  for (const auto& [x, row] : cells_) {
    std::vector<std::string> cells = {format_x(x)};
    for (const std::string& name : names_) {
      const auto cell = row.find(name);
      cells.push_back(cell == row.end() || cell->second.count() == 0
                          ? ""
                          : Table::num(cell->second.mean(), precision));
    }
    rows.push_back(std::move(cells));
  }
  return rows;
}

void SeriesCollector::write_csv(const std::string& path, int precision) const {
  std::vector<std::vector<std::string>> rows = csv_rows(precision);
  CsvWriter csv(path, rows.front());
  for (std::size_t i = 1; i < rows.size(); ++i) csv.write_row(rows[i]);
}

void SeriesCollector::write_csv(std::ostream& out, int precision) const {
  for (const std::vector<std::string>& row : csv_rows(precision)) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << CsvWriter::escape(row[i]);
    }
    out << '\n';
  }
}

}  // namespace mecsched::metrics
