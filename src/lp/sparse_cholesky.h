// Sparse Cholesky for the interior-point normal equations M = A·D·Aᵀ,
// split into a symbolic phase (pattern-only, expensive, reusable) and a
// numeric phase (values-only, cheap, per IPM iteration).
//
// The split exploits two invariances of the IPM:
//   * within one solve, D changes every iteration but the pattern of
//     M = A·diag(d)·Aᵀ does not (d > 0 throughout), so the fill-reducing
//     ordering, elimination tree and factor structure are computed once;
//   * across solves, LPs built from the same HTA constraint shape (e.g.
//     adjacent sweep cells, churn epochs over a stable topology) share the
//     constraint pattern, so `SymbolicFactorCache` memoizes the symbolic
//     analysis by `SparseMatrix::pattern_fingerprint()`.
//
// The ordering is a deterministic greedy minimum-degree heuristic (an
// AMD-style fill reducer; ties break on the lowest vertex index). The
// numeric factorization is an up-looking sparse Cholesky over the
// elimination-tree row structure, with the same diagonal-regularization
// contract as the dense `Cholesky` (lp/cholesky.h): pivots below the
// relative floor are bumped, strongly indefinite matrices throw
// SolverError.
//
// Reports into obs: lp.sparse.pattern_cache_{hits,misses,evictions}
// counters, lp.sparse.last_{nnz,factor_nnz,fill_ratio,ordering_seconds}
// gauges and the lp.sparse.fill_ratio histogram.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "lp/sparse_matrix.h"

namespace mecsched::lp {

// Pattern-only analysis of M = A·D·Aᵀ for one CSR matrix A: the pattern
// of M, the fill-reducing permutation, the elimination tree and the
// column structure of the factor L. Immutable once built; share freely
// across threads and numeric factorizations.
class NormalEquationsSymbolic {
 public:
  explicit NormalEquationsSymbolic(const SparseMatrix& a);

  std::size_t dim() const { return m_; }
  // Structural nonzeros of M (full symmetric pattern).
  std::size_t normal_nnz() const { return m_col_.size(); }
  // Structural nonzeros of the Cholesky factor L.
  std::size_t factor_nnz() const { return l_ptr_.empty() ? 0 : l_ptr_[m_]; }
  // nnz(L) / nnz(upper(M)) — 1.0 means the ordering produced no fill-in.
  double fill_ratio() const;
  // Wall-clock spent on ordering + symbolic factorization (gauge fodder).
  double analysis_seconds() const { return analysis_seconds_; }
  // Fingerprint of the A pattern this analysis was computed for.
  std::uint64_t pattern_fingerprint() const { return fingerprint_; }

 private:
  friend class NormalCholesky;

  std::size_t m_ = 0;
  std::uint64_t fingerprint_ = 0;
  double analysis_seconds_ = 0.0;

  // Full symmetric pattern of M, CSR (row i: [m_ptr_[i], m_ptr_[i+1])).
  std::vector<std::size_t> m_ptr_;
  std::vector<std::size_t> m_col_;

  // Fill-reducing permutation: perm_[k] = original index eliminated k-th;
  // iperm_ is its inverse.
  std::vector<std::size_t> perm_;
  std::vector<std::size_t> iperm_;

  // Upper-triangular pattern of the permuted M in CSC (column k holds the
  // rows i <= k, ascending), plus a map from each C entry to the position
  // of the same logical entry in the M CSR arrays.
  std::vector<std::size_t> c_ptr_;
  std::vector<std::size_t> c_row_;
  std::vector<std::size_t> c_from_m_;

  // Elimination tree of C and the column pointers of L (CSC).
  std::vector<std::size_t> parent_;  // m_ == no parent
  std::vector<std::size_t> l_ptr_;
};

// Shared, process-wide LRU cache of symbolic analyses keyed by the A
// pattern fingerprint. Sweep workers share it (thread-safe); entries are
// immutable shared_ptrs, so a concurrent eviction never invalidates a
// factorization in flight.
class SymbolicFactorCache {
 public:
  static SymbolicFactorCache& global();

  explicit SymbolicFactorCache(std::size_t capacity = 64);

  // Returns the cached analysis for `a`'s pattern, computing and inserting
  // it on a miss.
  std::shared_ptr<const NormalEquationsSymbolic> analyze(const SparseMatrix& a);

  void set_capacity(std::size_t capacity);
  std::size_t size() const;
  void clear();

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

// Numeric factorization of M = A·diag(d)·Aᵀ over a shared symbolic
// analysis. `at` must be `a.transposed()` (callers keep it around because
// the IPM needs Aᵀ anyway); `d` must be componentwise nonnegative.
class NormalCholesky {
 public:
  NormalCholesky(const SparseMatrix& a, const SparseMatrix& at,
                 const std::vector<double>& d,
                 std::shared_ptr<const NormalEquationsSymbolic> symbolic);

  // Solves (A·D·Aᵀ) x = b through the permuted factor.
  std::vector<double> solve(const std::vector<double>& b) const;

  // Total diagonal shift added during factorization (see lp/cholesky.h).
  double regularization() const { return regularization_; }

 private:
  std::shared_ptr<const NormalEquationsSymbolic> sym_;
  // L in CSC over the symbolic column pointers; each column stores its
  // diagonal entry first, then the below-diagonal rows in elimination
  // order.
  std::vector<std::size_t> l_row_;
  std::vector<double> l_val_;
  double regularization_ = 0.0;
};

}  // namespace mecsched::lp
