// Geometric-mean equilibration for badly scaled LPs.
//
// MEC cost coefficients span ~9 orders of magnitude (joules per byte vs
// per gigabyte); equilibration rescales rows and columns so every nonzero
// coefficient sits near 1, which keeps the simplex pivots and the IPM
// normal equations well conditioned. The transform preserves the optimal
// objective exactly; `unscale` maps the scaled solution (primal and dual)
// back to the original space.
#pragma once

#include <vector>

#include "lp/problem.h"
#include "lp/solution.h"

namespace mecsched::lp {

class ScaledProblem {
 public:
  const Problem& problem() const { return scaled_; }

  // Maps a solution of `problem()` back to the original problem's space.
  Solution unscale(const Solution& scaled_solution,
                   const Problem& original) const;

  const std::vector<double>& row_scale() const { return row_scale_; }
  const std::vector<double>& col_scale() const { return col_scale_; }

  friend ScaledProblem equilibrate(const Problem& p, int passes);

 private:
  Problem scaled_;
  std::vector<double> row_scale_;  // constraint multipliers r_i
  std::vector<double> col_scale_;  // variable multipliers c_j (x = c_j x')
};

// `passes` alternating row/column geometric-mean sweeps (2 is plenty).
ScaledProblem equilibrate(const Problem& p, int passes = 2);

}  // namespace mecsched::lp
