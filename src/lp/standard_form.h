// Conversion of a general-form Problem to the standard form
//
//   minimize    c^T x    subject to  A x = b,  x >= 0
//
// consumed by the interior-point solver:
//   * variables are shifted by their (finite) lower bound,
//   * finite upper bounds become `x + s = hi - lo` rows,
//   * inequality rows gain slack/surplus columns.
//
// A is kept in CSR (lp/sparse_matrix.h), assembled straight from the
// Problem's sparse rows so the block structure of the HTA constraints is
// never densified on the way to the solver; the interior-point solver's
// dense kernels call `a.to_dense()` when the dispatch policy picks them.
//
// `recover()` maps a standard-form solution back to the original variable
// space.
#pragma once

#include <vector>

#include "lp/problem.h"
#include "lp/sparse_matrix.h"

namespace mecsched::lp {

struct StandardForm {
  SparseMatrix a;           // m x n equality matrix (CSR)
  std::vector<double> b;    // m
  std::vector<double> c;    // n
  std::size_t n_original;   // leading columns that map to Problem variables
  std::vector<double> shift;  // original lower bounds (n_original)
  double objective_offset = 0.0;  // c_orig . shift

  // Original-space values from a standard-form point.
  std::vector<double> recover(const std::vector<double>& x) const;
};

StandardForm to_standard_form(const Problem& p);

}  // namespace mecsched::lp
