// Conversion of a general-form Problem to the standard form
//
//   minimize    c^T x    subject to  A x = b,  x >= 0
//
// consumed by the interior-point solver:
//   * variables are shifted by their (finite) lower bound,
//   * finite upper bounds become `x + s = hi - lo` rows,
//   * inequality rows gain slack/surplus columns.
//
// `recover()` maps a standard-form solution back to the original variable
// space.
#pragma once

#include <vector>

#include "lp/matrix.h"
#include "lp/problem.h"

namespace mecsched::lp {

struct StandardForm {
  Matrix a;                 // m x n equality matrix
  std::vector<double> b;    // m
  std::vector<double> c;    // n
  std::size_t n_original;   // leading columns that map to Problem variables
  std::vector<double> shift;  // original lower bounds (n_original)
  double objective_offset = 0.0;  // c_orig . shift

  // Original-space values from a standard-form point.
  std::vector<double> recover(const std::vector<double>& x) const;
};

StandardForm to_standard_form(const Problem& p);

}  // namespace mecsched::lp
