// Two-phase bounded-variable primal simplex.
//
// Solves general-form `Problem`s (see problem.h) by augmenting inequality
// rows with slack variables and a full set of artificial variables for the
// phase-1 start. The basis inverse is maintained explicitly and
// refactorized periodically; Bland's rule kicks in after a run of
// degenerate pivots to guarantee termination.
//
// This is the Step-1 engine of LP-HTA. It is exact (up to floating-point
// tolerances), deterministic, and cross-checked in the test suite against
// the interior-point solver and brute-force vertex enumeration.
#pragma once

#include <cstddef>

#include "common/deadline.h"

#include "lp/problem.h"
#include "lp/solution.h"
#include "lp/sparse_matrix.h"

namespace mecsched::lp {

// Entering-variable selection rule.
//   kDantzig — most negative reduced cost; simple and fast per iteration.
//   kDevex   — Forrest–Goldfarb reference weights approximating steepest
//              edge; costs one extra pivot-row computation per iteration
//              but typically needs fewer iterations on degenerate LPs.
enum class PricingRule { kDantzig, kDevex };

struct SimplexOptions {
  std::size_t max_iterations = 50'000;
  // Refactorize the basis inverse every this many pivots to bound drift.
  std::size_t refactor_period = 64;
  // Consecutive degenerate pivots before switching to Bland's rule.
  std::size_t bland_trigger = 50;
  double tolerance = 1e-9;
  PricingRule pricing = PricingRule::kDantzig;
  // Column-storage selection for the pricing/ratio-test kernels. Under
  // kAuto the dispatch policy in lp/sparse_matrix.h decides from the
  // augmented tableau's density; when sparse, reduced costs and entering
  // columns are computed from stored CSC columns instead of dense row
  // scans (the revised-simplex hot loop drops from O(n·m) to O(nnz) per
  // pricing pass). The dense matrix stays authoritative either way, so
  // the pivot sequence is identical.
  SparseMode sparse_pricing = SparseMode::kAuto;
  // Cooperative budget, checked once per pivot. On expiry during phase 2
  // the solver returns SolveStatus::kDeadline with the current basic
  // feasible solution (anytime contract, see solution.h); during phase 1
  // it returns kDeadline with an empty `x`. A token without its own
  // deadline picks up the process default budget (--budget-ms).
  CancellationToken cancel{};
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  // Solves and reports into the obs layer: span "lp.simplex.solve",
  // counters lp.simplex.{solves,pivots,non_optimal} and the
  // pivots-per-solve histogram.
  Solution solve(const Problem& problem) const;

  // Warm-started solve. `guess` holds one value per problem variable and
  // is snapped to each variable's nearest finite bound to form the initial
  // nonbasic point; inequality rows whose slack can absorb the residual
  // start with the slack basic (a crash basis), so a near-feasible guess
  // skips most of phase 1. Warm starting changes the pivot path, never the
  // optimum: the returned objective equals the cold solve's (asserted in
  // simplex_test.cpp). Counts into lp.simplex.warm_solves.
  Solution solve(const Problem& problem,
                 const std::vector<double>& guess) const;

 private:
  Solution solve_instrumented(const Problem& problem,
                              const std::vector<double>* guess) const;
  Solution solve_impl(const Problem& problem,
                      const std::vector<double>* guess) const;

  SimplexOptions options_;
};

}  // namespace mecsched::lp
