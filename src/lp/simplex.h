// Two-phase bounded-variable revised primal simplex.
//
// Solves general-form `Problem`s (see problem.h) by augmenting inequality
// rows with slack variables and a full set of artificial variables for the
// phase-1 start. The basis is maintained by a pluggable kernel: the
// default keeps a Markowitz-ordered sparse LU factorization current with
// product-form eta-file updates between bounded refactorizations
// (lp/basis_lu.h); the historical explicit dense inverse survives as an
// escape hatch and differential-testing comparator (lp/basis_dense.h).
// Bland's rule kicks in after a run of degenerate pivots to guarantee
// termination, and all per-solve scratch lives in the per-thread
// `SimplexWorkspace` arena so warm re-entries run allocation-free.
//
// This is the Step-1 engine of LP-HTA. It is exact (up to floating-point
// tolerances), deterministic, and cross-checked in the test suite against
// the interior-point solver and brute-force vertex enumeration.
#pragma once

#include <cstddef>

#include "common/deadline.h"

#include "lp/problem.h"
#include "lp/solution.h"
#include "lp/sparse_matrix.h"

namespace mecsched::lp {

// Entering-variable selection rule.
//   kDantzig      — most negative reduced cost; simple and fast per
//                   iteration.
//   kDevex        — Forrest–Goldfarb reference weights approximating
//                   steepest edge; one extra BTRAN per pivot but typically
//                   fewer iterations on degenerate LPs. Retained as the
//                   fallback framework steepest edge resets into.
//   kSteepestEdge — reference-framework steepest edge: weights γ_j track
//                   1 + ‖B⁻¹A_j‖² exactly from the pivot's FTRAN/BTRAN
//                   solves (two extra BTRANs per pivot). Fewest pivots on
//                   the degenerate HTA cluster LPs.
enum class PricingRule { kDantzig, kDevex, kSteepestEdge };

// Basis-update kernel selection.
//   kEtaLu        — sparse LU + product-form eta files (lp/basis_lu.h):
//                   O(nnz) FTRAN/BTRAN/update per pivot, sparse
//                   refactorization. The default.
//   kDenseInverse — explicit dense B⁻¹ with rank-1 updates and an O(m³)
//                   Gauss-Jordan rebuild (lp/basis_dense.h). Kept as the
//                   differential-testing comparator; same pivot contract,
//                   O(m²) per pivot.
enum class BasisKernel { kEtaLu, kDenseInverse };

struct SimplexOptions {
  std::size_t max_iterations = 50'000;
  // Basis-drift bound: the eta-file kernel refactorizes after this many
  // eta updates (sooner on fill growth or an accuracy trigger — see
  // lp/basis_lu.h); the dense kernel rebuilds B⁻¹ every this many pivots.
  std::size_t refactor_period = 64;
  // Consecutive degenerate pivots before switching to Bland's rule.
  std::size_t bland_trigger = 50;
  double tolerance = 1e-9;
  PricingRule pricing = PricingRule::kDantzig;
  BasisKernel basis = BasisKernel::kEtaLu;
  // Column-storage selection for the pricing kernels. The augmented
  // tableau is always held as CSC columns; under kAuto the dispatch
  // policy in lp/sparse_matrix.h decides from its density whether pricing
  // walks the stored nonzeros (O(nnz) per pass) or a dense column copy.
  // Both paths subtract products in ascending row order, so the reduced
  // costs — and the pivot sequence — are bit-identical either way.
  SparseMode sparse_pricing = SparseMode::kAuto;
  // Cooperative budget, checked once per pivot. On expiry during phase 2
  // the solver returns SolveStatus::kDeadline with the current basic
  // feasible solution (anytime contract, see solution.h); during phase 1
  // it returns kDeadline with an empty `x`. A token without its own
  // deadline picks up the process default budget (--budget-ms).
  CancellationToken cancel{};
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  // Solves and reports into the obs layer: span "lp.simplex.solve",
  // counters lp.simplex.{solves,pivots,non_optimal,refactorizations,
  // eta_updates,eta_rejections,workspace_reuses,workspace_grows} and the
  // pivots-per-solve histogram.
  Solution solve(const Problem& problem) const;

  // Warm-started solve. `guess` holds one value per problem variable and
  // is snapped to each variable's nearest finite bound to form the initial
  // nonbasic point; inequality rows whose slack can absorb the residual
  // start with the slack basic (a crash basis), so a near-feasible guess
  // skips most of phase 1. Warm starting changes the pivot path, never the
  // optimum: the returned objective equals the cold solve's (asserted in
  // simplex_test.cpp). Counts into lp.simplex.warm_solves. Re-entries on
  // the same thread reuse the workspace arena and the basis kernel's
  // pools, so steady-state re-solves allocate nothing in the pivot loop
  // (tests/lp/workspace_alloc_test.cpp).
  Solution solve(const Problem& problem,
                 const std::vector<double>& guess) const;

 private:
  Solution solve_instrumented(const Problem& problem,
                              const std::vector<double>* guess) const;
  Solution solve_impl(const Problem& problem,
                      const std::vector<double>* guess) const;

  SimplexOptions options_;
};

}  // namespace mecsched::lp
