// Cholesky factorization for symmetric positive-definite systems.
//
// Used by the interior-point solver for the normal equations
// (A D^2 A^T) dy = r. Near the central-path boundary those systems become
// ill-conditioned, so the factorization applies a tiny diagonal
// regularization when a pivot drops below tolerance instead of failing.
#pragma once

#include <vector>

#include "lp/matrix.h"

namespace mecsched::lp {

class Cholesky {
 public:
  // Factors `a` (must be square, symmetric). Throws SolverError if the
  // matrix is indefinite beyond what regularization can absorb.
  explicit Cholesky(const Matrix& a);

  // Solves L L^T x = b.
  std::vector<double> solve(const std::vector<double>& b) const;

  // Total diagonal shift added during factorization (0 when the input was
  // comfortably positive definite). Exposed for diagnostics/tests.
  double regularization() const { return regularization_; }

 private:
  Matrix l_;  // lower-triangular factor
  double regularization_ = 0.0;
};

}  // namespace mecsched::lp
