#include "lp/sparse_matrix.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mecsched::lp {

bool use_sparse_kernels(std::size_t rows, std::size_t cols, std::size_t nnz,
                        SparseMode mode) {
  if (mode == SparseMode::kForceDense) return false;
  if (mode == SparseMode::kForceSparse) return true;
  if (rows < kSparseMinRows || cols == 0) return false;
  const double cells = static_cast<double>(rows) * static_cast<double>(cols);
  return static_cast<double>(nnz) <= kSparseDensityThreshold * cells;
}

SparseMatrix SparseMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                         std::vector<Triplet> triplets) {
  SparseMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  for (const Triplet& t : triplets) {
    MECSCHED_REQUIRE(t.row < rows && t.col < cols,
                     "sparse triplet index out of range");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  out.row_ptr_.assign(rows + 1, 0);
  out.col_idx_.reserve(triplets.size());
  out.values_.reserve(triplets.size());
  std::size_t i = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    while (i < triplets.size() && triplets[i].row == r) {
      const std::size_t c = triplets[i].col;
      double v = 0.0;
      for (; i < triplets.size() && triplets[i].row == r && triplets[i].col == c;
           ++i) {
        v += triplets[i].value;
      }
      if (v != 0.0) {
        out.col_idx_.push_back(c);
        out.values_.push_back(v);
      }
    }
    out.row_ptr_[r + 1] = out.col_idx_.size();
  }
  return out;
}

SparseMatrix SparseMatrix::from_dense(const Matrix& dense,
                                      double drop_tolerance) {
  SparseMatrix out;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  out.row_ptr_.assign(out.rows_ + 1, 0);
  for (std::size_t r = 0; r < out.rows_; ++r) {
    const double* row = dense.row(r);
    for (std::size_t c = 0; c < out.cols_; ++c) {
      if (std::fabs(row[c]) > drop_tolerance) {
        out.col_idx_.push_back(c);
        out.values_.push_back(row[c]);
      }
    }
    out.row_ptr_[r + 1] = out.col_idx_.size();
  }
  return out;
}

Matrix SparseMatrix::to_dense() const {
  Matrix out(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double* row = out.row(r);
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      row[col_idx_[p]] = values_[p];
    }
  }
  return out;
}

double SparseMatrix::density() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

double SparseMatrix::operator()(std::size_t r, std::size_t c) const {
  MECSCHED_REQUIRE(r < rows_ && c < cols_, "sparse index out of range");
  const auto begin = col_idx_.begin() + static_cast<long>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<long>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

std::vector<double> SparseMatrix::multiply(const std::vector<double>& x) const {
  MECSCHED_REQUIRE(x.size() == cols_, "sparse matrix-vector size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      acc += values_[p] * x[col_idx_[p]];
    }
    y[r] = acc;
  }
  return y;
}

std::vector<double> SparseMatrix::multiply_transpose(
    const std::vector<double>& x) const {
  MECSCHED_REQUIRE(x.size() == rows_, "sparse matrix^T-vector size mismatch");
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      y[col_idx_[p]] += values_[p] * xr;
    }
  }
  return y;
}

SparseMatrix SparseMatrix::transposed() const {
  SparseMatrix out;
  out.rows_ = cols_;
  out.cols_ = rows_;
  out.row_ptr_.assign(cols_ + 1, 0);
  // Count entries per column, prefix-sum, then scatter. Scanning rows in
  // order writes each output row's entries with ascending column index.
  for (const std::size_t c : col_idx_) ++out.row_ptr_[c + 1];
  for (std::size_t c = 0; c < cols_; ++c) out.row_ptr_[c + 1] += out.row_ptr_[c];
  out.col_idx_.resize(nnz());
  out.values_.resize(nnz());
  std::vector<std::size_t> next(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const std::size_t slot = next[col_idx_[p]]++;
      out.col_idx_[slot] = r;
      out.values_[slot] = values_[p];
    }
  }
  return out;
}

namespace {

// splitmix64 finalizer: the project's standard bit mixer (common/rng.cpp,
// exec/instance_cache.cpp use the same constants).
std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

std::uint64_t SparseMatrix::pattern_fingerprint() const {
  std::uint64_t h = 0x6d656373ULL;  // "mecs"
  h = mix64(h, rows_);
  h = mix64(h, cols_);
  for (const std::size_t p : row_ptr_) h = mix64(h, p);
  for (const std::size_t c : col_idx_) h = mix64(h, c);
  return h;
}

}  // namespace mecsched::lp
