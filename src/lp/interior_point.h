// Mehrotra predictor–corrector primal-dual interior-point LP solver.
//
// The paper's LP-HTA references Karmarkar's polynomial-time interior method
// [17] for Step 1; this is the modern practical equivalent. The solver
// works on the standard form produced by `to_standard_form` and solves the
// normal equations (A D^2 A^T) dy = r with the regularized Cholesky
// factorization. It exists both as the O((n_r m)^3.5)-style engine named by
// the paper and as an independent cross-check for the simplex solver.
//
// Limitations (documented, by design): like most IPMs it certifies
// optimality but reports hopeless primal infeasibility as
// kIterationLimit/kInfeasible heuristically. LP-HTA pre-cancels tasks that
// would make its LP infeasible, so this path never triggers in the
// pipeline; the simplex solver is the arbiter elsewhere.
#pragma once

#include "common/deadline.h"

#include "lp/problem.h"
#include "lp/solution.h"
#include "lp/sparse_matrix.h"

namespace mecsched::lp {

struct InteriorPointOptions {
  std::size_t max_iterations = 200;
  double tolerance = 1e-8;       // relative duality-gap / residual target
  double step_damping = 0.99;    // fraction of the max step to the boundary
  // Normal-equation kernel selection. kAuto applies the density dispatch
  // policy in lp/sparse_matrix.h (sparse CSR kernels + cached symbolic
  // Cholesky for large sparse systems, the dense path otherwise); the
  // force modes exist for differential tests and benchmarks.
  SparseMode sparse_mode = SparseMode::kAuto;
  // Cooperative budget, checked once per Mehrotra iteration. On expiry the
  // solver returns SolveStatus::kDeadline with the last centered iterate
  // rounded into the variable bounds (anytime contract, see solution.h —
  // feasibility is not certified, consumers repair or escalate). A token
  // without its own deadline picks up the process default (--budget-ms).
  CancellationToken cancel{};
};

class InteriorPointSolver {
 public:
  explicit InteriorPointSolver(InteriorPointOptions options = {})
      : options_(options) {}

  // Solves and reports into the obs layer: span "lp.ipm.solve", counters
  // lp.ipm.{solves,iterations,non_optimal}, an iterations-per-solve
  // histogram and last-residual/duality-gap gauges.
  Solution solve(const Problem& problem) const;

 private:
  Solution solve_impl(const Problem& problem) const;

  InteriorPointOptions options_;
};

}  // namespace mecsched::lp
