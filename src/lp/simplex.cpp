#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "audit/audit.h"
#include "audit/lp_certificate.h"
#include "common/chaos_hook.h"
#include "common/deadline.h"
#include "common/error.h"
#include "lp/basis_dense.h"
#include "lp/basis_lu.h"
#include "lp/sparse_matrix.h"
#include "lp/workspace.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "obs/window.h"

namespace mecsched::lp {
namespace {

enum class VarState : unsigned char { kBasic, kAtLower, kAtUpper };

// The augmented LP (structural + slack + artificial columns) plus all the
// mutable solver state for one solve. Everything is carved out of the
// per-thread SimplexWorkspace arena, the augmented matrix is held as CSC
// columns only (a dense column copy is materialized solely for the
// force-dense pricing fallback), and the basis lives behind one of two
// kernels: the eta-file LU (lp/basis_lu.h, default) or the historical
// explicit dense inverse (lp/basis_dense.h).
class Tableau {
 public:
  // `guess` (optional, one entry per structural variable) warm-starts the
  // solve: structurals snap to their nearest finite bound and rows whose
  // slack can absorb the residual get a slack-basic crash start. The cold
  // path (guess == nullptr) keeps the historical all-artificial start.
  Tableau(const Problem& p, const SimplexOptions& opt,
          const std::vector<double>* guess, SimplexWorkspace& ws)
      : opt_(opt), ws_(ws), use_lu_(opt.basis == BasisKernel::kEtaLu) {
    ws_.begin_solve();
    const std::size_t m = p.num_constraints();
    m_ = m;
    n_struct_ = p.num_variables();

    // Count slacks first so column indices are stable.
    std::size_t n_slack = 0;
    std::size_t total_terms = 0;
    for (std::size_t r = 0; r < m; ++r) {
      if (p.constraint(r).relation != Relation::kEqual) ++n_slack;
      total_terms += p.constraint(r).terms.size();
    }
    art_begin_ = n_struct_ + n_slack;
    n_total_ = art_begin_ + m;  // + m artificials

    b_ = ws_.alloc<double>(m);
    lo_ = ws_.alloc<double>(n_total_);
    hi_ = ws_.alloc<double>(n_total_);
    cost_ = ws_.alloc<double>(n_total_);
    x_ = ws_.alloc<double>(n_total_);
    state_ = ws_.alloc<VarState>(n_total_);
    basis_ = ws_.alloc<std::size_t>(m);
    weights_ = ws_.alloc<double>(n_total_);
    costs_buf_ = ws_.alloc<double>(n_total_);
    cb_ = ws_.alloc<double>(m);
    w_ = ws_.alloc<double>(m);
    rho_ = ws_.alloc<double>(m);
    sev_ = ws_.alloc<double>(m);
    rhs_ = ws_.alloc<double>(m);

    std::fill(lo_, lo_ + n_total_, 0.0);
    std::fill(hi_, hi_ + n_total_, kInfinity);
    std::fill(cost_, cost_ + n_total_, 0.0);
    for (std::size_t v = 0; v < n_struct_; ++v) {
      lo_[v] = p.lower(v);
      hi_[v] = p.upper(v);
      cost_[v] = p.cost(v);
    }

    // Compact each row's terms (last write wins on duplicates, matching
    // the historical dense-matrix assembly) so the CSC build below can
    // count and fill in one deterministic sweep per pass.
    std::size_t* stamp = ws_.alloc<std::size_t>(n_struct_);
    std::size_t* pos = ws_.alloc<std::size_t>(n_struct_);
    std::size_t* row_ptr = ws_.alloc<std::size_t>(m + 1);
    std::size_t* term_var = ws_.alloc<std::size_t>(total_terms);
    double* term_val = ws_.alloc<double>(total_terms);
    std::size_t* slack_of = ws_.alloc<std::size_t>(m);
    std::fill(stamp, stamp + n_struct_, kNone);
    std::size_t cursor = 0;
    std::size_t slack = n_struct_;
    for (std::size_t r = 0; r < m; ++r) {
      const Constraint& c = p.constraint(r);
      row_ptr[r] = cursor;
      for (const Term& t : c.terms) {
        if (stamp[t.var] == r) {
          term_val[pos[t.var]] = t.coeff;
          continue;
        }
        stamp[t.var] = r;
        pos[t.var] = cursor;
        term_var[cursor] = t.var;
        term_val[cursor] = t.coeff;
        ++cursor;
      }
      b_[r] = c.rhs;
      slack_of[r] = kNone;
      switch (c.relation) {
        case Relation::kLessEqual:
          slack_of[r] = slack++;
          break;
        case Relation::kGreaterEqual:
          slack_of[r] = slack++;
          break;
        case Relation::kEqual:
          break;
      }
    }
    row_ptr[m] = cursor;

    // CSC column store for the whole augmented tableau. Filling row-major
    // keeps the rows of every column in ascending order — the invariant
    // the bit-identical sparse/dense pricing contract rests on.
    std::size_t nnz = n_slack + m;  // slacks and artificials: one entry each
    for (std::size_t i = 0; i < cursor; ++i) nnz += term_val[i] != 0.0;
    acol_ptr_ = ws_.alloc<std::size_t>(n_total_ + 1);
    acol_row_ = ws_.alloc<std::size_t>(nnz);
    acol_val_ = ws_.alloc<double>(nnz);
    nnz_ = nnz;
    std::fill(acol_ptr_, acol_ptr_ + n_total_ + 1, 0);
    for (std::size_t i = 0; i < cursor; ++i) {
      if (term_val[i] != 0.0) ++acol_ptr_[term_var[i] + 1];
    }
    for (std::size_t r = 0; r < m; ++r) {
      if (slack_of[r] != kNone) ++acol_ptr_[slack_of[r] + 1];
      ++acol_ptr_[art_begin_ + r + 1];
    }
    for (std::size_t j = 0; j < n_total_; ++j) acol_ptr_[j + 1] += acol_ptr_[j];
    std::size_t* next = stamp;  // reuse: stamp is dead past this point
    std::copy(acol_ptr_, acol_ptr_ + n_struct_, next);
    std::size_t* next_aux = ws_.alloc<std::size_t>(n_slack + m);
    for (std::size_t j = n_struct_; j < n_total_; ++j) {
      next_aux[j - n_struct_] = acol_ptr_[j];
    }
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
        if (term_val[i] == 0.0) continue;
        const std::size_t pslot = next[term_var[i]]++;
        acol_row_[pslot] = r;
        acol_val_[pslot] = term_val[i];
      }
      if (slack_of[r] != kNone) {
        const std::size_t pslot = next_aux[slack_of[r] - n_struct_]++;
        acol_row_[pslot] = r;
        acol_val_[pslot] =
            p.constraint(r).relation == Relation::kGreaterEqual ? -1.0 : 1.0;
      }
      // Artificial of row r: single entry, value filled after the crash
      // basis fixes its sign.
      const std::size_t pslot = next_aux[art_begin_ + r - n_struct_]++;
      acol_row_[pslot] = r;
      acol_val_[pslot] = 0.0;
    }

    // Nonbasic start: every non-artificial variable at its (finite) lower
    // bound — or, when warm-starting, at whichever finite bound the guess
    // is nearest to. Artificials absorb the residual with a ±1 coefficient
    // so their phase-1 value is non-negative.
    std::fill(state_, state_ + n_total_, VarState::kAtLower);
    std::fill(x_, x_ + n_total_, 0.0);
    for (std::size_t v = 0; v < art_begin_; ++v) x_[v] = lo_[v];
    if (guess != nullptr) {
      for (std::size_t v = 0; v < n_struct_; ++v) {
        const double g = (*guess)[v];
        if (std::isfinite(hi_[v]) &&
            std::fabs(g - hi_[v]) < std::fabs(g - lo_[v])) {
          state_[v] = VarState::kAtUpper;
          x_[v] = hi_[v];
        }
      }
    }

    double* residual = rhs_;  // scratch; refactorize() will reuse it
    std::copy(b_, b_ + m, residual);
    for (std::size_t v = 0; v < art_begin_; ++v) {
      if (x_[v] == 0.0) continue;
      for (std::size_t pcol = acol_ptr_[v]; pcol < acol_ptr_[v + 1]; ++pcol) {
        residual[acol_row_[pcol]] -= acol_val_[pcol] * x_[v];
      }
    }

    if (use_lu_) {
      lu_ = &ws_.lu();
      lu_->limits().max_etas = opt_.refactor_period;
    } else {
      dense_.reset_diagonal(m);
    }
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t art = art_begin_ + r;
      const std::size_t art_entry = acol_ptr_[art];  // its single CSC slot
      if (guess != nullptr && slack_of[r] != kNone) {
        // Crash start: the slack column is ±e_r, so it serves as the basic
        // variable whenever the warm point leaves it non-negative; the
        // row's artificial then starts (and stays) at zero.
        const std::size_t s = slack_of[r];
        const double sign = acol_val_[acol_ptr_[s]];
        const double value = residual[r] * sign;
        if (value >= 0.0) {
          basis_[r] = s;
          state_[s] = VarState::kBasic;
          x_[s] = value;
          acol_val_[art_entry] = 1.0;
          if (!use_lu_) dense_.set_diag(r, sign);  // B col = ±e_r
          continue;
        }
      }
      const double sign = residual[r] >= 0.0 ? 1.0 : -1.0;
      acol_val_[art_entry] = sign;
      basis_[r] = art;
      state_[art] = VarState::kBasic;
      x_[art] = std::fabs(residual[r]);
      if (!use_lu_) dense_.set_diag(r, sign);  // B = diag(sign)
    }
    if (use_lu_) factorize_basis();

    // Pricing storage dispatch (lp/sparse_matrix.h): above the density
    // threshold pricing walks the CSC nonzeros; below it, a dense
    // column-major copy is scanned instead. Same products in the same
    // ascending-row order either way, so the reduced costs — and the
    // pivot sequence — are bit-identical.
    sparse_pricing_ = use_sparse_kernels(m, n_total_, nnz_, opt_.sparse_pricing);
    if (!sparse_pricing_) {
      dense_cols_ = ws_.alloc<double>(m * n_total_);
      std::fill(dense_cols_, dense_cols_ + m * n_total_, 0.0);
      for (std::size_t j = 0; j < n_total_; ++j) {
        for (std::size_t pcol = acol_ptr_[j]; pcol < acol_ptr_[j + 1];
             ++pcol) {
          dense_cols_[j * m + acol_row_[pcol]] = acol_val_[pcol];
        }
      }
    }
  }

  // Whether the pricing/ratio-test kernels run off the CSC column store.
  bool sparse_pricing() const { return sparse_pricing_; }

  // Minimizes `costs` (n_total entries) from the current basis. Returns
  // the phase status. `token` is checked once per pivot; on expiry the
  // current point is left intact (it is a basic solution of the phase's
  // system) and kDeadline is returned — the caller decides what of it is
  // reportable.
  SolveStatus optimize(const double* costs, const CancellationToken& token) {
    const std::size_t m = m_;
    const double cost_scale = 1.0 + max_abs(costs, n_total_);
    const double dj_tol = opt_.tolerance * cost_scale;
    std::size_t degenerate_run = 0;
    reset_weights();  // fresh reference framework per phase

    // Everything from here to the end of the loop must stay heap-silent:
    // tests/lp/workspace_alloc_test.cpp counts allocations inside this
    // scope on a warm re-solve and expects zero.
    const internal::PivotLoopScope alloc_probe;

    for (; iterations_ < opt_.max_iterations; ++iterations_) {
      if (token.expired()) return SolveStatus::kDeadline;
      if (chaos::armed()) {
        switch (chaos::probe("simplex", m, n_total_, iterations_)) {
          case chaos::Action::kNone:
            break;
          case chaos::Action::kStall:
          case chaos::Action::kCancel:
            // A stalled pivot loop and a cancelled one look the same from
            // outside: the budget is gone.
            return SolveStatus::kDeadline;
          case chaos::Action::kPoisonNan:
            if (use_lu_) {
              lu_->poison();
            } else {
              dense_.poison();
            }
            break;
          case chaos::Action::kError:
            throw SolverError("simplex: injected solver fault");
        }
      }
      if (refactor_due()) refactorize();

      // Dual prices y = B^-T c_B.
      for (std::size_t r = 0; r < m; ++r) cb_[r] = costs[basis_[r]];
      btran_vec(cb_);
      const double* y = cb_;

      const bool bland = degenerate_run >= opt_.bland_trigger;
      const std::size_t entering = price(costs, y, dj_tol, bland);
      if (entering == kNone) {
        // NaN reduced costs make every eligibility comparison false, so a
        // poisoned basis would otherwise masquerade as optimal (and phase 1
        // would then report a *wrong* infeasible). Refuse loudly instead.
        for (std::size_t r = 0; r < m; ++r) {
          if (!std::isfinite(y[r])) {
            throw SolverError(
                "simplex: non-finite dual prices (numeric breakdown)");
          }
        }
        return SolveStatus::kOptimal;
      }

      // Column in the current basis frame: w = B^-1 A_entering.
      column_scatter(entering, w_);
      ftran_vec(w_);

      const double dir = state_[entering] == VarState::kAtLower ? 1.0 : -1.0;

      // Bounded ratio test: the entering variable moves by t in direction
      // `dir`; basic variable r changes by -dir * w[r] * t.
      double t_max = hi_[entering] - lo_[entering];  // bound-flip limit
      std::size_t leave_row = kNone;
      bool leave_at_upper = false;
      for (std::size_t r = 0; r < m; ++r) {
        const double rate = dir * w_[r];
        const std::size_t bv = basis_[r];
        if (rate > opt_.tolerance) {  // basic value decreases toward lo
          const double t = (x_[bv] - lo_[bv]) / rate;
          if (t < t_max - opt_.tolerance ||
              (t < t_max + opt_.tolerance && leave_row == kNone)) {
            t_max = std::max(t, 0.0);
            leave_row = r;
            leave_at_upper = false;
          }
        } else if (rate < -opt_.tolerance && std::isfinite(hi_[bv])) {
          const double t = (hi_[bv] - x_[bv]) / -rate;
          if (t < t_max - opt_.tolerance ||
              (t < t_max + opt_.tolerance && leave_row == kNone)) {
            t_max = std::max(t, 0.0);
            leave_row = r;
            leave_at_upper = true;
          }
        }
      }

      if (!std::isfinite(t_max)) return SolveStatus::kUnbounded;
      degenerate_run = t_max <= opt_.tolerance ? degenerate_run + 1 : 0;

      // Apply the step.
      x_[entering] += dir * t_max;
      for (std::size_t r = 0; r < m; ++r) x_[basis_[r]] -= dir * w_[r] * t_max;

      if (leave_row == kNone) {
        // Bound flip: entering variable crosses to its other bound; the
        // basis is unchanged.
        state_[entering] = state_[entering] == VarState::kAtLower
                               ? VarState::kAtUpper
                               : VarState::kAtLower;
        x_[entering] = state_[entering] == VarState::kAtLower ? lo_[entering]
                                                              : hi_[entering];
        continue;
      }

      if (opt_.pricing == PricingRule::kDevex) {
        devex_update(entering, leave_row);
      } else if (opt_.pricing == PricingRule::kSteepestEdge) {
        steepest_update(entering, leave_row);
      }
      const std::size_t leaving = basis_[leave_row];
      state_[leaving] = leave_at_upper ? VarState::kAtUpper : VarState::kAtLower;
      x_[leaving] = leave_at_upper ? hi_[leaving] : lo_[leaving];
      state_[entering] = VarState::kBasic;
      basis_[leave_row] = entering;
      if (use_lu_) {
        if (lu_->push_eta(w_, leave_row, m)) {
          ++eta_updates_;
        } else {
          // Accuracy trigger: the eta pivot is too small to apply safely.
          // The basis is already updated, so a fresh factorization both
          // absorbs the pivot and clears accumulated drift.
          ++eta_rejections_;
          refactorize();
        }
      } else {
        dense_.update(w_, leave_row);
      }
    }
    return SolveStatus::kIterationLimit;
  }

  // Magnitude of the right-hand side; scales the phase-1 feasibility test.
  double rhs_scale() const { return 1.0 + max_abs(b_, m_); }

  // Sum of artificial values (phase-1 objective at the current point).
  double artificial_infeasibility() const {
    double total = 0.0;
    for (std::size_t v = art_begin_; v < n_total_; ++v) total += x_[v];
    return total;
  }

  const double* phase1_costs() {
    std::fill(costs_buf_, costs_buf_ + art_begin_, 0.0);
    std::fill(costs_buf_ + art_begin_, costs_buf_ + n_total_, 1.0);
    return costs_buf_;
  }

  const double* phase2_costs() {
    std::copy(cost_, cost_ + n_total_, costs_buf_);
    return costs_buf_;
  }

  // Pins every artificial to zero so phase 2 cannot re-activate them.
  void pin_artificials() {
    for (std::size_t v = art_begin_; v < n_total_; ++v) {
      hi_[v] = 0.0;
      if (state_[v] != VarState::kBasic) x_[v] = 0.0;
    }
  }

  std::vector<double> structural_solution() const {
    return {x_, x_ + n_struct_};
  }

  // Dual prices y = B^-T c_B for the given objective. Rows of the tableau
  // correspond one-to-one (in order) with Problem constraints.
  std::vector<double> duals(const double* costs) const {
    std::vector<double> y(m_);
    for (std::size_t r = 0; r < m_; ++r) y[r] = costs[basis_[r]];
    if (!y.empty()) btran_vec(y.data());
    return y;
  }

  std::size_t iterations() const { return iterations_; }
  std::uint64_t refactorizations() const { return refactorizations_; }
  std::uint64_t eta_updates() const { return eta_updates_; }
  std::uint64_t eta_rejections() const { return eta_rejections_; }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  static double max_abs(const double* v, std::size_t n) {
    double mx = 0.0;
    for (std::size_t i = 0; i < n; ++i) mx = std::max(mx, std::fabs(v[i]));
    return mx;
  }

  void ftran_vec(double* v) const {
    if (use_lu_) {
      lu_->ftran(v);
    } else {
      dense_.ftran(v);
    }
  }

  void btran_vec(double* v) const {
    if (use_lu_) {
      lu_->btran(v);
    } else {
      dense_.btran(v);
    }
  }

  // out := dense image of CSC column j (m entries).
  void column_scatter(std::size_t j, double* out) const {
    std::fill(out, out + m_, 0.0);
    for (std::size_t p = acol_ptr_[j]; p < acol_ptr_[j + 1]; ++p) {
      out[acol_row_[p]] = acol_val_[p];
    }
  }

  // Σ_r v[r]·A_j[r] over the stored nonzeros, ascending row order.
  double col_dot(std::size_t j, const double* v) const {
    double acc = 0.0;
    for (std::size_t p = acol_ptr_[j]; p < acol_ptr_[j + 1]; ++p) {
      acc += v[acol_row_[p]] * acol_val_[p];
    }
    return acc;
  }

  bool refactor_due() const {
    if (use_lu_) return lu_->needs_refactor();
    return iterations_ > 0 && iterations_ % opt_.refactor_period == 0;
  }

  // Gathers the current basis columns (CSC, ascending rows preserved) and
  // hands them to the active kernel.
  void factorize_basis() {
    if (bcol_ptr_ == nullptr) {
      bcol_ptr_ = ws_.alloc<std::size_t>(m_ + 1);
      bcol_row_ = ws_.alloc<std::size_t>(nnz_);
      bcol_val_ = ws_.alloc<double>(nnz_);
    }
    std::size_t cursor = 0;
    for (std::size_t r = 0; r < m_; ++r) {
      bcol_ptr_[r] = cursor;
      const std::size_t j = basis_[r];
      for (std::size_t p = acol_ptr_[j]; p < acol_ptr_[j + 1]; ++p) {
        bcol_row_[cursor] = acol_row_[p];
        bcol_val_[cursor] = acol_val_[p];
        ++cursor;
      }
    }
    bcol_ptr_[m_] = cursor;
    if (use_lu_) {
      lu_->factorize(m_, bcol_ptr_, bcol_row_, bcol_val_);
    } else {
      dense_.factorize(m_, bcol_ptr_, bcol_row_, bcol_val_);
    }
  }

  // Recomputes the basis representation from scratch and refreshes the
  // basic values from the nonbasic ones, clearing the accumulated
  // floating-point drift of the incremental updates.
  void refactorize() {
    ++refactorizations_;
    factorize_basis();

    // x_B = B^-1 (b - N x_N)
    std::copy(b_, b_ + m_, rhs_);
    for (std::size_t v = 0; v < n_total_; ++v) {
      if (state_[v] == VarState::kBasic || x_[v] == 0.0) continue;
      for (std::size_t p = acol_ptr_[v]; p < acol_ptr_[v + 1]; ++p) {
        rhs_[acol_row_[p]] -= acol_val_[p] * x_[v];
      }
    }
    ftran_vec(rhs_);
    for (std::size_t r = 0; r < m_; ++r) x_[basis_[r]] = rhs_[r];
  }

  // Reduced cost c_j - y^T A_j. Both storage paths subtract the products
  // in ascending row order (the sparse one merely skips exact-zero terms),
  // so sparse pricing reproduces the dense reduced costs bit-for-bit and
  // the pivot sequence is unchanged.
  double reduced_cost(std::size_t j, const double* costs,
                      const double* y) const {
    double dj = costs[j];
    if (sparse_pricing_) {
      return dj - col_dot(j, y);
    }
    // Dense fallback under the dispatch threshold (lp/sparse_matrix.h):
    // scan the column-major copy, zero terms included.
    const double* col = dense_cols_ + j * m_;
    for (std::size_t r = 0; r < m_; ++r) dj -= y[r] * col[r];
    return dj;
  }

  // Chooses the entering column: Dantzig (most negative effective reduced
  // cost) normally, Bland (lowest eligible index) when anti-cycling.
  std::size_t price(const double* costs, const double* y, double dj_tol,
                    bool bland) const {
    const bool weighted = opt_.pricing != PricingRule::kDantzig && !bland;
    std::size_t best = kNone;
    double best_score = weighted ? dj_tol * dj_tol : dj_tol;
    for (std::size_t j = 0; j < n_total_; ++j) {
      if (state_[j] == VarState::kBasic) continue;
      if (hi_[j] - lo_[j] <= opt_.tolerance) continue;  // fixed (artificials)
      const double dj = reduced_cost(j, costs, y);
      const double rate =
          state_[j] == VarState::kAtLower ? -dj : dj;  // improvement rate
      if (rate <= dj_tol) continue;                    // not eligible
      const double score = weighted ? rate * rate / weights_[j] : rate;
      if (score > best_score) {
        best = j;
        best_score = score;
        if (bland) break;  // first eligible index
      }
    }
    return best;
  }

  // Fresh reference framework at the start of a phase: Devex weights reset
  // to 1; steepest-edge weights to 1 + ‖A_j‖², which equals the exact
  // 1 + ‖B⁻¹A_j‖² whenever the reference basis is the ±1-diagonal crash
  // start (a signed permutation preserves norms).
  void reset_weights() {
    if (opt_.pricing == PricingRule::kSteepestEdge) {
      for (std::size_t j = 0; j < n_total_; ++j) {
        double sq = 0.0;
        for (std::size_t p = acol_ptr_[j]; p < acol_ptr_[j + 1]; ++p) {
          sq += acol_val_[p] * acol_val_[p];
        }
        weights_[j] = 1.0 + sq;
      }
    } else {
      std::fill(weights_, weights_ + n_total_, 1.0);
    }
  }

  // rho_ := pivot row r of B^-1 (e_r^T B^-1), via the kernel.
  void load_pivot_row(std::size_t r) {
    if (use_lu_) {
      std::fill(rho_, rho_ + m_, 0.0);
      rho_[r] = 1.0;
      lu_->btran(rho_);
    } else {
      dense_.pivot_row(r, rho_);
    }
  }

  // Forrest-Goldfarb devex weight update after pivoting entering column
  // `q` on row `r` (w_ = B^-1 A_q already computed). The pivot row
  // e_r^T B^-1 A gives the alphas the update needs.
  void devex_update(std::size_t q, std::size_t r) {
    const double alpha_q = w_[r];
    if (std::fabs(alpha_q) < 1e-12) return;
    load_pivot_row(r);
    const double wq = weights_[q];
    for (std::size_t j = 0; j < n_total_; ++j) {
      if (state_[j] == VarState::kBasic || j == q) continue;
      if (hi_[j] - lo_[j] <= opt_.tolerance) continue;
      // alpha_j = (pivot row of B^-1) . A_j
      const double alpha_j = col_dot(j, rho_);
      const double cand = (alpha_j / alpha_q) * (alpha_j / alpha_q) * wq;
      if (cand > weights_[j]) weights_[j] = cand;
      // reset the framework if weights explode
      if (weights_[j] > 1e12) {
        std::fill(weights_, weights_ + n_total_, 1.0);
        return;
      }
    }
    weights_[basis_[r]] = std::max(wq / (alpha_q * alpha_q), 1.0);
  }

  // Exact reference-framework steepest-edge update (Goldfarb–Reid) after
  // pivoting entering column `q` on row `r`: with α_j = (B⁻¹A_j)_r taken
  // from the pivot row ρ = B⁻ᵀe_r and v = B⁻ᵀw (both one extra BTRAN),
  //   γ_j ← max(γ_j − 2(α_j/α_q)·A_jᵀv + (α_j/α_q)²γ_q, 1 + (α_j/α_q)²)
  // and the leaving variable re-enters the nonbasic set with
  //   γ_leave = max(γ_q/α_q², 1 + 1/α_q²).
  void steepest_update(std::size_t q, std::size_t r) {
    const double alpha_q = w_[r];
    if (std::fabs(alpha_q) < 1e-12) return;
    load_pivot_row(r);
    std::copy(w_, w_ + m_, sev_);
    btran_vec(sev_);
    const double gamma_q = weights_[q];
    for (std::size_t j = 0; j < n_total_; ++j) {
      if (state_[j] == VarState::kBasic || j == q) continue;
      if (hi_[j] - lo_[j] <= opt_.tolerance) continue;
      const double alpha_j = col_dot(j, rho_);
      if (alpha_j == 0.0) continue;
      const double kappa = alpha_j / alpha_q;
      const double cand =
          weights_[j] - 2.0 * kappa * col_dot(j, sev_) + kappa * kappa * gamma_q;
      weights_[j] = std::max(cand, 1.0 + kappa * kappa);
      if (!std::isfinite(weights_[j])) {
        reset_weights();  // numeric breakdown: restart the framework
        return;
      }
    }
    const double inv_sq = 1.0 / (alpha_q * alpha_q);
    weights_[basis_[r]] = std::max(gamma_q * inv_sq, 1.0 + inv_sq);
  }

  SimplexOptions opt_;
  SimplexWorkspace& ws_;
  const bool use_lu_;
  BasisLu* lu_ = nullptr;  // workspace-owned; set when use_lu_
  BasisDense dense_;       // engaged when !use_lu_

  std::size_t m_ = 0;
  std::size_t n_struct_ = 0;
  std::size_t art_begin_ = 0;
  std::size_t n_total_ = 0;
  std::size_t nnz_ = 0;
  std::size_t iterations_ = 0;
  std::uint64_t refactorizations_ = 0;
  std::uint64_t eta_updates_ = 0;
  std::uint64_t eta_rejections_ = 0;

  // Arena-backed solve state (see workspace.h); spans live until the next
  // solve begins.
  double* b_ = nullptr;
  double* lo_ = nullptr;
  double* hi_ = nullptr;
  double* cost_ = nullptr;
  double* x_ = nullptr;
  VarState* state_ = nullptr;
  std::size_t* basis_ = nullptr;
  double* weights_ = nullptr;    // devex / steepest-edge reference weights
  double* costs_buf_ = nullptr;  // phase objective
  double* cb_ = nullptr;         // basic costs, then duals (BTRAN in place)
  double* w_ = nullptr;          // FTRAN'd entering column
  double* rho_ = nullptr;        // pivot row of B^-1
  double* sev_ = nullptr;        // steepest-edge v = B^-T w
  double* rhs_ = nullptr;        // refactorization right-hand side

  // CSC column store of the augmented tableau (authoritative).
  std::size_t* acol_ptr_ = nullptr;
  std::size_t* acol_row_ = nullptr;
  double* acol_val_ = nullptr;
  // Basis-column gather buffers for factorization (lazily carved).
  std::size_t* bcol_ptr_ = nullptr;
  std::size_t* bcol_row_ = nullptr;
  double* bcol_val_ = nullptr;
  // Dense column-major copy, materialized only for force-dense pricing.
  double* dense_cols_ = nullptr;
  bool sparse_pricing_ = false;
};

}  // namespace

Solution SimplexSolver::solve(const Problem& problem) const {
  return solve_instrumented(problem, nullptr);
}

Solution SimplexSolver::solve(const Problem& problem,
                              const std::vector<double>& guess) const {
  MECSCHED_REQUIRE(guess.size() == problem.num_variables(),
                   "warm-start guess size must match variable count");
  obs::Registry::global().counter("lp.simplex.warm_solves").add();
  return solve_instrumented(problem, &guess);
}

Solution SimplexSolver::solve_instrumented(
    const Problem& problem, const std::vector<double>* guess) const {
  const obs::ScopedTimer span("lp.simplex.solve", "lp");
  obs::FlightRecorder& flight = obs::FlightRecorder::global();
  const std::uint64_t chaos_before =
      flight.enabled() ? chaos::local_injections() : 0;
  // Pre-fill the record skeleton lazily: everything below the enabled()
  // gates is skipped on the disabled fast path.
  const auto cut_record = [&](const Solution* solution,
                              const std::string& status,
                              const std::string& detail,
                              const std::string& audit_verdict) {
    obs::SolveRecord r;
    r.layer = "lp";
    r.engine = "simplex";
    r.status = status;
    r.detail = detail;
    r.seconds = span.elapsed_s();
    r.iterations = solution != nullptr ? solution->iterations : 0;
    const CancellationToken token = effective_solve_token(options_.cancel);
    r.deadline_residual_ms =
        obs::FlightRecorder::residual_ms(token.deadline());
    r.deadline_hit =
        solution != nullptr && solution->status == SolveStatus::kDeadline;
    r.warm_start = guess != nullptr;
    r.chaos_hits = chaos::local_injections() - chaos_before;
    r.audit = audit_verdict;
    flight.record(std::move(r));
  };
  Solution out;
  try {
    out = solve_impl(problem, guess);
  } catch (const SolverError& e) {
    if (flight.enabled()) cut_record(nullptr, "error", e.what(), "");
    throw;
  }
  obs::Registry& reg = obs::Registry::global();
  reg.counter("lp.simplex.solves").add();
  reg.counter("lp.simplex.pivots").add(out.iterations);
  reg.histogram("lp.simplex.pivots_per_solve")
      .observe(static_cast<double>(out.iterations));
  reg.window("lp.simplex.solve.seconds").observe(span.elapsed_s());
  reg.rate("lp.solves").record();
  if (!out.optimal()) reg.counter("lp.simplex.non_optimal").add();
  if (out.status == SolveStatus::kDeadline) {
    reg.counter("solve.deadline.simplex").add();
    if (options_.cancel.cancel_requested()) reg.counter("solve.cancelled").add();
  }
  // Certificate audit (no-op at audit level off): the simplex promises a
  // basic optimal solution, warm-started or not.
  audit::LpCertificateOptions cert;
  cert.vertex_expected = true;
  try {
    audit::check_lp(problem, out,
                    guess != nullptr ? "simplex-warm" : "simplex", cert);
  } catch (const audit::AuditError& e) {
    if (flight.enabled()) {
      cut_record(&out, "audit-error", to_string(out.status), e.what());
    }
    throw;
  }
  if (flight.enabled()) cut_record(&out, to_string(out.status), "", "ok");
  return out;
}

Solution SimplexSolver::solve_impl(const Problem& problem,
                                   const std::vector<double>* guess) const {
  Solution out;
  if (problem.num_variables() == 0) {
    out.status = SolveStatus::kOptimal;
    return out;
  }

  const CancellationToken token = effective_solve_token(options_.cancel);
  SimplexWorkspace& ws = SimplexWorkspace::tls();
  const std::uint64_t ws_reuses = ws.reuses();
  const std::uint64_t ws_grows = ws.grows();
  Tableau t(problem, options_, guess, ws);
  obs::Registry& reg = obs::Registry::global();
  reg.counter("lp.simplex.workspace_reuses").add(ws.reuses() - ws_reuses);
  reg.counter("lp.simplex.workspace_grows").add(ws.grows() - ws_grows);
  if (t.sparse_pricing()) {
    reg.counter("lp.sparse.simplex_pricing_solves").add();
  }
  // Basis-kernel telemetry is flushed once per solve so the pivot loop
  // itself stays free of registry lookups (they build map-key strings).
  const auto report_kernel = [&] {
    reg.counter("lp.simplex.refactorizations").add(t.refactorizations());
    reg.counter("lp.simplex.eta_updates").add(t.eta_updates());
    reg.counter("lp.simplex.eta_rejections").add(t.eta_rejections());
  };

  // Phase 1: drive the artificials to zero. On expiry here there is no
  // feasible point to report yet: kDeadline with an empty x.
  const SolveStatus phase1 = t.optimize(t.phase1_costs(), token);
  if (phase1 == SolveStatus::kIterationLimit ||
      phase1 == SolveStatus::kDeadline) {
    out.status = phase1;
    out.iterations = t.iterations();
    report_kernel();
    return out;
  }
  // Phase 1 is bounded below by 0, so kUnbounded cannot occur here.
  if (t.artificial_infeasibility() > 1e-7 * t.rhs_scale()) {
    out.status = SolveStatus::kInfeasible;
    out.iterations = t.iterations();
    report_kernel();
    return out;
  }

  // Phase 2: optimize the real objective with artificials pinned at zero.
  // An expiry here still yields a usable answer: the current point is a
  // basic *feasible* solution (artificials are pinned), merely suboptimal —
  // the anytime half of the kDeadline contract.
  t.pin_artificials();
  const SolveStatus phase2 = t.optimize(t.phase2_costs(), token);
  out.status = phase2;
  out.iterations = t.iterations();
  report_kernel();
  if (phase2 == SolveStatus::kOptimal || phase2 == SolveStatus::kDeadline) {
    out.x = t.structural_solution();
    out.objective = problem.objective_value(out.x);
    out.duals = t.duals(t.phase2_costs());
    for (double v : out.x) {
      if (!std::isfinite(v)) {
        throw SolverError("simplex: non-finite solution (numeric breakdown)");
      }
    }
    if (!std::isfinite(out.objective)) {
      throw SolverError("simplex: non-finite objective (numeric breakdown)");
    }
    // Duals can be degraded at a deadline stop (mid-refactorization drift);
    // drop them rather than report garbage. At optimality they were already
    // proven finite by the pricing guard.
    for (double v : out.duals) {
      if (!std::isfinite(v)) {
        out.duals.clear();
        break;
      }
    }
  }
  return out;
}

}  // namespace mecsched::lp
