#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "audit/audit.h"
#include "audit/lp_certificate.h"
#include "common/chaos_hook.h"
#include "common/deadline.h"
#include "common/error.h"
#include "lp/matrix.h"
#include "lp/sparse_matrix.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "obs/window.h"

namespace mecsched::lp {
namespace {

enum class VarState { kBasic, kAtLower, kAtUpper };

// The augmented LP (structural + slack + artificial columns) plus all the
// mutable solver state for one solve.
class Tableau {
 public:
  // `guess` (optional, one entry per structural variable) warm-starts the
  // solve: structurals snap to their nearest finite bound and rows whose
  // slack can absorb the residual get a slack-basic crash start. The cold
  // path (guess == nullptr) is bit-identical to the historical all-
  // artificial start.
  Tableau(const Problem& p, const SimplexOptions& opt,
          const std::vector<double>* guess) : opt_(opt) {
    const std::size_t m = p.num_constraints();
    n_struct_ = p.num_variables();

    // Count slacks first so column indices are stable.
    std::size_t n_slack = 0;
    for (std::size_t r = 0; r < m; ++r) {
      if (p.constraint(r).relation != Relation::kEqual) ++n_slack;
    }
    const std::size_t n_total = n_struct_ + n_slack + m;  // + m artificials
    a_ = Matrix(m, n_total);
    b_.resize(m);
    lo_.assign(n_total, 0.0);
    hi_.assign(n_total, kInfinity);
    cost_.assign(n_total, 0.0);

    for (std::size_t v = 0; v < n_struct_; ++v) {
      lo_[v] = p.lower(v);
      hi_[v] = p.upper(v);
      cost_[v] = p.cost(v);
    }

    std::size_t slack = n_struct_;
    std::vector<std::size_t> slack_of(m, kNone);
    for (std::size_t r = 0; r < m; ++r) {
      const Constraint& c = p.constraint(r);
      for (const Term& t : c.terms) a_(r, t.var) = t.coeff;
      b_[r] = c.rhs;
      switch (c.relation) {
        case Relation::kLessEqual:
          slack_of[r] = slack;
          a_(r, slack++) = 1.0;
          break;
        case Relation::kGreaterEqual:
          slack_of[r] = slack;
          a_(r, slack++) = -1.0;
          break;
        case Relation::kEqual:
          break;
      }
    }
    art_begin_ = n_struct_ + n_slack;

    // Nonbasic start: every non-artificial variable at its (finite) lower
    // bound — or, when warm-starting, at whichever finite bound the guess
    // is nearest to. Artificials absorb the residual with a ±1 coefficient
    // so their phase-1 value is non-negative.
    state_.assign(n_total, VarState::kAtLower);
    x_.assign(n_total, 0.0);
    for (std::size_t v = 0; v < art_begin_; ++v) x_[v] = lo_[v];
    if (guess != nullptr) {
      for (std::size_t v = 0; v < n_struct_; ++v) {
        const double g = (*guess)[v];
        if (std::isfinite(hi_[v]) &&
            std::fabs(g - hi_[v]) < std::fabs(g - lo_[v])) {
          state_[v] = VarState::kAtUpper;
          x_[v] = hi_[v];
        }
      }
    }

    std::vector<double> residual = b_;
    for (std::size_t v = 0; v < art_begin_; ++v) {
      if (x_[v] == 0.0) continue;
      // One-time setup, before the CSC column store exists.
      // lint:allow-dense-scan-in-kernel -- constructor, not the pivot loop.
      for (std::size_t r = 0; r < m; ++r) residual[r] -= a_(r, v) * x_[v];
    }

    basis_.resize(m);
    binv_ = Matrix(m, m);
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t art = art_begin_ + r;
      if (guess != nullptr && slack_of[r] != kNone) {
        // Crash start: the slack column is ±e_r, so it serves as the basic
        // variable whenever the warm point leaves it non-negative; the
        // row's artificial then starts (and stays) at zero.
        const std::size_t s = slack_of[r];
        // lint:allow-dense-scan-in-kernel -- constructor, single slack entry.
        const double value = residual[r] * a_(r, s);
        if (value >= 0.0) {
          basis_[r] = s;
          state_[s] = VarState::kBasic;
          x_[s] = value;
          // B column = ±e_r => B^-1 entry = ±1
          // lint:allow-dense-scan-in-kernel -- constructor, single entry.
          binv_(r, r) = a_(r, s);
          a_(r, art) = 1.0;
          continue;
        }
      }
      const double sign = residual[r] >= 0.0 ? 1.0 : -1.0;
      a_(r, art) = sign;
      basis_[r] = art;
      state_[art] = VarState::kBasic;
      x_[art] = std::fabs(residual[r]);
      binv_(r, r) = sign;  // B = diag(sign) => B^-1 = diag(sign)
    }

    build_columns();
  }

  // Whether the pricing/ratio-test kernels run off the CSC column store.
  bool sparse_pricing() const { return sparse_pricing_; }

  // Minimizes `costs` from the current basis. Returns the phase status.
  // `token` is checked once per pivot; on expiry the current point is left
  // intact (it is a basic solution of the phase's system) and kDeadline is
  // returned — the caller decides what of it is reportable.
  SolveStatus optimize(const std::vector<double>& costs,
                       const CancellationToken& token) {
    const std::size_t m = a_.rows();
    const double cost_scale = 1.0 + max_abs(costs);
    const double dj_tol = opt_.tolerance * cost_scale;
    std::size_t degenerate_run = 0;
    devex_weights_.assign(x_.size(), 1.0);  // fresh reference framework

    for (; iterations_ < opt_.max_iterations; ++iterations_) {
      if (token.expired()) return SolveStatus::kDeadline;
      if (chaos::armed()) {
        switch (chaos::probe("simplex", m, x_.size(), iterations_)) {
          case chaos::Action::kNone:
            break;
          case chaos::Action::kStall:
          case chaos::Action::kCancel:
            // A stalled pivot loop and a cancelled one look the same from
            // outside: the budget is gone.
            return SolveStatus::kDeadline;
          case chaos::Action::kPoisonNan:
            if (m > 0) binv_(0, 0) = std::nan("");
            break;
          case chaos::Action::kError:
            throw SolverError("simplex: injected solver fault");
        }
      }
      if (iterations_ > 0 && iterations_ % opt_.refactor_period == 0) {
        refactorize();
      }

      // Dual prices y = (B^-1)^T c_B.
      std::vector<double> cb(m);
      for (std::size_t r = 0; r < m; ++r) cb[r] = costs[basis_[r]];
      const std::vector<double> y = binv_.multiply_transpose(cb);

      const bool bland = degenerate_run >= opt_.bland_trigger;
      const std::size_t entering = price(costs, y, dj_tol, bland);
      if (entering == kNone) {
        // NaN reduced costs make every eligibility comparison false, so a
        // poisoned basis would otherwise masquerade as optimal (and phase 1
        // would then report a *wrong* infeasible). Refuse loudly instead.
        for (double v : y) {
          if (!std::isfinite(v)) {
            throw SolverError(
                "simplex: non-finite dual prices (numeric breakdown)");
          }
        }
        return SolveStatus::kOptimal;
      }

      // Column in the current basis frame: w = B^-1 A_entering.
      const std::vector<double> w = ftran_column(entering);

      const double dir = state_[entering] == VarState::kAtLower ? 1.0 : -1.0;

      // Bounded ratio test: the entering variable moves by t in direction
      // `dir`; basic variable r changes by -dir * w[r] * t.
      double t_max = hi_[entering] - lo_[entering];  // bound-flip limit
      std::size_t leave_row = kNone;
      bool leave_at_upper = false;
      for (std::size_t r = 0; r < m; ++r) {
        const double rate = dir * w[r];
        const std::size_t bv = basis_[r];
        if (rate > opt_.tolerance) {  // basic value decreases toward lo
          const double t = (x_[bv] - lo_[bv]) / rate;
          if (t < t_max - opt_.tolerance ||
              (t < t_max + opt_.tolerance && leave_row == kNone)) {
            t_max = std::max(t, 0.0);
            leave_row = r;
            leave_at_upper = false;
          }
        } else if (rate < -opt_.tolerance && std::isfinite(hi_[bv])) {
          const double t = (hi_[bv] - x_[bv]) / -rate;
          if (t < t_max - opt_.tolerance ||
              (t < t_max + opt_.tolerance && leave_row == kNone)) {
            t_max = std::max(t, 0.0);
            leave_row = r;
            leave_at_upper = true;
          }
        }
      }

      if (!std::isfinite(t_max)) return SolveStatus::kUnbounded;
      degenerate_run = t_max <= opt_.tolerance ? degenerate_run + 1 : 0;

      // Apply the step.
      x_[entering] += dir * t_max;
      for (std::size_t r = 0; r < m; ++r) x_[basis_[r]] -= dir * w[r] * t_max;

      if (leave_row == kNone) {
        // Bound flip: entering variable crosses to its other bound; the
        // basis is unchanged.
        state_[entering] = state_[entering] == VarState::kAtLower
                               ? VarState::kAtUpper
                               : VarState::kAtLower;
        x_[entering] = state_[entering] == VarState::kAtLower ? lo_[entering]
                                                              : hi_[entering];
        continue;
      }

      if (opt_.pricing == PricingRule::kDevex) {
        devex_update(entering, leave_row, w);
      }
      const std::size_t leaving = basis_[leave_row];
      state_[leaving] = leave_at_upper ? VarState::kAtUpper : VarState::kAtLower;
      x_[leaving] = leave_at_upper ? hi_[leaving] : lo_[leaving];
      state_[entering] = VarState::kBasic;
      basis_[leave_row] = entering;
      pivot_update(w, leave_row);
    }
    return SolveStatus::kIterationLimit;
  }

  // Magnitude of the right-hand side; scales the phase-1 feasibility test.
  double rhs_scale() const { return 1.0 + max_abs(b_); }

  // Sum of artificial values (phase-1 objective at the current point).
  double artificial_infeasibility() const {
    double total = 0.0;
    for (std::size_t v = art_begin_; v < x_.size(); ++v) total += x_[v];
    return total;
  }

  std::vector<double> phase1_costs() const {
    std::vector<double> c(x_.size(), 0.0);
    for (std::size_t v = art_begin_; v < c.size(); ++v) c[v] = 1.0;
    return c;
  }

  std::vector<double> phase2_costs() const {
    std::vector<double> c(x_.size(), 0.0);
    std::copy(cost_.begin(), cost_.begin() + static_cast<long>(n_struct_),
              c.begin());
    return c;
  }

  // Pins every artificial to zero so phase 2 cannot re-activate them.
  void pin_artificials() {
    for (std::size_t v = art_begin_; v < x_.size(); ++v) {
      hi_[v] = 0.0;
      if (state_[v] != VarState::kBasic) x_[v] = 0.0;
    }
  }

  std::vector<double> structural_solution() const {
    return {x_.begin(), x_.begin() + static_cast<long>(n_struct_)};
  }

  // Dual prices y = (B^-1)^T c_B for the given objective. Rows of the
  // tableau correspond one-to-one (in order) with Problem constraints.
  std::vector<double> duals(const std::vector<double>& costs) const {
    const std::size_t m = a_.rows();
    std::vector<double> cb(m);
    for (std::size_t r = 0; r < m; ++r) cb[r] = costs[basis_[r]];
    return binv_.multiply_transpose(cb);
  }

  std::size_t iterations() const { return iterations_; }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  static double max_abs(const std::vector<double>& v) {
    double mx = 0.0;
    for (double e : v) mx = std::max(mx, std::fabs(e));
    return mx;
  }

  // Builds the CSC column store for the pricing kernels when the dispatch
  // policy picks the sparse path. Runs once, at the end of construction:
  // the augmented matrix (including the artificial columns) never changes
  // afterwards, only `binv_` does.
  void build_columns() {
    const std::size_t m = a_.rows();
    const std::size_t n = x_.size();
    std::size_t nnz = 0;
    for (std::size_t r = 0; r < m; ++r) {
      const double* row = a_.row(r);
      for (std::size_t j = 0; j < n; ++j) nnz += row[j] != 0.0 ? 1 : 0;
    }
    sparse_pricing_ = use_sparse_kernels(m, n, nnz, opt_.sparse_pricing);
    if (!sparse_pricing_) return;

    acol_ptr_.assign(n + 1, 0);
    for (std::size_t r = 0; r < m; ++r) {
      const double* row = a_.row(r);
      for (std::size_t j = 0; j < n; ++j) {
        if (row[j] != 0.0) ++acol_ptr_[j + 1];
      }
    }
    for (std::size_t j = 0; j < n; ++j) acol_ptr_[j + 1] += acol_ptr_[j];
    acol_row_.resize(nnz);
    acol_val_.resize(nnz);
    std::vector<std::size_t> next(acol_ptr_.begin(), acol_ptr_.end() - 1);
    for (std::size_t r = 0; r < m; ++r) {
      const double* row = a_.row(r);
      for (std::size_t j = 0; j < n; ++j) {
        if (row[j] == 0.0) continue;
        const std::size_t p = next[j]++;
        acol_row_[p] = r;
        acol_val_[p] = row[j];
      }
    }
  }

  // Reduced cost c_j - y^T A_j. Both paths subtract the products in
  // ascending row order (the sparse one merely skips exact-zero terms), so
  // sparse pricing reproduces the dense reduced costs bit-for-bit and the
  // pivot sequence is unchanged.
  double reduced_cost(std::size_t j, const std::vector<double>& costs,
                      const std::vector<double>& y) const {
    double dj = costs[j];
    if (sparse_pricing_) {
      for (std::size_t p = acol_ptr_[j]; p < acol_ptr_[j + 1]; ++p) {
        dj -= y[acol_row_[p]] * acol_val_[p];
      }
      return dj;
    }
    const std::size_t m = a_.rows();
    // Dense fallback under the dispatch threshold (lp/sparse_matrix.h).
    // lint:allow-dense-scan-in-kernel -- deliberate dense pricing path.
    for (std::size_t r = 0; r < m; ++r) dj -= y[r] * a_(r, j);
    return dj;
  }

  // w = B^-1 A_j for the entering column.
  std::vector<double> ftran_column(std::size_t j) const {
    const std::size_t m = a_.rows();
    if (sparse_pricing_) {
      std::vector<double> w(m, 0.0);
      for (std::size_t r = 0; r < m; ++r) {
        const double* br = binv_.row(r);
        double acc = 0.0;
        for (std::size_t p = acol_ptr_[j]; p < acol_ptr_[j + 1]; ++p) {
          acc += br[acol_row_[p]] * acol_val_[p];
        }
        w[r] = acc;
      }
      return w;
    }
    std::vector<double> col(m);
    // lint:allow-dense-scan-in-kernel -- dense fallback gather.
    for (std::size_t r = 0; r < m; ++r) col[r] = a_(r, j);
    return binv_.multiply(col);
  }

  // Chooses the entering column: Dantzig (most negative effective reduced
  // cost) normally, Bland (lowest eligible index) when anti-cycling.
  std::size_t price(const std::vector<double>& costs,
                    const std::vector<double>& y, double dj_tol,
                    bool bland) const {
    const bool devex = opt_.pricing == PricingRule::kDevex && !bland;
    std::size_t best = kNone;
    double best_score = devex ? dj_tol * dj_tol : dj_tol;
    for (std::size_t j = 0; j < x_.size(); ++j) {
      if (state_[j] == VarState::kBasic) continue;
      if (hi_[j] - lo_[j] <= opt_.tolerance) continue;  // fixed (artificials)
      const double dj = reduced_cost(j, costs, y);
      const double rate =
          state_[j] == VarState::kAtLower ? -dj : dj;  // improvement rate
      if (rate <= dj_tol) continue;                    // not eligible
      const double score = devex ? rate * rate / devex_weights_[j] : rate;
      if (score > best_score) {
        best = j;
        best_score = score;
        if (bland) break;  // first eligible index
      }
    }
    return best;
  }

  // Forrest-Goldfarb devex weight update after pivoting entering column
  // `q` on row `r` (w = B^-1 A_q already computed). The pivot row
  // e_r^T B^-1 A gives the alphas the update needs.
  void devex_update(std::size_t q, std::size_t r,
                    const std::vector<double>& w) {
    const std::size_t m = a_.rows();
    const double alpha_q = w[r];
    if (std::fabs(alpha_q) < 1e-12) return;
    // pivot row of B^-1 (before the pivot update), then rho = row * A.
    std::vector<double> binv_row(m);
    // lint:allow-dense-scan-in-kernel -- O(m) gather of one B^-1 row.
    for (std::size_t c = 0; c < m; ++c) binv_row[c] = binv_(r, c);
    const double wq = devex_weights_[q];
    for (std::size_t j = 0; j < x_.size(); ++j) {
      if (state_[j] == VarState::kBasic || j == q) continue;
      if (hi_[j] - lo_[j] <= opt_.tolerance) continue;
      // rho = (pivot row of B^-1) . A_j — a reduced cost against -binv_row.
      double rho = 0.0;
      if (sparse_pricing_) {
        for (std::size_t p = acol_ptr_[j]; p < acol_ptr_[j + 1]; ++p) {
          rho += binv_row[acol_row_[p]] * acol_val_[p];
        }
      } else {
        // lint:allow-dense-scan-in-kernel -- dense fallback.
        for (std::size_t c = 0; c < m; ++c) rho += binv_row[c] * a_(c, j);
      }
      const double cand = (rho / alpha_q) * (rho / alpha_q) * wq;
      if (cand > devex_weights_[j]) devex_weights_[j] = cand;
      // reset the framework if weights explode
      if (devex_weights_[j] > 1e12) {
        devex_weights_.assign(x_.size(), 1.0);
        return;
      }
    }
    devex_weights_[basis_[r]] = std::max(wq / (alpha_q * alpha_q), 1.0);
  }

  // Rank-1 basis-inverse update after pivoting on row `r`.
  void pivot_update(const std::vector<double>& w, std::size_t r) {
    const std::size_t m = a_.rows();
    const double piv = w[r];
    if (std::fabs(piv) < 1e-12) {
      throw SolverError("simplex: numerically singular pivot");
    }
    double* br = binv_.row(r);
    for (std::size_t c = 0; c < m; ++c) br[c] /= piv;
    for (std::size_t i = 0; i < m; ++i) {
      if (i == r) continue;
      const double f = w[i];
      if (f == 0.0) continue;
      double* bi = binv_.row(i);
      for (std::size_t c = 0; c < m; ++c) bi[c] -= f * br[c];
    }
  }

  // Recomputes B^-1 from scratch (Gauss-Jordan with partial pivoting) and
  // refreshes the basic values from the nonbasic ones, clearing the
  // accumulated floating-point drift of the rank-1 updates.
  void refactorize() {
    const std::size_t m = a_.rows();
    // The refactorization is dense by design (m×m basis, period-amortized).
    // lint:allow-dense-scan-in-kernel -- Gauss-Jordan work matrix.
    Matrix bmat(m, m);
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t j = basis_[r];
      if (sparse_pricing_) {
        for (std::size_t p = acol_ptr_[j]; p < acol_ptr_[j + 1]; ++p) {
          bmat(acol_row_[p], r) = acol_val_[p];
        }
      } else {
        // lint:allow-dense-scan-in-kernel -- dense fallback gather.
        for (std::size_t i = 0; i < m; ++i) bmat(i, r) = a_(i, j);
      }
    }
    // lint:allow-dense-scan-in-kernel -- dense Gauss-Jordan companion.
    Matrix inv = Matrix::identity(m);
    for (std::size_t col = 0; col < m; ++col) {
      std::size_t piv = col;
      for (std::size_t r = col + 1; r < m; ++r) {
        if (std::fabs(bmat(r, col)) > std::fabs(bmat(piv, col))) piv = r;
      }
      if (std::fabs(bmat(piv, col)) < 1e-12) {
        throw SolverError("simplex: singular basis during refactorization");
      }
      if (piv != col) {
        for (std::size_t c = 0; c < m; ++c) {
          std::swap(bmat(piv, c), bmat(col, c));
          std::swap(inv(piv, c), inv(col, c));
        }
      }
      const double d = bmat(col, col);
      for (std::size_t c = 0; c < m; ++c) {
        bmat(col, c) /= d;
        inv(col, c) /= d;
      }
      for (std::size_t r = 0; r < m; ++r) {
        if (r == col) continue;
        const double f = bmat(r, col);
        if (f == 0.0) continue;
        for (std::size_t c = 0; c < m; ++c) {
          bmat(r, c) -= f * bmat(col, c);
          inv(r, c) -= f * inv(col, c);
        }
      }
    }
    binv_ = std::move(inv);

    // x_B = B^-1 (b - N x_N)
    std::vector<double> rhs = b_;
    for (std::size_t v = 0; v < x_.size(); ++v) {
      if (state_[v] == VarState::kBasic || x_[v] == 0.0) continue;
      if (sparse_pricing_) {
        for (std::size_t p = acol_ptr_[v]; p < acol_ptr_[v + 1]; ++p) {
          rhs[acol_row_[p]] -= acol_val_[p] * x_[v];
        }
      } else {
        // lint:allow-dense-scan-in-kernel -- dense fallback.
        for (std::size_t r = 0; r < m; ++r) rhs[r] -= a_(r, v) * x_[v];
      }
    }
    const std::vector<double> xb = binv_.multiply(rhs);
    for (std::size_t r = 0; r < m; ++r) x_[basis_[r]] = xb[r];
  }

  SimplexOptions opt_;
  Matrix a_;
  Matrix binv_;
  std::vector<double> b_;
  std::vector<double> lo_, hi_, cost_;
  std::vector<double> x_;
  std::vector<VarState> state_;
  std::vector<std::size_t> basis_;
  std::vector<double> devex_weights_;
  std::size_t n_struct_ = 0;
  std::size_t art_begin_ = 0;
  std::size_t iterations_ = 0;

  // CSC copy of a_ for the pricing kernels (built only when the dispatch
  // policy picks sparse; empty otherwise). a_ stays authoritative.
  bool sparse_pricing_ = false;
  std::vector<std::size_t> acol_ptr_;
  std::vector<std::size_t> acol_row_;
  std::vector<double> acol_val_;
};

}  // namespace

Solution SimplexSolver::solve(const Problem& problem) const {
  return solve_instrumented(problem, nullptr);
}

Solution SimplexSolver::solve(const Problem& problem,
                              const std::vector<double>& guess) const {
  MECSCHED_REQUIRE(guess.size() == problem.num_variables(),
                   "warm-start guess size must match variable count");
  obs::Registry::global().counter("lp.simplex.warm_solves").add();
  return solve_instrumented(problem, &guess);
}

Solution SimplexSolver::solve_instrumented(
    const Problem& problem, const std::vector<double>* guess) const {
  const obs::ScopedTimer span("lp.simplex.solve", "lp");
  obs::FlightRecorder& flight = obs::FlightRecorder::global();
  const std::uint64_t chaos_before =
      flight.enabled() ? chaos::local_injections() : 0;
  // Pre-fill the record skeleton lazily: everything below the enabled()
  // gates is skipped on the disabled fast path.
  const auto cut_record = [&](const Solution* solution,
                              const std::string& status,
                              const std::string& detail,
                              const std::string& audit_verdict) {
    obs::SolveRecord r;
    r.layer = "lp";
    r.engine = "simplex";
    r.status = status;
    r.detail = detail;
    r.seconds = span.elapsed_s();
    r.iterations = solution != nullptr ? solution->iterations : 0;
    const CancellationToken token = effective_solve_token(options_.cancel);
    r.deadline_residual_ms =
        obs::FlightRecorder::residual_ms(token.deadline());
    r.deadline_hit =
        solution != nullptr && solution->status == SolveStatus::kDeadline;
    r.warm_start = guess != nullptr;
    r.chaos_hits = chaos::local_injections() - chaos_before;
    r.audit = audit_verdict;
    flight.record(std::move(r));
  };
  Solution out;
  try {
    out = solve_impl(problem, guess);
  } catch (const SolverError& e) {
    if (flight.enabled()) cut_record(nullptr, "error", e.what(), "");
    throw;
  }
  obs::Registry& reg = obs::Registry::global();
  reg.counter("lp.simplex.solves").add();
  reg.counter("lp.simplex.pivots").add(out.iterations);
  reg.histogram("lp.simplex.pivots_per_solve")
      .observe(static_cast<double>(out.iterations));
  reg.window("lp.simplex.solve.seconds").observe(span.elapsed_s());
  reg.rate("lp.solves").record();
  if (!out.optimal()) reg.counter("lp.simplex.non_optimal").add();
  if (out.status == SolveStatus::kDeadline) {
    reg.counter("solve.deadline.simplex").add();
    if (options_.cancel.cancel_requested()) reg.counter("solve.cancelled").add();
  }
  // Certificate audit (no-op at audit level off): the simplex promises a
  // basic optimal solution, warm-started or not.
  audit::LpCertificateOptions cert;
  cert.vertex_expected = true;
  try {
    audit::check_lp(problem, out,
                    guess != nullptr ? "simplex-warm" : "simplex", cert);
  } catch (const audit::AuditError& e) {
    if (flight.enabled()) {
      cut_record(&out, "audit-error", to_string(out.status), e.what());
    }
    throw;
  }
  if (flight.enabled()) cut_record(&out, to_string(out.status), "", "ok");
  return out;
}

Solution SimplexSolver::solve_impl(const Problem& problem,
                                   const std::vector<double>* guess) const {
  Solution out;
  if (problem.num_variables() == 0) {
    out.status = SolveStatus::kOptimal;
    return out;
  }

  const CancellationToken token = effective_solve_token(options_.cancel);
  Tableau t(problem, options_, guess);
  if (t.sparse_pricing()) {
    obs::Registry::global().counter("lp.sparse.simplex_pricing_solves").add();
  }

  // Phase 1: drive the artificials to zero. On expiry here there is no
  // feasible point to report yet: kDeadline with an empty x.
  const SolveStatus phase1 = t.optimize(t.phase1_costs(), token);
  if (phase1 == SolveStatus::kIterationLimit ||
      phase1 == SolveStatus::kDeadline) {
    out.status = phase1;
    out.iterations = t.iterations();
    return out;
  }
  // Phase 1 is bounded below by 0, so kUnbounded cannot occur here.
  if (t.artificial_infeasibility() > 1e-7 * t.rhs_scale()) {
    out.status = SolveStatus::kInfeasible;
    out.iterations = t.iterations();
    return out;
  }

  // Phase 2: optimize the real objective with artificials pinned at zero.
  // An expiry here still yields a usable answer: the current point is a
  // basic *feasible* solution (artificials are pinned), merely suboptimal —
  // the anytime half of the kDeadline contract.
  t.pin_artificials();
  const SolveStatus phase2 = t.optimize(t.phase2_costs(), token);
  out.status = phase2;
  out.iterations = t.iterations();
  if (phase2 == SolveStatus::kOptimal || phase2 == SolveStatus::kDeadline) {
    out.x = t.structural_solution();
    out.objective = problem.objective_value(out.x);
    out.duals = t.duals(t.phase2_costs());
    for (double v : out.x) {
      if (!std::isfinite(v)) {
        throw SolverError("simplex: non-finite solution (numeric breakdown)");
      }
    }
    if (!std::isfinite(out.objective)) {
      throw SolverError("simplex: non-finite objective (numeric breakdown)");
    }
    // Duals can be degraded at a deadline stop (mid-refactorization drift);
    // drop them rather than report garbage. At optimality they were already
    // proven finite by the pricing guard.
    for (double v : out.duals) {
      if (!std::isfinite(v)) {
        out.duals.clear();
        break;
      }
    }
  }
  return out;
}

}  // namespace mecsched::lp
