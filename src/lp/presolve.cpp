#include "lp/presolve.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "obs/registry.h"
#include "obs/tracer.h"

namespace mecsched::lp {
namespace {

constexpr double kFixTolerance = 1e-12;
constexpr double kFeasTolerance = 1e-9;

// Reduction tallies for the Prometheus dump; called at every exit of
// presolve() so the span timing and the counters always agree.
void record_presolve(const Presolved& out) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("lp.presolve.runs").add();
  reg.counter("lp.presolve.fixed_variables").add(out.fixed_variables());
  reg.counter("lp.presolve.dropped_constraints")
      .add(out.dropped_constraints());
  reg.counter("lp.presolve.tightened_bounds").add(out.tightened_bounds());
  if (out.infeasible()) reg.counter("lp.presolve.proved_infeasible").add();
}

}  // namespace

Presolved presolve(const Problem& p) {
  const obs::ScopedTimer span("lp.presolve", "lp");
  Presolved out;
  out.n_original_ = p.num_variables();
  out.var_map_.assign(p.num_variables(), std::nullopt);
  out.fixed_value_.assign(p.num_variables(), 0.0);

  // Pass 1: bound sanity + collect singleton-row bound tightenings.
  std::vector<double> lo(p.num_variables());
  std::vector<double> hi(p.num_variables());
  for (std::size_t v = 0; v < p.num_variables(); ++v) {
    lo[v] = p.lower(v);
    hi[v] = p.upper(v);
  }
  std::vector<bool> row_dropped(p.num_constraints(), false);
  for (std::size_t r = 0; r < p.num_constraints(); ++r) {
    const Constraint& c = p.constraint(r);
    if (c.terms.empty()) {
      // 0 <= / >= / == rhs — either vacuous or infeasible.
      const bool ok = (c.relation == Relation::kLessEqual && 0.0 <= c.rhs + kFeasTolerance) ||
                      (c.relation == Relation::kGreaterEqual && 0.0 >= c.rhs - kFeasTolerance) ||
                      (c.relation == Relation::kEqual && std::fabs(c.rhs) <= kFeasTolerance);
      if (!ok) {
        out.infeasible_ = true;
        record_presolve(out);
        return out;
      }
      row_dropped[r] = true;
      ++out.dropped_constraints_;
      continue;
    }
    if (c.terms.size() == 1 && c.relation != Relation::kEqual) {
      // a*x <= b (or >=): fold into the variable bound.
      const std::size_t v = c.terms[0].var;
      const double a = c.terms[0].coeff;
      if (a == 0.0) continue;  // degenerate; keep the row untouched
      const double bound = c.rhs / a;
      const bool upper = (c.relation == Relation::kLessEqual) == (a > 0.0);
      if (upper) {
        if (bound < hi[v]) {
          hi[v] = bound;
          ++out.tightened_;
        }
      } else {
        if (bound > lo[v]) {
          lo[v] = bound;
          ++out.tightened_;
        }
      }
      row_dropped[r] = true;
      ++out.dropped_constraints_;
    }
  }

  // Pass 2: infeasible or fixed variables.
  for (std::size_t v = 0; v < p.num_variables(); ++v) {
    if (lo[v] > hi[v] + kFeasTolerance) {
      out.infeasible_ = true;
      record_presolve(out);
      return out;
    }
    if (hi[v] - lo[v] <= kFixTolerance) {
      out.fixed_value_[v] = lo[v];
      out.objective_offset_ += p.cost(v) * lo[v];
      ++out.fixed_count_;
    }
  }

  // Pass 3: build the reduced problem.
  for (std::size_t v = 0; v < p.num_variables(); ++v) {
    if (hi[v] - lo[v] <= kFixTolerance) continue;  // fixed: substituted out
    out.var_map_[v] =
        out.reduced_.add_variable(p.cost(v), lo[v], hi[v], p.variable_name(v));
  }
  for (std::size_t r = 0; r < p.num_constraints(); ++r) {
    if (row_dropped[r]) continue;
    const Constraint& c = p.constraint(r);
    std::vector<Term> terms;
    double rhs = c.rhs;
    for (const Term& t : c.terms) {
      if (out.var_map_[t.var].has_value()) {
        terms.push_back({*out.var_map_[t.var], t.coeff});
      } else {
        rhs -= t.coeff * out.fixed_value_[t.var];
      }
    }
    if (terms.empty()) {
      const bool ok =
          (c.relation == Relation::kLessEqual && 0.0 <= rhs + kFeasTolerance) ||
          (c.relation == Relation::kGreaterEqual && 0.0 >= rhs - kFeasTolerance) ||
          (c.relation == Relation::kEqual && std::fabs(rhs) <= kFeasTolerance);
      if (!ok) {
        out.infeasible_ = true;
        record_presolve(out);
        return out;
      }
      ++out.dropped_constraints_;
      continue;
    }
    out.reduced_.add_constraint(std::move(terms), c.relation, rhs, c.name);
  }
  record_presolve(out);
  return out;
}

Solution Presolved::restore(const Solution& reduced_solution) const {
  Solution out;
  out.status = reduced_solution.status;
  out.iterations = reduced_solution.iterations;
  if (out.status != SolveStatus::kOptimal) return out;

  MECSCHED_REQUIRE(reduced_solution.x.size() == reduced_.num_variables(),
                   "reduced solution has wrong size");
  out.x.resize(n_original_);
  out.objective = objective_offset_;
  for (std::size_t v = 0; v < n_original_; ++v) {
    if (var_map_[v].has_value()) {
      out.x[v] = reduced_solution.x[*var_map_[v]];
      out.objective += reduced_.cost(*var_map_[v]) * out.x[v];
    } else {
      out.x[v] = fixed_value_[v];
    }
  }
  return out;
}

}  // namespace mecsched::lp
