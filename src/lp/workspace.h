// Arena-backed per-thread solve state for the simplex engine.
//
// Every `SimplexSolver::solve` used to allocate its tableau vectors, the
// per-pivot scratch (dual prices, entering column, pricing weights) and
// the basis-inverse storage from the heap, then throw them away. At sweep
// and serve scale the solver is re-entered thousands of times per second
// with near-identical shapes (PR 3 cached sweep cells, PR 8 shard solves
// with warm hints), so the allocator traffic dominates small solves.
//
// `SimplexWorkspace` replaces that with a bump arena: one capacity-
// reserving block per thread from which a solve carves all of its state.
// `begin_solve()` resets the cursor; if the previous solve overflowed into
// extra chunks they are coalesced into a single block sized for the whole
// solve, so the steady state — the warm re-entry path — is exactly one
// long-lived allocation and zero heap traffic inside the solver
// (asserted by tests/lp/workspace_alloc_test.cpp). The workspace also owns
// the `BasisLu` eta-file kernel (lp/basis_lu.h), whose pools keep their
// capacity across solves for the same reason.
//
// The workspace is scratch, not state: every span is fully re-initialised
// by the solve that allocates it, so reuse never leaks values between
// solves and results are independent of which thread (or how warm a
// workspace) ran them — the PR 3 determinism contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "lp/basis_lu.h"

namespace mecsched::lp {

class SimplexWorkspace {
 public:
  SimplexWorkspace() = default;
  SimplexWorkspace(const SimplexWorkspace&) = delete;
  SimplexWorkspace& operator=(const SimplexWorkspace&) = delete;

  // Resets the arena cursor for a new solve. When the previous solve
  // fragmented the arena (grew past the reserved block), the chunks are
  // coalesced into one block first so this solve — and every later one of
  // the same shape — runs out of a single allocation.
  void begin_solve();

  // Bump-allocates `n` objects of trivially-destructible type T (8-byte
  // aligned). The returned memory is uninitialised; the caller writes every
  // element before reading. Pointers stay valid until the next
  // begin_solve(): growth appends a chunk, it never moves earlier ones.
  template <typename T>
  T* alloc(std::size_t n) {
    static_assert(alignof(T) <= kAlign, "arena alignment is 8 bytes");
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena types are never destroyed");
    return static_cast<T*>(raw_alloc(n * sizeof(T)));
  }

  // The eta-file LU basis kernel, pools preserved across solves.
  BasisLu& lu() { return lu_; }

  // Monotonic statistics for the obs layer (the solver reports per-solve
  // deltas as lp.simplex.workspace_{reuses,grows} — see docs/observability).
  std::uint64_t reuses() const { return reuses_; }
  std::uint64_t grows() const { return grows_; }
  std::size_t capacity_bytes() const;

  // The calling thread's workspace. Thread-locality gives sweep workers and
  // serve shard threads allocation-free re-entry with no synchronisation;
  // solves on different threads never share one.
  static SimplexWorkspace& tls();

 private:
  static constexpr std::size_t kAlign = 8;

  void* raw_alloc(std::size_t bytes);

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  BasisLu lu_;
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  // chunk the cursor lives in
  bool grew_this_solve_ = false;
  std::uint64_t reuses_ = 0;
  std::uint64_t grows_ = 0;
};

// Allocation-probe seam for the allocation-free pivot-loop contract. The
// solver brackets its pivot loops with PivotLoopScope; the regression test
// overrides global operator new and counts allocations made while
// pivot_loop_active() — production builds only pay two thread-local stores
// per optimize() call.
bool pivot_loop_active();

namespace internal {
struct PivotLoopScope {
  PivotLoopScope();
  ~PivotLoopScope();
  PivotLoopScope(const PivotLoopScope&) = delete;
  PivotLoopScope& operator=(const PivotLoopScope&) = delete;
};
}  // namespace internal

}  // namespace mecsched::lp
