// Dense row-major matrix used by the LP solvers.
//
// This is the small-instance workhorse, not the only representation: the
// HTA cluster LPs are in fact block-structured and very sparse (each
// column touches at most 3 rows), and above the dispatch threshold in
// lp/sparse_matrix.h (>= kSparseMinRows rows and density <=
// kSparseDensityThreshold) the solvers switch to CSR kernels with a
// cached symbolic Cholesky — see docs/lp-kernels.md. Below the threshold
// the cache-friendly dense representation wins on constant factors and
// keeps the factorization code simple and auditable, so small or dense
// systems stay here.
#pragma once

#include <cstddef>
#include <vector>

namespace mecsched::lp {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  // Pointer to the start of row `r` (contiguous, `cols()` entries).
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  Matrix transposed() const;

  // y = this * x  (x.size() == cols()).
  std::vector<double> multiply(const std::vector<double>& x) const;

  // y = this^T * x  (x.size() == rows()).
  std::vector<double> multiply_transpose(const std::vector<double>& x) const;

  // C = this * other.
  Matrix multiply(const Matrix& other) const;

  // Frobenius-norm-style max absolute entry (used for scaling/tolerances).
  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// Dense vector helpers shared by the solvers.
double dot(const std::vector<double>& a, const std::vector<double>& b);
double norm_inf(const std::vector<double>& v);
double norm2(const std::vector<double>& v);
// a += s * b
void axpy(double s, const std::vector<double>& b, std::vector<double>& a);

}  // namespace mecsched::lp
