#include "lp/standard_form.h"

#include <cmath>

#include "common/error.h"

namespace mecsched::lp {

std::vector<double> StandardForm::recover(const std::vector<double>& x) const {
  MECSCHED_REQUIRE(x.size() >= n_original, "standard-form solution too short");
  std::vector<double> out(n_original);
  for (std::size_t i = 0; i < n_original; ++i) out[i] = x[i] + shift[i];
  return out;
}

StandardForm to_standard_form(const Problem& p) {
  StandardForm sf;
  const std::size_t n0 = p.num_variables();
  sf.n_original = n0;
  sf.shift.resize(n0);

  // Column layout: [original | upper-bound slacks | row slacks].
  std::size_t n_ub = 0;
  for (std::size_t v = 0; v < n0; ++v) {
    if (std::isfinite(p.upper(v))) ++n_ub;
  }
  std::size_t n_row_slack = 0;
  for (std::size_t r = 0; r < p.num_constraints(); ++r) {
    if (p.constraint(r).relation != Relation::kEqual) ++n_row_slack;
  }

  const std::size_t m = p.num_constraints() + n_ub;
  const std::size_t n = n0 + n_ub + n_row_slack;
  sf.b.assign(m, 0.0);
  sf.c.assign(n, 0.0);

  for (std::size_t v = 0; v < n0; ++v) {
    sf.shift[v] = p.lower(v);
    sf.c[v] = p.cost(v);
    sf.objective_offset += p.cost(v) * p.lower(v);
  }

  // The constraint rows stay sparse all the way: Problem terms become CSR
  // triplets, slack/bound columns are singletons (±1 each).
  std::vector<Triplet> triplets;
  std::size_t nnz_estimate = 2 * n_ub + n_row_slack;
  for (std::size_t r = 0; r < p.num_constraints(); ++r) {
    nnz_estimate += p.constraint(r).terms.size();
  }
  triplets.reserve(nnz_estimate);

  // Original rows first; shift the RHS by A * lo.
  std::size_t slack = n0 + n_ub;
  for (std::size_t r = 0; r < p.num_constraints(); ++r) {
    const Constraint& con = p.constraint(r);
    double rhs = con.rhs;
    for (const Term& t : con.terms) {
      triplets.push_back({r, t.var, t.coeff});
      rhs -= t.coeff * p.lower(t.var);
    }
    sf.b[r] = rhs;
    switch (con.relation) {
      case Relation::kLessEqual:
        triplets.push_back({r, slack++, 1.0});
        break;
      case Relation::kGreaterEqual:
        triplets.push_back({r, slack++, -1.0});
        break;
      case Relation::kEqual:
        break;
    }
  }

  // Upper-bound rows: x'_v + s = hi - lo.
  std::size_t ub_row = p.num_constraints();
  std::size_t ub_col = n0;
  for (std::size_t v = 0; v < n0; ++v) {
    if (!std::isfinite(p.upper(v))) continue;
    triplets.push_back({ub_row, v, 1.0});
    triplets.push_back({ub_row, ub_col, 1.0});
    sf.b[ub_row] = p.upper(v) - p.lower(v);
    ++ub_row;
    ++ub_col;
  }
  sf.a = SparseMatrix::from_triplets(m, n, std::move(triplets));
  return sf;
}

}  // namespace mecsched::lp
