// Sparse LU basis kernel with product-form eta-file updates.
//
// The revised simplex needs four operations on the basis matrix B (the m
// columns of the augmented tableau currently basic): FTRAN (w = B⁻¹a),
// BTRAN (y = B⁻ᵀc), a rank-1 replacement of one column per pivot, and a
// periodic from-scratch refactorization. The historical kernel kept B⁻¹ as
// an explicit dense m×m matrix — O(m²) per pivot for the rank-1 update and
// the BTRAN, plus a dense O(m³) Gauss-Jordan rebuild — no matter how
// sparse B is. HTA bases are extremely sparse (structural columns carry at
// most a handful of nonzeros, slack/artificial columns exactly one), so
// this kernel factorizes B = L·U with Markowitz-ordered threshold
// pivoting and keeps the factorization current between bounded
// refactorizations with product-form eta files:
//
//   B_k = B_0 · E_1 · … · E_k,   E_t = I + (w_t − e_{r_t}) e_{r_t}ᵀ
//
// where w_t = B_{t-1}⁻¹ a_q is the FTRAN'd entering column of pivot t.
// FTRAN solves through L, U and then the etas in creation order; BTRAN
// applies the transposed etas newest-first and then solves Uᵀ, Lᵀ. All
// solves run on the nonzero structure only and skip zero intermediate
// values, so the cost per pivot is O(nnz(L+U) + nnz(etas)), not O(m²).
//
// Refactorization triggers (`needs_refactor()` / a rejected `push_eta`):
//   * the eta file reached the configured pivot budget (the solver's
//     `refactor_period`, same bounded-drift contract as the dense kernel),
//   * the eta pool outgrew the factor (fill/spike growth — applying a long
//     eta file costs more than refactorizing),
//   * an update pivot w_r too small relative to ‖w‖_∞ (accuracy trigger —
//     a near-singular eta would amplify drift; the caller refactorizes
//     from the new basis instead).
//
// Everything here is deterministic: Markowitz ties break on the lowest
// (column, row) index and the eta file is an ordered log, so identical
// inputs produce bit-identical factorizations on any thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mecsched::lp {

class BasisLu {
 public:
  // Tuning knobs; defaults are set once by the solver from SimplexOptions.
  struct Limits {
    // Max etas between refactorizations (the solver's refactor_period).
    std::size_t max_etas = 64;
    // Refactorize when the eta pool holds more than this many times the
    // factor's nonzeros (fill growth).
    double eta_fill_factor = 4.0;
    // Reject an eta whose pivot satisfies |w_r| < pivot_rel_floor·‖w‖_∞.
    double pivot_rel_floor = 1e-8;
  };

  // Factorizes the m×m basis given as CSC-style columns: column `k` of B
  // spans positions col_ptr[k] .. col_ptr[k+1] of (rows, values). Clears
  // the eta file. Throws SolverError when the basis is numerically
  // singular. Pools keep their capacity across calls.
  void factorize(std::size_t m, const std::size_t* col_ptr,
                 const std::size_t* rows, const double* values);

  // w := B⁻¹ w (dense m-vector in place; zero intermediates are skipped).
  void ftran(double* w) const;

  // y := B⁻ᵀ y (dense m-vector in place).
  void btran(double* y) const;

  // Appends the eta of a pivot that replaced basis column `r` with a
  // column whose FTRAN'd image is `w` (dense m-vector, w[r] the pivot).
  // Returns false — leaving the factorization unchanged — when the pivot
  // fails the accuracy trigger; the caller must then refactorize from the
  // updated basis.
  bool push_eta(const double* w, std::size_t r, std::size_t m);

  // True when the eta file hit a refactorization trigger (budget or fill).
  bool needs_refactor() const;

  // Chaos hook (common/chaos_hook.h, Action::kPoisonNan): poisons every U
  // diagonal so the next FTRAN/BTRAN yields non-finite values and the
  // solver's finite guards must refuse loudly.
  void poison();

  std::size_t eta_count() const { return eta_pivot_row_.size(); }
  std::size_t eta_nnz() const { return eta_row_.size(); }
  std::size_t factor_nnz() const { return lower_nnz_ + upper_nnz_; }

  Limits& limits() { return limits_; }

 private:
  // One elimination step: multipliers applied to the remaining rows.
  // (pivot_row, (row, multiplier)*) — FTRAN scatters, BTRAN gathers.
  struct LStep {
    std::size_t pivot_row;
    std::size_t begin, end;  // span in l_row_ / l_val_
  };

  Limits limits_;
  std::size_t m_ = 0;

  // L as an ordered op-log, U by rows in pivot order. Column ids of U
  // entries are stored as *pivot-step indices* (the column eliminated at
  // that step), which makes both triangular solves index positionally.
  std::vector<LStep> l_steps_;
  std::vector<std::size_t> l_row_;
  std::vector<double> l_val_;

  struct URow {
    std::size_t pivot_row;  // original row id
    std::size_t pivot_col;  // original column id (basis slot)
    double diag;
    std::size_t begin, end;  // off-diagonal span in u_step_ / u_val_
  };
  std::vector<URow> u_rows_;
  std::vector<std::size_t> u_step_;  // pivot-step index of the entry column
  std::vector<double> u_val_;
  std::size_t lower_nnz_ = 0;
  std::size_t upper_nnz_ = 0;

  // Eta file: eta t spans eta_ptr_[t] .. eta_ptr_[t+1] in (eta_row_,
  // eta_val_) and carries its pivot row/value separately.
  std::vector<std::size_t> eta_ptr_{0};
  std::vector<std::size_t> eta_pivot_row_;
  std::vector<double> eta_pivot_val_;
  std::vector<std::size_t> eta_row_;
  std::vector<double> eta_val_;

  // Factorization scratch; also the per-step solution array of the const
  // triangular solves, hence mutable (capacity kept across calls).
  mutable std::vector<double> work_val_;
  std::vector<std::size_t> work_pat_;
  std::vector<std::size_t> step_of_col_;
  // Incremental Markowitz state: active-entry count per column, column
  // maxima (refreshed only on full-scan steps), and a column -> rows
  // transpose with lazy deletion (entries are verified against the live
  // row before use, so retired rows and cancellations can stay behind).
  std::vector<std::size_t> col_count_;
  std::vector<double> col_max_;
  std::vector<std::vector<std::size_t>> col_rows_;

  struct WorkRow {
    std::vector<std::size_t> cols;
    std::vector<double> vals;
  };
  std::vector<WorkRow> work_rows_;
};

}  // namespace mecsched::lp
