#include "lp/sparse_cholesky.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <list>
#include <unordered_map>
#include <utility>

#include "common/error.h"
#include "common/thread_annotations.h"
#include "obs/registry.h"

namespace mecsched::lp {
namespace {

// Above this dimension the O(m²)-ish greedy minimum-degree pass stops
// paying for itself in setup time; fall back to the natural order (the
// factorization stays correct, just with more fill).
constexpr std::size_t kMinDegreeMaxDim = 4096;

// Deterministic greedy minimum-degree ordering over a symmetric adjacency
// structure (ties break on the lowest vertex index). Eliminating a vertex
// turns its neighborhood into a clique, exactly mirroring where Cholesky
// fill-in appears.
std::vector<std::size_t> min_degree_order(
    std::size_t m, const std::vector<std::size_t>& m_ptr,
    const std::vector<std::size_t>& m_col) {
  std::vector<std::size_t> perm(m);
  for (std::size_t i = 0; i < m; ++i) perm[i] = i;
  if (m > kMinDegreeMaxDim) return perm;  // natural order beyond the guard

  std::vector<std::vector<std::size_t>> adj(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = m_ptr[i]; p < m_ptr[i + 1]; ++p) {
      if (m_col[p] != i) adj[i].push_back(m_col[p]);
    }
  }
  std::vector<char> alive(m, 1);
  std::vector<std::size_t> scratch;
  for (std::size_t step = 0; step < m; ++step) {
    std::size_t best = m;
    for (std::size_t v = 0; v < m; ++v) {
      if (!alive[v]) continue;
      if (best == m || adj[v].size() < adj[best].size()) best = v;
    }
    perm[step] = best;
    alive[best] = 0;
    // Surviving neighborhood of `best` becomes a clique.
    std::vector<std::size_t> nb;
    nb.reserve(adj[best].size());
    for (const std::size_t u : adj[best]) {
      if (alive[u]) nb.push_back(u);
    }
    for (const std::size_t u : nb) {
      scratch.clear();
      std::set_union(adj[u].begin(), adj[u].end(), nb.begin(), nb.end(),
                     std::back_inserter(scratch));
      adj[u].clear();
      for (const std::size_t w : scratch) {
        if (w != u && alive[w]) adj[u].push_back(w);
      }
    }
    adj[best].clear();
    adj[best].shrink_to_fit();
  }
  return perm;
}

// Row pattern of L row k via the elimination tree: climbs from every entry
// of column k of C toward the root, collecting unvisited vertices. The
// resulting s[top..m) is in the topological order the up-looking numeric
// factorization consumes. `stamp` carries k+1 marks so no reset is needed.
std::size_t ereach(std::size_t k, const std::vector<std::size_t>& c_ptr,
                   const std::vector<std::size_t>& c_row,
                   const std::vector<std::size_t>& parent, std::size_t m,
                   std::vector<std::size_t>& stamp,
                   std::vector<std::size_t>& path,
                   std::vector<std::size_t>& s) {
  std::size_t top = m;
  stamp[k] = k + 1;
  for (std::size_t p = c_ptr[k]; p < c_ptr[k + 1]; ++p) {
    std::size_t i = c_row[p];
    if (i == k) continue;  // diagonal
    std::size_t len = 0;
    while (stamp[i] != k + 1) {
      path[len++] = i;
      stamp[i] = k + 1;
      if (parent[i] == m) break;
      i = parent[i];
      if (stamp[i] == k + 1) break;
    }
    while (len > 0) s[--top] = path[--len];
  }
  return top;
}

}  // namespace

NormalEquationsSymbolic::NormalEquationsSymbolic(const SparseMatrix& a) {
  const auto t0 = std::chrono::steady_clock::now();
  m_ = a.rows();
  fingerprint_ = a.pattern_fingerprint();
  const SparseMatrix at = a.transposed();

  // ---- Pattern of M = A·D·Aᵀ (full symmetric, diagonal always present).
  // Row i touches row j whenever they share a column of A.
  m_ptr_.assign(m_ + 1, 0);
  {
    std::vector<std::size_t> stamp(m_, 0);
    std::vector<std::size_t> cols;
    for (std::size_t i = 0; i < m_; ++i) {
      cols.clear();
      stamp[i] = i + 1;
      cols.push_back(i);
      for (std::size_t p = a.row_ptr()[i]; p < a.row_ptr()[i + 1]; ++p) {
        const std::size_t k = a.col_idx()[p];
        for (std::size_t q = at.row_ptr()[k]; q < at.row_ptr()[k + 1]; ++q) {
          const std::size_t j = at.col_idx()[q];
          if (stamp[j] != i + 1) {
            stamp[j] = i + 1;
            cols.push_back(j);
          }
        }
      }
      std::sort(cols.begin(), cols.end());
      m_ptr_[i + 1] = m_ptr_[i] + cols.size();
      m_col_.insert(m_col_.end(), cols.begin(), cols.end());
    }
  }

  // ---- Fill-reducing ordering and its inverse.
  perm_ = min_degree_order(m_, m_ptr_, m_col_);
  iperm_.assign(m_, 0);
  for (std::size_t k = 0; k < m_; ++k) iperm_[perm_[k]] = k;

  // ---- Upper triangle of the permuted M in CSC, with a map back to the
  // M CSR value positions so the numeric phase is a flat gather.
  c_ptr_.assign(m_ + 1, 0);
  {
    std::vector<std::pair<std::size_t, std::size_t>> column;  // (row, m pos)
    for (std::size_t k = 0; k < m_; ++k) {
      const std::size_t orig = perm_[k];
      column.clear();
      for (std::size_t p = m_ptr_[orig]; p < m_ptr_[orig + 1]; ++p) {
        const std::size_t pk = iperm_[m_col_[p]];
        if (pk <= k) column.emplace_back(pk, p);
      }
      std::sort(column.begin(), column.end());
      c_ptr_[k + 1] = c_ptr_[k] + column.size();
      for (const auto& [row, pos] : column) {
        c_row_.push_back(row);
        c_from_m_.push_back(pos);
      }
    }
  }

  // ---- Elimination tree of C (m_ == "no parent").
  parent_.assign(m_, m_);
  {
    std::vector<std::size_t> ancestor(m_, m_);
    for (std::size_t k = 0; k < m_; ++k) {
      for (std::size_t p = c_ptr_[k]; p < c_ptr_[k + 1]; ++p) {
        std::size_t i = c_row_[p];
        while (i != m_ && i < k) {
          const std::size_t next = ancestor[i];
          ancestor[i] = k;
          if (next == m_) parent_[i] = k;
          i = next;
        }
      }
    }
  }

  // ---- Column counts of L (symbolic ereach sweep), then l_ptr_.
  std::vector<std::size_t> counts(m_, 1);  // every column has its diagonal
  {
    std::vector<std::size_t> stamp(m_, 0), path(m_), s(m_);
    for (std::size_t k = 0; k < m_; ++k) {
      const std::size_t top = ereach(k, c_ptr_, c_row_, parent_, m_, stamp,
                                     path, s);
      for (std::size_t t = top; t < m_; ++t) ++counts[s[t]];
    }
  }
  l_ptr_.assign(m_ + 1, 0);
  for (std::size_t k = 0; k < m_; ++k) l_ptr_[k + 1] = l_ptr_[k] + counts[k];

  analysis_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

double NormalEquationsSymbolic::fill_ratio() const {
  // Upper(M) and L have the same shape class; compare their entry counts.
  const std::size_t upper = c_row_.size();
  if (upper == 0) return 1.0;
  return static_cast<double>(factor_nnz()) / static_cast<double>(upper);
}

// ---------------------------------------------------------------------------

struct SymbolicFactorCache::Impl {
  using Entry =
      std::pair<std::uint64_t, std::shared_ptr<const NormalEquationsSymbolic>>;
  mutable Mutex mu;
  std::size_t capacity MECSCHED_GUARDED_BY(mu);
  std::list<Entry> lru MECSCHED_GUARDED_BY(mu);  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index
      MECSCHED_GUARDED_BY(mu);
};

SymbolicFactorCache& SymbolicFactorCache::global() {
  static SymbolicFactorCache cache;
  return cache;
}

SymbolicFactorCache::SymbolicFactorCache(std::size_t capacity)
    : impl_(std::make_shared<Impl>()) {
  // The Impl was just created and is not shared yet, but taking the (free)
  // lock keeps the guarded write visible to the thread-safety analysis.
  const MutexLock lock(impl_->mu);
  impl_->capacity = capacity == 0 ? 1 : capacity;
}

std::shared_ptr<const NormalEquationsSymbolic> SymbolicFactorCache::analyze(
    const SparseMatrix& a) {
  const std::uint64_t key = a.pattern_fingerprint();
  obs::Registry& reg = obs::Registry::global();
  {
    const MutexLock lock(impl_->mu);
    const auto it = impl_->index.find(key);
    if (it != impl_->index.end()) {
      impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
      reg.counter("lp.sparse.pattern_cache_hits").add();
      return it->second->second;
    }
  }
  reg.counter("lp.sparse.pattern_cache_misses").add();
  // Analyze outside the lock: a concurrent duplicate analysis is rare and
  // harmless (both produce identical immutable objects), while holding the
  // lock would serialize every sweep worker behind one ordering pass.
  auto computed = std::make_shared<const NormalEquationsSymbolic>(a);
  reg.gauge("lp.sparse.last_ordering_seconds").set(computed->analysis_seconds());

  const MutexLock lock(impl_->mu);
  const auto it = impl_->index.find(key);
  if (it != impl_->index.end()) return it->second->second;  // lost the race
  impl_->lru.emplace_front(key, computed);
  impl_->index.emplace(key, impl_->lru.begin());
  while (impl_->lru.size() > impl_->capacity) {
    impl_->index.erase(impl_->lru.back().first);
    impl_->lru.pop_back();
    reg.counter("lp.sparse.pattern_cache_evictions").add();
  }
  return computed;
}

void SymbolicFactorCache::set_capacity(std::size_t capacity) {
  const MutexLock lock(impl_->mu);
  impl_->capacity = capacity == 0 ? 1 : capacity;
  while (impl_->lru.size() > impl_->capacity) {
    impl_->index.erase(impl_->lru.back().first);
    impl_->lru.pop_back();
    obs::Registry::global().counter("lp.sparse.pattern_cache_evictions").add();
  }
}

std::size_t SymbolicFactorCache::size() const {
  const MutexLock lock(impl_->mu);
  return impl_->lru.size();
}

void SymbolicFactorCache::clear() {
  const MutexLock lock(impl_->mu);
  impl_->lru.clear();
  impl_->index.clear();
}

// ---------------------------------------------------------------------------

NormalCholesky::NormalCholesky(
    const SparseMatrix& a, const SparseMatrix& at, const std::vector<double>& d,
    std::shared_ptr<const NormalEquationsSymbolic> symbolic)
    : sym_(std::move(symbolic)) {
  MECSCHED_REQUIRE(sym_ != nullptr && sym_->dim() == a.rows(),
                   "sparse Cholesky: symbolic analysis does not match A");
  MECSCHED_REQUIRE(at.rows() == a.cols() && at.cols() == a.rows(),
                   "sparse Cholesky: at must be a.transposed()");
  MECSCHED_REQUIRE(d.size() == a.cols(),
                   "sparse Cholesky: diagonal size mismatch");
  const std::size_t m = sym_->m_;

  // ---- Assemble the values of M = A·diag(d)·Aᵀ on the symbolic pattern.
  // Row-at-a-time scatter into a dense workspace; the gather visits only
  // the pattern positions, so the workspace reset is targeted.
  std::vector<double> mx(sym_->m_col_.size(), 0.0);
  double max_abs = 0.0;
  {
    std::vector<double> w(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t p = a.row_ptr()[i]; p < a.row_ptr()[i + 1]; ++p) {
        const std::size_t k = a.col_idx()[p];
        const double coef = a.values()[p] * d[k];
        for (std::size_t q = at.row_ptr()[k]; q < at.row_ptr()[k + 1]; ++q) {
          w[at.col_idx()[q]] += coef * at.values()[q];
        }
      }
      for (std::size_t p = sym_->m_ptr_[i]; p < sym_->m_ptr_[i + 1]; ++p) {
        const std::size_t j = sym_->m_col_[p];
        mx[p] = w[j];
        w[j] = 0.0;
        max_abs = std::max(max_abs, std::fabs(mx[p]));
      }
    }
  }
  const double scale = std::max(max_abs, 1.0);
  const double floor = 1e-12 * scale;

  // ---- Values of the permuted upper triangle (flat gather).
  std::vector<double> cx(sym_->c_row_.size());
  for (std::size_t p = 0; p < cx.size(); ++p) cx[p] = mx[sym_->c_from_m_[p]];

  // ---- Up-looking numeric factorization over the symbolic structure.
  // Each column of L stores its diagonal first (written when its own row
  // is processed), then rows in ascending elimination order.
  const std::vector<std::size_t>& l_ptr = sym_->l_ptr_;
  l_row_.assign(l_ptr[m], 0);
  l_val_.assign(l_ptr[m], 0.0);
  std::vector<std::size_t> next(l_ptr.begin(), l_ptr.end() - 1);
  std::vector<std::size_t> stamp(m, 0), path(m), s(m);
  std::vector<double> x(m, 0.0);
  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t top =
        ereach(k, sym_->c_ptr_, sym_->c_row_, sym_->parent_, m, stamp, path, s);
    // Scatter column k of C (the permuted row k of M, upper part).
    double diag = 0.0;
    for (std::size_t p = sym_->c_ptr_[k]; p < sym_->c_ptr_[k + 1]; ++p) {
      if (sym_->c_row_[p] == k) {
        diag = cx[p];
      } else {
        x[sym_->c_row_[p]] = cx[p];
      }
    }
    for (std::size_t t = top; t < m; ++t) {
      const std::size_t i = s[t];
      const double lki = x[i] / l_val_[l_ptr[i]];
      x[i] = 0.0;
      for (std::size_t p = l_ptr[i] + 1; p < next[i]; ++p) {
        x[l_row_[p]] -= l_val_[p] * lki;
      }
      diag -= lki * lki;
      l_row_[next[i]] = k;
      l_val_[next[i]] = lki;
      ++next[i];
    }
    if (diag < floor) {
      // Same contract as the dense Cholesky: IPM systems drift to
      // semidefinite near the central-path boundary, never strongly
      // indefinite — a large negative pivot is a modelling bug.
      if (diag < -1e-6 * scale) {
        throw SolverError("sparse Cholesky: matrix is indefinite");
      }
      regularization_ += floor - diag;
      diag = floor;
    }
    l_row_[next[k]] = k;
    l_val_[next[k]] = std::sqrt(diag);
    ++next[k];
  }
}

std::vector<double> NormalCholesky::solve(const std::vector<double>& b) const {
  const std::size_t m = sym_->m_;
  MECSCHED_REQUIRE(b.size() == m, "sparse Cholesky solve size mismatch");
  const std::vector<std::size_t>& l_ptr = sym_->l_ptr_;

  // Permute, forward solve L y = Pb (CSC column sweep), back solve
  // Lᵀ z = y (CSC column dot), un-permute.
  std::vector<double> y(m);
  for (std::size_t k = 0; k < m; ++k) y[k] = b[sym_->perm_[k]];
  for (std::size_t k = 0; k < m; ++k) {
    const double yk = y[k] / l_val_[l_ptr[k]];
    y[k] = yk;
    for (std::size_t p = l_ptr[k] + 1; p < l_ptr[k + 1]; ++p) {
      y[l_row_[p]] -= l_val_[p] * yk;
    }
  }
  for (std::size_t kk = m; kk-- > 0;) {
    double acc = y[kk];
    for (std::size_t p = l_ptr[kk] + 1; p < l_ptr[kk + 1]; ++p) {
      acc -= l_val_[p] * y[l_row_[p]];
    }
    y[kk] = acc / l_val_[l_ptr[kk]];
  }
  std::vector<double> out(m);
  for (std::size_t k = 0; k < m; ++k) out[sym_->perm_[k]] = y[k];
  return out;
}

}  // namespace mecsched::lp
