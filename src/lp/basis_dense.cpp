#include "lp/basis_dense.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mecsched::lp {

void BasisDense::reset_diagonal(std::size_t m) { binv_ = Matrix(m, m); }

void BasisDense::factorize(std::size_t m, const std::size_t* col_ptr,
                           const std::size_t* rows, const double* values) {
  Matrix bmat(m, m);
  for (std::size_t c = 0; c < m; ++c) {
    for (std::size_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
      bmat(rows[p], c) = values[p];
    }
  }
  Matrix inv = Matrix::identity(m);
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < m; ++r) {
      if (std::fabs(bmat(r, col)) > std::fabs(bmat(piv, col))) piv = r;
    }
    if (std::fabs(bmat(piv, col)) < 1e-12) {
      throw SolverError("simplex: singular basis during refactorization");
    }
    if (piv != col) {
      for (std::size_t c = 0; c < m; ++c) {
        std::swap(bmat(piv, c), bmat(col, c));
        std::swap(inv(piv, c), inv(col, c));
      }
    }
    const double d = bmat(col, col);
    for (std::size_t c = 0; c < m; ++c) {
      bmat(col, c) /= d;
      inv(col, c) /= d;
    }
    for (std::size_t r = 0; r < m; ++r) {
      if (r == col) continue;
      const double f = bmat(r, col);
      if (f == 0.0) continue;
      for (std::size_t c = 0; c < m; ++c) {
        bmat(r, c) -= f * bmat(col, c);
        inv(r, c) -= f * inv(col, c);
      }
    }
  }
  binv_ = std::move(inv);
}

void BasisDense::ftran(double* w) const {
  const std::size_t m = binv_.rows();
  scratch_.assign(w, w + m);
  for (std::size_t r = 0; r < m; ++r) {
    const double* br = binv_.row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < m; ++c) acc += br[c] * scratch_[c];
    w[r] = acc;
  }
}

void BasisDense::btran(double* y) const {
  const std::size_t m = binv_.rows();
  scratch_.assign(y, y + m);
  std::fill(y, y + m, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const double f = scratch_[r];
    if (f == 0.0) continue;
    const double* br = binv_.row(r);
    for (std::size_t c = 0; c < m; ++c) y[c] += br[c] * f;
  }
}

void BasisDense::pivot_row(std::size_t r, double* out) const {
  const double* br = binv_.row(r);
  std::copy(br, br + binv_.cols(), out);
}

void BasisDense::update(const double* w, std::size_t r) {
  const std::size_t m = binv_.rows();
  const double piv = w[r];
  if (std::fabs(piv) < 1e-12) {
    throw SolverError("simplex: numerically singular pivot");
  }
  double* br = binv_.row(r);
  for (std::size_t c = 0; c < m; ++c) br[c] /= piv;
  for (std::size_t i = 0; i < m; ++i) {
    if (i == r) continue;
    const double f = w[i];
    if (f == 0.0) continue;
    double* bi = binv_.row(i);
    for (std::size_t c = 0; c < m; ++c) bi[c] -= f * br[c];
  }
}

void BasisDense::poison() {
  if (binv_.rows() > 0) binv_(0, 0) = std::nan("");
}

}  // namespace mecsched::lp
