// LP presolve: cheap reductions applied before a solver runs.
//
//   * variables with lo == hi are substituted out (LP-HTA's deadline-
//     infeasible placements and pinned artificials produce many of these),
//   * empty constraints are dropped (or flagged infeasible),
//   * singleton inequality rows (a * x <= b) are converted to bounds,
//   * trivially infeasible bounds are detected up front.
//
// The reduced problem is solved by any solver; `restore` maps its solution
// back to the original variable space. Reductions preserve the optimal
// objective exactly.
#pragma once

#include <optional>
#include <vector>

#include "lp/problem.h"
#include "lp/solution.h"

namespace mecsched::lp {

class Presolved {
 public:
  // `infeasible()` is true when presolve already proved infeasibility; the
  // reduced problem is then empty and must not be solved.
  bool infeasible() const { return infeasible_; }

  const Problem& reduced() const { return reduced_; }

  // Lifts a solution of `reduced()` back to the original space (fixed
  // variables get their pinned values) and recomputes the objective.
  Solution restore(const Solution& reduced_solution) const;

  // Statistics for diagnostics/tests.
  std::size_t fixed_variables() const { return fixed_count_; }
  std::size_t dropped_constraints() const { return dropped_constraints_; }
  std::size_t tightened_bounds() const { return tightened_; }

  friend Presolved presolve(const Problem& p);

 private:
  Problem reduced_;
  bool infeasible_ = false;
  // original index -> reduced index, or nullopt when fixed
  std::vector<std::optional<std::size_t>> var_map_;
  std::vector<double> fixed_value_;  // per original variable (if fixed)
  double objective_offset_ = 0.0;
  std::size_t n_original_ = 0;
  std::size_t fixed_count_ = 0;
  std::size_t dropped_constraints_ = 0;
  std::size_t tightened_ = 0;
};

Presolved presolve(const Problem& p);

}  // namespace mecsched::lp
