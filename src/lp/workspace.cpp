#include "lp/workspace.h"

#include <algorithm>

namespace mecsched::lp {
namespace {

thread_local int g_pivot_loop_depth = 0;

}  // namespace

void SimplexWorkspace::begin_solve() {
  if (grew_this_solve_ && chunks_.size() > 1) {
    // The previous solve overflowed the reserved block: replace the chunk
    // chain with one block sized for everything it used, so this solve —
    // and every later one of the same shape — is a pure cursor reset.
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    chunks_.clear();
    Chunk block;
    block.data = std::make_unique<std::byte[]>(total);
    block.size = total;
    chunks_.push_back(std::move(block));
    ++grows_;
  } else if (!chunks_.empty()) {
    ++reuses_;
  }
  for (Chunk& c : chunks_) c.used = 0;
  active_ = 0;
  grew_this_solve_ = false;
}

void* SimplexWorkspace::raw_alloc(std::size_t bytes) {
  bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
  while (active_ < chunks_.size()) {
    Chunk& c = chunks_[active_];
    if (c.size - c.used >= bytes) {
      void* p = c.data.get() + c.used;
      c.used += bytes;
      return p;
    }
    ++active_;
  }
  // Grow by appending — existing spans must stay valid until begin_solve().
  constexpr std::size_t kMinChunk = 64 * 1024;
  Chunk c;
  c.size = std::max(bytes, kMinChunk);
  c.data = std::make_unique<std::byte[]>(c.size);
  c.used = bytes;
  grew_this_solve_ = true;
  chunks_.push_back(std::move(c));
  active_ = chunks_.size() - 1;
  return chunks_.back().data.get();
}

std::size_t SimplexWorkspace::capacity_bytes() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  return total;
}

SimplexWorkspace& SimplexWorkspace::tls() {
  thread_local SimplexWorkspace ws;
  return ws;
}

bool pivot_loop_active() { return g_pivot_loop_depth > 0; }

namespace internal {
PivotLoopScope::PivotLoopScope() { ++g_pivot_loop_depth; }
PivotLoopScope::~PivotLoopScope() { --g_pivot_loop_depth; }
}  // namespace internal

}  // namespace mecsched::lp
