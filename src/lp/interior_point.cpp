#include "lp/interior_point.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <tuple>
#include <vector>

#include "audit/audit.h"
#include "audit/lp_certificate.h"
#include "common/chaos_hook.h"
#include "common/error.h"
#include "obs/flight_recorder.h"
#include "obs/window.h"
#include "lp/cholesky.h"
#include "lp/matrix.h"
#include "lp/sparse_cholesky.h"
#include "lp/sparse_matrix.h"
#include "lp/standard_form.h"
#include "obs/registry.h"
#include "obs/tracer.h"

namespace mecsched::lp {
namespace {

// Max t in [0,1] with v + t*dv >= 0 (componentwise), damped by `damping`.
double max_step(const std::vector<double>& v, const std::vector<double>& dv,
                double damping) {
  double t = 1.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (dv[i] < 0.0) t = std::min(t, -v[i] / dv[i]);
  }
  return std::min(1.0, damping * t);
}

// The two normal-equation backends behind the Mehrotra loop. Both expose
// the same contract: mul/mul_t apply A and Aᵀ, factor(d) (re)factors
// M = A·diag(d)·Aᵀ, solve applies M⁻¹. The loop itself is backend-blind.

// Dense kernel — the historical path: densified A, O(m²n) assembly, dense
// Cholesky. Still the right tool for small or dense systems.
class DenseNormalKernel {
 public:
  explicit DenseNormalKernel(const SparseMatrix& a)
      : a_(a.to_dense()), at_(a_.transposed()) {}

  std::vector<double> mul(const std::vector<double>& x) const {
    return a_.multiply(x);
  }
  std::vector<double> mul_t(const std::vector<double>& x) const {
    return at_.multiply(x);
  }

  void factor(const std::vector<double>& d) {
    const std::size_t m = a_.rows();
    const std::size_t n = a_.cols();
    Matrix mmat(m, m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = i; j < m; ++j) {
        double acc = 0.0;
        const double* ri = a_.row(i);
        const double* rj = a_.row(j);
        for (std::size_t k = 0; k < n; ++k) acc += ri[k] * d[k] * rj[k];
        mmat(i, j) = acc;
        mmat(j, i) = acc;
      }
    }
    chol_.emplace(mmat);
  }

  std::vector<double> solve(const std::vector<double>& b) const {
    return chol_->solve(b);
  }

 private:
  Matrix a_;
  Matrix at_;
  std::optional<Cholesky> chol_;
};

// Sparse kernel — CSR SpMV, pattern-only normal-equation assembly and the
// symbolic/numeric-split Cholesky. The symbolic analysis is fetched from
// the process-wide pattern cache, so repeated solves over the same HTA
// constraint shape (every IPM iteration, every adjacent sweep cell) skip
// the ordering work entirely.
class SparseNormalKernel {
 public:
  explicit SparseNormalKernel(const SparseMatrix& a)
      : a_(a),
        at_(a.transposed()),
        sym_(SymbolicFactorCache::global().analyze(a)) {
    obs::Registry& reg = obs::Registry::global();
    reg.gauge("lp.sparse.last_nnz").set(static_cast<double>(a_.nnz()));
    reg.gauge("lp.sparse.last_factor_nnz")
        .set(static_cast<double>(sym_->factor_nnz()));
    reg.gauge("lp.sparse.last_fill_ratio").set(sym_->fill_ratio());
    reg.histogram("lp.sparse.fill_ratio").observe(sym_->fill_ratio());
  }

  std::vector<double> mul(const std::vector<double>& x) const {
    return a_.multiply(x);
  }
  std::vector<double> mul_t(const std::vector<double>& x) const {
    return at_.multiply(x);
  }

  void factor(const std::vector<double>& d) {
    chol_.emplace(a_, at_, d, sym_);
  }

  std::vector<double> solve(const std::vector<double>& b) const {
    return chol_->solve(b);
  }

 private:
  const SparseMatrix& a_;
  SparseMatrix at_;
  std::shared_ptr<const NormalEquationsSymbolic> sym_;
  std::optional<NormalCholesky> chol_;
};

// Mehrotra predictor–corrector loop, parameterized over the normal-
// equation backend. Identical math on both paths; only the linear-algebra
// kernels differ.
bool has_nan(const std::vector<double>& v) {
  for (double e : v) {
    if (std::isnan(e)) return true;
  }
  return false;
}

template <class Kernel>
Solution ipm_loop(const Problem& problem, const StandardForm& sf,
                  Kernel& kernel, const InteriorPointOptions& options,
                  const CancellationToken& token) {
  Solution out;
  const std::size_t m = sf.a.rows();
  const std::size_t n = sf.a.cols();

  // --- Mehrotra starting point ---------------------------------------
  // x~ = A^T (A A^T)^-1 b ; y~ = (A A^T)^-1 A c ; s~ = c - A^T y~, then
  // shifted into the strictly positive orthant.
  std::vector<double> x, y, s;
  {
    kernel.factor(std::vector<double>(n, 1.0));  // M = A Aᵀ
    x = kernel.mul_t(kernel.solve(sf.b));
    y = kernel.solve(kernel.mul(sf.c));
    s = sf.c;
    const std::vector<double> aty = kernel.mul_t(y);
    for (std::size_t i = 0; i < n; ++i) s[i] -= aty[i];

    double dx = 0.0, ds = 0.0;
    for (double v : x) dx = std::max(dx, -1.5 * v);
    for (double v : s) ds = std::max(ds, -1.5 * v);
    for (double& v : x) v += dx;
    for (double& v : s) v += ds;
    double xs = dot(x, s), sx = 0.0, ss = 0.0;
    for (double v : x) sx += v;
    for (double v : s) ss += v;
    const double dx2 = ss > 0.0 ? 0.5 * xs / ss : 1.0;
    const double ds2 = sx > 0.0 ? 0.5 * xs / sx : 1.0;
    for (double& v : x) v += dx2 + 1e-8;
    for (double& v : s) v += ds2 + 1e-8;
  }

  const double b_scale = 1.0 + norm_inf(sf.b);
  const double c_scale = 1.0 + norm_inf(sf.c);

  // Anytime degradation: round the current interior iterate back to the
  // original variable space and clamp it into the bounds. Unlike the
  // simplex anytime point, feasibility is NOT certified here — consumers
  // repair (LP-HTA Steps 2-6) or escalate (FallbackChain).
  const auto anytime = [&](std::size_t iter,
                           const std::vector<double>& iterate) {
    Solution deg;
    deg.status = SolveStatus::kDeadline;
    deg.iterations = iter;
    deg.x = sf.recover(iterate);
    for (std::size_t i = 0; i < deg.x.size(); ++i) {
      deg.x[i] =
          std::min(std::max(deg.x[i], problem.lower(i)), problem.upper(i));
    }
    deg.objective = problem.objective_value(deg.x);
    return deg;
  };

  bool poison_next_factor = false;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (token.expired()) return anytime(iter, x);
    if (chaos::armed()) {
      switch (chaos::probe("ipm", m, n, iter)) {
        case chaos::Action::kNone:
          break;
        case chaos::Action::kStall:
        case chaos::Action::kCancel:
          return anytime(iter, x);
        case chaos::Action::kPoisonNan:
          poison_next_factor = true;
          break;
        case chaos::Action::kError:
          throw SolverError("interior-point: injected solver fault");
      }
    }
    // Residuals.
    std::vector<double> rb = kernel.mul(x);  // A x - b
    for (std::size_t i = 0; i < m; ++i) rb[i] -= sf.b[i];
    std::vector<double> rc = kernel.mul_t(y);  // A^T y + s - c
    for (std::size_t i = 0; i < n; ++i) rc[i] += s[i] - sf.c[i];
    const double mu = dot(x, s) / static_cast<double>(n);

    const double rel_gap =
        std::fabs(dot(sf.c, x) - dot(sf.b, y)) /
        (1.0 + std::fabs(dot(sf.c, x)));
    // Last-iteration convergence state; with a trace attached, Perfetto
    // shows how the residuals decayed inside each solve.
    obs::Registry& reg = obs::Registry::global();
    reg.gauge("lp.ipm.last_rel_gap").set(rel_gap);
    reg.gauge("lp.ipm.last_primal_residual").set(norm_inf(rb));
    reg.gauge("lp.ipm.last_dual_residual").set(norm_inf(rc));
    if (norm_inf(rb) <= options.tolerance * b_scale &&
        norm_inf(rc) <= options.tolerance * c_scale &&
        rel_gap <= options.tolerance) {
      out.status = SolveStatus::kOptimal;
      out.iterations = iter;
      out.x = sf.recover(x);
      out.objective = problem.objective_value(out.x);
      // Standard-form rows list the original constraints first; the tail
      // rows are upper-bound rows whose duals are internal.
      out.duals.assign(y.begin(),
                       y.begin() + static_cast<long>(
                                       problem.num_constraints()));
      return out;
    }

    // Normal-equation matrix M = A diag(x/s) A^T.
    std::vector<double> d(n);
    for (std::size_t i = 0; i < n; ++i) d[i] = x[i] / s[i];
    if (poison_next_factor) {
      d[0] = std::nan("");
      poison_next_factor = false;
    }
    // A NaN scaling entry means the factorization input is already corrupt
    // (chaos nan-poison injects exactly here). NaN defeats every comparison
    // downstream, so the loop would spin silently; fail loudly instead.
    // Note x, s > 0 is maintained by the ratio test, so a natural d is
    // never NaN — at worst +inf, which the factorization tolerates.
    if (has_nan(d)) {
      throw SolverError("interior-point: NaN in factorization scaling "
                        "(numeric breakdown)");
    }
    kernel.factor(d);

    // One Newton solve for a given complementarity target `rxs`
    // (rxs_i = x_i s_i - target_i). Returns (dx, dy, ds).
    auto newton = [&](const std::vector<double>& rxs) {
      // dy from: M dy = -rb + A diag(1/s) (rxs - x .* rc)
      std::vector<double> tmp(n);
      for (std::size_t i = 0; i < n; ++i) {
        tmp[i] = (rxs[i] - x[i] * rc[i]) / s[i];
      }
      std::vector<double> rhs = kernel.mul(tmp);
      for (std::size_t i = 0; i < m; ++i) rhs[i] -= rb[i];
      std::vector<double> dy = kernel.solve(rhs);
      std::vector<double> ds = kernel.mul_t(dy);
      for (std::size_t i = 0; i < n; ++i) ds[i] = -rc[i] - ds[i];
      std::vector<double> dx(n);
      for (std::size_t i = 0; i < n; ++i) {
        dx[i] = -(rxs[i] + x[i] * ds[i]) / s[i];
      }
      return std::tuple(std::move(dx), std::move(dy), std::move(ds));
    };

    // Predictor (affine) step: target 0, rxs = x .* s.
    std::vector<double> rxs(n);
    for (std::size_t i = 0; i < n; ++i) rxs[i] = x[i] * s[i];
    auto [dx_aff, dy_aff, ds_aff] = newton(rxs);

    const double ap_aff = max_step(x, dx_aff, 1.0);
    const double ad_aff = max_step(s, ds_aff, 1.0);
    double mu_aff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mu_aff += (x[i] + ap_aff * dx_aff[i]) * (s[i] + ad_aff * ds_aff[i]);
    }
    mu_aff /= static_cast<double>(n);
    const double sigma = std::pow(mu_aff / std::max(mu, 1e-300), 3.0);

    // Corrector step: rxs = x.*s + dx_aff.*ds_aff - sigma*mu.
    for (std::size_t i = 0; i < n; ++i) {
      rxs[i] = x[i] * s[i] + dx_aff[i] * ds_aff[i] - sigma * mu;
    }
    auto [dx, dy, ds] = newton(rxs);

    const double ap = max_step(x, dx, options.step_damping);
    const double ad = max_step(s, ds, options.step_damping);
    for (std::size_t i = 0; i < n; ++i) x[i] += ap * dx[i];
    for (std::size_t i = 0; i < m; ++i) y[i] += ad * dy[i];
    for (std::size_t i = 0; i < n; ++i) s[i] += ad * ds[i];

    // Heuristic divergence check: iterates blowing up past 1e14 mean the
    // problem is (near-)infeasible. A NaN iterate is the same breakdown one
    // step later — divergent arithmetic produces inf - inf — but NaN
    // defeats the norm comparison, so it is tested explicitly; without
    // this, the loop would spin NaN to the iteration limit. Poisoned
    // factorizations cannot reach here: the NaN scaling guard above threw
    // before the corrupt factor was ever used.
    if (norm_inf(x) > 1e14 || norm_inf(s) > 1e14 ||
        has_nan(x) || has_nan(y) || has_nan(s)) {
      out.status = SolveStatus::kInfeasible;
      out.iterations = iter;
      return out;
    }
  }

  out.status = SolveStatus::kIterationLimit;
  out.iterations = options.max_iterations;
  return out;
}

}  // namespace

Solution InteriorPointSolver::solve(const Problem& problem) const {
  const obs::ScopedTimer span("lp.ipm.solve", "lp");
  obs::FlightRecorder& flight = obs::FlightRecorder::global();
  const std::uint64_t chaos_before =
      flight.enabled() ? chaos::local_injections() : 0;
  const auto cut_record = [&](const Solution* solution,
                              const std::string& status,
                              const std::string& detail,
                              const std::string& audit_verdict) {
    obs::SolveRecord r;
    r.layer = "lp";
    r.engine = "ipm";
    r.status = status;
    r.detail = detail;
    r.seconds = span.elapsed_s();
    r.iterations = solution != nullptr ? solution->iterations : 0;
    const CancellationToken token = effective_solve_token(options_.cancel);
    r.deadline_residual_ms =
        obs::FlightRecorder::residual_ms(token.deadline());
    r.deadline_hit =
        solution != nullptr && solution->status == SolveStatus::kDeadline;
    r.chaos_hits = chaos::local_injections() - chaos_before;
    r.audit = audit_verdict;
    flight.record(std::move(r));
  };
  Solution out;
  try {
    out = solve_impl(problem);
  } catch (const SolverError& e) {
    if (flight.enabled()) cut_record(nullptr, "error", e.what(), "");
    throw;
  }
  obs::Registry& reg = obs::Registry::global();
  reg.counter("lp.ipm.solves").add();
  reg.counter("lp.ipm.iterations").add(out.iterations);
  reg.histogram("lp.ipm.iterations_per_solve")
      .observe(static_cast<double>(out.iterations));
  reg.window("lp.ipm.solve.seconds").observe(span.elapsed_s());
  reg.rate("lp.solves").record();
  if (!out.optimal()) reg.counter("lp.ipm.non_optimal").add();
  if (out.status == SolveStatus::kDeadline) {
    reg.counter("solve.deadline.ipm").add();
    if (options_.cancel.cancel_requested()) reg.counter("solve.cancelled").add();
  }
  // Certificate audit (no-op at audit level off). The IPM converges to the
  // relative-gap tolerance, not to a vertex, so vertex_expected stays off
  // and the gap tolerance is loosened to match the termination criterion.
  audit::LpCertificateOptions cert;
  cert.feasibility_tolerance = 1e-5;
  cert.gap_tolerance = 1e-5;
  try {
    audit::check_lp(problem, out, "ipm", cert);
  } catch (const audit::AuditError& e) {
    if (flight.enabled()) {
      cut_record(&out, "audit-error", to_string(out.status), e.what());
    }
    throw;
  }
  if (flight.enabled()) cut_record(&out, to_string(out.status), "", "ok");
  return out;
}

Solution InteriorPointSolver::solve_impl(const Problem& problem) const {
  if (problem.num_variables() == 0) {
    Solution out;
    out.status = SolveStatus::kOptimal;
    return out;
  }

  const StandardForm sf = to_standard_form(problem);
  const CancellationToken token = effective_solve_token(options_.cancel);
  obs::Registry& reg = obs::Registry::global();
  if (use_sparse_kernels(sf.a.rows(), sf.a.cols(), sf.a.nnz(),
                         options_.sparse_mode)) {
    reg.counter("lp.sparse.ipm_solves").add();
    SparseNormalKernel kernel(sf.a);
    return ipm_loop(problem, sf, kernel, options_, token);
  }
  reg.counter("lp.sparse.ipm_dense_fallback").add();
  DenseNormalKernel kernel(sf.a);
  return ipm_loop(problem, sf, kernel, options_, token);
}

}  // namespace mecsched::lp
