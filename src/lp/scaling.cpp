#include "lp/scaling.h"

#include <cmath>

#include "common/error.h"

namespace mecsched::lp {

ScaledProblem equilibrate(const Problem& p, int passes) {
  MECSCHED_REQUIRE(passes >= 0, "passes must be non-negative");
  const std::size_t m = p.num_constraints();
  const std::size_t n = p.num_variables();

  ScaledProblem out;
  out.row_scale_.assign(m, 1.0);
  out.col_scale_.assign(n, 1.0);

  // Effective |A_ij| under the current scaling: r_i * |a| * c_j.
  for (int pass = 0; pass < passes; ++pass) {
    // rows
    for (std::size_t r = 0; r < m; ++r) {
      double lo = 0.0, hi = 0.0;
      for (const Term& t : p.constraint(r).terms) {
        const double v =
            out.row_scale_[r] * std::fabs(t.coeff) * out.col_scale_[t.var];
        if (v == 0.0) continue;
        if (lo == 0.0 || v < lo) lo = v;
        if (v > hi) hi = v;
      }
      if (hi > 0.0) out.row_scale_[r] /= std::sqrt(lo * hi);
    }
    // columns
    std::vector<double> col_lo(n, 0.0), col_hi(n, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      for (const Term& t : p.constraint(r).terms) {
        const double v =
            out.row_scale_[r] * std::fabs(t.coeff) * out.col_scale_[t.var];
        if (v == 0.0) continue;
        if (col_lo[t.var] == 0.0 || v < col_lo[t.var]) col_lo[t.var] = v;
        if (v > col_hi[t.var]) col_hi[t.var] = v;
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (col_hi[v] > 0.0) out.col_scale_[v] /= std::sqrt(col_lo[v] * col_hi[v]);
    }
  }

  // Build the scaled problem: x = c_j x', so
  //   cost'_j = cost_j * c_j,  bounds' = bounds / c_j,
  //   A'_rj = r_i * A_rj * c_j,  b'_r = r_i * b_r.
  for (std::size_t v = 0; v < n; ++v) {
    const double c = out.col_scale_[v];
    const double hi = p.upper(v);
    out.scaled_.add_variable(p.cost(v) * c, p.lower(v) / c,
                             std::isfinite(hi) ? hi / c : kInfinity,
                             p.variable_name(v));
  }
  for (std::size_t r = 0; r < m; ++r) {
    const Constraint& con = p.constraint(r);
    std::vector<Term> terms;
    terms.reserve(con.terms.size());
    for (const Term& t : con.terms) {
      terms.push_back(
          {t.var, out.row_scale_[r] * t.coeff * out.col_scale_[t.var]});
    }
    out.scaled_.add_constraint(std::move(terms), con.relation,
                               out.row_scale_[r] * con.rhs, con.name);
  }
  return out;
}

Solution ScaledProblem::unscale(const Solution& scaled_solution,
                                const Problem& original) const {
  Solution out;
  out.status = scaled_solution.status;
  out.iterations = scaled_solution.iterations;
  if (out.status != SolveStatus::kOptimal) return out;

  MECSCHED_REQUIRE(scaled_solution.x.size() == col_scale_.size(),
                   "scaled solution size mismatch");
  out.x.resize(col_scale_.size());
  for (std::size_t v = 0; v < col_scale_.size(); ++v) {
    out.x[v] = scaled_solution.x[v] * col_scale_[v];
  }
  out.objective = original.objective_value(out.x);
  if (scaled_solution.duals.size() == row_scale_.size()) {
    out.duals.resize(row_scale_.size());
    // y'_r prices the scaled row (r_i * a) x <= r_i b; the original row's
    // dual is y_r = r_i * y'_r.
    for (std::size_t r = 0; r < row_scale_.size(); ++r) {
      out.duals[r] = scaled_solution.duals[r] * row_scale_[r];
    }
  }
  return out;
}

}  // namespace mecsched::lp
