// General-form linear program builder.
//
//   minimize    c^T x
//   subject to  lhs_r : sum_j a_rj x_j  (<= | >= | ==)  rhs_r
//               lo_j <= x_j <= hi_j
//
// Both solvers consume this representation: the simplex solver augments it
// with slacks internally; the interior-point solver converts it to standard
// form. Rows are stored sparsely (the HTA matrices A2/A4 are block sparse);
// the builders validate indices eagerly so a malformed model fails at
// construction, not inside a solver.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace mecsched::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Relation { kLessEqual, kGreaterEqual, kEqual };

struct Term {
  std::size_t var;
  double coeff;
};

struct Constraint {
  std::vector<Term> terms;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
  std::string name;
};

class Problem {
 public:
  // Adds a variable with objective coefficient `cost` and bounds
  // [lo, hi] (hi may be kInfinity). Returns its index.
  std::size_t add_variable(double cost, double lo, double hi,
                           std::string name = {});

  // Adds a constraint; all term indices must refer to existing variables
  // and appear at most once.
  std::size_t add_constraint(std::vector<Term> terms, Relation rel, double rhs,
                             std::string name = {});

  std::size_t num_variables() const { return costs_.size(); }
  std::size_t num_constraints() const { return constraints_.size(); }

  double cost(std::size_t v) const { return costs_[v]; }
  double lower(std::size_t v) const { return lower_[v]; }
  double upper(std::size_t v) const { return upper_[v]; }
  const std::string& variable_name(std::size_t v) const { return names_[v]; }
  const Constraint& constraint(std::size_t r) const { return constraints_[r]; }

  const std::vector<double>& costs() const { return costs_; }

  // Objective value of `x` (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  // Largest constraint/bound violation of `x`; 0 when feasible.
  double max_violation(const std::vector<double>& x) const;

 private:
  std::vector<double> costs_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<std::string> names_;
  std::vector<Constraint> constraints_;
};

}  // namespace mecsched::lp
