#include "lp/basis_lu.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace mecsched::lp {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

// Markowitz threshold-pivoting stability factor: a pivot candidate must be
// at least this fraction of the largest magnitude in its column. The
// classic 0.1 compromise between sparsity (small u) and stability (u = 1
// is partial pivoting).
constexpr double kThresholdU = 0.1;

// Entries below this fraction of the basis' largest magnitude are treated
// as numeric zero during pivot selection.
constexpr double kPivotAbsFloor = 1e-12;

}  // namespace

void BasisLu::factorize(std::size_t m, const std::size_t* col_ptr,
                        const std::size_t* rows, const double* values) {
  m_ = m;
  l_steps_.clear();
  l_row_.clear();
  l_val_.clear();
  u_rows_.clear();
  u_step_.clear();
  u_val_.clear();
  eta_ptr_.assign(1, 0);
  eta_pivot_row_.clear();
  eta_pivot_val_.clear();
  eta_row_.clear();
  eta_val_.clear();
  lower_nnz_ = 0;
  upper_nnz_ = 0;
  if (m == 0) return;

  // Working matrix by rows; only active-column entries are ever stored.
  if (work_rows_.size() < m) work_rows_.resize(m);
  for (std::size_t r = 0; r < m; ++r) {
    work_rows_[r].cols.clear();
    work_rows_[r].vals.clear();
  }
  double overall_max = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t p = col_ptr[k]; p < col_ptr[k + 1]; ++p) {
      if (values[p] == 0.0) continue;
      work_rows_[rows[p]].cols.push_back(k);
      work_rows_[rows[p]].vals.push_back(values[p]);
      overall_max = std::max(overall_max, std::fabs(values[p]));
    }
  }
  if (overall_max == 0.0) {
    throw SolverError("basis-lu: zero basis matrix");
  }
  const double abs_floor = kPivotAbsFloor * overall_max;

  step_of_col_.assign(m, kNone);
  // row_active doubles as "step_of_row": kNone until the row is pivotal.
  std::vector<std::size_t>& row_done = work_pat_;  // reuse pool
  row_done.assign(m, 0);
  // Member pools, not locals: mid-solve refactorizations run inside the
  // solver's allocation-free pivot loop.
  col_count_.assign(m, 0);
  col_max_.assign(m, 0.0);
  if (col_rows_.size() < m) col_rows_.resize(m);
  for (std::size_t c = 0; c < m; ++c) col_rows_[c].clear();
  // Column counts are maintained incrementally through the elimination;
  // col_rows_ is a column -> candidate-rows transpose that tolerates stale
  // entries (retired rows, exact cancellations) by verifying against the
  // live row on use. Fill-in appends, nothing is ever removed.
  for (std::size_t r = 0; r < m; ++r) {
    for (const std::size_t c : work_rows_[r].cols) {
      ++col_count_[c];
      col_rows_[c].push_back(r);
    }
  }

  for (std::size_t step = 0; step < m; ++step) {
    std::size_t best_r = kNone, best_c = kNone;
    double best_v = 0.0;

    // Column singletons first: eliminating one performs no row operations
    // and threshold stability holds trivially (the sole entry *is* its
    // column's maximum). HTA bases are near-triangular — slack and
    // artificial columns start as singletons and retiring their rows
    // cascades new ones — so almost every step short-circuits here instead
    // of paying the full Markowitz scan. Lowest column index first keeps
    // the factorization deterministic.
    for (std::size_t c = 0; c < m && best_r == kNone; ++c) {
      if (col_count_[c] != 1 || step_of_col_[c] != kNone) continue;
      for (const std::size_t r : col_rows_[c]) {
        if (row_done[r] != 0) continue;
        const WorkRow& row = work_rows_[r];
        for (std::size_t i = 0; i < row.cols.size(); ++i) {
          if (row.cols[i] != c) continue;
          // A sole entry below the numeric-zero floor is not a usable
          // pivot; leave the column for the full scan's singular check.
          if (std::fabs(row.vals[i]) >= abs_floor) {
            best_r = r;
            best_c = c;
            best_v = row.vals[i];
          }
          break;
        }
        if (best_r != kNone) break;
      }
    }

    if (best_r == kNone) {
      // No singleton: full Markowitz scan, cost (rowcount-1)(colcount-1)
      // over stable candidates; ties break on (column, row) index so the
      // factorization is deterministic. Only the column maxima (for the
      // stability threshold) need recomputing over the active submatrix.
      std::fill(col_max_.begin(), col_max_.end(), 0.0);
      for (std::size_t r = 0; r < m; ++r) {
        if (row_done[r] != 0) continue;
        const WorkRow& row = work_rows_[r];
        for (std::size_t i = 0; i < row.cols.size(); ++i) {
          col_max_[row.cols[i]] =
              std::max(col_max_[row.cols[i]], std::fabs(row.vals[i]));
        }
      }
      std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
      for (std::size_t r = 0; r < m; ++r) {
        if (row_done[r] != 0) continue;
        const WorkRow& row = work_rows_[r];
        const auto row_count = static_cast<std::uint64_t>(row.cols.size());
        for (std::size_t i = 0; i < row.cols.size(); ++i) {
          const std::size_t c = row.cols[i];
          const double v = row.vals[i];
          if (std::fabs(v) < std::max(abs_floor, kThresholdU * col_max_[c])) {
            continue;
          }
          const std::uint64_t cost =
              (row_count - 1) * static_cast<std::uint64_t>(col_count_[c] - 1);
          const bool better =
              cost < best_cost ||
              (cost == best_cost &&
               (c < best_c || (c == best_c && r < best_r)));
          if (better) {
            best_cost = cost;
            best_r = r;
            best_c = c;
            best_v = v;
          }
        }
      }
    }
    if (best_r == kNone) {
      throw SolverError("basis-lu: singular basis during refactorization");
    }

    step_of_col_[best_c] = step;
    row_done[best_r] = 1;

    // Move the pivot row's off-diagonals into U (column ids remapped to
    // step indices after the loop, once every column has one).
    URow urow;
    urow.pivot_row = best_r;
    urow.pivot_col = best_c;
    urow.diag = best_v;
    urow.begin = u_step_.size();
    WorkRow& prow = work_rows_[best_r];
    for (std::size_t i = 0; i < prow.cols.size(); ++i) {
      if (prow.cols[i] == best_c) continue;
      u_step_.push_back(prow.cols[i]);
      u_val_.push_back(prow.vals[i]);
    }
    urow.end = u_step_.size();
    u_rows_.push_back(urow);

    // Retiring the pivot row removes its entries from every column.
    for (const std::size_t c : prow.cols) --col_count_[c];

    // Eliminate the pivot column from the active rows that hold it — found
    // through the transpose, so a singleton pivot touches nothing. The
    // candidate list can't grow mid-loop (rebuilt rows never re-add the
    // now-inactive pivot column), and a duplicate or stale candidate reads
    // a_rc == 0 and is skipped.
    LStep lstep;
    lstep.pivot_row = best_r;
    lstep.begin = l_row_.size();
    for (std::size_t idx = 0; idx < col_rows_[best_c].size(); ++idx) {
      const std::size_t r = col_rows_[best_c][idx];
      if (row_done[r] != 0) continue;
      WorkRow& row = work_rows_[r];
      double a_rc = 0.0;
      for (std::size_t i = 0; i < row.cols.size(); ++i) {
        if (row.cols[i] == best_c) {
          a_rc = row.vals[i];
          break;
        }
      }
      if (a_rc == 0.0) continue;
      const double mult = a_rc / best_v;
      l_row_.push_back(r);
      l_val_.push_back(mult);

      // row := row - mult * pivot_row, via a dense scratch accumulator.
      work_val_.assign(m, 0.0);
      for (std::size_t i = 0; i < row.cols.size(); ++i) {
        work_val_[row.cols[i]] = row.vals[i];
      }
      work_val_[best_c] = 0.0;
      for (std::size_t i = 0; i < prow.cols.size(); ++i) {
        const std::size_t c = prow.cols[i];
        if (c == best_c) continue;
        work_val_[c] -= mult * prow.vals[i];
      }
      for (const std::size_t c : row.cols) --col_count_[c];
      row.cols.clear();
      row.vals.clear();
      for (std::size_t c = 0; c < m; ++c) {
        if (step_of_col_[c] != kNone || work_val_[c] == 0.0) continue;
        row.cols.push_back(c);
        row.vals.push_back(work_val_[c]);
        ++col_count_[c];
        col_rows_[c].push_back(r);
      }
    }
    lstep.end = l_row_.size();
    l_steps_.push_back(lstep);
  }

  // Remap U off-diagonal column ids to the step that eliminated them.
  for (std::size_t& s : u_step_) s = step_of_col_[s];
  lower_nnz_ = l_row_.size() + m;
  upper_nnz_ = u_val_.size() + m;
}

void BasisLu::ftran(double* w) const {
  // L: apply the elimination ops to the right-hand side, in order.
  for (const LStep& step : l_steps_) {
    const double wp = w[step.pivot_row];
    if (wp == 0.0) continue;
    for (std::size_t i = step.begin; i < step.end; ++i) {
      w[l_row_[i]] -= l_val_[i] * wp;
    }
  }
  // U: backward substitution in reverse pivot order. x is assembled per
  // step first (rows and columns interleave freely in w's index space),
  // then scattered to the basis-slot positions.
  const std::size_t k = u_rows_.size();
  work_val_.resize(m_);
  for (std::size_t s = k; s-- > 0;) {
    const URow& u = u_rows_[s];
    double acc = w[u.pivot_row];
    for (std::size_t i = u.begin; i < u.end; ++i) {
      acc -= u_val_[i] * work_val_[u_step_[i]];
    }
    work_val_[s] = acc / u.diag;
  }
  for (std::size_t s = 0; s < k; ++s) {
    w[u_rows_[s].pivot_col] = work_val_[s];
  }
  // Eta file, creation order: w := E_t⁻¹ w.
  for (std::size_t t = 0; t < eta_pivot_row_.size(); ++t) {
    const std::size_t r = eta_pivot_row_[t];
    const double wr = w[r] / eta_pivot_val_[t];
    w[r] = wr;
    if (wr == 0.0) continue;
    for (std::size_t i = eta_ptr_[t]; i < eta_ptr_[t + 1]; ++i) {
      w[eta_row_[i]] -= eta_val_[i] * wr;
    }
  }
}

void BasisLu::btran(double* y) const {
  // Eta transposes, newest first: y_r := (y_r − Σ w_i y_i) / w_r.
  for (std::size_t t = eta_pivot_row_.size(); t-- > 0;) {
    const std::size_t r = eta_pivot_row_[t];
    double acc = y[r];
    for (std::size_t i = eta_ptr_[t]; i < eta_ptr_[t + 1]; ++i) {
      acc -= eta_val_[i] * y[eta_row_[i]];
    }
    y[r] = acc / eta_pivot_val_[t];
  }
  // Uᵀ: forward substitution in pivot order (scatter form). Inputs live at
  // basis-slot (column) positions, outputs at row positions.
  const std::size_t k = u_rows_.size();
  work_val_.resize(m_);
  for (std::size_t s = 0; s < k; ++s) {
    const URow& u = u_rows_[s];
    const double zs = y[u.pivot_col] / u.diag;
    work_val_[s] = zs;
    if (zs == 0.0) continue;
    for (std::size_t i = u.begin; i < u.end; ++i) {
      y[u_rows_[u_step_[i]].pivot_col] -= u_val_[i] * zs;
    }
  }
  for (std::size_t s = 0; s < k; ++s) {
    y[u_rows_[s].pivot_row] = work_val_[s];
  }
  // Lᵀ: gather the transposed elimination ops in reverse order.
  for (std::size_t s = l_steps_.size(); s-- > 0;) {
    const LStep& step = l_steps_[s];
    double acc = y[step.pivot_row];
    for (std::size_t i = step.begin; i < step.end; ++i) {
      acc -= l_val_[i] * y[l_row_[i]];
    }
    y[step.pivot_row] = acc;
  }
}

bool BasisLu::push_eta(const double* w, std::size_t r, std::size_t m) {
  double wmax = 0.0;
  for (std::size_t i = 0; i < m; ++i) wmax = std::max(wmax, std::fabs(w[i]));
  const double pivot = w[r];
  // std::max never propagates a NaN out of the norm, so check the pivot's
  // finiteness directly, not just the norm's.
  if (!std::isfinite(wmax) || !std::isfinite(pivot) || pivot == 0.0 ||
      std::fabs(pivot) < limits_.pivot_rel_floor * wmax) {
    return false;  // accuracy trigger: caller refactorizes instead
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (i == r || w[i] == 0.0) continue;
    eta_row_.push_back(i);
    eta_val_.push_back(w[i]);
  }
  eta_ptr_.push_back(eta_row_.size());
  eta_pivot_row_.push_back(r);
  eta_pivot_val_.push_back(pivot);
  return true;
}

bool BasisLu::needs_refactor() const {
  if (eta_count() >= limits_.max_etas) return true;
  const double fill_budget =
      limits_.eta_fill_factor *
      static_cast<double>(std::max<std::size_t>(factor_nnz(), 16));
  return static_cast<double>(eta_nnz()) > fill_budget;
}

void BasisLu::poison() {
  for (URow& u : u_rows_) u.diag = std::nan("");
}

}  // namespace mecsched::lp
