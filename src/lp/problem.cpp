#include "lp/problem.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"

namespace mecsched::lp {

std::size_t Problem::add_variable(double cost, double lo, double hi,
                                  std::string name) {
  MECSCHED_REQUIRE(lo <= hi, "variable bounds out of order");
  MECSCHED_REQUIRE(std::isfinite(cost), "variable cost must be finite");
  MECSCHED_REQUIRE(std::isfinite(lo), "lower bound must be finite");
  costs_.push_back(cost);
  lower_.push_back(lo);
  upper_.push_back(hi);
  names_.push_back(std::move(name));
  return costs_.size() - 1;
}

std::size_t Problem::add_constraint(std::vector<Term> terms, Relation rel,
                                    double rhs, std::string name) {
  MECSCHED_REQUIRE(std::isfinite(rhs), "constraint rhs must be finite");
  std::set<std::size_t> seen;
  for (const Term& t : terms) {
    MECSCHED_REQUIRE(t.var < costs_.size(), "constraint references unknown variable");
    MECSCHED_REQUIRE(std::isfinite(t.coeff), "constraint coefficient must be finite");
    MECSCHED_REQUIRE(seen.insert(t.var).second,
                     "variable appears twice in one constraint");
  }
  constraints_.push_back(Constraint{std::move(terms), rel, rhs, std::move(name)});
  return constraints_.size() - 1;
}

double Problem::objective_value(const std::vector<double>& x) const {
  MECSCHED_REQUIRE(x.size() == costs_.size(), "solution size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += costs_[i] * x[i];
  return acc;
}

double Problem::max_violation(const std::vector<double>& x) const {
  MECSCHED_REQUIRE(x.size() == costs_.size(), "solution size mismatch");
  double worst = 0.0;
  for (std::size_t v = 0; v < x.size(); ++v) {
    worst = std::max(worst, lower_[v] - x[v]);
    if (std::isfinite(upper_[v])) worst = std::max(worst, x[v] - upper_[v]);
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const Term& t : c.terms) lhs += t.coeff * x[t.var];
    switch (c.relation) {
      case Relation::kLessEqual:
        worst = std::max(worst, lhs - c.rhs);
        break;
      case Relation::kGreaterEqual:
        worst = std::max(worst, c.rhs - lhs);
        break;
      case Relation::kEqual:
        worst = std::max(worst, std::fabs(lhs - c.rhs));
        break;
    }
  }
  return worst;
}

}  // namespace mecsched::lp
