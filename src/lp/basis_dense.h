// Explicit dense basis-inverse kernel — the historical simplex basis
// representation, kept as the `BasisKernel::kDenseInverse` escape hatch
// and the differential-testing comparator for the eta-file LU kernel
// (lp/basis_lu.h). It maintains B⁻¹ as a dense m×m matrix: O(m²) per
// pivot for the rank-1 update and both solves, and an O(m³) dense
// Gauss-Jordan rebuild on refactorization, regardless of basis sparsity.
// Deliberately not on the lint hot-kernel list: it exists to be the slow,
// simple, auditable reference.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/matrix.h"

namespace mecsched::lp {

class BasisDense {
 public:
  // B⁻¹ := m×m zero matrix; the caller then seeds the diagonal with
  // set_diag (the ±1 crash basis is diagonal, so B⁻¹ = B).
  void reset_diagonal(std::size_t m);
  void set_diag(std::size_t r, double sign) { binv_(r, r) = sign; }

  // Rebuilds B⁻¹ from scratch (Gauss-Jordan with partial pivoting) from
  // the basis given as CSC-style columns, clearing accumulated rank-1
  // drift. Throws SolverError when the basis is numerically singular.
  void factorize(std::size_t m, const std::size_t* col_ptr,
                 const std::size_t* rows, const double* values);

  // w := B⁻¹ w (dense m-vector in place).
  void ftran(double* w) const;

  // y := B⁻ᵀ y (dense m-vector in place).
  void btran(double* y) const;

  // Copies row `r` of B⁻¹ (the pivot row e_rᵀB⁻¹) into `out`.
  void pivot_row(std::size_t r, double* out) const;

  // Rank-1 update after pivoting on row `r` with FTRAN'd column `w`.
  // Throws SolverError on a numerically singular pivot.
  void update(const double* w, std::size_t r);

  // Chaos hook (common/chaos_hook.h, Action::kPoisonNan): poisons one
  // entry of B⁻¹ — the historical injection site.
  void poison();

 private:
  Matrix binv_;
  mutable std::vector<double> scratch_;
};

}  // namespace mecsched::lp
