// Compressed sparse row (CSR) matrix for the LP solvers' sparse kernels.
//
// The HTA constraint matrices are block sparse by construction: one
// assignment row per task (4 nonzeros), thin coupling rows for device and
// station capacity, and ±1 slack/bound columns. Stored sparsely they carry
// a handful of nonzeros per row, so the normal-equation assembly, SpMV and
// simplex pricing kernels in this layer run on the nonzero structure only.
//
// Dense kernels are still the right tool for small or dense systems (the
// random cross-check LPs, tiny clusters): `use_sparse_kernels` implements
// the dispatch policy shared by the interior-point solver and the simplex
// pricing loop. See docs/lp-kernels.md for the policy rationale.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lp/matrix.h"

namespace mecsched::lp {

// How a solver chooses between its dense and sparse kernels.
//   kAuto        — density/size heuristic (use_sparse_kernels below).
//   kForceDense  — always the dense kernels (baseline / differential runs).
//   kForceSparse — always the sparse kernels (tests, benchmarks).
enum class SparseMode { kAuto, kForceDense, kForceSparse };

// Dispatch thresholds for SparseMode::kAuto. Dense kernels win below
// `kSparseMinRows` rows (cache-resident, no index indirection) and above
// `kSparseDensityThreshold` fill (the sparse structure stops paying for
// itself around 1 nonzero in 4).
inline constexpr std::size_t kSparseMinRows = 32;
inline constexpr double kSparseDensityThreshold = 0.25;

// True when the sparse kernels should handle a rows×cols system with
// `nnz` structural nonzeros under `mode`.
bool use_sparse_kernels(std::size_t rows, std::size_t cols, std::size_t nnz,
                        SparseMode mode);

struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;

  // Builds from (row, col, value) triplets. Duplicate entries sum; exact
  // zeros (including cancelled duplicates) are dropped. Indices must be in
  // range.
  static SparseMatrix from_triplets(std::size_t rows, std::size_t cols,
                                    std::vector<Triplet> triplets);

  // Compresses a dense matrix, dropping entries with |v| <= drop_tolerance.
  static SparseMatrix from_dense(const Matrix& dense,
                                 double drop_tolerance = 0.0);

  Matrix to_dense() const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }
  // nnz / (rows*cols); 0 for an empty shape.
  double density() const;

  // Value at (r, c): binary search within row r, 0.0 when absent. For
  // tests and spot reads — kernels iterate the CSR arrays directly.
  double operator()(std::size_t r, std::size_t c) const;

  // CSR storage: row r spans [row_ptr()[r], row_ptr()[r+1]) in col_idx()/
  // values(); column indices are strictly ascending within a row.
  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  // y = this * x  (x.size() == cols()).
  std::vector<double> multiply(const std::vector<double>& x) const;
  // y = this^T * x  (x.size() == rows()).
  std::vector<double> multiply_transpose(const std::vector<double>& x) const;

  // The transpose — also the CSC view of this matrix (row r of the result
  // is column r of *this), which is how the simplex pricing kernel and the
  // normal-equation assembly walk columns.
  SparseMatrix transposed() const;

  // Order-dependent 64-bit digest of the sparsity *pattern* (dimensions,
  // row pointers, column indices — not values). Two matrices with equal
  // fingerprints have identical structure, which is what makes a symbolic
  // Cholesky factorization reusable between them (lp/sparse_cholesky.h).
  std::uint64_t pattern_fingerprint() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace mecsched::lp
