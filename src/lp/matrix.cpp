#include "lp/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mecsched::lp {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* src = row(r);
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = src[c];
  }
  return t;
}

std::vector<double> Matrix::multiply(const std::vector<double>& x) const {
  MECSCHED_REQUIRE(x.size() == cols_, "matrix-vector size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += a[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> Matrix::multiply_transpose(
    const std::vector<double>& x) const {
  MECSCHED_REQUIRE(x.size() == rows_, "matrix^T-vector size mismatch");
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += a[c] * xr;
  }
  return y;
}

Matrix Matrix::multiply(const Matrix& other) const {
  MECSCHED_REQUIRE(cols_ == other.rows_, "matrix-matrix size mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.row(k);
      double* orow = out.row(i);
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  MECSCHED_REQUIRE(a.size() == b.size(), "dot size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm_inf(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

double norm2(const std::vector<double>& v) {
  return std::sqrt(dot(v, v));
}

void axpy(double s, const std::vector<double>& b, std::vector<double>& a) {
  MECSCHED_REQUIRE(a.size() == b.size(), "axpy size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

}  // namespace mecsched::lp
