#include "lp/solution.h"

namespace mecsched::lp {

std::string to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
    case SolveStatus::kDeadline:
      return "deadline";
  }
  return "unknown";
}

}  // namespace mecsched::lp
