// Solver result types shared by the simplex and interior-point solvers.
#pragma once

#include <string>
#include <vector>

namespace mecsched::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  // The solve budget expired (or cancellation was requested) before
  // optimality was proven. Anytime contract (docs/robustness.md): when `x`
  // is non-empty it is the solver's best current answer — the simplex
  // returns its current basic feasible solution (primal feasible, objective
  // >= optimum for a minimization), the IPM its last centered iterate
  // rounded into the variable bounds (feasibility not certified). An empty
  // `x` means expiry hit before any feasible point existed (simplex
  // phase 1).
  kDeadline,
};

std::string to_string(SolveStatus s);

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;        // primal values, one per problem variable
  // Dual prices, one per constraint (row order of the Problem). Sign
  // convention for a minimization: y <= 0 on "<=" rows, y >= 0 on ">="
  // rows, free on "=" rows. For LPs whose variables have no finite upper
  // bounds, strong duality gives objective == b^T y; finite upper bounds
  // contribute additional (internal) bound duals not reported here.
  std::vector<double> duals;
  std::size_t iterations = 0;   // pivots (simplex) or IPM steps

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

}  // namespace mecsched::lp
