#include "lp/cholesky.h"

#include <cmath>

#include "common/error.h"

namespace mecsched::lp {

Cholesky::Cholesky(const Matrix& a) {
  MECSCHED_REQUIRE(a.rows() == a.cols(), "Cholesky needs a square matrix");
  const std::size_t n = a.rows();
  l_ = Matrix(n, n);

  // Pivot floor relative to the matrix scale; pivots below this get bumped.
  const double scale = std::max(a.max_abs(), 1.0);
  const double floor = 1e-12 * scale;

  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < n && k < j; ++k) {
      diag -= l_(j, k) * l_(j, k);
    }
    if (diag < floor) {
      // Regularize: shift this pivot up to the floor. IPM systems only
      // become semidefinite, never strongly indefinite, so a large negative
      // pivot signals a modelling bug and is rejected.
      if (diag < -1e-6 * scale) {
        throw SolverError("Cholesky: matrix is indefinite");
      }
      regularization_ += floor - diag;
      diag = floor;
    }
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l_(i, k) * l_(j, k);
      l_(i, j) = v / ljj;
    }
  }
}

std::vector<double> Cholesky::solve(const std::vector<double>& b) const {
  const std::size_t n = l_.rows();
  MECSCHED_REQUIRE(b.size() == n, "Cholesky solve size mismatch");

  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    const double* li = l_.row(i);
    for (std::size_t k = 0; k < i; ++k) v -= li[k] * y[k];
    y[i] = v / li[i];
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= l_(k, ii) * x[k];
    x[ii] = v / l_(ii, ii);
  }
  return x;
}

}  // namespace mecsched::lp
