// Adversarial scenario builders for robustness/property testing — the
// regimes where assignment algorithms tend to break: a single overloaded
// cluster, near-impossible deadlines, degenerate data ownership, and a
// deterministic miniature topology for documentation and golden tests.
#pragma once

#include <cstdint>

#include "dta/data_model.h"
#include "workload/scenario.h"
#include "workload/shared_data.h"

namespace mecsched::workload {

// All users sit in cluster 0 of `num_base_stations` cells: one station
// absorbs the entire offloading pressure while the rest idle.
Scenario make_hotspot_scenario(std::size_t num_devices,
                               std::size_t num_base_stations,
                               std::size_t num_tasks, std::uint64_t seed);

// Deadlines drawn hair-thin around the best achievable latency
// (slack in [0.95, 1.1]): roughly a third of the tasks are infeasible
// everywhere and the rest tolerate only their single best placement.
Scenario make_knife_edge_scenario(std::size_t num_tasks, std::uint64_t seed);

// Data-shared scenario where one device owns every item (the others own
// nothing): DTA must degenerate onto a single device.
dta::SharedDataScenario make_single_owner_scenario(std::size_t num_devices,
                                                   std::size_t num_tasks,
                                                   std::uint64_t seed);

// A fixed, fully deterministic 4-device / 2-station system with 6
// hand-written tasks — no RNG anywhere. Used by golden/regression tests.
Scenario make_miniature_scenario();

}  // namespace mecsched::workload
