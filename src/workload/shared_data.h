// Generator for data-shared (divisible-task) scenarios — Sec. V.C's
// workloads. The universe D is a set of equally sized data blocks [19];
// every block is owned by at least one device (plus random replicas, so
// monitoring regions overlap as in the paper); each divisible task draws a
// random block subset sized to the configured input volume.
#pragma once

#include <cstdint>

#include "dta/data_model.h"
#include "workload/scenario.h"

namespace mecsched::workload {

struct SharedDataConfig {
  std::size_t num_devices = 50;
  std::size_t num_base_stations = 5;
  std::size_t num_tasks = 100;

  std::size_t num_items = 400;  // |D|: blocks in the universe
  double item_kb = 100.0;       // block size
  // When > 0, block sizes are drawn uniformly from
  // [item_kb, item_kb * item_size_spread] instead of being equal — the
  // regime where the byte-weighted DTA-Workload variant matters.
  double item_size_spread = 0.0;

  // Replication: each item is owned by 1 + uniform(0, max_extra_owners)
  // devices.
  std::size_t max_extra_owners = 2;

  // Task volume: items per task chosen so the input is uniform in
  // [min_input_fraction, 1] × max_input_kb.
  double max_input_kb = 3000.0;
  double min_input_fraction = 0.2;

  double op_kb = 1.0;  // descriptor size
  mec::ResultSizeKind result_kind = mec::ResultSizeKind::kProportional;
  double result_ratio = 0.2;
  double result_const_kb = 100.0;

  double resource_max_units = 4.0;
  double deadline_s = 120.0;  // generous: Sec. V.C varies energy, not deadlines

  // Topology knobs shared with the holistic generator. Divisible-task
  // experiments (Sec. V.C) stress data movement, not resource pressure, so
  // the default capacities are generous enough that a device can process
  // its own data share locally.
  double wifi_prob = 0.5;
  double device_capacity_min = 12.0;
  double device_capacity_max = 24.0;
  double station_capacity_per_device = 6.0;

  mec::SystemParameters params{};
  std::uint64_t seed = 1;
};

dta::SharedDataScenario make_shared_scenario(const SharedDataConfig& config);

}  // namespace mecsched::workload
