#include "workload/arrivals.h"

#include "common/error.h"

namespace mecsched::workload {

TimedScenario make_timed_scenario(const ArrivalConfig& config) {
  MECSCHED_REQUIRE(config.arrival_rate_per_s > 0.0,
                   "arrival rate must be positive");
  Scenario base = make_scenario(config.scenario);

  // Release times from a fresh stream so the static task attributes stay
  // identical to the quasi-static scenario with the same seed (the online
  // vs offline comparison needs that).
  Rng rng = Rng(config.scenario.seed).fork(0x4152'5249'5645ULL);  // "ARRIVE"
  TimedScenario out{std::move(base.topology), {}};
  out.tasks.reserve(base.tasks.size());
  double clock = 0.0;
  for (const mec::Task& task : base.tasks) {
    clock += rng.exponential(1.0 / config.arrival_rate_per_s);
    out.tasks.push_back(assign::TimedTask{task, clock});
  }
  return out;
}

}  // namespace mecsched::workload
