// Seeded event-trace generator for the serve daemon — Poisson task
// arrivals plus device churn (join/leave/migrate) over a horizon of
// fixed-length epochs.
//
// Determinism contract: every (epoch, event-kind) pair draws from its own
// `Rng::substream`, so epoch k's events are byte-identical no matter how
// many total epochs the trace spans (prefix property) and no matter what
// other consumers derived from the root seed. Regenerating with a larger
// `epochs` extends the trace without perturbing the shared prefix, and
// the bytes are stable across `--jobs` because nothing here depends on
// draw position (see rng.h).
#pragma once

#include <cstddef>

#include "serve/event.h"
#include "workload/scenario.h"

namespace mecsched::workload {

struct ServeTraceConfig {
  // Topology and task distributions (num_tasks is ignored; the arrival
  // process decides how many tasks the trace carries).
  ScenarioConfig scenario{};

  // Horizon: `epochs` windows of `epoch_s` seconds each. Matching the
  // daemon's batching window to `epoch_s` makes one trace epoch one
  // decision epoch, but the trace itself is just timestamped events.
  std::size_t epochs = 10;
  double epoch_s = 0.5;

  // Mean events per second for each process (exponential gaps within an
  // epoch; a rate of zero disables the process).
  double arrival_rate_per_s = 20.0;
  double join_rate_per_s = 0.0;
  double leave_rate_per_s = 0.0;
  double migrate_rate_per_s = 0.0;
};

struct ServeWorkload {
  mec::Topology universe;
  serve::Trace trace;
};

// Builds the universe topology and the event trace. Pure function of
// `config`; the root seed is `config.scenario.seed`.
ServeWorkload make_serve_workload(const ServeTraceConfig& config);

}  // namespace mecsched::workload
