#include "workload/shared_data.h"

#include <algorithm>

#include "common/error.h"
#include "common/units.h"

namespace mecsched::workload {

using units::kilobytes;

dta::SharedDataScenario make_shared_scenario(const SharedDataConfig& config) {
  MECSCHED_REQUIRE(config.num_items > 0, "universe must be non-empty");
  MECSCHED_REQUIRE(config.item_kb > 0.0, "item size must be positive");
  Rng rng(config.seed);

  // Topology via the holistic generator's builder.
  ScenarioConfig topo_cfg;
  topo_cfg.num_devices = config.num_devices;
  topo_cfg.num_base_stations = config.num_base_stations;
  topo_cfg.wifi_prob = config.wifi_prob;
  topo_cfg.device_capacity_min = config.device_capacity_min;
  topo_cfg.device_capacity_max = config.device_capacity_max;
  topo_cfg.station_capacity_per_device = config.station_capacity_per_device;
  topo_cfg.params = config.params;
  mec::Topology topology = make_topology(topo_cfg, rng);

  // Universe: equal-size blocks, or heterogeneous when a spread is set.
  std::vector<double> item_bytes(config.num_items, kilobytes(config.item_kb));
  if (config.item_size_spread > 1.0) {
    for (double& b : item_bytes) {
      b = kilobytes(
          rng.uniform(config.item_kb, config.item_kb * config.item_size_spread));
    }
  }
  dta::DataUniverse universe(std::move(item_bytes));

  // Ownership: every item gets one primary owner plus random replicas.
  std::vector<dta::ItemSet> ownership(config.num_devices);
  for (std::size_t r = 0; r < config.num_items; ++r) {
    const std::size_t copies =
        1 + static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(config.max_extra_owners)));
    const auto owners = rng.sample_without_replacement(
        config.num_devices, std::min(copies, config.num_devices));
    for (std::size_t dev : owners) ownership[dev].push_back(r);
  }
  // sample_without_replacement returns sorted ids per item, but each
  // device's list accumulates across items already in increasing r —
  // sorted by construction. Assert anyway in debug-style validation later.

  // Tasks: random block subsets sized to the configured volume.
  std::vector<dta::DivisibleTask> tasks;
  tasks.reserve(config.num_tasks);
  std::vector<std::size_t> per_user(config.num_devices, 0);
  for (std::size_t t = 0; t < config.num_tasks; ++t) {
    dta::DivisibleTask task;
    const std::size_t user = t % config.num_devices;
    task.id = {user, per_user[user]++};

    const double input_bytes = kilobytes(
        rng.uniform(config.min_input_fraction, 1.0) * config.max_input_kb);
    const auto want = static_cast<std::size_t>(
        std::max(1.0, std::round(input_bytes / kilobytes(config.item_kb))));
    task.items = rng.sample_without_replacement(
        config.num_items, std::min(want, config.num_items));

    task.op_bytes = kilobytes(config.op_kb);
    task.cycles_per_byte = config.params.cycles_per_byte;
    task.result_kind = config.result_kind;
    task.result_ratio = config.result_ratio;
    task.result_const_bytes = kilobytes(config.result_const_kb);
    task.resource =
        rng.uniform(std::min(1.0, config.resource_max_units),
                    config.resource_max_units);
    task.deadline_s = config.deadline_s;
    tasks.push_back(std::move(task));
  }

  dta::SharedDataScenario scenario{std::move(topology), std::move(universe),
                                   std::move(ownership), std::move(tasks)};
  scenario.validate();
  return scenario;
}

}  // namespace mecsched::workload
