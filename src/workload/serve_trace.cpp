#include "workload/serve_trace.h"

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.h"
#include "mec/cost_model.h"

namespace mecsched::workload {
namespace {

// Substream namespaces. Each epoch offsets its kind's base key by a
// golden-ratio stride so (kind, epoch) pairs never collide.
constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;
constexpr std::uint64_t kUniverseKey = 0x5EBBE7D1C0000001ULL;
constexpr std::uint64_t kArrivalsKey = 0x5EBBE7D1C0000002ULL;
constexpr std::uint64_t kJoinKey = 0x5EBBE7D1C0000003ULL;
constexpr std::uint64_t kLeaveKey = 0x5EBBE7D1C0000004ULL;
constexpr std::uint64_t kMigrateKey = 0x5EBBE7D1C0000005ULL;

std::uint64_t epoch_key(std::uint64_t base, std::size_t epoch) {
  return base + kGolden * (static_cast<std::uint64_t>(epoch) + 1);
}

// Event times for one Poisson process restricted to [start, end): fresh
// exponential gaps from the epoch's own substream, so the draw count in
// one epoch never shifts another epoch's events.
std::vector<double> poisson_times(double rate_per_s, double start, double end,
                                  Rng& rng) {
  std::vector<double> times;
  if (rate_per_s <= 0.0) return times;
  double t = start + rng.exponential(1.0 / rate_per_s);
  while (t < end) {
    times.push_back(t);
    t += rng.exponential(1.0 / rate_per_s);
  }
  return times;
}

std::size_t pick_device(const mec::Topology& topo, Rng& rng) {
  return static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(topo.num_devices()) - 1));
}

std::size_t pick_station(const mec::Topology& topo, Rng& rng) {
  return static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(topo.num_base_stations()) - 1));
}

}  // namespace

ServeWorkload make_serve_workload(const ServeTraceConfig& config) {
  MECSCHED_REQUIRE(config.epochs > 0, "serve trace needs at least one epoch");
  MECSCHED_REQUIRE(std::isfinite(config.epoch_s) && config.epoch_s > 0.0,
                   "epoch_s must be finite and positive");
  for (const double rate :
       {config.arrival_rate_per_s, config.join_rate_per_s,
        config.leave_rate_per_s, config.migrate_rate_per_s}) {
    MECSCHED_REQUIRE(std::isfinite(rate) && rate >= 0.0,
                     "event rates must be finite and non-negative");
  }

  const Rng root(config.scenario.seed);
  Rng topo_rng = root.substream(kUniverseKey);
  mec::Topology universe = make_topology(config.scenario, topo_rng);
  const mec::CostModel cost(universe);

  // Task indices per issuer accumulate across epochs in generation order,
  // which preserves the prefix property: epoch k sees the same counts no
  // matter how many epochs follow it.
  std::vector<std::size_t> per_user_count(universe.num_devices(), 0);

  std::vector<serve::Event> events;
  for (std::size_t e = 0; e < config.epochs; ++e) {
    const double start = static_cast<double>(e) * config.epoch_s;
    const double end = start + config.epoch_s;

    Rng arrivals = root.substream(epoch_key(kArrivalsKey, e));
    for (const double t :
         poisson_times(config.arrival_rate_per_s, start, end, arrivals)) {
      const std::size_t user = pick_device(universe, arrivals);
      events.push_back(serve::Event::arrival(
          t, sample_task(config.scenario, universe, cost, user,
                         per_user_count[user]++, arrivals)));
    }

    Rng joins = root.substream(epoch_key(kJoinKey, e));
    for (const double t :
         poisson_times(config.join_rate_per_s, start, end, joins)) {
      const std::size_t device = pick_device(universe, joins);
      events.push_back(
          serve::Event::join(t, device, pick_station(universe, joins)));
    }

    Rng leaves = root.substream(epoch_key(kLeaveKey, e));
    for (const double t :
         poisson_times(config.leave_rate_per_s, start, end, leaves)) {
      events.push_back(serve::Event::leave(t, pick_device(universe, leaves)));
    }

    Rng migrates = root.substream(epoch_key(kMigrateKey, e));
    for (const double t :
         poisson_times(config.migrate_rate_per_s, start, end, migrates)) {
      const std::size_t device = pick_device(universe, migrates);
      events.push_back(
          serve::Event::migrate(t, device, pick_station(universe, migrates)));
    }
  }

  serve::Trace trace(std::move(events));
  trace.validate_against(universe.num_devices(), universe.num_base_stations());
  return ServeWorkload{std::move(universe), std::move(trace)};
}

}  // namespace mecsched::workload
