#include "workload/stress.h"

#include "common/error.h"
#include "common/units.h"

namespace mecsched::workload {

using units::gigahertz;
using units::kilobytes;

Scenario make_hotspot_scenario(std::size_t num_devices,
                               std::size_t num_base_stations,
                               std::size_t num_tasks, std::uint64_t seed) {
  MECSCHED_REQUIRE(num_base_stations >= 1, "need at least one station");
  // Generate the standard scenario, then re-home every device to cluster 0.
  ScenarioConfig cfg;
  cfg.num_devices = num_devices;
  cfg.num_base_stations = num_base_stations;
  cfg.num_tasks = num_tasks;
  cfg.seed = seed;
  Scenario base = make_scenario(cfg);

  std::vector<mec::Device> devices;
  devices.reserve(num_devices);
  for (std::size_t i = 0; i < num_devices; ++i) {
    mec::Device d = base.topology.device(i);
    d.base_station = 0;
    devices.push_back(d);
  }
  std::vector<mec::BaseStation> stations;
  for (std::size_t b = 0; b < num_base_stations; ++b) {
    stations.push_back(base.topology.base_station(b));
  }
  return Scenario{
      mec::Topology(std::move(devices), std::move(stations),
                    base.topology.params()),
      std::move(base.tasks)};
}

Scenario make_knife_edge_scenario(std::size_t num_tasks, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.num_tasks = num_tasks;
  cfg.seed = seed;
  cfg.deadline_slack_min = 0.95;
  cfg.deadline_slack_max = 1.1;
  return make_scenario(cfg);
}

dta::SharedDataScenario make_single_owner_scenario(std::size_t num_devices,
                                                   std::size_t num_tasks,
                                                   std::uint64_t seed) {
  SharedDataConfig cfg;
  cfg.num_devices = num_devices;
  cfg.num_base_stations = 1;
  cfg.num_tasks = num_tasks;
  cfg.seed = seed;
  dta::SharedDataScenario scenario = make_shared_scenario(cfg);

  dta::ItemSet everything;
  for (std::size_t r = 0; r < scenario.universe.num_items(); ++r) {
    everything.push_back(r);
  }
  scenario.ownership.assign(num_devices, {});
  scenario.ownership[0] = std::move(everything);
  scenario.validate();
  return scenario;
}

Scenario make_miniature_scenario() {
  std::vector<mec::Device> devices = {
      {0, 0, gigahertz(1.0), mec::k4G, 4.0},
      {1, 0, gigahertz(2.0), mec::kWiFi, 4.0},
      {2, 1, gigahertz(1.5), mec::k4G, 4.0},
      {3, 1, gigahertz(1.2), mec::kWiFi, 4.0},
  };
  std::vector<mec::BaseStation> stations = {
      {0, gigahertz(4.0), 8.0},
      {1, gigahertz(4.0), 8.0},
  };
  mec::Topology topo(std::move(devices), std::move(stations),
                     mec::SystemParameters{});

  auto task = [](std::size_t user, std::size_t index, double alpha_kb,
                 double beta_kb, std::size_t owner, double resource,
                 double deadline) {
    mec::Task t;
    t.id = {user, index};
    t.local_bytes = kilobytes(alpha_kb);
    t.external_bytes = kilobytes(beta_kb);
    t.external_owner = owner;
    t.resource = resource;
    t.deadline_s = deadline;
    return t;
  };
  std::vector<mec::Task> tasks = {
      task(0, 0, 800.0, 200.0, 1, 2.0, 3.0),   // same-cluster fetch
      task(0, 1, 1500.0, 0.0, 0, 2.0, 2.0),    // pure local data
      task(1, 0, 2000.0, 900.0, 2, 3.0, 6.0),  // cross-cluster fetch
      task(2, 0, 400.0, 100.0, 3, 1.0, 1.5),   // small, tight
      task(3, 0, 2500.0, 1200.0, 0, 3.0, 8.0), // big, cross-cluster
      task(3, 1, 100.0, 50.0, 2, 1.0, 5.0),    // tiny
  };
  return Scenario{std::move(topo), std::move(tasks)};
}

}  // namespace mecsched::workload
