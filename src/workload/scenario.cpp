#include "workload/scenario.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/units.h"
#include "mec/cost_model.h"
#include "mec/radio.h"

namespace mecsched::workload {

using units::kilobytes;

mec::Topology make_topology(const ScenarioConfig& config, Rng& rng) {
  MECSCHED_REQUIRE(config.num_devices > 0, "need at least one device");
  MECSCHED_REQUIRE(config.num_base_stations > 0, "need at least one station");
  MECSCHED_REQUIRE(config.num_base_stations <= config.num_devices,
                   "more stations than devices");

  std::vector<mec::Device> devices(config.num_devices);
  for (std::size_t i = 0; i < config.num_devices; ++i) {
    mec::Device& d = devices[i];
    d.id = i;
    // Round-robin clustering keeps clusters balanced, matching the paper's
    // implicit uniform user distribution.
    d.base_station = i % config.num_base_stations;
    d.cpu_hz = rng.uniform(config.params.device_min_hz,
                           config.params.device_max_hz);
    d.radio = rng.bernoulli(config.wifi_prob) ? mec::kWiFi : mec::k4G;
    if (config.rate_model == ScenarioConfig::RateModel::kShannon) {
      // Channel-model driven rates: a log-uniform gain per direction, the
      // device's own power on the uplink, the station's on the downlink.
      const double log_lo = std::log(config.shannon_gain_min);
      const double log_hi = std::log(config.shannon_gain_max);
      const double g_up = std::exp(rng.uniform(log_lo, log_hi));
      const double g_down = std::exp(rng.uniform(log_lo, log_hi));
      d.radio.upload_bps =
          mec::shannon_rate(config.shannon_bandwidth_hz, g_up,
                            d.radio.tx_power_w, config.shannon_noise_w);
      d.radio.download_bps =
          mec::shannon_rate(config.shannon_bandwidth_hz, g_down,
                            config.shannon_bs_power_w, config.shannon_noise_w);
    }
    d.max_resource =
        rng.uniform(config.device_capacity_min, config.device_capacity_max);
  }

  std::vector<mec::BaseStation> stations(config.num_base_stations);
  const double devices_per_station =
      static_cast<double>(config.num_devices) /
      static_cast<double>(config.num_base_stations);
  for (std::size_t b = 0; b < config.num_base_stations; ++b) {
    stations[b].id = b;
    stations[b].cpu_hz = config.params.base_station_hz;
    stations[b].max_resource =
        config.station_capacity_per_device * devices_per_station;
  }
  return mec::Topology(std::move(devices), std::move(stations), config.params);
}

namespace {

// Picks the owner of a task's external data: a different device, same
// cluster with probability 1 - cross_cluster_prob when possible.
std::size_t pick_external_owner(const mec::Topology& topo, std::size_t user,
                                double cross_cluster_prob, Rng& rng) {
  const std::size_t bs = topo.device(user).base_station;
  const bool cross = topo.num_base_stations() > 1 &&
                     rng.bernoulli(cross_cluster_prob);
  if (!cross) {
    const auto& cluster = topo.cluster(bs);
    if (cluster.size() > 1) {
      for (int attempt = 0; attempt < 64; ++attempt) {
        const std::size_t pick = cluster[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(cluster.size()) - 1))];
        if (pick != user) return pick;
      }
    }
    // Degenerate cluster of one: fall through to any other device.
  }
  for (int attempt = 0; attempt < 256; ++attempt) {
    const auto pick = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(topo.num_devices()) - 1));
    if (pick == user) continue;
    if (cross && topo.device(pick).base_station == bs) continue;
    return pick;
  }
  return user;  // single-device system: no external transfer possible
}

}  // namespace

mec::Task sample_task(const ScenarioConfig& config,
                      const mec::Topology& topology,
                      const mec::CostModel& cost, std::size_t user,
                      std::size_t index, Rng& rng) {
  mec::Task task;
  task.id = {user, index};

  const double input_bytes = kilobytes(
      rng.uniform(config.min_input_fraction, 1.0) * config.max_input_kb);
  const double ext_fraction = rng.uniform(0.0, config.external_ratio_max);
  // α + β = input, β = f·α  =>  α = input / (1 + f).
  task.local_bytes = input_bytes / (1.0 + ext_fraction);
  task.external_bytes = input_bytes - task.local_bytes;
  task.external_owner = pick_external_owner(
      topology, user, config.cross_cluster_prob, rng);
  if (task.external_owner == user) {
    // No distinct owner exists (single-device topologies).
    task.local_bytes = input_bytes;
    task.external_bytes = 0.0;
  }

  task.cycles_per_byte = config.params.cycles_per_byte;
  task.result_kind = config.result_kind;
  task.result_ratio = config.result_ratio;
  task.result_const_bytes = kilobytes(config.result_const_kb);
  task.resource =
      rng.uniform(std::min(1.0, config.resource_max_units),
                  config.resource_max_units);

  // Deadline: slack multiple of the *best* placement's latency, so the
  // task is feasible somewhere but not everywhere.
  const mec::TaskCosts costs = cost.evaluate(task);
  double best = costs.latency(mec::Placement::kLocal);
  for (mec::Placement p : mec::kAllPlacements) {
    best = std::min(best, costs.latency(p));
  }
  task.deadline_s =
      best * rng.uniform(config.deadline_slack_min, config.deadline_slack_max);
  return task;
}

Scenario make_scenario(const ScenarioConfig& config) {
  Rng rng(config.seed);
  mec::Topology topology = make_topology(config, rng);

  std::vector<mec::Task> tasks;
  tasks.reserve(config.num_tasks);
  std::vector<std::size_t> per_user_count(config.num_devices, 0);

  const mec::CostModel cost(topology);
  for (std::size_t t = 0; t < config.num_tasks; ++t) {
    // Tasks spread round-robin so every user raises ~the same number, as
    // the paper assumes.
    const std::size_t user = t % config.num_devices;
    tasks.push_back(
        sample_task(config, topology, cost, user, per_user_count[user]++, rng));
  }
  return Scenario{std::move(topology), std::move(tasks)};
}

}  // namespace mecsched::workload
