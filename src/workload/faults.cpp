#include "workload/faults.h"

#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace mecsched::workload {

using sim::FaultEvent;
using sim::FaultKind;
using sim::FaultSchedule;

FaultSchedule make_fault_schedule(const FaultModelConfig& config,
                                  const mec::Topology& topology) {
  MECSCHED_REQUIRE(config.horizon_s > 0.0, "fault horizon must be positive");
  MECSCHED_REQUIRE(config.device_mtbf_s >= 0.0 && config.device_mttr_s > 0.0,
                   "device MTBF must be >= 0 and MTTR > 0");
  MECSCHED_REQUIRE(
      config.min_degrade_factor > 0.0 && config.min_degrade_factor <= 1.0,
      "min_degrade_factor must be in (0, 1], got " +
          std::to_string(config.min_degrade_factor));
  MECSCHED_REQUIRE(config.correlated_device_prob >= 0.0 &&
                       config.correlated_device_prob <= 1.0,
                   "correlated_device_prob must be a probability, got " +
                       std::to_string(config.correlated_device_prob));

  const double horizon = config.horizon_s;
  Rng rng(config.seed);
  std::vector<FaultEvent> events;

  // ---- Device churn: alternate exponential up/down intervals per device.
  if (config.device_mtbf_s > 0.0) {
    Rng churn = rng.fork(1);
    for (std::size_t dev = 0; dev < topology.num_devices(); ++dev) {
      Rng stream = churn.fork(dev);
      double t = stream.exponential(config.device_mtbf_s);
      while (t < horizon) {
        events.push_back({t, FaultKind::kDeviceFail, dev, 1.0});
        t += stream.exponential(config.device_mttr_s);
        if (t >= horizon) break;
        events.push_back({t, FaultKind::kDeviceRecover, dev, 1.0});
        t += stream.exponential(config.device_mtbf_s);
      }
    }
  }

  // ---- Cell outages, optionally taking cluster devices down with them.
  if (config.station_outage_rate_per_s > 0.0) {
    Rng outage = rng.fork(2);
    for (std::size_t bs = 0; bs < topology.num_base_stations(); ++bs) {
      Rng stream = outage.fork(bs);
      double t = stream.exponential(1.0 / config.station_outage_rate_per_s);
      while (t < horizon) {
        const double end = t + stream.exponential(config.station_outage_duration_s);
        events.push_back({t, FaultKind::kStationFail, bs, 1.0});
        if (end < horizon) {
          events.push_back({end, FaultKind::kStationRecover, bs, 1.0});
        }
        for (std::size_t dev : topology.cluster(bs)) {
          if (!stream.bernoulli(config.correlated_device_prob)) continue;
          events.push_back({t, FaultKind::kDeviceFail, dev, 1.0});
          if (end < horizon) {
            events.push_back({end, FaultKind::kDeviceRecover, dev, 1.0});
          }
        }
        t = end + stream.exponential(1.0 / config.station_outage_rate_per_s);
      }
    }
  }

  // ---- Link fading windows.
  if (config.link_fade_rate_per_s > 0.0) {
    Rng fade = rng.fork(3);
    for (std::size_t dev = 0; dev < topology.num_devices(); ++dev) {
      Rng stream = fade.fork(dev);
      double t = stream.exponential(1.0 / config.link_fade_rate_per_s);
      while (t < horizon) {
        const double factor =
            stream.uniform(config.min_degrade_factor, 1.0);
        const double end = t + stream.exponential(config.link_fade_duration_s);
        events.push_back({t, FaultKind::kLinkDegrade, dev, factor});
        if (end < horizon) {
          events.push_back({end, FaultKind::kLinkRestore, dev, 1.0});
        }
        t = end + stream.exponential(1.0 / config.link_fade_rate_per_s);
      }
    }
  }

  return FaultSchedule(std::move(events));
}

}  // namespace mecsched::workload
