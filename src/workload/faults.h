// Stochastic fault-schedule generation — the churn workloads the resilient
// controller (control/resilient.h) is measured against.
//
// Three independent processes, each a pure function of (config, seed):
//   * device churn: every device alternates up/down with exponential
//     time-between-failures (MTBF) and time-to-repair (MTTR), the classic
//     renewal model of node availability;
//   * cell outages: each base station suffers Poisson-arriving outage
//     windows of exponential duration. An outage is *correlated*: with
//     `correlated_device_prob` each device of the cluster drops with its
//     station (the radio masts power the neighbourhood) and recovers when
//     the station does;
//   * link fading: Poisson-arriving degradation windows per device that
//     multiply its radio rates by a factor drawn uniformly from
//     [min_degrade_factor, 1).
//
// Rates of 0 disable a process, so the default config generates an empty
// schedule.
#pragma once

#include <cstdint>

#include "mec/topology.h"
#include "sim/fault_schedule.h"

namespace mecsched::workload {

struct FaultModelConfig {
  double horizon_s = 60.0;  // generate events in [0, horizon_s)

  // Device churn (exponential MTBF/MTTR). mtbf_s == 0 disables.
  double device_mtbf_s = 0.0;
  double device_mttr_s = 5.0;

  // Cell outages. outage_rate == 0 disables.
  double station_outage_rate_per_s = 0.0;   // Poisson arrivals per station
  double station_outage_duration_s = 10.0;  // mean (exponential)
  double correlated_device_prob = 0.0;      // devices dropping with the cell

  // Link fading. fade_rate == 0 disables.
  double link_fade_rate_per_s = 0.0;     // Poisson arrivals per device
  double link_fade_duration_s = 5.0;     // mean (exponential)
  double min_degrade_factor = 0.25;      // factor ~ U[min, 1)

  std::uint64_t seed = 1;
};

// Samples a schedule for `topology`. Deterministic in (config, topology
// shape); device/station ids refer to the given topology.
sim::FaultSchedule make_fault_schedule(const FaultModelConfig& config,
                                       const mec::Topology& topology);

}  // namespace mecsched::workload
