// Synthetic scenario generator for the paper's evaluation (Sec. V.A).
//
// A Scenario is a topology plus a task set drawn from the experiment
// distributions: device CPUs uniform in [1, 2] GHz, each device on 4G or
// Wi-Fi at random, task input sizes up to `max_input_kb` (3000 kB in
// Figs. 2–4), external data 0–0.5× the local data, and deadlines drawn as a
// multiple of the task's best achievable latency (the paper does not
// quantify T_ij; the tightness knob reproduces Fig. 3's shape — see
// DESIGN.md "Substitutions").
//
// Everything is a pure function of (config, seed): rerunning a bench with
// the same config regenerates the identical instance.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "mec/cost_model.h"
#include "mec/parameters.h"
#include "mec/task.h"
#include "mec/topology.h"

namespace mecsched::workload {

struct ScenarioConfig {
  std::size_t num_devices = 50;
  std::size_t num_base_stations = 5;
  std::size_t num_tasks = 100;

  // Task input data: α+β uniform in [min_input_fraction, 1] × max_input_kb.
  double max_input_kb = 3000.0;
  double min_input_fraction = 0.1;
  // β = external fraction × α, uniform in [0, external_ratio_max].
  double external_ratio_max = 0.5;
  // Probability that the external data's owner sits in another cluster.
  double cross_cluster_prob = 0.3;
  // Fraction of devices on Wi-Fi (the rest use 4G), per the paper's
  // "connects by 4G or WiFi randomly".
  double wifi_prob = 0.5;

  // Radio rate model. The paper's experiments use the measured Table I
  // rates (kTableOne); kShannon instead derives each device's rates from
  // the Shannon capacity r = W log2(1 + gP/noise) (Sec. II.B) with a
  // random per-device channel gain — radio powers still come from the
  // Table I profile.
  enum class RateModel { kTableOne, kShannon };
  RateModel rate_model = RateModel::kTableOne;
  double shannon_bandwidth_hz = 10e6;    // W per direction
  double shannon_noise_w = 1e-10;        // white-noise power ϖ0
  double shannon_gain_min = 1e-10;       // channel gain range (log-uniform)
  double shannon_gain_max = 1e-7;
  double shannon_bs_power_w = 10.0;      // P^(S): downlink transmit power

  // Deadline T_ij = best-achievable-latency × uniform(deadline_slack_min,
  // deadline_slack_max). Values < 1 make some tasks infeasible everywhere.
  double deadline_slack_min = 1.3;
  double deadline_slack_max = 4.0;

  // Resource model: C_ij uniform in [1, resource_max_units]; device caps
  // max_i uniform in [device_capacity_min, device_capacity_max]; station
  // cap max_S = station_capacity_per_device × n_r.
  double resource_max_units = 4.0;
  double device_capacity_min = 4.0;
  double device_capacity_max = 9.0;
  double station_capacity_per_device = 10.0;

  // Result-size model η (Fig. 5(b) varies these).
  mec::ResultSizeKind result_kind = mec::ResultSizeKind::kProportional;
  double result_ratio = 0.2;
  double result_const_kb = 100.0;

  mec::SystemParameters params{};
  std::uint64_t seed = 1;
};

struct Scenario {
  mec::Topology topology;
  std::vector<mec::Task> tasks;
};

// Builds the topology only (devices, stations, radio assignment).
mec::Topology make_topology(const ScenarioConfig& config, Rng& rng);

// Draws one task for `user` from the config distributions — the body of
// make_scenario's task loop, exposed so streaming generators (the serve
// trace) sample from the *same* distributions. Draw order is part of the
// reproducibility contract: a given rng state yields the same task here
// and in make_scenario.
mec::Task sample_task(const ScenarioConfig& config,
                      const mec::Topology& topology,
                      const mec::CostModel& cost, std::size_t user,
                      std::size_t index, Rng& rng);

// Builds topology + tasks.
Scenario make_scenario(const ScenarioConfig& config);

}  // namespace mecsched::workload
