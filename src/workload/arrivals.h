// Poisson arrival process on top of the holistic scenario generator — the
// workload for the online-scheduling extension (assign/online.h).
#pragma once

#include "assign/online.h"
#include "workload/scenario.h"

namespace mecsched::workload {

struct ArrivalConfig {
  ScenarioConfig scenario{};
  // Mean arrivals per second (exponential inter-arrival gaps).
  double arrival_rate_per_s = 20.0;
};

struct TimedScenario {
  mec::Topology topology;
  std::vector<assign::TimedTask> tasks;  // sorted by release time
};

TimedScenario make_timed_scenario(const ArrivalConfig& config);

}  // namespace mecsched::workload
