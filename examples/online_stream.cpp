// Online stream — tasks arrive over time (Poisson) instead of all at once,
// the regime the paper's quasi-static model abstracts away. The
// OnlineScheduler extension batches arrivals into epochs and re-runs
// LP-HTA against the residual capacities; this example compares it with
// the clairvoyant offline plan and shows the epoch-length trade-off.
//
//   $ ./build/examples/online_stream
#include <iostream>

#include "assign/evaluator.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "assign/online.h"
#include "common/table.h"
#include "workload/arrivals.h"

int main() {
  using namespace mecsched;

  workload::ArrivalConfig cfg;
  cfg.scenario.num_devices = 30;
  cfg.scenario.num_base_stations = 5;
  cfg.scenario.num_tasks = 150;
  cfg.scenario.seed = 2026;
  cfg.arrival_rate_per_s = 25.0;
  const auto stream = workload::make_timed_scenario(cfg);

  std::cout << "stream: " << stream.tasks.size() << " tasks over "
            << Table::num(stream.tasks.back().release_s, 1)
            << " s (Poisson, 25 tasks/s)\n\n";

  // The clairvoyant yardstick: all tasks known at t=0.
  std::vector<mec::Task> all;
  for (const auto& t : stream.tasks) all.push_back(t.task);
  const assign::HtaInstance inst(stream.topology, all);
  const auto offline = assign::evaluate(inst, assign::LpHta().assign(inst));

  Table table({"policy", "energy (J)", "mean response (s)", "cancelled",
               "epochs"});
  table.add_row({"offline (clairvoyant)", Table::num(offline.total_energy_j, 1),
                 "-", std::to_string(offline.cancelled), "-"});

  double fast_cancelled = 0.0, slow_cancelled = 0.0;
  for (double epoch : {0.1, 0.5, 2.0}) {
    assign::OnlineOptions opts;
    opts.epoch_s = epoch;
    const assign::OnlineResult r =
        assign::OnlineScheduler(opts).run(stream.topology, stream.tasks);
    table.add_row({"online, epoch " + Table::num(epoch, 1) + " s",
                   Table::num(r.total_energy_j, 1),
                   Table::num(r.mean_response_s, 2),
                   std::to_string(r.cancelled), std::to_string(r.epochs)});
    if (epoch == 0.1) fast_cancelled = static_cast<double>(r.cancelled);
    if (epoch == 2.0) slow_cancelled = static_cast<double>(r.cancelled);
  }
  std::cout << table << '\n';
  std::cout << "short epochs react fast (fewer deadline cancellations) but\n"
               "re-solve the LP more often; long epochs batch well but eat\n"
               "the tasks' deadline slack while they wait.\n";
  return fast_cancelled <= slow_cancelled ? 0 : 1;
}
