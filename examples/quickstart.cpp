// Quickstart — build a tiny data-shared MEC system by hand, assign its
// tasks with LP-HTA, and inspect the plan.
//
//   $ ./build/examples/quickstart
//
// Walks through the full public API surface:
//   1. describe devices / base stations / system constants (mec::Topology),
//   2. describe holistic tasks with distributed input data (mec::Task),
//   3. run the LP-relaxation + rounding assignment (assign::LpHta),
//   4. evaluate energy / latency / feasibility (assign::evaluate),
//   5. replay the plan on the discrete-event simulator (sim::simulate).
#include <iostream>

#include "assign/evaluator.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "common/units.h"
#include "mec/cost_model.h"
#include "mec/parameters.h"
#include "sim/simulator.h"

int main() {
  using namespace mecsched;
  using units::gigahertz;
  using units::kilobytes;

  // --- 1. the system: four phones across two cells, default constants ---
  // (CPU 1-2 GHz, 4G/Wi-Fi radios from Table I, 15 ms backhaul, 250 ms
  // WAN; see mec/parameters.h).
  std::vector<mec::Device> devices = {
      // id, base station, CPU, radio, resource capacity (max_i)
      {0, 0, gigahertz(1.0), mec::k4G, 4.0},
      {1, 0, gigahertz(1.8), mec::kWiFi, 4.0},
      {2, 1, gigahertz(1.2), mec::k4G, 4.0},
      {3, 1, gigahertz(2.0), mec::kWiFi, 4.0},
  };
  std::vector<mec::BaseStation> stations = {
      // id, CPU (f_s), resource capacity (max_S)
      {0, gigahertz(4.0), 10.0},
      {1, gigahertz(4.0), 10.0},
  };
  const mec::Topology topology(devices, stations, mec::SystemParameters{});

  // --- 2. three tasks whose input data is spread across devices --------
  auto make_task = [](std::size_t user, std::size_t index, double local_kb,
                      double external_kb, std::size_t owner,
                      double deadline_s) {
    mec::Task t;
    t.id = {user, index};
    t.local_bytes = kilobytes(local_kb);
    t.external_bytes = kilobytes(external_kb);
    t.external_owner = owner;  // L_ij: who holds the external data
    t.resource = 2.0;          // C_ij
    t.deadline_s = deadline_s; // T_ij
    return t;
  };
  std::vector<mec::Task> tasks = {
      make_task(0, 0, 1200.0, 400.0, 1, 4.0),  // neighbour holds 400 kB
      make_task(1, 0, 2000.0, 900.0, 2, 6.0),  // cross-cluster fetch
      make_task(3, 0, 600.0, 0.0, 3, 1.0),     // all-local, tight deadline
  };

  // --- 3. assign -------------------------------------------------------
  const assign::HtaInstance instance(topology, tasks);
  assign::LpHtaReport report;
  const assign::Assignment plan =
      assign::LpHta().assign_with_report(instance, report);

  std::cout << "assignment:\n";
  for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
    std::cout << "  " << mec::to_string(instance.task(t).id) << " -> "
              << assign::to_string(plan.decisions[t]);
    if (plan.decisions[t] != assign::Decision::kCancelled) {
      const auto p = assign::to_placement(plan.decisions[t]);
      std::cout << "  (latency " << instance.latency(t, p) << " s, energy "
                << instance.energy(t, p) << " J, deadline "
                << instance.task(t).deadline_s << " s)";
    }
    std::cout << '\n';
  }

  // --- 4. evaluate ------------------------------------------------------
  const assign::Metrics m = assign::evaluate(instance, plan);
  std::cout << "\ntotals: " << m.total_energy_j << " J, mean latency "
            << m.mean_latency_s << " s, unsatisfied rate "
            << m.unsatisfied_rate() << '\n';
  std::cout << "theorem-2 ratio bound for this instance: "
            << report.ratio_bound() << '\n';
  const assign::FeasibilityReport feas = assign::check_feasibility(instance, plan);
  std::cout << "constraints (C1)-(C5) hold: " << (feas.ok ? "yes" : "NO")
            << '\n';

  // --- 5. replay on the simulator ---------------------------------------
  const sim::SimResult replay = sim::simulate(instance, plan);
  std::cout << "simulated makespan " << replay.makespan_s << " s over "
            << replay.events_processed << " events; simulated energy "
            << replay.total_energy_j << " J (matches the analytic total)\n";
  return feas.ok ? 0 : 1;
}
