// Object tracking — the paper's motivating *holistic* workload (Sec. I):
// "a mobile device is required to return the whole trajectory of the
// monitored object, while it only has partial trajectory information."
//
// Trajectory stitching needs every observation in one place (it is not an
// aggregation), so these are holistic tasks: the tracker device holds its
// own sightings (LD) and must pull the missing segment (ED) from whichever
// camera phone recorded it — possibly in another cell. Deadlines are tight
// because the object is moving.
//
// Compares all four assignment algorithms of Sec. V.B on this workload and
// cross-checks the winning plan in the discrete-event simulator.
//
//   $ ./build/examples/object_tracking
#include <iostream>
#include <memory>

#include "assign/baselines.h"
#include "assign/evaluator.h"
#include "assign/hgos.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "common/table.h"
#include "sim/simulator.h"
#include "workload/scenario.h"

int main() {
  using namespace mecsched;

  // 40 phones across 4 cells; 120 tracking requests. Trajectory blobs are
  // mid-sized (<= 1500 kB) but deadlines are tight (the object moves), and
  // the missing segment often lives in the *next* cell along the object's
  // path (high cross-cluster probability).
  workload::ScenarioConfig cfg;
  cfg.num_devices = 40;
  cfg.num_base_stations = 4;
  cfg.num_tasks = 120;
  cfg.max_input_kb = 1500.0;
  cfg.external_ratio_max = 0.5;   // the missing segment can be large
  cfg.cross_cluster_prob = 0.6;   // the object crossed cells
  cfg.deadline_slack_min = 1.1;   // tight: respond while it's relevant
  cfg.deadline_slack_max = 1.8;
  cfg.seed = 7;
  const workload::Scenario scenario = workload::make_scenario(cfg);
  const assign::HtaInstance instance(scenario.topology, scenario.tasks);

  std::cout << "tracking workload: " << instance.num_tasks()
            << " trajectory requests over "
            << scenario.topology.num_devices() << " devices\n\n";

  Table table({"algorithm", "energy (J)", "mean latency (s)",
               "unsatisfied rate", "local/edge/cloud"});
  std::vector<std::unique_ptr<assign::Assigner>> algorithms;
  algorithms.push_back(std::make_unique<assign::LpHta>());
  algorithms.push_back(std::make_unique<assign::Hgos>());
  algorithms.push_back(std::make_unique<assign::AllToCloud>());
  algorithms.push_back(std::make_unique<assign::AllOffload>());

  double lp_unsat = 1.0, hgos_unsat = 0.0;
  for (const auto& algorithm : algorithms) {
    const assign::Assignment plan = algorithm->assign(instance);
    const assign::Metrics m = assign::evaluate(instance, plan);
    table.add_row({algorithm->name(), Table::num(m.total_energy_j, 1),
                   Table::num(m.mean_latency_s, 3),
                   Table::num(m.unsatisfied_rate(), 3),
                   std::to_string(m.on_local) + "/" +
                       std::to_string(m.on_edge) + "/" +
                       std::to_string(m.on_cloud)});
    if (algorithm->name() == "LP-HTA") lp_unsat = m.unsatisfied_rate();
    if (algorithm->name() == "HGOS") hgos_unsat = m.unsatisfied_rate();
  }
  std::cout << table << '\n';

  // Replay LP-HTA's plan with radio/CPU contention to see how the analytic
  // numbers degrade when every request fires at once.
  const assign::Assignment plan = assign::LpHta().assign(instance);
  const sim::SimResult ideal = sim::simulate(instance, plan);
  sim::SimOptions crowd;
  crowd.model_contention = true;
  const sim::SimResult rush = sim::simulate(instance, plan, crowd);
  std::cout << "LP-HTA plan under simultaneous release: makespan "
            << Table::num(ideal.makespan_s, 2) << " s (isolated) vs "
            << Table::num(rush.makespan_s, 2)
            << " s (shared radios/CPUs queue up)\n";
  std::cout << "=> deadline-aware assignment matters for tracking: LP-HTA "
               "leaves "
            << Table::num(lp_unsat * 100, 1) << "% unsatisfied vs "
            << Table::num(hgos_unsat * 100, 1) << "% for HGOS\n";
  return lp_unsat <= hgos_unsat ? 0 : 1;
}
