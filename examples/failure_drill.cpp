// Failure drill — operations-side tooling on top of the paper's
// algorithms: plan with LP-HTA, kill the busiest device in simulation,
// measure the blast radius, repair the plan, and ask the shadow-price
// analysis where extra capacity would help most.
//
//   $ ./build/examples/failure_drill
#include <algorithm>
#include <iostream>

#include "assign/evaluator.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "assign/recovery.h"
#include "assign/sensitivity.h"
#include "common/table.h"
#include "sim/simulator.h"
#include "workload/scenario.h"

int main() {
  using namespace mecsched;

  workload::ScenarioConfig cfg;
  cfg.num_devices = 25;
  cfg.num_base_stations = 5;
  cfg.num_tasks = 100;
  cfg.seed = 77;
  // Keep capacities tight so the shadow-price analysis has binding rows to
  // price (with slack capacity every price is rightly zero).
  cfg.device_capacity_min = 2.0;
  cfg.device_capacity_max = 4.0;
  cfg.station_capacity_per_device = 1.5;
  const auto s = workload::make_scenario(cfg);
  const assign::HtaInstance instance(s.topology, s.tasks);
  const assign::Assignment plan = assign::LpHta().assign(instance);

  // Pick the device carrying the most local tasks — the worst one to lose.
  std::vector<int> local_tasks(s.topology.num_devices(), 0);
  for (std::size_t t = 0; t < instance.num_tasks(); ++t) {
    if (plan.decisions[t] == assign::Decision::kLocal) {
      ++local_tasks[instance.task(t).id.user];
    }
  }
  const std::size_t victim = static_cast<std::size_t>(
      std::max_element(local_tasks.begin(), local_tasks.end()) -
      local_tasks.begin());

  std::cout << "drill: device " << victim << " (busiest: "
            << local_tasks[victim] << " local tasks) dies at t = 0\n\n";

  // Without repair.
  sim::SimOptions failure;
  failure.failed_device = victim;
  failure.failure_time_s = 0.0;
  const sim::SimResult broken = sim::simulate(instance, plan, failure);

  // With repair.
  const assign::RecoveryResult repaired =
      assign::replan_after_device_failure(instance, plan, victim);
  const sim::SimResult after =
      sim::simulate(instance, repaired.assignment, failure);

  Table table({"plan", "tasks failed in sim", "tasks lost (unavoidable)",
               "energy of survivors (J)"});
  table.add_row({"original, unrepaired", std::to_string(broken.failed_tasks),
                 "-", Table::num(broken.total_energy_j, 1)});
  table.add_row({"after replan",
                 std::to_string(after.failed_tasks),
                 std::to_string(repaired.lost_issued + repaired.lost_data),
                 Table::num(after.total_energy_j, 1)});
  std::cout << table << '\n';

  // Where would one extra unit of capacity help most now?
  const assign::ShadowPrices prices = assign::capacity_shadow_prices(instance);
  std::size_t best_station = 0;
  for (std::size_t b = 1; b < prices.station.size(); ++b) {
    if (prices.station[b] > prices.station[best_station]) best_station = b;
  }
  std::cout << "capacity advice: station " << best_station
            << " has the highest shadow price ("
            << Table::num(prices.station[best_station], 3)
            << " J saved per extra resource unit); upgrade it first.\n";

  return after.failed_tasks == 0 ? 0 : 1;
}
