// Traffic monitoring — the paper's motivating divisible workload (Sec. I):
// "a user wants to know the average flow rate of vehicles in the whole
// city, while the data sampled by his mobile device only shows the flow
// rate in a small region."
//
// Models a city as a grid of road segments (data blocks). Every vehicle's
// device continuously samples the segments around its route, so segment
// readings are replicated across overlapping devices. Average-flow queries
// are divisible (an average aggregates partial sums), so the DTA pipeline
// can answer them without moving raw readings.
//
//   $ ./build/examples/traffic_monitoring
#include <iostream>

#include "assign/evaluator.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"
#include "dta/pipeline.h"
#include "workload/shared_data.h"

int main() {
  using namespace mecsched;

  // A 20x20 grid of road segments, each contributing ~50 kB of samples per
  // window; 60 vehicles across 6 cells; every segment is covered by a
  // handful of passing vehicles. 40 concurrent "city average" queries,
  // each over a random district (subset of segments).
  workload::SharedDataConfig cfg;
  cfg.num_devices = 60;
  cfg.num_base_stations = 6;
  cfg.num_items = 400;       // road segments
  cfg.item_kb = 50.0;        // samples per segment per window
  cfg.max_extra_owners = 6;  // overlapping routes
  cfg.num_tasks = 40;        // concurrent district queries
  cfg.max_input_kb = 2500.0; // biggest district ~50 segments
  cfg.result_ratio = 0.05;   // a flow-rate summary is small
  cfg.seed = 2026;
  const dta::SharedDataScenario city = workload::make_shared_scenario(cfg);

  std::cout << "city: " << city.universe.num_items() << " road segments, "
            << city.topology.num_devices() << " vehicles, "
            << city.tasks.size() << " district queries\n\n";

  // --- answer the queries three ways ------------------------------------
  Table table({"strategy", "energy (J)", "processing time (s)",
               "devices involved"});

  dta::DtaOptions opts;
  opts.strategy = dta::DtaStrategy::kWorkload;
  const dta::DtaResult balanced = dta::run_dta(city, opts);
  table.add_row({"DTA-Workload (balanced shares)",
                 Table::num(balanced.total_energy_j, 1),
                 Table::num(balanced.processing_time_s, 2),
                 std::to_string(balanced.involved_devices)});

  opts.strategy = dta::DtaStrategy::kNumber;
  const dta::DtaResult lean = dta::run_dta(city, opts);
  table.add_row({"DTA-Number (fewest devices)",
                 Table::num(lean.total_energy_j, 1),
                 Table::num(lean.processing_time_s, 2),
                 std::to_string(lean.involved_devices)});

  // Holistic strawman: ship each district's raw readings to one place.
  const assign::HtaInstance holistic(city.topology,
                                     dta::to_holistic_tasks(city));
  const auto plan = assign::LpHta().assign(holistic);
  const auto m = assign::evaluate(holistic, plan);
  table.add_row({"holistic LP-HTA (raw data moves)",
                 Table::num(m.total_energy_j, 1), "-",
                 std::to_string(city.topology.num_devices())});

  std::cout << table << '\n';
  std::cout << "divisible processing avoids shipping raw segment samples: "
            << Table::num(m.total_energy_j / balanced.total_energy_j, 1)
            << "x less energy than the holistic plan.\n"
            << "Pick DTA-Workload when query latency matters (balanced\n"
            << "shares -> short makespan); pick DTA-Number when most\n"
            << "vehicles should stay idle (battery).\n";

  const bool ok = balanced.total_energy_j < m.total_energy_j &&
                  lean.involved_devices <= balanced.involved_devices;
  return ok ? 0 : 1;
}
