// Capacity planning — a what-if study a MEC operator would run before
// provisioning base stations: how much edge compute capacity (max_S) is
// enough for a given task load?
//
// Sweeps the station capacity, re-assigns the same workload with LP-HTA at
// each level, and reports where cancellations stop and where extra
// capacity stops paying. Also validates each plan against the exact ILP
// optimum while instances are small enough, demonstrating the ExactHta /
// LpHtaReport diagnostics APIs.
//
//   $ ./build/examples/capacity_planning
#include <iostream>

#include "assign/evaluator.h"
#include "assign/exact.h"
#include "assign/lp_hta.h"
#include "common/table.h"
#include "workload/scenario.h"

int main() {
  using namespace mecsched;

  workload::ScenarioConfig base;
  base.num_devices = 10;
  base.num_base_stations = 2;
  base.num_tasks = 30;
  base.max_input_kb = 2500.0;
  base.seed = 99;

  std::cout << "capacity planning: " << base.num_tasks << " tasks on "
            << base.num_devices << " devices / " << base.num_base_stations
            << " stations; sweeping station capacity\n\n";

  Table table({"max_S / device", "energy (J)", "cancelled", "edge share",
               "gap to ILP opt", "ratio bound"});

  double previous_energy = -1.0;
  bool monotone = true;
  for (double cap : {1.0, 2.0, 4.0, 6.0, 10.0, 16.0}) {
    workload::ScenarioConfig cfg = base;
    cfg.station_capacity_per_device = cap;
    const workload::Scenario s = workload::make_scenario(cfg);
    const assign::HtaInstance instance(s.topology, s.tasks);

    assign::LpHtaReport report;
    const assign::Assignment plan =
        assign::LpHta().assign_with_report(instance, report);
    const assign::Metrics m = assign::evaluate(instance, plan);

    const assign::ExactResult opt = assign::ExactHta().solve(instance);
    std::string gap = "-";
    if (opt.proven_optimal && opt.energy > 0.0 &&
        plan.cancelled() == opt.assignment.cancelled()) {
      gap = Table::num((m.total_energy_j / opt.energy - 1.0) * 100.0, 2) + "%";
    }

    table.add_row({Table::num(cap, 0), Table::num(m.total_energy_j, 1),
                   std::to_string(m.cancelled),
                   Table::num(m.num_tasks == 0
                                  ? 0.0
                                  : static_cast<double>(m.on_edge) /
                                        static_cast<double>(m.num_tasks),
                              2),
                   gap, Table::num(report.ratio_bound(), 3)});
    if (previous_energy >= 0.0 && m.cancelled == 0) {
      // once nothing is cancelled, more capacity should never cost energy
      monotone = monotone && m.total_energy_j <= previous_energy + 1e-6;
    }
    if (m.cancelled == 0) previous_energy = m.total_energy_j;
  }

  std::cout << table << '\n'
            << "reading: capacity below the knee forces cancellations (the "
               "energy column is misleading there — cancelled tasks cost "
               "nothing); at the knee every task fits, and beyond it extra "
               "capacity changes nothing once the edge share saturates.\n";
  return monotone ? 0 : 1;
}
