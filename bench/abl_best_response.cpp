// Ablation — LP-HTA vs decentralized best-response dynamics (the
// congestion-game family of [8]/[13]). Measures the price of decentralized
// selfishness: energy close-ish, deadline behaviour much worse, since the
// players never see deadlines.
#include <iostream>

#include "assign/best_response.h"
#include "assign/evaluator.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "bench/bench_common.h"
#include "metrics/series.h"
#include "workload/scenario.h"

int main() {
  const mecsched::bench::ObsSession obs_session("abl_best_response");
  using namespace mecsched;
  bench::print_header("Ablation", "LP-HTA vs best-response dynamics (BRD)",
                      "tasks 100..400, 50 devices, 5 stations; BRD = selfish "
                      "players on a congestion game, Nash equilibrium");

  metrics::SeriesCollector series(
      "tasks", {"LP-HTA-energy", "BRD-energy", "LP-HTA-unsat", "BRD-unsat",
                "BRD-rounds"});

  bool always_converged = true;
  for (double x = 100; x <= 400; x += 100) {
    for (std::uint64_t rep = 1; rep <= bench::kRepetitions; ++rep) {
      workload::ScenarioConfig cfg;
      cfg.num_devices = bench::kDevices;
      cfg.num_base_stations = bench::kStations;
      cfg.num_tasks = static_cast<std::size_t>(x);
      cfg.seed = rep * 271 + static_cast<std::uint64_t>(x);
      const auto s = workload::make_scenario(cfg);
      const assign::HtaInstance inst(s.topology, s.tasks);

      const auto lp = assign::evaluate(inst, assign::LpHta().assign(inst));
      assign::BestResponseReport rep_brd;
      const auto brd = assign::evaluate(
          inst, assign::BestResponse().assign_with_report(inst, rep_brd));
      always_converged = always_converged && rep_brd.converged;

      series.add(x, "LP-HTA-energy", lp.total_energy_j);
      series.add(x, "BRD-energy", brd.total_energy_j);
      series.add(x, "LP-HTA-unsat", lp.unsatisfied_rate());
      series.add(x, "BRD-unsat", brd.unsatisfied_rate());
      series.add(x, "BRD-rounds", static_cast<double>(rep_brd.rounds));
    }
  }

  bench::print_table(series, 3);
  bench::maybe_write_csv(series, "abl_best_response");

  bench::ShapeChecker check;
  const auto at = [&](double x, const char* s) { return series.mean(x, s); };
  check.expect(always_converged, "BRD reached a Nash equilibrium every run");
  check.expect(at(400, "LP-HTA-unsat") < at(400, "BRD-unsat"),
               "LP-HTA beats the equilibrium on deadlines");
  check.expect(at(400, "BRD-energy") < 2.5 * at(400, "LP-HTA-energy"),
               "equilibrium energy is within the same order of magnitude");
  return check.exit_code();
}
