// Shared scaffolding for the figure-reproduction binaries.
//
// Each binary regenerates one table/figure of the paper's Sec. V: it
// sweeps the figure's x-axis, runs every algorithm the figure compares
// (averaging over a few seeds), prints the series as a fixed-width table,
// and appends the qualitative "shape" the paper reports so the output is
// self-checking.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "exec/thread_pool.h"
#include "metrics/series.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "obs/window.h"

namespace mecsched::bench {

// Default experiment scale mirroring Sec. V.A: 50 devices, 5 base
// stations; 3 seeds per cell for smoothing.
inline constexpr std::size_t kDevices = 50;
inline constexpr std::size_t kStations = 5;
inline constexpr std::size_t kRepetitions = 3;

// Worker count for the sweep fan-out (exec::SweepRunner): MECSCHED_JOBS
// when set, otherwise all hardware threads. The figure tables are
// byte-identical at every job count, so MECSCHED_JOBS is purely a
// wall-clock knob.
inline std::size_t sweep_jobs() { return exec::ThreadPool::default_jobs(); }

inline void print_header(const std::string& figure, const std::string& title,
                         const std::string& setup) {
  std::cout << "==============================================================\n"
            << figure << " — " << title << "\n"
            << "setup: " << setup << "\n"
            << "==============================================================\n";
}

inline void print_table(const metrics::SeriesCollector& series,
                        int precision = 3) {
  std::cout << series.to_table(precision) << std::flush;
}

// When MECSCHED_CSV_DIR is set, also dump the series as
// $MECSCHED_CSV_DIR/<figure>.csv so the plots can be regenerated
// externally; otherwise a no-op.
inline void maybe_write_csv(const metrics::SeriesCollector& series,
                            const std::string& figure) {
  const char* dir = std::getenv("MECSCHED_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/" + figure + ".csv";
  series.write_csv(path);
  std::cout << "csv: " << path << '\n';
}

inline std::string env_or_empty(const char* key) {
  const char* v = std::getenv(key);
  return v == nullptr ? std::string() : std::string(v);
}

// Uniform machine-readable bench output: every bench binary writes a
// BENCH_<name>.json (path override: MECSCHED_BENCH_OUT) with the schema
//
//   {
//     "schema": "mecsched.bench.v1",
//     "bench": "<name>",
//     "wall_seconds": <number>,
//     "values":   { "<key>": <number>, ... },   // bench-specific scalars
//     "flags":    { "<key>": <bool>,   ... },   // bench-specific booleans
//     "counters": { "<metric>": <count>, ... }, // registry counters
//     "windows":  { "<metric>": {count,p50,p90,p95,p99,rate_hz}, ... },
//     "rates":    { "<metric>": {count,rate_hz}, ... }
//   }
//
// NaN/Inf serialize as JSON null. tools/bench/trajectory.py validates the
// schema and gates values/flags against bench/baselines/<name>.json, so a
// bench opts into CI trajectory tracking just by set_value()-ing the
// numbers it wants gated. ObsSession owns one and writes it on
// destruction; reach it via ObsSession::telemetry().
class BenchTelemetry {
 public:
  static constexpr const char* kSchema = "mecsched.bench.v1";

  explicit BenchTelemetry(std::string name) : name_(std::move(name)) {
    path_ = env_or_empty("MECSCHED_BENCH_OUT");
    if (path_.empty()) path_ = "BENCH_" + name_ + ".json";
  }

  void set_value(const std::string& key, double v) { values_[key] = v; }
  void set_flag(const std::string& key, bool v) { flags_[key] = v; }
  const std::string& path() const { return path_; }

  void write(double wall_seconds) const {
    std::ostringstream os;
    os.precision(12);
    os << "{\n"
       << "  \"schema\": \"" << kSchema << "\",\n"
       << "  \"bench\": \"" << name_ << "\",\n"
       << "  \"wall_seconds\": ";
    num(os, wall_seconds);
    os << ",\n  \"values\": {";
    const char* sep = "";
    for (const auto& [k, v] : values_) {
      os << sep << "\n    \"" << k << "\": ";
      num(os, v);
      sep = ",";
    }
    os << (values_.empty() ? "" : "\n  ") << "},\n  \"flags\": {";
    sep = "";
    for (const auto& [k, v] : flags_) {
      os << sep << "\n    \"" << k << "\": " << (v ? "true" : "false");
      sep = ",";
    }
    os << (flags_.empty() ? "" : "\n  ") << "},\n  \"counters\": {";
    const obs::Registry& reg = obs::Registry::global();
    const auto counters = reg.counters();
    sep = "";
    for (const auto& [k, v] : counters) {
      os << sep << "\n    \"" << k << "\": " << v;
      sep = ",";
    }
    os << (counters.empty() ? "" : "\n  ") << "},\n  \"windows\": {";
    const auto windows = reg.windows();
    sep = "";
    for (const auto& [k, w] : windows) {
      const obs::WindowedHistogram::Snapshot s = w->snapshot();
      os << sep << "\n    \"" << k << "\": {\"count\": " << s.count
         << ", \"p50\": ";
      num(os, s.p50);
      os << ", \"p90\": ";
      num(os, s.p90);
      os << ", \"p95\": ";
      num(os, s.p95);
      os << ", \"p99\": ";
      num(os, s.p99);
      os << ", \"rate_hz\": ";
      num(os, s.rate_hz);
      os << "}";
      sep = ",";
    }
    os << (windows.empty() ? "" : "\n  ") << "},\n  \"rates\": {";
    const auto rates = reg.rates();
    sep = "";
    for (const auto& [k, r] : rates) {
      const obs::RateWindow::Snapshot s = r->snapshot();
      os << sep << "\n    \"" << k << "\": {\"count\": " << s.count
         << ", \"rate_hz\": ";
      num(os, s.rate_hz);
      os << "}";
      sep = ",";
    }
    os << (rates.empty() ? "" : "\n  ") << "}\n}\n";
    std::ofstream f(path_);
    f << os.str();
  }

 private:
  static void num(std::ostringstream& os, double v) {
    if (std::isfinite(v)) {
      os << v;
    } else {
      os << "null";
    }
  }

  std::string name_;
  std::string path_;
  std::map<std::string, double> values_;
  std::map<std::string, bool> flags_;
};

// Times the whole binary under an obs::ScopedTimer (so the wall-clock the
// bench prints and the `bench.<name>` span in a trace agree by
// construction) and, mirroring the CLI's global flags, honors
//
//   MECSCHED_TRACE_OUT=trace.json   write a Chrome trace of the run
//   MECSCHED_METRICS_OUT=m.prom     write the registry as Prometheus text
//   MECSCHED_OBS_SUMMARY=1          print the metric summary table
//   MECSCHED_FLIGHT_OUT=f.jsonl     per-solve flight record (JSONL)
//
// Declare one at the top of main(); everything happens on destruction,
// including the BENCH_<name>.json telemetry dump (see BenchTelemetry).
class ObsSession {
 public:
  explicit ObsSession(std::string name)
      : name_(std::move(name)), telemetry_(name_) {
    trace_path_ = env_or_empty("MECSCHED_TRACE_OUT");
    metrics_path_ = env_or_empty("MECSCHED_METRICS_OUT");
    flight_path_ = env_or_empty("MECSCHED_FLIGHT_OUT");
    summary_ = !env_or_empty("MECSCHED_OBS_SUMMARY").empty();
    if (!trace_path_.empty()) obs::Tracer::global().enable();
    if (!flight_path_.empty()) {
      obs::FlightRecorder::global().clear();
      obs::FlightRecorder::global().enable();
    }
    timer_.emplace("bench." + name_, "bench");
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  // Bench-specific numbers destined for BENCH_<name>.json (and the CI
  // trajectory gate). Mutable through a const session so the usual
  // `const ObsSession obs_session(...)` at the top of main() still works.
  BenchTelemetry& telemetry() const { return telemetry_; }

  ~ObsSession() {
    const double wall_seconds = timer_->elapsed_s();
    std::cout << "wall: " << wall_seconds << " s\n";
    timer_.reset();  // close the span so it lands in the trace + registry
    if (!trace_path_.empty()) {
      const std::uint64_t trace_drops = obs::Tracer::global().dropped();
      obs::write_chrome_trace(obs::Tracer::global(), trace_path_);
      obs::Tracer::global().disable();
      std::cout << "trace: " << trace_path_ << '\n';
      if (trace_drops > 0) {
        std::cerr << "warning: tracer ring overflowed; dropped "
                  << trace_drops << " events\n";
      }
    }
    if (!metrics_path_.empty()) {
      obs::write_prometheus(obs::Registry::global(), metrics_path_);
      std::cout << "metrics: " << metrics_path_ << '\n';
    }
    if (!flight_path_.empty()) {
      obs::FlightRecorder& flight = obs::FlightRecorder::global();
      obs::write_flight_jsonl(flight, flight_path_);
      std::cout << "flight: " << flight_path_ << '\n';
      if (flight.dropped() > 0) {
        std::cerr << "warning: flight recorder ring overflowed; dropped "
                  << flight.dropped() << " records\n";
      }
      flight.disable();
    }
    if (summary_) std::cout << obs::summary_table(obs::Registry::global());
    telemetry_.write(wall_seconds);
    std::cout << "telemetry: " << telemetry_.path() << '\n';
  }

 private:
  std::string name_;
  std::string trace_path_;
  std::string metrics_path_;
  std::string flight_path_;
  bool summary_ = false;
  mutable BenchTelemetry telemetry_;
  std::optional<obs::ScopedTimer> timer_;
};

// Prints a PASS/FAIL line for one expected qualitative relationship. The
// binaries exit non-zero if any expectation fails, so `for b in
// build/bench/*; do $b; done` doubles as a reproduction check.
class ShapeChecker {
 public:
  void expect(bool condition, const std::string& description) {
    std::cout << (condition ? "  [shape OK]   " : "  [shape FAIL] ")
              << description << '\n';
    ok_ = ok_ && condition;
  }

  int exit_code() const { return ok_ ? EXIT_SUCCESS : EXIT_FAILURE; }

 private:
  bool ok_ = true;
};

}  // namespace mecsched::bench
