// Shared scaffolding for the figure-reproduction binaries.
//
// Each binary regenerates one table/figure of the paper's Sec. V: it
// sweeps the figure's x-axis, runs every algorithm the figure compares
// (averaging over a few seeds), prints the series as a fixed-width table,
// and appends the qualitative "shape" the paper reports so the output is
// self-checking.
#pragma once

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "exec/thread_pool.h"
#include "metrics/series.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "obs/tracer.h"

namespace mecsched::bench {

// Default experiment scale mirroring Sec. V.A: 50 devices, 5 base
// stations; 3 seeds per cell for smoothing.
inline constexpr std::size_t kDevices = 50;
inline constexpr std::size_t kStations = 5;
inline constexpr std::size_t kRepetitions = 3;

// Worker count for the sweep fan-out (exec::SweepRunner): MECSCHED_JOBS
// when set, otherwise all hardware threads. The figure tables are
// byte-identical at every job count, so MECSCHED_JOBS is purely a
// wall-clock knob.
inline std::size_t sweep_jobs() { return exec::ThreadPool::default_jobs(); }

inline void print_header(const std::string& figure, const std::string& title,
                         const std::string& setup) {
  std::cout << "==============================================================\n"
            << figure << " — " << title << "\n"
            << "setup: " << setup << "\n"
            << "==============================================================\n";
}

inline void print_table(const metrics::SeriesCollector& series,
                        int precision = 3) {
  std::cout << series.to_table(precision) << std::flush;
}

// When MECSCHED_CSV_DIR is set, also dump the series as
// $MECSCHED_CSV_DIR/<figure>.csv so the plots can be regenerated
// externally; otherwise a no-op.
inline void maybe_write_csv(const metrics::SeriesCollector& series,
                            const std::string& figure) {
  const char* dir = std::getenv("MECSCHED_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/" + figure + ".csv";
  series.write_csv(path);
  std::cout << "csv: " << path << '\n';
}

inline std::string env_or_empty(const char* key) {
  const char* v = std::getenv(key);
  return v == nullptr ? std::string() : std::string(v);
}

// Times the whole binary under an obs::ScopedTimer (so the wall-clock the
// bench prints and the `bench.<name>` span in a trace agree by
// construction) and, mirroring the CLI's global flags, honors
//
//   MECSCHED_TRACE_OUT=trace.json   write a Chrome trace of the run
//   MECSCHED_METRICS_OUT=m.prom     write the registry as Prometheus text
//   MECSCHED_OBS_SUMMARY=1          print the metric summary table
//
// Declare one at the top of main(); everything happens on destruction.
class ObsSession {
 public:
  explicit ObsSession(std::string name) : name_(std::move(name)) {
    trace_path_ = env_or_empty("MECSCHED_TRACE_OUT");
    metrics_path_ = env_or_empty("MECSCHED_METRICS_OUT");
    summary_ = !env_or_empty("MECSCHED_OBS_SUMMARY").empty();
    if (!trace_path_.empty()) obs::Tracer::global().enable();
    timer_.emplace("bench." + name_, "bench");
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  ~ObsSession() {
    std::cout << "wall: " << timer_->elapsed_s() << " s\n";
    timer_.reset();  // close the span so it lands in the trace + registry
    if (!trace_path_.empty()) {
      obs::write_chrome_trace(obs::Tracer::global(), trace_path_);
      obs::Tracer::global().disable();
      std::cout << "trace: " << trace_path_ << '\n';
    }
    if (!metrics_path_.empty()) {
      obs::write_prometheus(obs::Registry::global(), metrics_path_);
      std::cout << "metrics: " << metrics_path_ << '\n';
    }
    if (summary_) std::cout << obs::summary_table(obs::Registry::global());
  }

 private:
  std::string name_;
  std::string trace_path_;
  std::string metrics_path_;
  bool summary_ = false;
  std::optional<obs::ScopedTimer> timer_;
};

// Prints a PASS/FAIL line for one expected qualitative relationship. The
// binaries exit non-zero if any expectation fails, so `for b in
// build/bench/*; do $b; done` doubles as a reproduction check.
class ShapeChecker {
 public:
  void expect(bool condition, const std::string& description) {
    std::cout << (condition ? "  [shape OK]   " : "  [shape FAIL] ")
              << description << '\n';
    ok_ = ok_ && condition;
  }

  int exit_code() const { return ok_ ? EXIT_SUCCESS : EXIT_FAILURE; }

 private:
  bool ok_ = true;
};

}  // namespace mecsched::bench
