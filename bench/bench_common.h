// Shared scaffolding for the figure-reproduction binaries.
//
// Each binary regenerates one table/figure of the paper's Sec. V: it
// sweeps the figure's x-axis, runs every algorithm the figure compares
// (averaging over a few seeds), prints the series as a fixed-width table,
// and appends the qualitative "shape" the paper reports so the output is
// self-checking.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "metrics/series.h"

namespace mecsched::bench {

// Default experiment scale mirroring Sec. V.A: 50 devices, 5 base
// stations; 3 seeds per cell for smoothing.
inline constexpr std::size_t kDevices = 50;
inline constexpr std::size_t kStations = 5;
inline constexpr std::size_t kRepetitions = 3;

inline void print_header(const std::string& figure, const std::string& title,
                         const std::string& setup) {
  std::cout << "==============================================================\n"
            << figure << " — " << title << "\n"
            << "setup: " << setup << "\n"
            << "==============================================================\n";
}

inline void print_table(const metrics::SeriesCollector& series,
                        int precision = 3) {
  std::cout << series.to_table(precision) << std::flush;
}

// When MECSCHED_CSV_DIR is set, also dump the series as
// $MECSCHED_CSV_DIR/<figure>.csv so the plots can be regenerated
// externally; otherwise a no-op.
inline void maybe_write_csv(const metrics::SeriesCollector& series,
                            const std::string& figure) {
  const char* dir = std::getenv("MECSCHED_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/" + figure + ".csv";
  series.write_csv(path);
  std::cout << "csv: " << path << '\n';
}

// Prints a PASS/FAIL line for one expected qualitative relationship. The
// binaries exit non-zero if any expectation fails, so `for b in
// build/bench/*; do $b; done` doubles as a reproduction check.
class ShapeChecker {
 public:
  void expect(bool condition, const std::string& description) {
    std::cout << (condition ? "  [shape OK]   " : "  [shape FAIL] ")
              << description << '\n';
    ok_ = ok_ && condition;
  }

  int exit_code() const { return ok_ ? EXIT_SUCCESS : EXIT_FAILURE; }

 private:
  bool ok_ = true;
};

}  // namespace mecsched::bench
