// Shared sweep driver for the holistic-task figures (Figs. 2-4): runs a
// list of assigners over scenario configs produced per sweep point,
// averaging a chosen metric over seeds into a SeriesCollector.
//
// The (x, repetition) grid fans out over exec::SweepRunner, so `MECSCHED_JOBS=N`
// (or exec::ThreadPool::set_default_jobs) parallelizes any figure binary.
// Cells are pure functions of (x, rep) and results are folded into the
// collector in grid order, so the output is identical for every job count.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "assign/assigner.h"
#include "assign/baselines.h"
#include "assign/evaluator.h"
#include "assign/hgos.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "bench/bench_common.h"
#include "exec/sweep_runner.h"
#include "metrics/series.h"
#include "workload/scenario.h"

namespace mecsched::bench {

inline std::vector<std::unique_ptr<assign::Assigner>> standard_algorithms() {
  std::vector<std::unique_ptr<assign::Assigner>> out;
  out.push_back(std::make_unique<assign::LpHta>());
  out.push_back(std::make_unique<assign::Hgos>());
  out.push_back(std::make_unique<assign::AllToCloud>());
  out.push_back(std::make_unique<assign::AllOffload>());
  return out;
}

inline std::vector<std::string> algorithm_names(
    const std::vector<std::unique_ptr<assign::Assigner>>& algorithms) {
  std::vector<std::string> names;
  names.reserve(algorithms.size());
  for (const auto& a : algorithms) names.push_back(a->name());
  return names;
}

// For each x in `xs`, builds `kRepetitions` scenarios via `config_at(x,
// seed)`, runs every algorithm, and stores `metric(metrics)` under the
// algorithm's name. Cells run on the sweep thread pool; per-cell results
// land in the collector in (x, rep, algorithm) order regardless of the
// thread schedule, so the table is byte-identical at every --jobs count.
inline void run_holistic_sweep(
    const std::vector<double>& xs,
    const std::function<workload::ScenarioConfig(double x, std::uint64_t seed)>&
        config_at,
    const std::vector<std::unique_ptr<assign::Assigner>>& algorithms,
    const std::function<double(const assign::Metrics&)>& metric,
    metrics::SeriesCollector& out,
    const exec::SweepOptions& sweep_options = {}) {
  using CellResult = std::vector<std::pair<std::string, double>>;
  const std::size_t cells = xs.size() * kRepetitions;
  exec::SweepRunner runner(sweep_options);
  const std::vector<CellResult> results = runner.run<CellResult>(
      cells, [&](exec::CellContext& ctx) {
        const double x = xs[ctx.index() / kRepetitions];
        const std::uint64_t rep = ctx.index() % kRepetitions;
        const workload::Scenario scenario =
            workload::make_scenario(config_at(x, rep + 1));
        const assign::HtaInstance instance(scenario.topology, scenario.tasks);
        CellResult cell;
        cell.reserve(algorithms.size());
        for (const auto& algorithm : algorithms) {
          const assign::Assignment a = algorithm->assign(instance);
          cell.emplace_back(algorithm->name(),
                            metric(assign::evaluate(instance, a)));
        }
        return cell;
      });
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double x = xs[i / kRepetitions];
    for (const auto& [name, value] : results[i]) out.add(x, name, value);
  }
}

}  // namespace mecsched::bench
