// Shared sweep driver for the holistic-task figures (Figs. 2-4): runs a
// list of assigners over scenario configs produced per sweep point,
// averaging a chosen metric over seeds into a SeriesCollector.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "assign/assigner.h"
#include "assign/baselines.h"
#include "assign/evaluator.h"
#include "assign/hgos.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "bench/bench_common.h"
#include "metrics/series.h"
#include "workload/scenario.h"

namespace mecsched::bench {

inline std::vector<std::unique_ptr<assign::Assigner>> standard_algorithms() {
  std::vector<std::unique_ptr<assign::Assigner>> out;
  out.push_back(std::make_unique<assign::LpHta>());
  out.push_back(std::make_unique<assign::Hgos>());
  out.push_back(std::make_unique<assign::AllToCloud>());
  out.push_back(std::make_unique<assign::AllOffload>());
  return out;
}

inline std::vector<std::string> algorithm_names(
    const std::vector<std::unique_ptr<assign::Assigner>>& algorithms) {
  std::vector<std::string> names;
  names.reserve(algorithms.size());
  for (const auto& a : algorithms) names.push_back(a->name());
  return names;
}

// For each x in `xs`, builds `kRepetitions` scenarios via `config_at(x,
// seed)`, runs every algorithm, and stores `metric(metrics)` under the
// algorithm's name.
inline void run_holistic_sweep(
    const std::vector<double>& xs,
    const std::function<workload::ScenarioConfig(double x, std::uint64_t seed)>&
        config_at,
    const std::vector<std::unique_ptr<assign::Assigner>>& algorithms,
    const std::function<double(const assign::Metrics&)>& metric,
    metrics::SeriesCollector& out) {
  for (double x : xs) {
    for (std::uint64_t rep = 0; rep < kRepetitions; ++rep) {
      const workload::Scenario scenario =
          workload::make_scenario(config_at(x, rep + 1));
      const assign::HtaInstance instance(scenario.topology, scenario.tasks);
      for (const auto& algorithm : algorithms) {
        const assign::Assignment a = algorithm->assign(instance);
        out.add(x, algorithm->name(), metric(assign::evaluate(instance, a)));
      }
    }
  }
}

}  // namespace mecsched::bench
