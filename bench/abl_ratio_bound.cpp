// Ablation — empirical approximation ratio of LP-HTA against the exact ILP
// optimum (Theorem 2 / Corollary 1). Small instances so branch-and-bound
// can prove optimality; reports the measured ratio next to the
// instance-specific bound 3 + Δ/E_LP.
#include <iostream>

#include "assign/evaluator.h"
#include "assign/exact.h"
#include "assign/lp_hta.h"
#include "bench/bench_common.h"
#include "metrics/series.h"
#include "workload/scenario.h"

int main() {
  const mecsched::bench::ObsSession obs_session("abl_ratio_bound");
  using namespace mecsched;
  bench::print_header("Ablation", "LP-HTA empirical ratio vs exact optimum",
                      "8 devices, 2 stations, tasks 8..24, 5 seeds/cell; "
                      "ratio = LP-HTA energy / ILP optimum");

  metrics::SeriesCollector series(
      "tasks", {"empirical-ratio", "theorem2-bound", "lemma1-rounded-ratio"});

  std::size_t comparable = 0, skipped = 0;
  for (double x = 8; x <= 24; x += 4) {
    for (std::uint64_t rep = 1; rep <= 5; ++rep) {
      workload::ScenarioConfig cfg;
      cfg.num_devices = 8;
      cfg.num_base_stations = 2;
      cfg.num_tasks = static_cast<std::size_t>(x);
      cfg.seed = rep * 997 + static_cast<std::uint64_t>(x);
      const auto s = workload::make_scenario(cfg);
      const assign::HtaInstance inst(s.topology, s.tasks);

      assign::LpHtaReport report;
      const auto a = assign::LpHta().assign_with_report(inst, report);
      const auto opt = assign::ExactHta().solve(inst);
      if (!opt.proven_optimal ||
          a.cancelled() != opt.assignment.cancelled() || opt.energy <= 0.0) {
        ++skipped;
        continue;  // only compare like against like
      }
      ++comparable;
      const double lp_energy = assign::evaluate(inst, a).total_energy_j;
      series.add(x, "empirical-ratio", lp_energy / opt.energy);
      series.add(x, "theorem2-bound", report.theorem2_bound());
      series.add(x, "lemma1-rounded-ratio",
                 report.rounded_energy / report.lp_objective);
    }
  }

  bench::print_table(series, 4);
  bench::maybe_write_csv(series, "abl_ratio_bound");
  std::cout << "comparable instances: " << comparable
            << ", skipped (cancellation mismatch / unproven): " << skipped
            << "\n";

  bench::ShapeChecker check;
  bool all_within = true, all_lemma = true, any = false;
  for (double x : series.xs()) {
    const double ratio = series.mean(x, "empirical-ratio");
    const double bound = series.mean(x, "theorem2-bound");
    const double lemma = series.mean(x, "lemma1-rounded-ratio");
    if (ratio != ratio) continue;  // NaN: no comparable instance at x
    any = true;
    all_within = all_within && ratio <= bound + 1e-9;
    all_within = all_within && ratio >= 1.0 - 1e-9;
    all_lemma = all_lemma && lemma <= 3.0 + 1e-9;
  }
  check.expect(any, "at least one comparable instance existed");
  check.expect(all_within,
               "measured ratio within [1, 3 + delta/E_LP] (Theorem 2)");
  check.expect(all_lemma, "rounded energy within 3x of the LP optimum "
                          "(Lemma 1)");
  return check.exit_code();
}
