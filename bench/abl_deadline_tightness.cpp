// Ablation — deadline tightness sweep. The paper never quantifies T_ij;
// this bench shows how LP-HTA's unsatisfied rate, cancellations and
// repair-migration energy growth Δ respond as deadlines tighten from
// generous (slack 3x the best latency) to impossible (slack < 1).
#include <iostream>

#include "assign/evaluator.h"
#include "assign/lp_hta.h"
#include "bench/bench_common.h"
#include "metrics/series.h"
#include "workload/scenario.h"

int main() {
  const mecsched::bench::ObsSession obs_session("abl_deadline_tightness");
  using namespace mecsched;
  bench::print_header("Ablation", "deadline tightness vs LP-HTA behaviour",
                      "slack multiplier 0.8..3.0 on the best placement "
                      "latency; 200 tasks, 50 devices, 5 stations");

  metrics::SeriesCollector series(
      "slack x100", {"unsatisfied-rate", "cancelled", "delta-J", "energy-J"});

  for (double slack : {0.8, 1.0, 1.2, 1.6, 2.0, 3.0}) {
    for (std::uint64_t rep = 1; rep <= bench::kRepetitions; ++rep) {
      workload::ScenarioConfig cfg;
      cfg.num_devices = bench::kDevices;
      cfg.num_base_stations = bench::kStations;
      cfg.num_tasks = 200;
      cfg.deadline_slack_min = slack * 0.9;
      cfg.deadline_slack_max = slack * 1.1;
      cfg.seed = rep * 389 + static_cast<std::uint64_t>(slack * 100);
      const auto s = workload::make_scenario(cfg);
      const assign::HtaInstance inst(s.topology, s.tasks);

      assign::LpHtaReport report;
      const auto a = assign::LpHta().assign_with_report(inst, report);
      const auto m = assign::evaluate(inst, a);
      const double x = slack * 100;
      series.add(x, "unsatisfied-rate", m.unsatisfied_rate());
      series.add(x, "cancelled", static_cast<double>(m.cancelled));
      series.add(x, "delta-J", std::max(0.0, report.delta()));
      series.add(x, "energy-J", m.total_energy_j);
    }
  }

  bench::print_table(series, 3);
  bench::maybe_write_csv(series, "abl_deadline_tightness");

  bench::ShapeChecker check;
  check.expect(series.mean(80, "cancelled") > series.mean(300, "cancelled"),
               "sub-unit slack forces cancellations; generous slack does not");
  check.expect(series.mean(300, "unsatisfied-rate") < 0.05,
               "generous deadlines are nearly all satisfiable");
  check.expect(series.mean(120, "unsatisfied-rate") <=
                   series.mean(100, "unsatisfied-rate") + 1e-9,
               "unsatisfied rate is monotone in slack (tighter is worse)");
  return check.exit_code();
}
