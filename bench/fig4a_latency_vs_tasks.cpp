// Fig. 4(a) — average latency vs number of tasks (100 → 450), max input
// 3000 kB. Series: LP-HTA, HGOS, AllToC, AllOffload.
//
// Paper's reported shape: AllToC's latency dwarfs everything (250 ms WAN
// per task plus slow pipes); LP-HTA is the lowest, below HGOS.
#include <iostream>

#include "bench/bench_common.h"
#include "bench/holistic_sweep.h"

int main() {
  const mecsched::bench::ObsSession obs_session("fig4a_latency_vs_tasks");
  using namespace mecsched;
  bench::print_header("Fig. 4(a)", "average latency vs number of tasks",
                      "tasks 100..450, max input 3000 kB, 50 devices, "
                      "5 stations, 3 seeds/cell");

  const auto algorithms = bench::standard_algorithms();
  metrics::SeriesCollector series("tasks",
                                  bench::algorithm_names(algorithms));
  std::vector<double> xs;
  for (double t = 100; t <= 450; t += 50) xs.push_back(t);

  bench::run_holistic_sweep(
      xs,
      [](double x, std::uint64_t seed) {
        workload::ScenarioConfig cfg;
        cfg.num_devices = bench::kDevices;
        cfg.num_base_stations = bench::kStations;
        cfg.num_tasks = static_cast<std::size_t>(x);
        cfg.max_input_kb = 3000.0;
        cfg.seed = seed * 1000 + static_cast<std::uint64_t>(x);
        return cfg;
      },
      algorithms,
      [](const assign::Metrics& m) { return m.mean_latency_s; }, series);

  std::cout << "average latency (s):\n";
  bench::print_table(series, 3);
  bench::maybe_write_csv(series, "fig4a_latency_vs_tasks");

  bench::ShapeChecker check;
  const auto at = [&](double x, const char* s) { return series.mean(x, s); };
  check.expect(at(450, "AllToC") > at(450, "LP-HTA"),
               "AllToC latency above LP-HTA");
  check.expect(at(450, "AllOffload") > at(450, "LP-HTA"),
               "AllOffload latency above LP-HTA");
  check.expect(at(450, "LP-HTA") <= at(450, "HGOS") + 1e-9,
               "LP-HTA latency at or below HGOS");
  return check.exit_code();
}
