// Ablation — resilience under churn. Sweeps churn intensity (device MTBF,
// with correlated cell outages and link fading riding along) and compares
// the resilient rolling-horizon controller against replaying a one-shot
// clairvoyant LP-HTA plan through the same fault schedule. The controller
// should convert a slice of the replay's losses into retries, DTA rescues
// and fallback-rung service.
#include <iostream>
#include <utility>
#include <vector>

#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "bench/bench_common.h"
#include "control/resilient.h"
#include "exec/sweep_runner.h"
#include "metrics/series.h"
#include "sim/simulator.h"
#include "workload/arrivals.h"
#include "workload/faults.h"

int main() {
  const mecsched::bench::ObsSession obs_session("abl_churn");
  using namespace mecsched;
  bench::print_header(
      "Ablation", "resilient controller vs one-shot replay under churn",
      "120 Poisson-timed tasks, 50 devices, 5 stations; x = device MTBF "
      "(lower = harsher), correlated cell outages + link fading enabled");

  metrics::SeriesCollector series(
      "mtbf-s", {"resilient-unsat-rate", "replay-unsat-rate", "retries",
                 "rescued-by-dta", "rung-lp-hta", "rung-fallback"});

  // One cell per (mtbf, repetition); cells fan out over the sweep pool
  // (MECSCHED_JOBS) and fold back into the collector in grid order.
  const std::vector<double> xs = {40.0, 20.0, 10.0, 5.0};
  struct CellResult {
    bool rungs_cover_epochs = true;
    std::vector<std::pair<const char*, double>> values;
  };
  exec::SweepRunner runner;
  const std::vector<CellResult> cells = runner.run<CellResult>(
      xs.size() * bench::kRepetitions, [&](exec::CellContext& ctx) {
      const double x = xs[ctx.index() / bench::kRepetitions];
      const std::uint64_t rep = ctx.index() % bench::kRepetitions + 1;
      workload::ArrivalConfig arrivals;
      arrivals.scenario.num_tasks = 120;
      arrivals.scenario.num_devices = bench::kDevices;
      arrivals.scenario.num_base_stations = bench::kStations;
      arrivals.scenario.seed = rep * 977 + static_cast<std::uint64_t>(x);
      const workload::TimedScenario s = workload::make_timed_scenario(arrivals);

      workload::FaultModelConfig fm;
      fm.horizon_s = 60.0;
      fm.device_mtbf_s = x;
      fm.device_mttr_s = 3.0;
      fm.station_outage_rate_per_s = 0.01;
      fm.station_outage_duration_s = 4.0;
      fm.correlated_device_prob = 0.5;
      fm.link_fade_rate_per_s = 0.05;
      fm.seed = arrivals.scenario.seed + 1;
      const sim::FaultSchedule faults =
          workload::make_fault_schedule(fm, s.topology);

      // Every external-data task doubles as a divisible one: a single item
      // held by its owner plus one replica, so the controller can re-divide
      // when the owner dies.
      control::SharedDataView shared;
      shared.ownership.resize(s.topology.num_devices());
      shared.task_items.resize(s.tasks.size());
      for (std::size_t t = 0; t < s.tasks.size(); ++t) {
        const mec::Task& task = s.tasks[t].task;
        if (task.external_bytes <= 0.0) continue;
        const std::size_t item = shared.item_bytes.size();
        shared.item_bytes.push_back(task.external_bytes);
        const std::size_t owner = task.external_owner;
        const std::size_t replica = (owner + 7) % s.topology.num_devices();
        shared.ownership[owner].push_back(item);
        if (replica != owner) shared.ownership[replica].push_back(item);
        shared.task_items[t].push_back(item);
      }

      control::ResilientOptions opts;
      opts.max_attempts = 4;
      const control::ResilientResult r = control::ResilientController(opts).run(
          s.topology, s.tasks, faults, &shared);
      CellResult cell;
      cell.rungs_cover_epochs = r.rungs.total() <= r.epochs;

      // One-shot replay: clairvoyant LP-HTA plan, then the same faults.
      std::vector<mec::Task> tasks;
      sim::SimOptions replay_opts;
      replay_opts.faults = faults;
      for (const assign::TimedTask& tt : s.tasks) {
        tasks.push_back(tt.task);
        replay_opts.release_times.push_back(tt.release_s);
      }
      const assign::HtaInstance inst(s.topology, tasks);
      const assign::Assignment plan = assign::LpHta().assign(inst);
      const sim::SimResult replay = sim::simulate(inst, plan, replay_opts);
      std::size_t replay_unsat = 0;
      for (std::size_t t = 0; t < tasks.size(); ++t) {
        const sim::TaskTimeline& tl = replay.timelines[t];
        const bool missed =
            !tl.placed || tl.failed ||
            tl.latency_s() > tasks[t].deadline_s + 1e-9;
        if (missed) ++replay_unsat;
      }

      cell.values.emplace_back("resilient-unsat-rate", r.unsatisfied_rate());
      cell.values.emplace_back("replay-unsat-rate",
                               static_cast<double>(replay_unsat) /
                                   static_cast<double>(tasks.size()));
      cell.values.emplace_back("retries", static_cast<double>(r.retries));
      cell.values.emplace_back("rescued-by-dta",
                               static_cast<double>(r.rescued_by_dta));
      cell.values.emplace_back(
          "rung-lp-hta",
          static_cast<double>(r.rungs.at(control::FallbackRung::kLpHta)));
      cell.values.emplace_back(
          "rung-fallback",
          static_cast<double>(r.rungs.at(control::FallbackRung::kHgos) +
                              r.rungs.at(control::FallbackRung::kLocalFirst)));
      return cell;
      });

  bool rungs_cover_epochs = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double x = xs[i / bench::kRepetitions];
    rungs_cover_epochs = rungs_cover_epochs && cells[i].rungs_cover_epochs;
    for (const auto& [name, value] : cells[i].values) series.add(x, name, value);
  }

  bench::print_table(series, 3);
  bench::maybe_write_csv(series, "abl_churn");

  bench::ShapeChecker check;
  const auto at = [&](double x, const char* s) { return series.mean(x, s); };

  // Trajectory-gated telemetry: the harsh-churn endpoint the ablation
  // argues from (deterministic — fixed seeds and fault schedules).
  bench::BenchTelemetry& telemetry = obs_session.telemetry();
  telemetry.set_value("resilient_unsat_at_mtbf5", at(5, "resilient-unsat-rate"));
  telemetry.set_value("replay_unsat_at_mtbf5", at(5, "replay-unsat-rate"));
  telemetry.set_value("unsat_improvement_at_mtbf5",
                      at(5, "replay-unsat-rate") -
                          at(5, "resilient-unsat-rate"));
  telemetry.set_value("retries_at_mtbf5", at(5, "retries"));

  check.expect(rungs_cover_epochs,
               "the rung histogram never exceeds the epoch count");
  check.expect(at(5, "replay-unsat-rate") > 0.0,
               "a one-shot plan loses tasks under heavy churn");
  check.expect(
      at(5, "resilient-unsat-rate") <= at(5, "replay-unsat-rate") + 1e-9,
      "the resilient controller beats replaying the one-shot plan at "
      "MTBF = 5 s");
  check.expect(
      at(10, "resilient-unsat-rate") <= at(10, "replay-unsat-rate") + 1e-9,
      "the resilient controller beats replaying the one-shot plan at "
      "MTBF = 10 s");
  check.expect(at(5, "retries") > 0.0,
               "heavy churn forces re-admissions");
  return check.exit_code();
}
