// Ablation — the price of integrality: LP-HTA's binary device/edge/cloud
// decisions vs the fluid partial-offloading lower bound ([25]/[26] family),
// per-task latency averaged over the workload.
#include <iostream>

#include "assign/evaluator.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "assign/partial.h"
#include "bench/bench_common.h"
#include "metrics/series.h"
#include "workload/scenario.h"

int main() {
  const mecsched::bench::ObsSession obs_session("abl_partial_offloading");
  using namespace mecsched;
  bench::print_header("Ablation", "binary LP-HTA vs fluid partial offloading",
                      "input 1000..5000 kB, 100 tasks; fluid = per-task "
                      "latency-optimal split, no capacity coupling");

  metrics::SeriesCollector series(
      "max input (kB)",
      {"LP-HTA-latency", "fluid-latency", "binary/fluid", "mean-theta"});

  for (double kb = 1000; kb <= 5000; kb += 1000) {
    for (std::uint64_t rep = 1; rep <= bench::kRepetitions; ++rep) {
      workload::ScenarioConfig cfg;
      cfg.num_devices = bench::kDevices;
      cfg.num_base_stations = bench::kStations;
      cfg.num_tasks = 100;
      cfg.max_input_kb = kb;
      cfg.seed = rep * 829 + static_cast<std::uint64_t>(kb);
      const auto s = workload::make_scenario(cfg);
      const assign::HtaInstance inst(s.topology, s.tasks);

      const auto lp = assign::evaluate(inst, assign::LpHta().assign(inst));
      const assign::PartialOffloadResult fluid = assign::run_partial(inst);

      double theta_sum = 0.0;
      for (const auto& d : fluid.decisions) theta_sum += d.theta;
      series.add(kb, "LP-HTA-latency", lp.mean_latency_s);
      series.add(kb, "fluid-latency", fluid.mean_latency_s);
      series.add(kb, "binary/fluid",
                 lp.mean_latency_s / std::max(fluid.mean_latency_s, 1e-12));
      series.add(kb, "mean-theta",
                 theta_sum / static_cast<double>(fluid.decisions.size()));
    }
  }

  bench::print_table(series, 3);
  bench::maybe_write_csv(series, "abl_partial_offloading");

  bench::ShapeChecker check;
  const auto at = [&](double x, const char* s) { return series.mean(x, s); };
  bool fluid_never_slower = true;
  for (double kb : series.xs()) {
    fluid_never_slower =
        fluid_never_slower &&
        at(kb, "fluid-latency") <= at(kb, "LP-HTA-latency") + 1e-9;
  }
  check.expect(fluid_never_slower,
               "the fluid bound is never slower than binary decisions");
  check.expect(at(5000, "binary/fluid") < 3.0,
               "integrality costs less than 3x latency");
  check.expect(at(1000, "mean-theta") > 0.2,
               "devices keep a meaningful share of the work");
  return check.exit_code();
}
