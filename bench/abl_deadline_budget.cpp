// Ablation — deadline-budgeted solving. Sweeps the per-decision budget and
// measures how far each solve runs past it: the anytime contract promises
// the pipeline stops within roughly one iteration of the deadline, so the
// observed overrun must stay bounded (a generous CI slack, not a tight
// latency SLO) while every returned plan stays well-formed and feasible.
// x = budget in ms (0 = unlimited).
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <vector>

#include "assign/evaluator.h"
#include "assign/exact.h"
#include "assign/hta_instance.h"
#include "bench/bench_common.h"
#include "common/deadline.h"
#include "control/fallback.h"
#include "metrics/series.h"
#include "workload/scenario.h"

namespace {

double elapsed_ms_since(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double, std::milli> dt =
      std::chrono::steady_clock::now() - start;
  return dt.count();
}

}  // namespace

int main() {
  const mecsched::bench::ObsSession obs_session("abl_deadline_budget");
  using namespace mecsched;
  bench::print_header(
      "Ablation", "anytime degradation under a per-decision budget",
      "600-task fallback-chain decisions and 40-task exact (B&B) solves "
      "under budgets of 0 (unlimited), 100, 10 and 1 ms; overrun = "
      "max(0, elapsed - budget)");

  // Generous slack: the contract is "at most one iteration's work past the
  // deadline", and on CI machines one pivot / one greedy rung plus
  // scheduling jitter comfortably fits in this envelope.
  constexpr double kOverrunSlackMs = 250.0;

  metrics::SeriesCollector series(
      "budget-ms", {"chain-elapsed-ms", "chain-overrun-ms",
                    "rung-lp-hta-share", "exact-overrun-ms", "feasible"});

  const std::vector<double> budgets = {0.0, 100.0, 10.0, 1.0};
  bool all_feasible = true;
  bool all_sized = true;
  double max_chain_overrun = 0.0;
  double max_exact_overrun = 0.0;

  // Timed serially on purpose: the point is the per-solve overrun, and
  // parallel cells would fold scheduler contention into the measurement.
  const control::FallbackChain chain;
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    const double budget_ms = budgets[b];
    for (std::size_t rep = 1; rep <= bench::kRepetitions; ++rep) {
      workload::ScenarioConfig cfg;
      cfg.num_tasks = 600;
      cfg.num_devices = bench::kDevices;
      cfg.num_base_stations = bench::kStations;
      cfg.seed = rep * 7919 + b;
      const workload::Scenario scenario = workload::make_scenario(cfg);
      const assign::HtaInstance instance(scenario.topology, scenario.tasks);

      const CancellationToken token =
          budget_ms > 0.0 ? CancellationToken(Deadline::after_ms(budget_ms))
                          : CancellationToken();
      control::FallbackRung rung = control::FallbackRung::kLpHta;
      const auto start = std::chrono::steady_clock::now();
      const assign::Assignment plan = chain.assign(instance, rung, token);
      const double elapsed = elapsed_ms_since(start);
      const double overrun =
          budget_ms > 0.0 ? std::max(0.0, elapsed - budget_ms) : 0.0;
      max_chain_overrun = std::max(max_chain_overrun, overrun);

      all_sized = all_sized && plan.size() == instance.num_tasks();
      const bool feasible = assign::check_feasibility(instance, plan).ok;
      all_feasible = all_feasible && feasible;

      series.add(budget_ms, "chain-elapsed-ms", elapsed);
      series.add(budget_ms, "chain-overrun-ms", overrun);
      series.add(budget_ms, "rung-lp-hta-share",
                 rung == control::FallbackRung::kLpHta ? 1.0 : 0.0);
      series.add(budget_ms, "feasible", feasible ? 1.0 : 0.0);

      // The exact (branch-and-bound) entry point under the same budget.
      // Unlimited exact solves at this scale are not the point here, so the
      // x = 0 row records a zero instead of a multi-second ILP run.
      double exact_overrun = 0.0;
      if (budget_ms > 0.0) {
        workload::ScenarioConfig exact_cfg = cfg;
        exact_cfg.num_tasks = 40;
        const workload::Scenario exact_scenario =
            workload::make_scenario(exact_cfg);
        const assign::HtaInstance exact_instance(exact_scenario.topology,
                                                 exact_scenario.tasks);
        const CancellationToken exact_token(Deadline::after_ms(budget_ms));
        const auto exact_start = std::chrono::steady_clock::now();
        const assign::Assignment exact_plan =
            assign::ExactHta().assign(exact_instance, exact_token);
        const double exact_elapsed = elapsed_ms_since(exact_start);
        exact_overrun = std::max(0.0, exact_elapsed - budget_ms);
        max_exact_overrun = std::max(max_exact_overrun, exact_overrun);
        all_sized = all_sized && exact_plan.size() == exact_instance.num_tasks();
      }
      series.add(budget_ms, "exact-overrun-ms", exact_overrun);
    }
  }

  bench::print_table(series, 3);
  bench::maybe_write_csv(series, "abl_deadline_budget");

  bench::ShapeChecker check;
  check.expect(all_sized, "every budgeted solve returns a full-size plan");
  check.expect(all_feasible,
               "every degraded plan passes the feasibility audit (C1-C3)");
  check.expect(max_chain_overrun <= kOverrunSlackMs,
               "no fallback-chain decision overruns its budget by more than "
               "one iteration's work (+ CI slack)");
  check.expect(max_exact_overrun <= kOverrunSlackMs,
               "no exact (B&B) solve overruns its budget by more than one "
               "iteration's work (+ CI slack)");
  check.expect(series.mean(0.0, "rung-lp-hta-share") >= 0.99,
               "with an unlimited budget the chain is served by LP-HTA");
  return check.exit_code();
}
