// LP kernel microbenchmark — solver kernel paths on the Fig. 2(a)
// 200-task cell (50 devices, 5 stations, max input 3000 kB).
//
// Times three kernel comparisons:
//   - interior point (LP-HTA end to end): dense normal equations vs CSR
//     assembly + cached symbolic Cholesky (docs/lp-kernels.md),
//   - simplex pricing (LP-HTA end to end): dense column scans vs CSC
//     sparse pricing (bit-identical pivot sequence by construction, so
//     the timing is the only delta),
//   - simplex basis kernel: the historical explicit dense inverse
//     (BasisKernel::kDenseInverse, O(m²)/pivot) vs the sparse LU +
//     eta-file kernel (BasisKernel::kEtaLu, O(nnz)/pivot).
//
// The basis-kernel headline is measured on the cell's *monolithic* P2
// relaxation — the per-station cluster LPs of build_cluster_lp merged
// block-diagonally into one problem (the formulation the paper actually
// states; the per-station decomposition is a solver-side optimization).
// The decomposed cluster LPs are only ~50 rows each, small enough that a
// vectorized dense m² update keeps pace with sparse ops, so the kernel
// asymptotics only show at the undecomposed cell scale (m in the
// hundreds). End-to-end LP-HTA is still timed with both kernels below,
// and *identical assignments* across every kernel pair are asserted here,
// not just in the unit tests, so a kernel regression that changes results
// fails the bench before any timing is read.
//
// Emits BENCH_lp_kernels.json (override with MECSCHED_BENCH_OUT) in the
// unified mecsched.bench.v1 schema for the CI kernel-bench step, which
// gates the speedups against bench/baselines/lp_kernels.json via
// tools/bench/trajectory.py.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <vector>

#include "assign/cluster_lp.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "bench/bench_common.h"
#include "lp/problem.h"
#include "lp/simplex.h"
#include "lp/sparse_cholesky.h"
#include "obs/registry.h"
#include "workload/scenario.h"

namespace {

using mecsched::assign::Assignment;
using mecsched::assign::HtaInstance;
using mecsched::assign::LpEngine;
using mecsched::assign::LpHta;
using mecsched::assign::LpHtaOptions;

constexpr std::size_t kTasks = 200;
constexpr int kTimedRuns = 5;

struct Timed {
  Assignment assignment;
  double seconds = 0.0;    // best-of-kTimedRuns, one warmup discarded
};

// Best-of-N wall clock for one engine/kernel combination. The warmup run
// also populates the process-wide symbolic-factor cache and grows the
// per-thread simplex workspace arena, so the numbers reflect the steady
// state a sweep actually sees (analysis/allocation done once, warm
// re-entries thereafter).
Timed time_assign(const HtaInstance& instance, const LpHtaOptions& options) {
  const LpHta solver(options);
  Timed out;
  out.assignment = solver.assign(instance);  // warmup, result kept
  out.seconds = 1e300;
  for (int r = 0; r < kTimedRuns; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const Assignment a = solver.assign(instance);
    const auto t1 = std::chrono::steady_clock::now();
    if (a.decisions != out.assignment.decisions) {
      std::cerr << "FATAL: assignment changed between repeated solves\n";
      std::exit(EXIT_FAILURE);
    }
    out.seconds =
        std::min(out.seconds, std::chrono::duration<double>(t1 - t0).count());
  }
  return out;
}

LpHtaOptions with_mode(LpEngine engine, mecsched::lp::SparseMode mode) {
  LpHtaOptions options;
  options.engine = engine;
  options.sparse_mode = mode;
  return options;
}

LpHtaOptions with_basis(mecsched::lp::BasisKernel basis) {
  LpHtaOptions options;
  options.engine = LpEngine::kSimplex;
  options.basis = basis;
  return options;
}

// The cell's monolithic P2 relaxation: every per-station cluster LP of
// build_cluster_lp merged block-diagonally (disjoint variables, disjoint
// rows) into one problem. Same optimum as the sum of the cluster solves.
mecsched::lp::Problem build_cell_lp(const HtaInstance& instance,
                                    std::size_t stations) {
  mecsched::lp::Problem mono;
  for (std::size_t b = 0; b < stations; ++b) {
    const auto cluster = mecsched::assign::build_cluster_lp(instance, b);
    const mecsched::lp::Problem& p = cluster.problem;
    std::vector<std::size_t> map(p.num_variables());
    for (std::size_t v = 0; v < p.num_variables(); ++v) {
      map[v] = mono.add_variable(p.cost(v), p.lower(v), p.upper(v));
    }
    for (std::size_t r = 0; r < p.num_constraints(); ++r) {
      const auto& con = p.constraint(r);
      std::vector<mecsched::lp::Term> terms;
      terms.reserve(con.terms.size());
      for (const auto& t : con.terms) terms.push_back({map[t.var], t.coeff});
      mono.add_constraint(std::move(terms), con.relation, con.rhs);
    }
  }
  return mono;
}

struct TimedLp {
  double seconds = 0.0;
  double pivots = 0.0;
  double objective = 0.0;
};

TimedLp time_simplex(const mecsched::lp::Problem& problem,
                     mecsched::lp::BasisKernel basis) {
  mecsched::lp::SimplexOptions options;
  options.basis = basis;
  const mecsched::lp::SimplexSolver solver(options);
  mecsched::lp::Solution sol = solver.solve(problem);  // warmup
  TimedLp out;
  out.seconds = 1e300;
  for (int r = 0; r < kTimedRuns; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    sol = solver.solve(problem);
    const auto t1 = std::chrono::steady_clock::now();
    if (!sol.optimal()) {
      std::cerr << "FATAL: monolithic cell LP did not solve to optimality\n";
      std::exit(EXIT_FAILURE);
    }
    out.seconds =
        std::min(out.seconds, std::chrono::duration<double>(t1 - t0).count());
  }
  out.pivots = static_cast<double>(sol.iterations);
  out.objective = sol.objective;
  return out;
}

}  // namespace

int main() {
  const mecsched::bench::ObsSession obs_session("lp_kernels");
  using namespace mecsched;
  bench::print_header(
      "LP kernels", "sparse vs dense solver paths",
      "Fig. 2(a) cell: 200 tasks, max input 3000 kB, 50 devices, 5 stations");

  workload::ScenarioConfig cfg;
  cfg.num_devices = bench::kDevices;
  cfg.num_base_stations = bench::kStations;
  cfg.num_tasks = kTasks;
  cfg.max_input_kb = 3000.0;
  cfg.seed = 1200;  // matches fig2a's rep-1 cell at x=200
  const workload::Scenario scenario = workload::make_scenario(cfg);
  const HtaInstance instance(scenario.topology, scenario.tasks);

  const Timed ipm_dense = time_assign(
      instance, with_mode(LpEngine::kInteriorPoint, lp::SparseMode::kForceDense));
  const Timed ipm_sparse = time_assign(
      instance, with_mode(LpEngine::kInteriorPoint, lp::SparseMode::kForceSparse));
  const Timed smx_dense = time_assign(
      instance, with_mode(LpEngine::kSimplex, lp::SparseMode::kForceDense));
  const Timed smx_sparse = time_assign(
      instance, with_mode(LpEngine::kSimplex, lp::SparseMode::kForceSparse));
  // End-to-end basis-kernel arms: the decomposed per-station cluster LPs,
  // default (kAuto) pricing storage on both. These assert assignment
  // identity; the headline kernel timing is the monolithic LP below.
  const Timed smx_dense_kernel =
      time_assign(instance, with_basis(lp::BasisKernel::kDenseInverse));
  const Timed smx_lu_kernel =
      time_assign(instance, with_basis(lp::BasisKernel::kEtaLu));

  // Monolithic cell LP, one simplex solve per kernel.
  const lp::Problem cell_lp = build_cell_lp(instance, bench::kStations);
  const TimedLp cell_dense = time_simplex(cell_lp, lp::BasisKernel::kDenseInverse);
  const TimedLp cell_lu = time_simplex(cell_lp, lp::BasisKernel::kEtaLu);

  const double ipm_speedup = ipm_dense.seconds / ipm_sparse.seconds;
  const double smx_speedup = smx_dense.seconds / smx_sparse.seconds;
  const double basis_e2e_speedup =
      smx_dense_kernel.seconds / smx_lu_kernel.seconds;
  const double basis_speedup = cell_dense.seconds / cell_lu.seconds;
  const double pivots_per_second = cell_lu.pivots / cell_lu.seconds;
  const bool ipm_identical =
      ipm_dense.assignment.decisions == ipm_sparse.assignment.decisions;
  const bool smx_identical =
      smx_dense.assignment.decisions == smx_sparse.assignment.decisions;
  const bool basis_identical = smx_dense_kernel.assignment.decisions ==
                               smx_lu_kernel.assignment.decisions;
  const bool cell_objectives_agree =
      std::fabs(cell_dense.objective - cell_lu.objective) <=
      1e-6 * (1.0 + std::fabs(cell_dense.objective));

  std::cout << "engine                        dense (s)   sparse/LU (s)   speedup\n";
  std::cout.setf(std::ios::fixed);
  std::cout.precision(6);
  std::cout << "interior-point                " << ipm_dense.seconds << "    "
            << ipm_sparse.seconds << "    " << ipm_speedup << "x\n"
            << "simplex pricing               " << smx_dense.seconds << "    "
            << smx_sparse.seconds << "    " << smx_speedup << "x\n"
            << "basis kernel (cluster LPs)    " << smx_dense_kernel.seconds
            << "    " << smx_lu_kernel.seconds << "    " << basis_e2e_speedup
            << "x\n"
            << "basis kernel (cell LP)        " << cell_dense.seconds << "    "
            << cell_lu.seconds << "    " << basis_speedup << "x\n";
  std::cout << "cell LP: " << cell_lp.num_variables() << " vars, "
            << cell_lp.num_constraints() << " rows, objective "
            << cell_lu.objective << "\n";
  std::cout.precision(0);
  std::cout << "eta-LU cell pivot throughput: " << pivots_per_second
            << " pivots/s (" << cell_lu.pivots << " pivots/solve)\n";
  std::cout.precision(6);

  obs::Registry& reg = obs::Registry::global();
  std::cout << "symbolic cache: "
            << reg.counter("lp.sparse.pattern_cache_hits").value() << " hits, "
            << reg.counter("lp.sparse.pattern_cache_misses").value()
            << " misses\n";

  bench::BenchTelemetry& telemetry = obs_session.telemetry();
  telemetry.set_value("tasks", static_cast<double>(kTasks));
  telemetry.set_value("timed_runs", static_cast<double>(kTimedRuns));
  telemetry.set_value("ipm_dense_seconds", ipm_dense.seconds);
  telemetry.set_value("ipm_sparse_seconds", ipm_sparse.seconds);
  telemetry.set_value("ipm_speedup", ipm_speedup);
  telemetry.set_value("simplex_dense_seconds", smx_dense.seconds);
  telemetry.set_value("simplex_sparse_seconds", smx_sparse.seconds);
  telemetry.set_value("simplex_speedup", smx_speedup);
  telemetry.set_value("simplex_dense_kernel_seconds", smx_dense_kernel.seconds);
  telemetry.set_value("simplex_lu_kernel_seconds", smx_lu_kernel.seconds);
  telemetry.set_value("basis_kernel_e2e_speedup", basis_e2e_speedup);
  telemetry.set_value("cell_dense_kernel_seconds", cell_dense.seconds);
  telemetry.set_value("cell_lu_kernel_seconds", cell_lu.seconds);
  telemetry.set_value("basis_kernel_speedup", basis_speedup);
  telemetry.set_value("lu_pivots_per_second", pivots_per_second);
  telemetry.set_flag("assignments_identical",
                     ipm_identical && smx_identical && basis_identical &&
                         cell_objectives_agree);

  bench::ShapeChecker check;
  check.expect(ipm_identical,
               "IPM sparse and dense kernels produce identical assignments");
  check.expect(smx_identical,
               "simplex sparse and dense pricing produce identical assignments");
  check.expect(basis_identical,
               "eta-LU and dense-inverse basis kernels produce identical assignments");
  check.expect(cell_objectives_agree,
               "both basis kernels reach the same cell-LP optimum");
  check.expect(ipm_speedup >= 3.0,
               "sparse IPM is at least 3x faster than dense on the 200-task cell");
  check.expect(smx_speedup >= 0.9,
               "sparse simplex pricing does not slow the solve down");
  check.expect(basis_e2e_speedup >= 0.9,
               "eta-LU does not slow the decomposed cluster solves down");
  check.expect(basis_speedup >= 2.0,
               "eta-LU basis kernel is at least 2x faster than the dense "
               "inverse on the cell LP");
  return check.exit_code();
}
