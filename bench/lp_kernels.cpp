// LP kernel microbenchmark — sparse vs dense solver paths on the Fig. 2(a)
// 200-task cell (50 devices, 5 stations, max input 3000 kB).
//
// Times LP-HTA end to end with each kernel forced (SparseMode::kForceSparse
// vs kForceDense) for both engines:
//   - interior point: dense normal equations vs CSR assembly + cached
//     symbolic Cholesky (the tentpole speedup; docs/lp-kernels.md),
//   - simplex: dense column scans vs CSC sparse pricing (bit-identical
//     pivot sequence by construction, so the timing is the only delta).
//
// Both paths must produce *identical* assignments — that is asserted here,
// not just in the unit tests, so a kernel regression that changes results
// fails the bench before any timing is read.
//
// Emits BENCH_lp_kernels.json (override with MECSCHED_BENCH_OUT) in the
// unified mecsched.bench.v1 schema for the CI kernel-bench step, which
// gates the sparse/dense ratio against bench/baselines/lp_kernels.json via
// tools/bench/trajectory.py.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "bench/bench_common.h"
#include "lp/sparse_cholesky.h"
#include "obs/registry.h"
#include "workload/scenario.h"

namespace {

using mecsched::assign::Assignment;
using mecsched::assign::HtaInstance;
using mecsched::assign::LpEngine;
using mecsched::assign::LpHta;
using mecsched::assign::LpHtaOptions;

constexpr std::size_t kTasks = 200;
constexpr int kTimedRuns = 5;

struct Timed {
  Assignment assignment;
  double seconds = 0.0;  // best-of-kTimedRuns, one warmup discarded
};

// Best-of-N wall clock for one engine/kernel combination. The warmup run
// also populates the process-wide symbolic-factor cache, so the sparse
// numbers reflect the steady state a sweep actually sees (analysis done
// once, numeric refactorizations thereafter).
Timed time_assign(const HtaInstance& instance, LpEngine engine,
                  mecsched::lp::SparseMode mode) {
  LpHtaOptions options;
  options.engine = engine;
  options.sparse_mode = mode;
  const LpHta solver(options);

  Timed out;
  out.assignment = solver.assign(instance);  // warmup, result kept
  out.seconds = 1e300;
  for (int r = 0; r < kTimedRuns; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const Assignment a = solver.assign(instance);
    const auto t1 = std::chrono::steady_clock::now();
    if (a.decisions != out.assignment.decisions) {
      std::cerr << "FATAL: assignment changed between repeated solves\n";
      std::exit(EXIT_FAILURE);
    }
    out.seconds =
        std::min(out.seconds, std::chrono::duration<double>(t1 - t0).count());
  }
  return out;
}

}  // namespace

int main() {
  const mecsched::bench::ObsSession obs_session("lp_kernels");
  using namespace mecsched;
  bench::print_header(
      "LP kernels", "sparse vs dense solver paths",
      "Fig. 2(a) cell: 200 tasks, max input 3000 kB, 50 devices, 5 stations");

  workload::ScenarioConfig cfg;
  cfg.num_devices = bench::kDevices;
  cfg.num_base_stations = bench::kStations;
  cfg.num_tasks = kTasks;
  cfg.max_input_kb = 3000.0;
  cfg.seed = 1200;  // matches fig2a's rep-1 cell at x=200
  const workload::Scenario scenario = workload::make_scenario(cfg);
  const HtaInstance instance(scenario.topology, scenario.tasks);

  const Timed ipm_dense =
      time_assign(instance, LpEngine::kInteriorPoint, lp::SparseMode::kForceDense);
  const Timed ipm_sparse =
      time_assign(instance, LpEngine::kInteriorPoint, lp::SparseMode::kForceSparse);
  const Timed smx_dense =
      time_assign(instance, LpEngine::kSimplex, lp::SparseMode::kForceDense);
  const Timed smx_sparse =
      time_assign(instance, LpEngine::kSimplex, lp::SparseMode::kForceSparse);

  const double ipm_speedup = ipm_dense.seconds / ipm_sparse.seconds;
  const double smx_speedup = smx_dense.seconds / smx_sparse.seconds;
  const bool ipm_identical =
      ipm_dense.assignment.decisions == ipm_sparse.assignment.decisions;
  const bool smx_identical =
      smx_dense.assignment.decisions == smx_sparse.assignment.decisions;

  std::cout << "engine            dense (s)   sparse (s)   speedup\n";
  std::cout.setf(std::ios::fixed);
  std::cout.precision(6);
  std::cout << "interior-point    " << ipm_dense.seconds << "    "
            << ipm_sparse.seconds << "    " << ipm_speedup << "x\n"
            << "simplex           " << smx_dense.seconds << "    "
            << smx_sparse.seconds << "    " << smx_speedup << "x\n";

  obs::Registry& reg = obs::Registry::global();
  std::cout << "symbolic cache: "
            << reg.counter("lp.sparse.pattern_cache_hits").value() << " hits, "
            << reg.counter("lp.sparse.pattern_cache_misses").value()
            << " misses\n";

  bench::BenchTelemetry& telemetry = obs_session.telemetry();
  telemetry.set_value("tasks", static_cast<double>(kTasks));
  telemetry.set_value("timed_runs", static_cast<double>(kTimedRuns));
  telemetry.set_value("ipm_dense_seconds", ipm_dense.seconds);
  telemetry.set_value("ipm_sparse_seconds", ipm_sparse.seconds);
  telemetry.set_value("ipm_speedup", ipm_speedup);
  telemetry.set_value("simplex_dense_seconds", smx_dense.seconds);
  telemetry.set_value("simplex_sparse_seconds", smx_sparse.seconds);
  telemetry.set_value("simplex_speedup", smx_speedup);
  telemetry.set_flag("assignments_identical", ipm_identical && smx_identical);

  bench::ShapeChecker check;
  check.expect(ipm_identical,
               "IPM sparse and dense kernels produce identical assignments");
  check.expect(smx_identical,
               "simplex sparse and dense pricing produce identical assignments");
  check.expect(ipm_speedup >= 3.0,
               "sparse IPM is at least 3x faster than dense on the 200-task cell");
  check.expect(smx_speedup >= 0.9,
               "sparse simplex pricing does not slow the solve down");
  return check.exit_code();
}
