// Ablation — online (epoch-batched) LP-HTA vs the clairvoyant offline
// assignment on Poisson task streams: the price of not knowing the future,
// as a function of arrival rate.
#include <iostream>

#include "assign/evaluator.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "assign/online.h"
#include "bench/bench_common.h"
#include "metrics/series.h"
#include "workload/arrivals.h"

int main() {
  const mecsched::bench::ObsSession obs_session("abl_online_vs_offline");
  using namespace mecsched;
  bench::print_header("Ablation", "online vs offline LP-HTA",
                      "200 tasks, Poisson arrivals 5..80 /s, epoch 0.5 s, "
                      "50 devices, 5 stations");

  metrics::SeriesCollector series(
      "arrivals/s", {"offline-energy", "online-energy", "online-cancelled",
                     "mean-response-s", "epochs"});

  for (double rate : {5.0, 10.0, 20.0, 40.0, 80.0}) {
    for (std::uint64_t rep = 1; rep <= bench::kRepetitions; ++rep) {
      workload::ArrivalConfig cfg;
      cfg.scenario.num_devices = bench::kDevices;
      cfg.scenario.num_base_stations = bench::kStations;
      cfg.scenario.num_tasks = 200;
      cfg.scenario.seed = rep * 613 + static_cast<std::uint64_t>(rate);
      cfg.arrival_rate_per_s = rate;
      const auto s = workload::make_timed_scenario(cfg);

      const assign::OnlineResult online =
          assign::OnlineScheduler().run(s.topology, s.tasks);

      std::vector<mec::Task> all;
      all.reserve(s.tasks.size());
      for (const auto& t : s.tasks) all.push_back(t.task);
      const assign::HtaInstance inst(s.topology, all);
      const auto offline = assign::evaluate(inst, assign::LpHta().assign(inst));

      series.add(rate, "offline-energy", offline.total_energy_j);
      series.add(rate, "online-energy", online.total_energy_j);
      series.add(rate, "online-cancelled",
                 static_cast<double>(online.cancelled));
      series.add(rate, "mean-response-s", online.mean_response_s);
      series.add(rate, "epochs", static_cast<double>(online.epochs));
    }
  }

  bench::print_table(series, 2);
  bench::maybe_write_csv(series, "abl_online_vs_offline");

  bench::ShapeChecker check;
  const auto at = [&](double x, const char* s) { return series.mean(x, s); };
  check.expect(at(5, "online-cancelled") <= at(80, "online-cancelled") + 1e-9,
               "higher pressure cannot reduce cancellations");
  check.expect(at(5, "online-energy") < 1.6 * at(5, "offline-energy"),
               "under light load online tracks the clairvoyant plan");
  check.expect(at(80, "epochs") < at(5, "epochs"),
               "denser arrivals compress into fewer epochs");
  return check.exit_code();
}
