// Fig. 6(b) — number of involved mobile devices, DTA-Workload vs
// DTA-Number, tasks 100 → 900, max input 2000 kB.
//
// Paper's reported shape: DTA-Number involves clearly fewer devices
// (that's its objective), saving energy for the majority of devices.
#include <iostream>

#include "bench/bench_common.h"
#include "dta/pipeline.h"
#include "metrics/series.h"
#include "workload/shared_data.h"

int main() {
  const mecsched::bench::ObsSession obs_session("fig6b_dta_involved_devices");
  using namespace mecsched;
  bench::print_header("Fig. 6(b)", "involved devices (DTA-Workload vs Number)",
                      "tasks 100..900, max input 2000 kB, 50 devices, "
                      "5 stations, 3 seeds/cell");

  metrics::SeriesCollector series("tasks", {"DTA-Workload", "DTA-Number"});

  for (double t = 100; t <= 900; t += 200) {
    for (std::uint64_t rep = 1; rep <= bench::kRepetitions; ++rep) {
      workload::SharedDataConfig cfg;
      cfg.num_devices = bench::kDevices;
      cfg.num_base_stations = bench::kStations;
      cfg.num_tasks = static_cast<std::size_t>(t);
      cfg.num_items = 600;
      // Heavy replication (overlapping monitoring regions) gives the
      // set-cover strategy room to concentrate work on few devices.
      cfg.max_extra_owners = 9;
      cfg.max_input_kb = 2000.0;
      cfg.seed = rep * 1000 + static_cast<std::uint64_t>(t);
      const auto scenario = workload::make_shared_scenario(cfg);

      dta::DtaOptions opts;
      opts.scheduler = dta::PartialScheduler::kLocalGreedy;
      opts.strategy = dta::DtaStrategy::kWorkload;
      series.add(t, "DTA-Workload",
                 static_cast<double>(
                     dta::run_dta(scenario, opts).involved_devices));
      opts.strategy = dta::DtaStrategy::kNumber;
      series.add(t, "DTA-Number",
                 static_cast<double>(
                     dta::run_dta(scenario, opts).involved_devices));
    }
  }

  std::cout << "involved mobile devices:\n";
  bench::print_table(series, 1);
  bench::maybe_write_csv(series, "fig6b_dta_involved_devices");

  bench::ShapeChecker check;
  const auto at = [&](double x, const char* s) { return series.mean(x, s); };
  for (double t = 100; t <= 900; t += 200) {
    check.expect(at(t, "DTA-Number") < at(t, "DTA-Workload"),
                 "set-cover division involves fewer devices at " +
                     Table::num(t, 0) + " tasks");
  }
  return check.exit_code();
}
