// Fig. 4(b) — average latency vs maximum input data size (1000 → 5000 kB),
// 100 tasks. Series: LP-HTA, HGOS, AllToC, AllOffload.
//
// Paper's reported shape: LP-HTA remains the smallest; its margin over
// HGOS narrows as data volume pushes tasks off the devices.
#include <iostream>

#include "bench/bench_common.h"
#include "bench/holistic_sweep.h"

int main() {
  const mecsched::bench::ObsSession obs_session("fig4b_latency_vs_datasize");
  using namespace mecsched;
  bench::print_header("Fig. 4(b)", "average latency vs max input data size",
                      "input 1000..5000 kB, 100 tasks, 50 devices, "
                      "5 stations, 3 seeds/cell");

  const auto algorithms = bench::standard_algorithms();
  metrics::SeriesCollector series("max input (kB)",
                                  bench::algorithm_names(algorithms));
  std::vector<double> xs;
  for (double kb = 1000; kb <= 5000; kb += 1000) xs.push_back(kb);

  bench::run_holistic_sweep(
      xs,
      [](double x, std::uint64_t seed) {
        workload::ScenarioConfig cfg;
        cfg.num_devices = bench::kDevices;
        cfg.num_base_stations = bench::kStations;
        cfg.num_tasks = 100;
        cfg.max_input_kb = x;
        cfg.seed = seed * 1000 + static_cast<std::uint64_t>(x);
        return cfg;
      },
      algorithms,
      [](const assign::Metrics& m) { return m.mean_latency_s; }, series);

  std::cout << "average latency (s):\n";
  bench::print_table(series, 3);
  bench::maybe_write_csv(series, "fig4b_latency_vs_datasize");

  bench::ShapeChecker check;
  const auto at = [&](double x, const char* s) { return series.mean(x, s); };
  // "the advantage of LP-HTA on latency is not so much obvious" at large
  // inputs (paper, Fig. 4(b) discussion) — allow a small tolerance.
  check.expect(at(5000, "LP-HTA") <= at(5000, "HGOS") * 1.05,
               "LP-HTA within 5% of HGOS at 5000 kB");
  check.expect(at(5000, "LP-HTA") < at(5000, "AllToC"),
               "LP-HTA below AllToC at 5000 kB");
  check.expect(at(5000, "LP-HTA") > at(1000, "LP-HTA"),
               "latency grows with data volume");
  const double margin_small =
      at(1000, "HGOS") - at(1000, "LP-HTA");
  const double margin_large =
      at(5000, "HGOS") - at(5000, "LP-HTA");
  check.expect(margin_large < margin_small * 3.0 + 1.0,
               "LP-HTA's margin over HGOS does not explode with size "
               "(advantage less pronounced, per the paper)");
  return check.exit_code();
}
