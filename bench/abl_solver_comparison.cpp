// Ablation (google-benchmark) — LP engine micro-benchmarks: the two-phase
// bounded simplex vs the Mehrotra interior-point solver on HTA cluster
// relaxations of growing size, plus the end-to-end LP-HTA assignment and
// the baselines for context.
#include <benchmark/benchmark.h>

#include "assign/baselines.h"
#include "assign/hgos.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "lp/interior_point.h"
#include "lp/simplex.h"
#include "workload/scenario.h"

namespace {

using namespace mecsched;

workload::Scenario scenario_for(std::size_t tasks) {
  workload::ScenarioConfig cfg;
  cfg.num_devices = 50;
  cfg.num_base_stations = 5;
  cfg.num_tasks = tasks;
  cfg.seed = 12345;
  return workload::make_scenario(cfg);
}

// One HTA-shaped LP: the relaxation of `tasks` tasks on one cluster.
lp::Problem hta_relaxation(std::size_t tasks) {
  const auto s = scenario_for(tasks * 5);  // ~tasks per cluster
  const assign::HtaInstance inst(s.topology, s.tasks);
  lp::Problem p;
  const auto& cluster = inst.cluster_tasks(0);
  std::vector<lp::Term> station_row;
  for (std::size_t idx = 0; idx < cluster.size(); ++idx) {
    const std::size_t t = cluster[idx];
    for (mec::Placement pl : mec::kAllPlacements) {
      const double latency = inst.latency(t, pl);
      const double ub =
          latency <= 0.0
              ? 1.0
              : std::min(1.0, inst.task(t).deadline_s / latency);
      p.add_variable(inst.energy(t, pl), 0.0, ub);
    }
    p.add_constraint({{idx * 3 + 0, 1.0}, {idx * 3 + 1, 1.0},
                      {idx * 3 + 2, 1.0}},
                     lp::Relation::kEqual, 1.0);
    station_row.push_back({idx * 3 + 1, inst.task(t).resource});
  }
  p.add_constraint(std::move(station_row), lp::Relation::kLessEqual,
                   inst.topology().base_station(0).max_resource);
  return p;
}

void BM_SimplexOnHtaRelaxation(benchmark::State& state) {
  const lp::Problem p = hta_relaxation(static_cast<std::size_t>(state.range(0)));
  const lp::SimplexSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p));
  }
  state.SetLabel(std::to_string(p.num_variables()) + " vars");
}
BENCHMARK(BM_SimplexOnHtaRelaxation)->Arg(10)->Arg(30)->Arg(60)->Arg(90);

void BM_SimplexDevexOnHtaRelaxation(benchmark::State& state) {
  const lp::Problem p = hta_relaxation(static_cast<std::size_t>(state.range(0)));
  lp::SimplexOptions opts;
  opts.pricing = lp::PricingRule::kDevex;
  const lp::SimplexSolver solver(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p));
  }
  state.SetLabel(std::to_string(p.num_variables()) + " vars");
}
BENCHMARK(BM_SimplexDevexOnHtaRelaxation)->Arg(10)->Arg(30)->Arg(60)->Arg(90);

void BM_InteriorPointOnHtaRelaxation(benchmark::State& state) {
  const lp::Problem p = hta_relaxation(static_cast<std::size_t>(state.range(0)));
  const lp::InteriorPointSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p));
  }
  state.SetLabel(std::to_string(p.num_variables()) + " vars");
}
BENCHMARK(BM_InteriorPointOnHtaRelaxation)->Arg(10)->Arg(30)->Arg(60)->Arg(90);

void BM_LpHtaEndToEnd(benchmark::State& state) {
  const auto s = scenario_for(static_cast<std::size_t>(state.range(0)));
  const assign::HtaInstance inst(s.topology, s.tasks);
  const assign::LpHta algorithm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithm.assign(inst));
  }
}
BENCHMARK(BM_LpHtaEndToEnd)->Arg(100)->Arg(250)->Arg(450);

void BM_HgosEndToEnd(benchmark::State& state) {
  const auto s = scenario_for(static_cast<std::size_t>(state.range(0)));
  const assign::HtaInstance inst(s.topology, s.tasks);
  const assign::Hgos algorithm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithm.assign(inst));
  }
}
BENCHMARK(BM_HgosEndToEnd)->Arg(100)->Arg(450);

void BM_InstanceConstruction(benchmark::State& state) {
  const auto s = scenario_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign::HtaInstance(s.topology, s.tasks));
  }
}
BENCHMARK(BM_InstanceConstruction)->Arg(100)->Arg(450);

}  // namespace

BENCHMARK_MAIN();
