// Table I — parameters of the simulated wireless networks, plus the other
// Sec. V.A constants the experiments use. Pure reporting: verifies the
// built-in defaults match the paper's numbers.
#include <iostream>

#include "bench/bench_common.h"
#include "common/table.h"
#include "common/units.h"
#include "mec/parameters.h"

int main() {
  const mecsched::bench::ObsSession obs_session("table1_parameters");
  using namespace mecsched;
  bench::print_header("Table I", "parameters of wireless networks",
                      "paper values, as compiled into mec::SystemParameters");

  Table radio({"NetWork", "Download speed", "Upload speed", "P^T", "P^R"});
  auto mbps = [](double bps) { return Table::num(bps / 1e6, 2) + " Mbps"; };
  auto watts = [](double w) { return Table::num(w, 2) + " W"; };
  radio.add_row({"4G", mbps(mec::k4G.download_bps), mbps(mec::k4G.upload_bps),
                 watts(mec::k4G.tx_power_w), watts(mec::k4G.rx_power_w)});
  radio.add_row({"Wi-Fi", mbps(mec::kWiFi.download_bps),
                 mbps(mec::kWiFi.upload_bps), watts(mec::kWiFi.tx_power_w),
                 watts(mec::kWiFi.rx_power_w)});
  std::cout << radio;

  const mec::SystemParameters p;
  Table consts({"constant", "value", "source"});
  consts.add_row({"kappa", "1e-27 J*s^2/cycle^3", "[22] via Sec. V.A"});
  consts.add_row({"lambda", Table::num(p.cycles_per_byte, 0) + " cycles/byte",
                  "[22] via Sec. V.A"});
  consts.add_row({"eta", Table::num(p.result_ratio, 2), "[22] via Sec. V.A"});
  consts.add_row({"device CPU",
                  Table::num(p.device_min_hz / 1e9, 1) + "-" +
                      Table::num(p.device_max_hz / 1e9, 1) + " GHz",
                  "Sec. V.A"});
  consts.add_row({"base station CPU",
                  Table::num(p.base_station_hz / 1e9, 1) + " GHz", "Sec. V.A"});
  consts.add_row({"cloud CPU", Table::num(p.cloud_hz / 1e9, 1) + " GHz",
                  "Amazon T2.nano [16]"});
  consts.add_row({"BS<->BS delay",
                  Table::num(p.bs_to_bs_latency_s * 1e3, 0) + " ms", "[15]"});
  consts.add_row({"BS<->cloud delay",
                  Table::num(p.bs_to_cloud_latency_s * 1e3, 0) + " ms",
                  "[16]"});
  std::cout << consts;

  bench::ShapeChecker check;
  check.expect(mec::k4G.download_bps == units::mbps(13.76) &&
                   mec::k4G.upload_bps == units::mbps(5.85),
               "4G rates match Table I");
  check.expect(mec::kWiFi.download_bps == units::mbps(54.97) &&
                   mec::kWiFi.upload_bps == units::mbps(12.88),
               "Wi-Fi rates match Table I");
  check.expect(p.kappa == 1e-27 && p.cycles_per_byte == 330.0 &&
                   p.result_ratio == 0.2,
               "kappa/lambda/eta match Sec. V.A");
  return check.exit_code();
}
