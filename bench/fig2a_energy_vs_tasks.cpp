// Fig. 2(a) — total energy cost vs number of tasks (100 → 450), max input
// 3000 kB. Series: LP-HTA, HGOS, AllToC, AllOffload.
//
// Paper's reported shape: AllToC consumes the most, then AllOffload;
// LP-HTA is the lowest, slightly below HGOS, and grows slowly with the
// task count.
#include <iostream>

#include "bench/bench_common.h"
#include "bench/holistic_sweep.h"

int main() {
  const mecsched::bench::ObsSession obs_session("fig2a_energy_vs_tasks");
  using namespace mecsched;
  bench::print_header("Fig. 2(a)", "energy cost vs number of tasks",
                      "tasks 100..450, max input 3000 kB, 50 devices, "
                      "5 stations, 3 seeds/cell");

  const auto algorithms = bench::standard_algorithms();
  metrics::SeriesCollector series("tasks",
                                  bench::algorithm_names(algorithms));
  std::vector<double> xs;
  for (double t = 100; t <= 450; t += 50) xs.push_back(t);

  bench::run_holistic_sweep(
      xs,
      [](double x, std::uint64_t seed) {
        workload::ScenarioConfig cfg;
        cfg.num_devices = bench::kDevices;
        cfg.num_base_stations = bench::kStations;
        cfg.num_tasks = static_cast<std::size_t>(x);
        cfg.max_input_kb = 3000.0;
        cfg.seed = seed * 1000 + static_cast<std::uint64_t>(x);
        return cfg;
      },
      algorithms,
      [](const assign::Metrics& m) { return m.total_energy_j; }, series);

  std::cout << "total energy (J):\n";
  bench::print_table(series, 1);
  bench::maybe_write_csv(series, "fig2a_energy_vs_tasks");

  bench::ShapeChecker check;
  const auto at = [&](double x, const char* s) { return series.mean(x, s); };

  // Trajectory-gated telemetry: the figure's endpoint levels and the
  // AllToC/LP-HTA separation (deterministic — fixed seeds).
  bench::BenchTelemetry& telemetry = obs_session.telemetry();
  telemetry.set_value("lp_hta_energy_at_100", at(100, "LP-HTA"));
  telemetry.set_value("lp_hta_energy_at_450", at(450, "LP-HTA"));
  telemetry.set_value("alltoc_energy_at_450", at(450, "AllToC"));
  telemetry.set_value("energy_ratio_alltoc_lp",
                      at(450, "AllToC") / at(450, "LP-HTA"));
  check.expect(at(450, "AllToC") > at(450, "AllOffload"),
               "AllToC costs more than AllOffload");
  check.expect(at(450, "AllOffload") > at(450, "LP-HTA"),
               "AllOffload costs more than LP-HTA");
  check.expect(at(450, "LP-HTA") <= at(450, "HGOS") * 1.05,
               "LP-HTA at or below HGOS");
  check.expect(at(450, "LP-HTA") > at(100, "LP-HTA"),
               "LP-HTA energy grows with task count");
  check.expect(at(450, "LP-HTA") - at(100, "LP-HTA") <
                   at(450, "AllToC") - at(100, "AllToC"),
               "LP-HTA's energy grows more slowly than AllToC's");
  check.expect(at(450, "LP-HTA") - at(100, "LP-HTA") <
                   at(450, "AllOffload") - at(100, "AllOffload"),
               "LP-HTA's energy grows more slowly than AllOffload's");
  return check.exit_code();
}
