// Fig. 6(a) — processing time of DTA-Workload vs DTA-Number while the
// maximum input size grows from 1200 to 2000 kB; 200 tasks.
//
// Paper's reported shape: DTA-Workload's processing time is clearly
// smaller — balanced shares shorten the parallel makespan.
#include <iostream>

#include "bench/bench_common.h"
#include "dta/pipeline.h"
#include "metrics/series.h"
#include "workload/shared_data.h"

int main() {
  const mecsched::bench::ObsSession obs_session("fig6a_dta_processing_time");
  using namespace mecsched;
  bench::print_header("Fig. 6(a)", "processing time (DTA-Workload vs Number)",
                      "input 1200..2000 kB, 200 tasks, 50 devices, "
                      "5 stations, 3 seeds/cell");

  metrics::SeriesCollector series("max input (kB)",
                                  {"DTA-Workload", "DTA-Number"});

  for (double kb = 1200; kb <= 2000; kb += 200) {
    for (std::uint64_t rep = 1; rep <= bench::kRepetitions; ++rep) {
      workload::SharedDataConfig cfg;
      cfg.num_devices = bench::kDevices;
      cfg.num_base_stations = bench::kStations;
      cfg.num_tasks = 200;
      cfg.num_items = 600;
      cfg.max_extra_owners = 5;
      cfg.max_input_kb = kb;
      cfg.seed = rep * 1000 + static_cast<std::uint64_t>(kb);
      const auto scenario = workload::make_shared_scenario(cfg);

      dta::DtaOptions opts;
      opts.scheduler = dta::PartialScheduler::kLocalGreedy;
      opts.strategy = dta::DtaStrategy::kWorkload;
      series.add(kb, "DTA-Workload",
                 dta::run_dta(scenario, opts).processing_time_s);
      opts.strategy = dta::DtaStrategy::kNumber;
      series.add(kb, "DTA-Number",
                 dta::run_dta(scenario, opts).processing_time_s);
    }
  }

  std::cout << "processing time (s):\n";
  bench::print_table(series, 3);
  bench::maybe_write_csv(series, "fig6a_dta_processing_time");

  bench::ShapeChecker check;
  const auto at = [&](double x, const char* s) { return series.mean(x, s); };
  for (double kb = 1200; kb <= 2000; kb += 200) {
    check.expect(at(kb, "DTA-Workload") < at(kb, "DTA-Number"),
                 "workload-balanced division is faster at " +
                     Table::num(kb, 0) + " kB");
  }
  check.expect(at(2000, "DTA-Workload") > at(1200, "DTA-Workload"),
               "processing time grows with input size");
  return check.exit_code();
}
