// Ablation — count-balanced (paper Def. 1) vs byte-balanced DTA-Workload
// on heterogeneous data blocks. The paper's |C_i| objective is the right
// load proxy only when blocks are equal-sized; as the block-size spread
// grows, balancing cardinalities leaves some device with a huge byte
// share, and the byte-weighted variant wins on makespan.
#include <iostream>

#include "bench/bench_common.h"
#include "dta/pipeline.h"
#include "metrics/series.h"
#include "workload/shared_data.h"

int main() {
  const mecsched::bench::ObsSession obs_session("abl_byte_weighted_division");
  using namespace mecsched;
  bench::print_header("Ablation", "count- vs byte-weighted DTA-Workload",
                      "block sizes U[100 kB, 100*spread kB]; 150 tasks, "
                      "50 devices, 5 stations; x = spread");

  metrics::SeriesCollector series(
      "size spread", {"count-max-share-MB", "bytes-max-share-MB",
                      "count-time-s", "bytes-time-s"});

  for (double spread : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    for (std::uint64_t rep = 1; rep <= bench::kRepetitions; ++rep) {
      workload::SharedDataConfig cfg;
      cfg.num_devices = bench::kDevices;
      cfg.num_base_stations = bench::kStations;
      cfg.num_tasks = 150;
      cfg.num_items = 500;
      cfg.max_extra_owners = 5;
      cfg.item_size_spread = spread;
      cfg.seed = rep * 1201 + static_cast<std::uint64_t>(spread);
      const auto scenario = workload::make_shared_scenario(cfg);

      dta::DtaOptions opts;
      opts.scheduler = dta::PartialScheduler::kLocalGreedy;
      opts.strategy = dta::DtaStrategy::kWorkload;
      const dta::DtaResult count = dta::run_dta(scenario, opts);
      opts.strategy = dta::DtaStrategy::kWorkloadBytes;
      const dta::DtaResult bytes = dta::run_dta(scenario, opts);

      series.add(spread, "count-max-share-MB",
                 count.coverage.max_share_bytes(scenario.universe) / 1e6);
      series.add(spread, "bytes-max-share-MB",
                 bytes.coverage.max_share_bytes(scenario.universe) / 1e6);
      series.add(spread, "count-time-s", count.processing_time_s);
      series.add(spread, "bytes-time-s", bytes.processing_time_s);
    }
  }

  bench::print_table(series, 3);
  bench::maybe_write_csv(series, "abl_byte_weighted_division");

  bench::ShapeChecker check;
  const auto at = [&](double x, const char* s) { return series.mean(x, s); };
  check.expect(at(1, "bytes-max-share-MB") <=
                   at(1, "count-max-share-MB") + 1e-9,
               "with equal blocks the variants coincide");
  check.expect(at(16, "bytes-max-share-MB") < at(16, "count-max-share-MB"),
               "at high spread byte-balancing shrinks the largest share");
  check.expect(at(16, "bytes-time-s") <= at(16, "count-time-s") * 1.05,
               "byte-balancing is at least as fast at high spread");
  return check.exit_code();
}
