// Fig. 5(a) — energy cost vs number of tasks (100 → 450) on data-shared
// divisible workloads. Series: LP-HTA (treating each task holistically),
// DTA-Workload, DTA-Number. Max input 3000 kB, result ratio η = 0.2.
//
// Paper's reported shape: both DTA variants cost far less than holistic
// LP-HTA, and the gap widens as tasks (and thus avoided raw transfers)
// grow.
#include <iostream>

#include "assign/evaluator.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "bench/bench_common.h"
#include "dta/pipeline.h"
#include "metrics/series.h"
#include "workload/shared_data.h"

int main() {
  const mecsched::bench::ObsSession obs_session("fig5a_dta_energy_vs_tasks");
  using namespace mecsched;
  bench::print_header("Fig. 5(a)", "energy cost vs number of tasks (DTA)",
                      "tasks 100..450, max input 3000 kB, eta 0.2, "
                      "50 devices, 5 stations, 3 seeds/cell");

  metrics::SeriesCollector series(
      "tasks", {"LP-HTA", "DTA-Workload", "DTA-Number"});

  for (double x = 100; x <= 450; x += 50) {
    for (std::uint64_t rep = 1; rep <= bench::kRepetitions; ++rep) {
      workload::SharedDataConfig cfg;
      cfg.num_devices = bench::kDevices;
      cfg.num_base_stations = bench::kStations;
      cfg.num_tasks = static_cast<std::size_t>(x);
      cfg.num_items = 600;
      cfg.max_extra_owners = 5;
      cfg.max_input_kb = 3000.0;
      cfg.seed = rep * 1000 + static_cast<std::uint64_t>(x);
      const auto scenario = workload::make_shared_scenario(cfg);

      dta::DtaOptions opts;
      opts.scheduler = dta::PartialScheduler::kLocalGreedy;
      opts.strategy = dta::DtaStrategy::kWorkload;
      series.add(x, "DTA-Workload",
                 dta::run_dta(scenario, opts).total_energy_j);
      opts.strategy = dta::DtaStrategy::kNumber;
      series.add(x, "DTA-Number", dta::run_dta(scenario, opts).total_energy_j);

      const assign::HtaInstance inst(scenario.topology,
                                     dta::to_holistic_tasks(scenario));
      const auto a = assign::LpHta().assign(inst);
      series.add(x, "LP-HTA", assign::evaluate(inst, a).total_energy_j);
    }
  }

  std::cout << "total energy (J):\n";
  bench::print_table(series, 1);
  bench::maybe_write_csv(series, "fig5a_dta_energy_vs_tasks");

  bench::ShapeChecker check;
  const auto at = [&](double x, const char* s) { return series.mean(x, s); };
  check.expect(at(450, "DTA-Workload") < at(450, "LP-HTA"),
               "DTA-Workload below holistic LP-HTA");
  check.expect(at(450, "DTA-Number") < at(450, "LP-HTA"),
               "DTA-Number below holistic LP-HTA");
  const double gap_small = at(100, "LP-HTA") - at(100, "DTA-Workload");
  const double gap_large = at(450, "LP-HTA") - at(450, "DTA-Workload");
  check.expect(gap_large > gap_small,
               "the DTA saving widens as tasks increase");
  return check.exit_code();
}
