// Ablation — analytic Sec. II model vs discrete-event simulation.
//
// Without contention the simulator must reproduce the analytic mean
// latency and total energy exactly (relative drift ~1e-12). With FIFO
// contention on radios/CPUs, latency inflates — a measure of how
// optimistic the paper's queue-free model is on loaded systems.
#include <cmath>
#include <iostream>

#include "assign/evaluator.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "bench/bench_common.h"
#include "metrics/series.h"
#include "sim/simulator.h"
#include "workload/scenario.h"

int main() {
  const mecsched::bench::ObsSession obs_session("abl_sim_vs_analytic");
  using namespace mecsched;
  bench::print_header("Ablation", "analytic model vs discrete-event sim",
                      "LP-HTA plans, tasks 50..250, 50 devices, 5 stations; "
                      "latency means in seconds");

  metrics::SeriesCollector series(
      "tasks", {"analytic", "sim-ideal", "sim-contention", "energy-drift"});

  for (double x = 50; x <= 250; x += 50) {
    for (std::uint64_t rep = 1; rep <= bench::kRepetitions; ++rep) {
      workload::ScenarioConfig cfg;
      cfg.num_devices = bench::kDevices;
      cfg.num_base_stations = bench::kStations;
      cfg.num_tasks = static_cast<std::size_t>(x);
      cfg.seed = rep * 131 + static_cast<std::uint64_t>(x);
      const auto s = workload::make_scenario(cfg);
      const assign::HtaInstance inst(s.topology, s.tasks);
      const auto plan = assign::LpHta().assign(inst);

      const assign::Metrics analytic = assign::evaluate(inst, plan);
      const sim::SimResult ideal = sim::simulate(inst, plan);
      sim::SimOptions contention;
      contention.model_contention = true;
      const sim::SimResult loaded = sim::simulate(inst, plan, contention);

      double ideal_latency = 0.0, loaded_latency = 0.0;
      std::size_t placed = 0;
      for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
        if (!ideal.timelines[t].placed) continue;
        ideal_latency += ideal.timelines[t].latency_s();
        loaded_latency += loaded.timelines[t].latency_s();
        ++placed;
      }
      if (placed == 0) continue;
      series.add(x, "analytic", analytic.mean_latency_s);
      series.add(x, "sim-ideal", ideal_latency / static_cast<double>(placed));
      series.add(x, "sim-contention",
                 loaded_latency / static_cast<double>(placed));
      series.add(x, "energy-drift",
                 std::fabs(ideal.total_energy_j - analytic.total_energy_j) /
                     (1.0 + analytic.total_energy_j));
    }
  }

  bench::print_table(series, 4);
  bench::maybe_write_csv(series, "abl_sim_vs_analytic");

  bench::ShapeChecker check;
  bool exact = true, inflated = true;
  for (double x : series.xs()) {
    const double a = series.mean(x, "analytic");
    const double i = series.mean(x, "sim-ideal");
    const double c = series.mean(x, "sim-contention");
    exact = exact && std::fabs(a - i) <= 1e-9 * (1.0 + a);
    inflated = inflated && c >= i - 1e-9;
    exact = exact && series.mean(x, "energy-drift") <= 1e-9;
  }
  check.expect(exact, "queue-free simulation reproduces the analytic model");
  check.expect(inflated, "contention only ever inflates latency");
  return check.exit_code();
}
