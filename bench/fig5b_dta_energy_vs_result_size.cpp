// Fig. 5(b) — energy cost vs result-size model: η(y) ∈ {0.4y, 0.2y, 0.1y,
// 0.05y, constant}. 100 tasks, max input 3000 kB. Series: LP-HTA
// (holistic), DTA-Workload, DTA-Number.
//
// The x column is the result ratio; x = 0 denotes the constant-size model
// (100 kB regardless of input).
//
// Paper's reported shape: the DTA variants' energy shrinks with the result
// size and stays far below LP-HTA; smaller results → bigger advantage.
#include <iostream>

#include "assign/evaluator.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "bench/bench_common.h"
#include "dta/pipeline.h"
#include "metrics/series.h"
#include "workload/shared_data.h"

int main() {
  const mecsched::bench::ObsSession obs_session("fig5b_dta_energy_vs_result_size");
  using namespace mecsched;
  bench::print_header("Fig. 5(b)", "energy cost vs result size (DTA)",
                      "result = {0.4X, 0.2X, 0.1X, 0.05X, const 1 kB}; "
                      "100 tasks, max input 3000 kB (x=0 => constant)");

  metrics::SeriesCollector series(
      "result ratio", {"LP-HTA", "DTA-Workload", "DTA-Number"});

  const double ratios[] = {0.4, 0.2, 0.1, 0.05, 0.0};
  for (double ratio : ratios) {
    for (std::uint64_t rep = 1; rep <= bench::kRepetitions; ++rep) {
      workload::SharedDataConfig cfg;
      cfg.num_devices = bench::kDevices;
      cfg.num_base_stations = bench::kStations;
      cfg.num_tasks = 100;
      cfg.num_items = 600;
      cfg.max_input_kb = 3000.0;
      cfg.max_extra_owners = 5;
      if (ratio == 0.0) {
        // "Constant" in Fig. 5(b) is a scalar aggregate (a Sum/Count), far
        // below any proportional result.
        cfg.result_kind = mec::ResultSizeKind::kConstant;
        cfg.result_const_kb = 1.0;
      } else {
        cfg.result_ratio = ratio;
      }
      cfg.seed = rep * 1000 + static_cast<std::uint64_t>(ratio * 100);
      const auto scenario = workload::make_shared_scenario(cfg);

      dta::DtaOptions opts;
      opts.scheduler = dta::PartialScheduler::kLocalGreedy;
      opts.strategy = dta::DtaStrategy::kWorkload;
      series.add(ratio, "DTA-Workload",
                 dta::run_dta(scenario, opts).total_energy_j);
      opts.strategy = dta::DtaStrategy::kNumber;
      series.add(ratio, "DTA-Number",
                 dta::run_dta(scenario, opts).total_energy_j);

      const assign::HtaInstance inst(scenario.topology,
                                     dta::to_holistic_tasks(scenario));
      const auto a = assign::LpHta().assign(inst);
      series.add(ratio, "LP-HTA", assign::evaluate(inst, a).total_energy_j);
    }
  }

  std::cout << "total energy (J):\n";
  bench::print_table(series, 1);
  bench::maybe_write_csv(series, "fig5b_dta_energy_vs_result_size");

  bench::ShapeChecker check;
  const auto at = [&](double x, const char* s) { return series.mean(x, s); };
  check.expect(at(0.4, "DTA-Workload") < at(0.4, "LP-HTA"),
               "DTA-Workload below LP-HTA even at eta=0.4");
  check.expect(at(0.05, "DTA-Workload") < at(0.4, "DTA-Workload"),
               "DTA energy shrinks with the result size");
  check.expect(at(0.0, "DTA-Workload") < at(0.4, "DTA-Workload"),
               "constant (small) results are the cheapest for DTA");
  check.expect(at(0.05, "DTA-Number") < at(0.4, "DTA-Number"),
               "DTA-Number shrinks with result size too");
  return check.exit_code();
}
