// Ablation — device-failure blast radius and recovery. Kills one device at
// t = 0 under an LP-HTA plan, measures how many tasks die in simulation,
// repairs the plan with replan_after_device_failure, and verifies the
// repaired plan loses nothing further.
#include <iostream>

#include "assign/evaluator.h"
#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "assign/recovery.h"
#include "bench/bench_common.h"
#include "metrics/series.h"
#include "sim/simulator.h"
#include "workload/scenario.h"

int main() {
  const mecsched::bench::ObsSession obs_session("abl_failure_recovery");
  using namespace mecsched;
  bench::print_header("Ablation", "device failure blast radius and recovery",
                      "kill device 0 at t=0 under an LP-HTA plan; tasks "
                      "100..400, 50 devices, 5 stations");

  metrics::SeriesCollector series(
      "tasks", {"failed-unrepaired", "lost-after-repair", "repaired-failed",
                "surviving-energy-J"});

  bool repair_always_clean = true;
  for (double x = 100; x <= 400; x += 100) {
    for (std::uint64_t rep = 1; rep <= bench::kRepetitions; ++rep) {
      workload::ScenarioConfig cfg;
      cfg.num_devices = bench::kDevices;
      cfg.num_base_stations = bench::kStations;
      cfg.num_tasks = static_cast<std::size_t>(x);
      cfg.seed = rep * 449 + static_cast<std::uint64_t>(x);
      const auto s = workload::make_scenario(cfg);
      const assign::HtaInstance inst(s.topology, s.tasks);
      const auto plan = assign::LpHta().assign(inst);

      sim::SimOptions fail;
      fail.failed_device = 0;
      fail.failure_time_s = 0.0;
      const sim::SimResult broken = sim::simulate(inst, plan, fail);

      const auto repaired = assign::replan_after_device_failure(inst, plan, 0);
      const sim::SimResult after = sim::simulate(inst, repaired.assignment, fail);
      repair_always_clean = repair_always_clean && after.failed_tasks == 0;

      series.add(x, "failed-unrepaired",
                 static_cast<double>(broken.failed_tasks));
      series.add(x, "lost-after-repair",
                 static_cast<double>(repaired.lost_issued + repaired.lost_data));
      series.add(x, "repaired-failed",
                 static_cast<double>(after.failed_tasks));
      series.add(x, "surviving-energy-J", after.total_energy_j);
    }
  }

  bench::print_table(series, 2);
  bench::maybe_write_csv(series, "abl_failure_recovery");

  bench::ShapeChecker check;
  const auto at = [&](double x, const char* s) { return series.mean(x, s); };
  check.expect(repair_always_clean,
               "the repaired plan never touches the dead device");
  check.expect(at(400, "failed-unrepaired") > 0.0,
               "an unrepaired plan loses tasks when a device dies");
  check.expect(at(400, "lost-after-repair") <= at(400, "failed-unrepaired") + 1e-9,
               "repair loses no more than the failure itself");
  return check.exit_code();
}
