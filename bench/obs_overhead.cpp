// Observability overhead micro-bench — the cost of the per-solve
// instrumentation bundle while everything is *disabled* (the default).
//
// Every instrumented solve site pays, even with no trace/flight/metrics
// consumer attached:
//   - a relaxed-atomic FlightRecorder::enabled() check (taken branch: none),
//   - one windowed-histogram observe (registry name lookup + mutex + ring),
//   - one rate-window record,
//   - one plain histogram observe.
// This binary times that exact bundle, times a real small LP-HTA solve as
// the unit of useful work it rides on, and gates the ratio at 2% — the
// budget docs/observability.md promises for disabled-mode observability.
//
// Emits BENCH_obs_overhead.json (mecsched.bench.v1); CI gates
// values.overhead_fraction via tools/bench/trajectory.py.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "bench/bench_common.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/window.h"
#include "workload/scenario.h"

namespace {

constexpr std::size_t kTasks = 40;
constexpr int kSolveRuns = 7;
constexpr int kBundleIters = 200000;

double now_diff_s(std::chrono::steady_clock::time_point t0,
                  std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const mecsched::bench::ObsSession obs_session("obs_overhead");
  using namespace mecsched;
  bench::print_header("obs overhead",
                      "disabled-mode instrumentation cost per solve",
                      std::to_string(kTasks) +
                          " tasks, 20 devices, 3 stations; bundle = flight "
                          "check + window + rate + histogram");

  // The unit of useful work: one LP-HTA solve on a small cell (median of
  // kSolveRuns after one warmup, so the symbolic caches are steady-state).
  workload::ScenarioConfig cfg;
  cfg.num_devices = 20;
  cfg.num_base_stations = 3;
  cfg.num_tasks = kTasks;
  cfg.seed = 7;
  const workload::Scenario scenario = workload::make_scenario(cfg);
  const assign::HtaInstance instance(scenario.topology, scenario.tasks);
  const assign::LpHta solver;
  (void)solver.assign(instance);  // warmup
  std::vector<double> solve_times;
  solve_times.reserve(kSolveRuns);
  for (int r = 0; r < kSolveRuns; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)solver.assign(instance);
    const auto t1 = std::chrono::steady_clock::now();
    solve_times.push_back(now_diff_s(t0, t1));
  }
  std::sort(solve_times.begin(), solve_times.end());
  const double solve_seconds = solve_times[solve_times.size() / 2];

  // The disabled-mode bundle, exactly as the lp/ solve sites pay it:
  // registry lookups by name each time, then the observes.
  obs::Registry& reg = obs::Registry::global();
  obs::FlightRecorder& flight = obs::FlightRecorder::global();
  flight.disable();
  std::uint64_t sink = 0;
  const auto b0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kBundleIters; ++i) {
    if (flight.enabled()) ++sink;  // never taken; the check is the cost
    reg.window("lp.simplex.solve.seconds").observe(1e-3);
    reg.rate("lp.solves").record();
    reg.histogram("lp.solve.seconds").observe(1e-3);
  }
  const auto b1 = std::chrono::steady_clock::now();
  const double bundle_seconds = now_diff_s(b0, b1) / kBundleIters;
  const double overhead_fraction = bundle_seconds / solve_seconds;

  std::cout.setf(std::ios::fixed);
  std::cout.precision(9);
  std::cout << "solve (median):     " << solve_seconds << " s\n"
            << "bundle (per solve): " << bundle_seconds << " s\n";
  std::cout.precision(6);
  std::cout << "overhead fraction:  " << overhead_fraction
            << "  (budget 0.02)\n";
  if (sink != 0) std::cout << "sink: " << sink << '\n';  // defeat DCE

  bench::BenchTelemetry& telemetry = obs_session.telemetry();
  telemetry.set_value("solve_seconds", solve_seconds);
  telemetry.set_value("bundle_seconds", bundle_seconds);
  telemetry.set_value("overhead_fraction", overhead_fraction);

  bench::ShapeChecker check;
  check.expect(overhead_fraction <= 0.02,
               "disabled-mode instrumentation costs at most 2% of a small "
               "LP-HTA solve");
  return check.exit_code();
}
