// Fig. 3 — unsatisfied task rate vs number of tasks (100 → 450). Series:
// LP-HTA, HGOS, AllOffload (the paper omits AllToC here because its rate
// is uniformly terrible; we print it anyway as a reference column).
//
// Paper's reported shape: LP-HTA's rate is far below HGOS and AllOffload;
// HGOS's energy may rival LP-HTA (Fig. 2) but its deadline behaviour does
// not.
#include <iostream>

#include "bench/bench_common.h"
#include "bench/holistic_sweep.h"

int main() {
  const mecsched::bench::ObsSession obs_session("fig3_unsatisfied_rate");
  using namespace mecsched;
  bench::print_header("Fig. 3", "unsatisfied task rate vs number of tasks",
                      "tasks 100..450, max input 3000 kB, 50 devices, "
                      "5 stations, 3 seeds/cell");

  const auto algorithms = bench::standard_algorithms();
  metrics::SeriesCollector series("tasks",
                                  bench::algorithm_names(algorithms));
  std::vector<double> xs;
  for (double t = 100; t <= 450; t += 50) xs.push_back(t);

  bench::run_holistic_sweep(
      xs,
      [](double x, std::uint64_t seed) {
        workload::ScenarioConfig cfg;
        cfg.num_devices = bench::kDevices;
        cfg.num_base_stations = bench::kStations;
        cfg.num_tasks = static_cast<std::size_t>(x);
        cfg.max_input_kb = 3000.0;
        cfg.seed = seed * 1000 + static_cast<std::uint64_t>(x);
        return cfg;
      },
      algorithms,
      [](const assign::Metrics& m) { return m.unsatisfied_rate(); }, series);

  std::cout << "unsatisfied task rate (fraction of tasks):\n";
  bench::print_table(series, 4);
  bench::maybe_write_csv(series, "fig3_unsatisfied_rate");

  bench::ShapeChecker check;
  const auto at = [&](double x, const char* s) { return series.mean(x, s); };
  check.expect(at(450, "LP-HTA") < at(450, "HGOS"),
               "LP-HTA misses fewer deadlines than HGOS");
  check.expect(at(450, "LP-HTA") < at(450, "AllOffload"),
               "LP-HTA misses fewer deadlines than AllOffload");
  check.expect(at(450, "LP-HTA") < 0.15,
               "LP-HTA's unsatisfied rate stays small");
  check.expect(at(250, "HGOS") > 2.0 * at(250, "LP-HTA"),
               "HGOS's rate is a multiple of LP-HTA's");
  return check.exit_code();
}
