// Steady-state throughput of the `mecsched serve` daemon at city scale:
// 100k devices across 250 cells, ~12k task arrivals per 0.5 s epoch with
// live churn, solved over 16 shards. Headlines are decisions/sec and the
// p99s of the serve.* windowed metrics (admission-to-decision latency,
// per-epoch solve time); bench/baselines/serve_steady_state.json gates
// them in CI via tools/bench/trajectory.py.
//
// The run is deterministic at any worker count (same contract the
// daemon's CI determinism diff checks), so the only machine-dependent
// numbers are the wall-clock-derived ones, which the baseline floors
// conservatively.
#include <chrono>
#include <cmath>
#include <cstddef>
#include <iostream>

#include "bench_common.h"
#include "obs/registry.h"
#include "obs/window.h"
#include "serve/daemon.h"
#include "workload/serve_trace.h"

namespace {

using namespace mecsched;

constexpr std::size_t kCityDevices = 100000;
constexpr std::size_t kCityStations = 250;
constexpr std::size_t kEpochs = 4;
constexpr double kEpochSeconds = 0.5;
constexpr double kArrivalRatePerS = 24000.0;  // ~12k tasks per epoch

double seconds_between(std::chrono::steady_clock::time_point t0,
                       std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const bench::ObsSession obs_session("serve_steady_state");
  bench::print_header(
      "serve_steady_state", "online daemon throughput at city scale",
      "100k devices, 250 cells, 24k arrivals/s over 4x0.5s epochs, "
      "16 shards, live join/leave/migrate churn");

  workload::ServeTraceConfig cfg;
  cfg.scenario.num_devices = kCityDevices;
  cfg.scenario.num_base_stations = kCityStations;
  cfg.scenario.seed = 1;
  cfg.epochs = kEpochs;
  cfg.epoch_s = kEpochSeconds;
  cfg.arrival_rate_per_s = kArrivalRatePerS;
  cfg.join_rate_per_s = 10.0;
  cfg.leave_rate_per_s = 10.0;
  cfg.migrate_rate_per_s = 40.0;

  const auto gen0 = std::chrono::steady_clock::now();
  const workload::ServeWorkload w = workload::make_serve_workload(cfg);
  const double generate_s =
      seconds_between(gen0, std::chrono::steady_clock::now());

  serve::ServeOptions opts;
  opts.batching.window_s = kEpochSeconds;
  opts.sharding.num_shards = 16;
  opts.jobs = bench::sweep_jobs();

  const auto run0 = std::chrono::steady_clock::now();
  const serve::ServeResult r = serve::ServeDaemon(opts).run(w.universe, w.trace);
  const double run_s = seconds_between(run0, std::chrono::steady_clock::now());

  const double tasks_per_epoch =
      static_cast<double>(r.arrivals) / static_cast<double>(kEpochs);
  const double decisions_per_sec =
      run_s > 0.0 ? static_cast<double>(r.decisions) / run_s : 0.0;
  const obs::WindowedHistogram::Snapshot admit =
      obs::Registry::global().window("serve.admit_to_decision_ms").snapshot();
  const obs::WindowedHistogram::Snapshot solve =
      obs::Registry::global().window("serve.epoch.solve_ms").snapshot();

  std::cout << "devices:            " << w.universe.num_devices() << '\n'
            << "trace events:       " << r.events << '\n'
            << "tasks/epoch:        " << tasks_per_epoch << '\n'
            << "decisions:          " << r.decisions << '\n'
            << "generate wall:      " << generate_s << " s\n"
            << "serve wall:         " << run_s << " s\n"
            << "decisions/sec:      " << decisions_per_sec << '\n'
            << "admit->decision ms: p50 " << admit.p50 << "  p99 " << admit.p99
            << " (virtual clock)\n"
            << "epoch solve ms:     p50 " << solve.p50 << "  p99 " << solve.p99
            << '\n';

  bench::BenchTelemetry& telemetry = obs_session.telemetry();
  telemetry.set_value("devices",
                      static_cast<double>(w.universe.num_devices()));
  telemetry.set_value("stations",
                      static_cast<double>(w.universe.num_base_stations()));
  telemetry.set_value("tasks_per_epoch", tasks_per_epoch);
  telemetry.set_value("arrivals", static_cast<double>(r.arrivals));
  telemetry.set_value("decisions", static_cast<double>(r.decisions));
  telemetry.set_value("completed", static_cast<double>(r.completed));
  telemetry.set_value("decisions_per_sec", decisions_per_sec);
  telemetry.set_value("serve_wall_s", run_s);
  telemetry.set_value("generate_wall_s", generate_s);
  telemetry.set_value("admit_to_decision_p50_ms", admit.p50);
  telemetry.set_value("admit_to_decision_p99_ms", admit.p99);
  telemetry.set_value("epoch_solve_p50_ms", solve.p50);
  telemetry.set_value("epoch_solve_p99_ms", solve.p99);
  const bool conserved =
      r.arrivals == r.admitted + r.rejected &&
      r.admitted ==
          r.completed + r.expired + r.lost_issuer + r.exhausted + r.abandoned;
  telemetry.set_flag("conserved", conserved);
  telemetry.set_flag("ran_to_completion", !r.stopped_early);

  bench::ShapeChecker check;
  check.expect(w.universe.num_devices() >= kCityDevices,
               "universe holds at least 100k devices");
  check.expect(tasks_per_epoch >= 10000.0,
               "daemon ingests at least 10k tasks per epoch");
  check.expect(r.decisions > 0 && decisions_per_sec > 0.0,
               "the epoch loop places tasks at a positive rate");
  check.expect(conserved && !r.stopped_early,
               "every admitted task reaches exactly one terminal state");
  check.expect(admit.count > 0 && std::isfinite(admit.p99),
               "admission-to-decision p99 observed via serve.* windows");
  check.expect(solve.count > 0 && std::isfinite(solve.p99),
               "epoch solve-time p99 observed via serve.* windows");
  return check.exit_code();
}
