// Fig. 2(b) — total energy cost vs maximum input data size (1000 → 5000
// kB), 100 tasks. Series: LP-HTA, HGOS, AllToC, AllOffload.
//
// Paper's reported shape: LP-HTA stays the smallest as data volume grows
// (it suits data-intensive tasks); ordering as in Fig. 2(a).
#include <iostream>

#include "bench/bench_common.h"
#include "bench/holistic_sweep.h"

int main() {
  const mecsched::bench::ObsSession obs_session("fig2b_energy_vs_datasize");
  using namespace mecsched;
  bench::print_header("Fig. 2(b)", "energy cost vs max input data size",
                      "input 1000..5000 kB, 100 tasks, 50 devices, "
                      "5 stations, 3 seeds/cell");

  const auto algorithms = bench::standard_algorithms();
  metrics::SeriesCollector series("max input (kB)",
                                  bench::algorithm_names(algorithms));
  std::vector<double> xs;
  for (double kb = 1000; kb <= 5000; kb += 1000) xs.push_back(kb);

  bench::run_holistic_sweep(
      xs,
      [](double x, std::uint64_t seed) {
        workload::ScenarioConfig cfg;
        cfg.num_devices = bench::kDevices;
        cfg.num_base_stations = bench::kStations;
        cfg.num_tasks = 100;
        cfg.max_input_kb = x;
        cfg.seed = seed * 1000 + static_cast<std::uint64_t>(x);
        return cfg;
      },
      algorithms,
      [](const assign::Metrics& m) { return m.total_energy_j; }, series);

  std::cout << "total energy (J):\n";
  bench::print_table(series, 1);
  bench::maybe_write_csv(series, "fig2b_energy_vs_datasize");

  bench::ShapeChecker check;
  const auto at = [&](double x, const char* s) { return series.mean(x, s); };
  check.expect(at(5000, "AllToC") > at(5000, "AllOffload"),
               "AllToC costs more than AllOffload at 5000 kB");
  check.expect(at(5000, "LP-HTA") < at(5000, "AllOffload"),
               "LP-HTA remains below AllOffload at 5000 kB");
  check.expect(at(5000, "LP-HTA") <= at(5000, "HGOS") * 1.05,
               "LP-HTA at or below HGOS at 5000 kB");
  check.expect(at(5000, "LP-HTA") > at(1000, "LP-HTA"),
               "energy grows with data volume");
  return check.exit_code();
}
