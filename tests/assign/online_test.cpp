#include "assign/online.h"

#include <gtest/gtest.h>

#include "assign/evaluator.h"
#include "assign/hta_instance.h"
#include "common/error.h"
#include "sim/simulator.h"
#include "workload/arrivals.h"

namespace mecsched::assign {
namespace {

workload::TimedScenario timed(std::uint64_t seed, std::size_t tasks = 50,
                              double rate = 25.0) {
  workload::ArrivalConfig cfg;
  cfg.scenario.seed = seed;
  cfg.scenario.num_tasks = tasks;
  cfg.scenario.num_devices = 15;
  cfg.scenario.num_base_stations = 3;
  cfg.arrival_rate_per_s = rate;
  return workload::make_timed_scenario(cfg);
}

TEST(OnlineSchedulerTest, EveryTaskGetsAnOutcome) {
  const auto s = timed(1);
  const OnlineResult r = OnlineScheduler().run(s.topology, s.tasks);
  ASSERT_EQ(r.outcomes.size(), s.tasks.size());
  for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
    const auto& o = r.outcomes[i];
    if (o.decision == Decision::kCancelled) continue;
    EXPECT_GE(o.start_s, s.tasks[i].release_s);   // never before release
    EXPECT_GT(o.finish_s, o.start_s);
  }
  EXPECT_GT(r.epochs, 1u);
  EXPECT_GT(r.total_energy_j, 0.0);
}

TEST(OnlineSchedulerTest, EmptyStream) {
  const auto s = timed(2, 5);
  const OnlineResult r = OnlineScheduler().run(s.topology, {});
  EXPECT_TRUE(r.outcomes.empty());
  EXPECT_EQ(r.epochs, 0u);
}

TEST(OnlineSchedulerTest, StartsAlignToEpochBoundaries) {
  const auto s = timed(3);
  OnlineOptions opts;
  opts.epoch_s = 0.25;
  const OnlineResult r = OnlineScheduler(opts).run(s.topology, s.tasks);
  for (const auto& o : r.outcomes) {
    if (o.decision == Decision::kCancelled) continue;
    const double k = o.start_s / opts.epoch_s;
    EXPECT_NEAR(k, std::round(k), 1e-9);
  }
}

TEST(OnlineSchedulerTest, ResponseIncludesWaiting) {
  // Mean response >= mean service latency because of epoch batching.
  const auto s = timed(4);
  const OnlineResult r = OnlineScheduler().run(s.topology, s.tasks);
  double service = 0.0;
  std::size_t placed = 0;
  for (const auto& o : r.outcomes) {
    if (o.decision == Decision::kCancelled) continue;
    service += o.finish_s - o.start_s;
    ++placed;
  }
  ASSERT_GT(placed, 0u);
  EXPECT_GE(r.mean_response_s, service / static_cast<double>(placed) - 1e-9);
}

TEST(OnlineSchedulerTest, NeverExceedsOfflineEnergyByMuchOnSlackSystems) {
  // With light load the online policy should track the clairvoyant
  // offline assignment (same tasks, all known upfront) closely.
  const auto s = timed(5, 40, /*rate=*/5.0);  // light load
  const OnlineResult online = OnlineScheduler().run(s.topology, s.tasks);

  std::vector<mec::Task> all;
  for (const auto& t : s.tasks) all.push_back(t.task);
  const HtaInstance inst(s.topology, all);
  const Metrics offline = evaluate(inst, LpHta().assign(inst));

  EXPECT_GE(online.total_energy_j, offline.total_energy_j * 0.5);
  EXPECT_LE(online.total_energy_j, offline.total_energy_j * 1.5);
}

TEST(OnlineSchedulerTest, SlowEpochsIncreaseCancellations) {
  // Batching at 2 s eats most of a ~1-3 s relative deadline.
  const auto s = timed(6, 60, 30.0);
  OnlineOptions fast, slow;
  fast.epoch_s = 0.1;
  slow.epoch_s = 2.0;
  const OnlineResult fr = OnlineScheduler(fast).run(s.topology, s.tasks);
  const OnlineResult sr = OnlineScheduler(slow).run(s.topology, s.tasks);
  EXPECT_LE(fr.cancelled, sr.cancelled);
}

TEST(OnlineSchedulerTest, OutcomesReplayExactlyOnTheSimulator) {
  // Cross-module validation: replaying the online schedule on the DES with
  // release times = the chosen epoch starts must reproduce the analytic
  // finish times exactly (no contention).
  const auto s = timed(10, 30);
  const OnlineResult r = OnlineScheduler().run(s.topology, s.tasks);

  std::vector<mec::Task> tasks;
  sim::SimOptions opts;
  Assignment plan;
  for (std::size_t i = 0; i < s.tasks.size(); ++i) {
    tasks.push_back(s.tasks[i].task);
    plan.decisions.push_back(r.outcomes[i].decision);
    opts.release_times.push_back(r.outcomes[i].start_s);
  }
  const HtaInstance inst(s.topology, tasks);
  const sim::SimResult replay = sim::simulate(inst, plan, opts);
  for (std::size_t i = 0; i < s.tasks.size(); ++i) {
    if (r.outcomes[i].decision == Decision::kCancelled) continue;
    EXPECT_NEAR(replay.timelines[i].finish_s, r.outcomes[i].finish_s,
                1e-9 * (1.0 + r.outcomes[i].finish_s))
        << "task " << i;
  }
}

TEST(OnlineSchedulerTest, RejectsNonPositiveEpoch) {
  const auto s = timed(7, 5);
  OnlineOptions opts;
  opts.epoch_s = 0.0;
  EXPECT_THROW(OnlineScheduler(opts).run(s.topology, s.tasks), ModelError);
}

TEST(ArrivalsTest, ReleaseTimesAreSortedAndPositive) {
  const auto s = timed(8, 100);
  double prev = 0.0;
  for (const auto& t : s.tasks) {
    EXPECT_GE(t.release_s, prev);
    prev = t.release_s;
  }
  EXPECT_GT(prev, 0.0);
}

TEST(ArrivalsTest, StaticAttributesMatchQuasiStaticScenario) {
  workload::ArrivalConfig cfg;
  cfg.scenario.seed = 12;
  cfg.scenario.num_tasks = 30;
  const auto timed_scenario = workload::make_timed_scenario(cfg);
  const auto static_scenario = workload::make_scenario(cfg.scenario);
  ASSERT_EQ(timed_scenario.tasks.size(), static_scenario.tasks.size());
  for (std::size_t i = 0; i < static_scenario.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(timed_scenario.tasks[i].task.local_bytes,
                     static_scenario.tasks[i].local_bytes);
    EXPECT_DOUBLE_EQ(timed_scenario.tasks[i].task.deadline_s,
                     static_scenario.tasks[i].deadline_s);
  }
}

TEST(ArrivalsTest, RateControlsDensity) {
  const auto slow = timed(9, 50, 5.0);
  const auto fast = timed(9, 50, 50.0);
  EXPECT_GT(slow.tasks.back().release_s, fast.tasks.back().release_s);
}

}  // namespace
}  // namespace mecsched::assign
