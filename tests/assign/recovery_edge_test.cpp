// replan_after_device_failure edge cases: a device that is simultaneously
// an issuer and an external data owner of *different* tasks, a device with
// no tasks at all, double-role tasks counted once, and the repaired plan
// replayed under the same FaultSchedule touching no dead hardware.
#include <gtest/gtest.h>

#include <vector>

#include "assign/hta_instance.h"
#include "assign/lp_hta.h"
#include "assign/recovery.h"
#include "sim/simulator.h"
#include "workload/scenario.h"

namespace mecsched::assign {
namespace {

mec::Topology topology(std::uint64_t seed = 31) {
  workload::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_tasks = 1;
  cfg.num_devices = 8;
  cfg.num_base_stations = 2;
  return workload::make_scenario(cfg).topology;
}

mec::Task task(std::size_t issuer, std::size_t index, double beta_bytes,
               std::size_t owner) {
  mec::Task t;
  t.id = {issuer, index};
  t.local_bytes = 100e3;
  t.external_bytes = beta_bytes;
  t.external_owner = owner;
  t.deadline_s = 60.0;
  return t;
}

TEST(RecoveryEdgeTest, IssuerAndOwnerRolesOfOneDeviceAreBothCounted) {
  const mec::Topology topo = topology();
  // Device 2 issues task 0 and owns the external data of tasks 1 and 2;
  // task 3 is untouched.
  const std::vector<mec::Task> tasks = {
      task(2, 0, 0.0, 2),     // issued by the failing device
      task(3, 0, 50e3, 2),    // external data on the failing device
      task(4, 0, 80e3, 2),    // ditto
      task(5, 0, 20e3, 6),    // unrelated
  };
  const HtaInstance inst(topo, tasks);
  Assignment plan;
  plan.decisions.assign(tasks.size(), Decision::kLocal);

  const RecoveryResult r = replan_after_device_failure(inst, plan, 2);
  EXPECT_EQ(r.lost_issued, 1u);
  EXPECT_EQ(r.lost_data, 2u);
  EXPECT_EQ(r.assignment.decisions[0], Decision::kCancelled);
  EXPECT_EQ(r.assignment.decisions[1], Decision::kCancelled);
  EXPECT_EQ(r.assignment.decisions[2], Decision::kCancelled);
  EXPECT_EQ(r.assignment.decisions[3], Decision::kLocal);
}

TEST(RecoveryEdgeTest, SelfOwnedTaskOfTheDeadDeviceCountsOnceAsIssued) {
  const mec::Topology topo = topology();
  // The failing device issues a task whose external data it also owns: the
  // loss is recorded once, as an issued loss.
  const std::vector<mec::Task> tasks = {task(2, 0, 70e3, 2)};
  const HtaInstance inst(topo, tasks);
  Assignment plan;
  plan.decisions.assign(tasks.size(), Decision::kEdge);
  const RecoveryResult r = replan_after_device_failure(inst, plan, 2);
  EXPECT_EQ(r.lost_issued, 1u);
  EXPECT_EQ(r.lost_data, 0u);
}

TEST(RecoveryEdgeTest, DeviceWithNoTasksLosesNothing) {
  const mec::Topology topo = topology();
  const std::vector<mec::Task> tasks = {
      task(1, 0, 0.0, 1),
      task(3, 0, 40e3, 4),
  };
  const HtaInstance inst(topo, tasks);
  Assignment plan;
  plan.decisions.assign(tasks.size(), Decision::kLocal);
  const RecoveryResult r = replan_after_device_failure(inst, plan, 7);
  EXPECT_EQ(r.lost_issued, 0u);
  EXPECT_EQ(r.lost_data, 0u);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    EXPECT_EQ(r.assignment.decisions[t], plan.decisions[t]);
  }
}

TEST(RecoveryEdgeTest, AlreadyCancelledTasksAreNotDoubleCounted) {
  const mec::Topology topo = topology();
  const std::vector<mec::Task> tasks = {task(2, 0, 0.0, 2),
                                        task(3, 0, 50e3, 2)};
  const HtaInstance inst(topo, tasks);
  Assignment plan;
  plan.decisions = {Decision::kCancelled, Decision::kCancelled};
  const RecoveryResult r = replan_after_device_failure(inst, plan, 2);
  EXPECT_EQ(r.lost_issued, 0u);
  EXPECT_EQ(r.lost_data, 0u);
}

TEST(RecoveryEdgeTest, RepairedPlanSurvivesTheSameFaultSchedule) {
  workload::ScenarioConfig cfg;
  cfg.seed = 32;
  cfg.num_tasks = 40;
  cfg.num_devices = 10;
  cfg.num_base_stations = 2;
  const workload::Scenario s = workload::make_scenario(cfg);
  const HtaInstance inst(s.topology, s.tasks);
  const Assignment plan = LpHta().assign(inst);

  const std::size_t dead = 3;
  const RecoveryResult repaired = replan_after_device_failure(inst, plan, dead);

  // Replay the repaired plan through a FaultSchedule (not the legacy
  // single-failure fields) that also degrades every surviving link: no
  // task may touch the dead hardware, so none may fail.
  std::vector<sim::FaultEvent> events = {
      {0.0, sim::FaultKind::kDeviceFail, dead, 1.0}};
  for (std::size_t d = 0; d < s.topology.num_devices(); ++d) {
    if (d != dead) events.push_back({0.0, sim::FaultKind::kLinkDegrade, d, 0.8});
  }
  sim::SimOptions opts;
  opts.faults = sim::FaultSchedule(events);
  const sim::SimResult r = sim::simulate(inst, repaired.assignment, opts);
  EXPECT_EQ(r.failed_tasks, 0u);
  std::size_t placed = 0;
  for (const sim::TaskTimeline& tl : r.timelines) placed += tl.placed ? 1 : 0;
  EXPECT_EQ(placed + repaired.assignment.cancelled(), inst.num_tasks());
}

}  // namespace
}  // namespace mecsched::assign
